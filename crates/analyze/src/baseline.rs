//! The ratchet baseline: a checked-in, strict-JSON inventory of findings
//! the workspace has triaged but not yet fixed, so the lint pass lands
//! green and can only tighten from there.
//!
//! Every entry carries a human-written `reason` — an entry without one is
//! itself a failure (the repo's policy is that suppressions are arguments,
//! not escape hatches).  `--update-baseline` refreshes counts but never
//! invents reasons: new entries are written with an empty reason and the
//! run keeps failing until someone writes the justification.

use crate::rules::Finding;
use prestage_json::Json;
use std::collections::BTreeMap;

pub const SCHEMA: u64 = 1;

/// One triaged (rule, file) bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    /// Maximum tolerated findings of `rule` in `file`.
    pub count: usize,
    /// Why these findings are acceptable for now (required).
    pub reason: String,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
}

/// The verdict of applying a baseline to a finding set.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// Findings beyond the baselined budget (fail the run).
    pub new: Vec<Finding>,
    /// Baseline entries with an empty reason (fail the run).
    pub unexplained: Vec<BaselineEntry>,
    /// Buckets where the code now beats the baseline — tighten it.
    pub slack: Vec<(String, String, usize, usize)>, // (rule, file, allowed, actual)
}

impl Baseline {
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let v = Json::parse(text).map_err(|e| format!("baseline: {e}"))?;
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("baseline: missing integer field \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!(
                "baseline: schema {schema} unsupported (this tool reads schema {SCHEMA})"
            ));
        }
        let arr = v
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("baseline: missing array field \"entries\"")?;
        let mut entries = Vec::with_capacity(arr.len());
        for (i, e) in arr.iter().enumerate() {
            let field = |k: &str| -> Result<&Json, String> {
                e.get(k)
                    .ok_or_else(|| format!("baseline: entry {i} missing field {k:?}"))
            };
            let rule = field("rule")?
                .as_str()
                .ok_or_else(|| format!("baseline: entry {i} field \"rule\" must be a string"))?;
            if !crate::rules::rule_names().contains(&rule) {
                return Err(format!(
                    "baseline: entry {i} names unknown rule {rule:?} (rules: {})",
                    crate::rules::rule_names().join(", ")
                ));
            }
            let file = field("file")?
                .as_str()
                .ok_or_else(|| format!("baseline: entry {i} field \"file\" must be a string"))?;
            let count = field("count")?.as_usize().ok_or_else(|| {
                format!("baseline: entry {i} field \"count\" must be a non-negative integer")
            })?;
            let reason = field("reason")?
                .as_str()
                .ok_or_else(|| format!("baseline: entry {i} field \"reason\" must be a string"))?;
            entries.push(BaselineEntry {
                rule: rule.to_string(),
                file: file.to_string(),
                count,
                reason: reason.to_string(),
            });
        }
        Ok(Baseline { entries })
    }

    pub fn render(&self) -> String {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                Json::obj([
                    ("rule", e.rule.as_str().into()),
                    ("file", e.file.as_str().into()),
                    ("count", e.count.into()),
                    ("reason", e.reason.as_str().into()),
                ])
            })
            .collect();
        Json::obj([("schema", SCHEMA.into()), ("entries", Json::Arr(entries))]).pretty()
    }

    /// Compare findings against the baseline.  Within one (rule, file)
    /// bucket the first `count` findings are absorbed and the rest are
    /// new — position-independent on purpose: a baseline pins a *budget*,
    /// not line numbers, so unrelated edits do not invalidate it.
    pub fn apply(&self, findings: &[Finding]) -> Ratchet {
        let mut budget: BTreeMap<(String, String), usize> = BTreeMap::new();
        for e in &self.entries {
            budget.insert((e.rule.clone(), e.file.clone()), e.count);
        }
        let mut used: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut r = Ratchet::default();
        for f in findings {
            let key = (f.rule.to_string(), f.file.clone());
            let allowed = budget.get(&key).copied().unwrap_or(0);
            let u = used.entry(key).or_insert(0);
            if *u < allowed {
                *u += 1;
            } else {
                r.new.push(f.clone());
            }
        }
        for e in &self.entries {
            if e.reason.trim().is_empty() {
                r.unexplained.push(e.clone());
            }
            let actual = used
                .get(&(e.rule.clone(), e.file.clone()))
                .copied()
                .unwrap_or(0);
            if actual < e.count {
                r.slack
                    .push((e.rule.clone(), e.file.clone(), e.count, actual));
            }
        }
        r
    }

    /// Rebuild the baseline from current findings, carrying forward the
    /// reasons of surviving buckets.  New buckets get an empty reason —
    /// the run stays red until a human writes one.
    pub fn updated(&self, findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in findings {
            *counts.entry((f.rule.to_string(), f.file.clone())).or_insert(0) += 1;
        }
        let mut entries = Vec::with_capacity(counts.len());
        for ((rule, file), count) in counts {
            let reason = self
                .entries
                .iter()
                .find(|e| e.rule == rule && e.file == file)
                .map(|e| e.reason.clone())
                .unwrap_or_default();
            entries.push(BaselineEntry { rule, file, count, reason });
        }
        Baseline { entries }
    }
}
