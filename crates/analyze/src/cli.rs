//! The lint driver, shared by the `prestage-analyze` binary and the
//! `prestage lint` subcommand.
//!
//! ```text
//! [--all] [--rule <r>]... [--baseline <f>] [--update-baseline]
//! [--root <dir>] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean (modulo baseline), 1 findings (or unexplained
//! baseline entries), 2 usage/environment errors.

use crate as analyze;
use std::process::exit;

fn usage(program: &str) -> ! {
    eprintln!(
        "usage: {program} [--all] [--rule <name>]... [--baseline <file>]\n\
         \x20      [--update-baseline] [--root <dir>] [--list-rules]\n\n\
         Runs the repo-specific static-analysis rules over the workspace and\n\
         exits 1 on any finding not absorbed by the ratchet baseline\n\
         (default: <root>/{}).",
        analyze::BASELINE_PATH
    );
    exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("prestage-analyze: {msg}");
    exit(2);
}

/// Parse lint flags, run the pass, print diagnostics; returns the exit
/// code.  `program` names the wrapper for usage text (`prestage lint` or
/// `prestage-analyze`).
pub fn run(program: &str, args: &[String]) -> i32 {
    let mut rules: Vec<&'static str> = Vec::new();
    let mut baseline_path: Option<String> = None;
    let mut update_baseline = false;
    let mut root_arg: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => rules = analyze::rules::rule_names(),
            "--rule" => {
                let Some(name) = it.next() else { fail("--rule needs a value") };
                match analyze::RULES.iter().find(|r| r.name == name.as_str()) {
                    Some(r) => rules.push(r.name),
                    None => fail(&format!(
                        "unknown rule {name:?} (rules: {})",
                        analyze::rules::rule_names().join(", ")
                    )),
                }
            }
            "--baseline" => {
                let Some(p) = it.next() else { fail("--baseline needs a value") };
                baseline_path = Some(p.clone());
            }
            "--update-baseline" => update_baseline = true,
            "--root" => {
                let Some(p) = it.next() else { fail("--root needs a value") };
                root_arg = Some(p.clone());
            }
            "--list-rules" => {
                for r in analyze::RULES {
                    println!("{:<28} {}", r.name, r.summary);
                }
                return 0;
            }
            _ => usage(program),
        }
    }
    if rules.is_empty() {
        rules = analyze::rules::rule_names();
    }

    let root = match root_arg {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir()
                .unwrap_or_else(|e| fail(&format!("cannot determine working directory: {e}")));
            analyze::find_workspace_root(&cwd).unwrap_or_else(|e| fail(&e))
        }
    };
    let baseline_file = match &baseline_path {
        Some(p) => std::path::PathBuf::from(p),
        None => root.join(analyze::BASELINE_PATH),
    };

    let analysis = analyze::analyze_workspace(&root, &rules).unwrap_or_else(|e| fail(&e));

    let baseline = if baseline_file.is_file() {
        let text = std::fs::read_to_string(&baseline_file)
            .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", baseline_file.display())));
        analyze::Baseline::parse(&text)
            .unwrap_or_else(|e| fail(&format!("{}: {e}", baseline_file.display())))
    } else {
        analyze::Baseline::default()
    };

    if update_baseline {
        let updated = baseline.updated(&analysis.findings);
        let blank = updated
            .entries
            .iter()
            .filter(|e| e.reason.trim().is_empty())
            .count();
        std::fs::write(&baseline_file, updated.render())
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", baseline_file.display())));
        eprintln!(
            "wrote {} ({} entr{}, {} finding(s))",
            baseline_file.display(),
            updated.entries.len(),
            if updated.entries.len() == 1 { "y" } else { "ies" },
            analysis.findings.len()
        );
        if blank > 0 {
            eprintln!(
                "{blank} new entr{} have an empty \"reason\" — write the justification \
                 or fix the finding; the lint fails until every entry is explained",
                if blank == 1 { "y" } else { "ies" }
            );
            return 1;
        }
        return 0;
    }

    let ratchet = baseline.apply(&analysis.findings);
    for f in &ratchet.new {
        println!("{}", analyze::render_finding(f));
    }
    for e in &ratchet.unexplained {
        println!(
            "{}: baseline: entry ({}, {}) carries no reason — every suppression must \
             argue its case",
            analyze::BASELINE_PATH,
            e.rule,
            e.file
        );
    }
    for (rule, file, allowed, actual) in &ratchet.slack {
        eprintln!(
            "note: ratchet slack: {file} has {actual} `{rule}` finding(s) but the \
             baseline allows {allowed} — run --update-baseline to lock in the progress"
        );
    }
    eprintln!(
        "prestage-analyze: {} file(s), {} rule(s), {} finding(s) ({} new, {} baselined)",
        analysis.files_scanned,
        rules.len(),
        analysis.findings.len(),
        ratchet.new.len(),
        analysis.findings.len() - ratchet.new.len(),
    );
    if !ratchet.new.is_empty() || !ratchet.unexplained.is_empty() {
        eprintln!(
            "prestage-analyze: FAILED — fix the findings above, justify them with \
             `// prestage: allow(<rule>, <reason>)`, or budget them in the baseline \
             with a written reason"
        );
        return 1;
    }
    eprintln!("prestage-analyze: clean");
    0
}
