//! A small, self-contained Rust lexer — just enough structure for the
//! rule engine: identifiers, punctuation, string/char/number literals and
//! comments, with correct handling of escapes, raw strings (`r#"…"#`),
//! byte strings, nested block comments, and the char-literal/lifetime
//! ambiguity.  No rustc internals (the workspace builds offline against
//! vendored shims; this tool must too).
//!
//! The lexer is deliberately lenient: unterminated constructs consume to
//! end of input instead of failing, so a half-edited file still produces
//! diagnostics for everything before the damage.

/// One lexed token.  `line`/`col` are 1-based; `col` counts bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    pub line: usize,
    pub col: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`as`, `use`, `fn`, …).
    Ident(String),
    /// String literal content, escapes left raw (good enough for keyword
    /// and `{}`-interpolation checks; never re-emitted).
    Str(String),
    /// Character or byte literal (content irrelevant to every rule).
    Char,
    /// Numeric literal (value irrelevant to every rule).
    Num,
    /// One byte of punctuation.
    Punct(char),
}

/// A comment, kept out of the token stream (rules never see comments;
/// the pragma scanner reads these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: usize,
    pub text: String,
}

#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advance one byte, tracking line/col.
    fn bump(&mut self) {
        if self.peek() == Some(b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = c.peek() {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => c.bump(),
            b'/' if c.peek_at(1) == Some(b'/') => {
                let start = c.pos;
                while c.peek().is_some_and(|b| b != b'\n') {
                    c.bump();
                }
                out.comments.push(Comment {
                    line,
                    text: c.src[start..c.pos].to_string(),
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                let start = c.pos;
                c.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump_n(2);
                        }
                        (Some(_), _) => c.bump(),
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    line,
                    text: c.src[start..c.pos].to_string(),
                });
            }
            b'"' => {
                let s = lex_plain_string(&mut c);
                out.tokens.push(Token { kind: Tok::Str(s), line, col });
            }
            b'\'' => lex_quote(&mut c, &mut out, line, col),
            b'0'..=b'9' => {
                lex_number(&mut c);
                out.tokens.push(Token { kind: Tok::Num, line, col });
            }
            _ if is_ident_start(b) => lex_ident_or_prefixed(&mut c, &mut out, line, col),
            _ => {
                out.tokens.push(Token {
                    kind: Tok::Punct(char::from(b)),
                    line,
                    col,
                });
                c.bump();
            }
        }
    }
    out
}

/// A `"…"` string with escapes; cursor on the opening quote.  Returns the
/// raw content (escapes unprocessed).
fn lex_plain_string(c: &mut Cursor) -> String {
    c.bump(); // opening quote
    let start = c.pos;
    loop {
        match c.peek() {
            None | Some(b'"') => break,
            Some(b'\\') => c.bump_n(2),
            Some(_) => c.bump(),
        }
    }
    let content = c.src[start..c.pos.min(c.src.len())].to_string();
    if c.peek() == Some(b'"') {
        c.bump();
    }
    content
}

/// A `'…'` construct: char literal or lifetime; cursor on the quote.
fn lex_quote(c: &mut Cursor, out: &mut Lexed, line: usize, col: usize) {
    // Escaped char ('\n'), or a single scalar followed by a closing quote
    // ('a', including multi-byte scalars) → char literal.  Anything else
    // ('static, '_, 'a as a label) → lifetime, skipped entirely: no rule
    // cares, and emitting it would confuse adjacency checks.
    let is_char = match c.peek_at(1) {
        Some(b'\\') => true,
        Some(b2) => {
            // Find the end of one UTF-8 scalar starting at pos+1.
            let mut end = c.pos + 2;
            if b2 >= 0x80 {
                while c.bytes.get(end).is_some_and(|&x| x & 0xC0 == 0x80) {
                    end += 1;
                }
            }
            c.bytes.get(end) == Some(&b'\'')
        }
        None => false,
    };
    if is_char {
        c.bump(); // quote
        if c.peek() == Some(b'\\') {
            c.bump_n(2);
            // Escapes like \u{1f600} run to the closing brace.
            while c.peek().is_some_and(|b| b != b'\'') {
                c.bump();
            }
        } else {
            while c.peek().is_some_and(|b| b != b'\'') {
                c.bump();
            }
        }
        if c.peek() == Some(b'\'') {
            c.bump();
        }
        out.tokens.push(Token { kind: Tok::Char, line, col });
    } else {
        c.bump(); // quote
        while c.peek().is_some_and(is_ident_continue) {
            c.bump();
        }
    }
}

/// A numeric literal; cursor on the first digit.  Loose: consumes digits,
/// `_`, type suffixes, hex/binary bodies, and a fractional/exponent part.
fn lex_number(c: &mut Cursor) {
    while c.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
        c.bump();
    }
    // `1.5`, `1.5e-3` — but not `0..10` or `1.method()`.
    if c.peek() == Some(b'.') && c.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
        c.bump();
        while c.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
            c.bump();
        }
        // Signed exponent (`1.5e-3`): the `e` was consumed above.
        if (c.peek() == Some(b'-') || c.peek() == Some(b'+'))
            && c.bytes.get(c.pos.wrapping_sub(1)).is_some_and(|&b| b == b'e' || b == b'E')
        {
            c.bump();
            while c.peek().is_some_and(|b| b.is_ascii_digit()) {
                c.bump();
            }
        }
    }
}

/// Identifier, or one of the literal prefixes `r"…"`, `r#"…"#`, `b"…"`,
/// `br#"…"#`, `b'…'`, `r#ident`; cursor on the first byte.
fn lex_ident_or_prefixed(c: &mut Cursor, out: &mut Lexed, line: usize, col: usize) {
    let b = c.peek().unwrap_or(0);
    if b == b'r' || b == b'b' {
        // Count a possible raw-string introducer after the prefix.
        let after_b = if b == b'b' && c.peek_at(1) == Some(b'r') { 2 } else { 1 };
        let mut hashes = 0usize;
        while c.peek_at(after_b + hashes) == Some(b'#') {
            hashes += 1;
        }
        let quote_at = after_b + hashes;
        let starts_raw = (b == b'r' || after_b == 2) && c.peek_at(quote_at) == Some(b'"');
        let starts_byte_str = b == b'b' && after_b == 1 && hashes == 0 && c.peek_at(1) == Some(b'"');
        let starts_byte_char = b == b'b' && c.peek_at(1) == Some(b'\'');
        if starts_raw && hashes == 0 && quote_at == after_b {
            // r"…" / br"…": raw string, no hashes: runs to the next quote.
            c.bump_n(quote_at + 1);
            let start = c.pos;
            while c.peek().is_some_and(|x| x != b'"') {
                c.bump();
            }
            let content = c.src[start..c.pos.min(c.src.len())].to_string();
            if c.peek() == Some(b'"') {
                c.bump();
            }
            out.tokens.push(Token { kind: Tok::Str(content), line, col });
            return;
        }
        if starts_raw {
            // r#"…"# with `hashes` hashes: runs to `"` + hashes `#`s.
            c.bump_n(quote_at + 1);
            let start = c.pos;
            let end;
            loop {
                match c.peek() {
                    None => {
                        end = c.pos;
                        break;
                    }
                    Some(b'"') => {
                        let mut n = 0usize;
                        while n < hashes && c.peek_at(1 + n) == Some(b'#') {
                            n += 1;
                        }
                        if n == hashes {
                            end = c.pos;
                            c.bump_n(1 + hashes);
                            break;
                        }
                        c.bump();
                    }
                    Some(_) => c.bump(),
                }
            }
            out.tokens.push(Token {
                kind: Tok::Str(c.src[start..end].to_string()),
                line,
                col,
            });
            return;
        }
        if starts_byte_str {
            c.bump(); // the `b`
            let s = lex_plain_string(c);
            out.tokens.push(Token { kind: Tok::Str(s), line, col });
            return;
        }
        if starts_byte_char {
            c.bump(); // the `b`
            c.bump(); // the quote
            if c.peek() == Some(b'\\') {
                c.bump_n(2);
            }
            while c.peek().is_some_and(|x| x != b'\'') {
                c.bump();
            }
            if c.peek() == Some(b'\'') {
                c.bump();
            }
            out.tokens.push(Token { kind: Tok::Char, line, col });
            return;
        }
        if b == b'r' && hashes == 1 && c.peek_at(quote_at).is_some_and(is_ident_start) {
            // Raw identifier r#ident: lex as the plain identifier.
            c.bump_n(2);
            let start = c.pos;
            while c.peek().is_some_and(is_ident_continue) {
                c.bump();
            }
            out.tokens.push(Token {
                kind: Tok::Ident(c.src[start..c.pos].to_string()),
                line,
                col,
            });
            return;
        }
    }
    let start = c.pos;
    while c.peek().is_some_and(is_ident_continue) {
        c.bump();
    }
    out.tokens.push(Token {
        kind: Tok::Ident(c.src[start..c.pos].to_string()),
        line,
        col,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // HashMap in a comment
            /* as u16 in /* a nested */ block */
            let s = "as u16 inside a string";
            let r = r#"HashMap "quoted" raw"#;
            let b = b"unwrap()";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"u16".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let u = 'µ'; }";
        let l = lex(src);
        let chars = l.tokens.iter().filter(|t| t.kind == Tok::Char).count();
        assert_eq!(chars, 3);
        // Lifetimes leave no identifier named `a` behind.
        assert!(!idents(src).contains(&"a".to_string()));
    }

    #[test]
    fn positions_are_one_based_lines() {
        let src = "let a = 1;\nlet b = 2;";
        let l = lex(src);
        let b = l
            .tokens
            .iter()
            .find(|t| t.kind == Tok::Ident("b".into()))
            .expect("b lexed");
        assert_eq!(b.line, 2);
        assert_eq!(b.col, 5);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "for i in 0..10 { let x = 1.5e-3; let s = 2.to_string(); }";
        let l = lex(src);
        let nums = l.tokens.iter().filter(|t| t.kind == Tok::Num).count();
        assert_eq!(nums, 4); // 0, 10, 1.5e-3, 2
        assert!(idents(src).contains(&"to_string".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let src = r###"let x = r##"contains "# inside"## ; let after = 1;"###;
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn string_content_is_captured() {
        let l = lex("panic!(\"field {x} bad\");");
        let s = l
            .tokens
            .iter()
            .find_map(|t| match &t.kind {
                Tok::Str(s) => Some(s.clone()),
                _ => None,
            })
            .expect("string lexed");
        assert_eq!(s, "field {x} bad");
    }
}
