//! # prestage-analyze
//!
//! `prestage lint`: a fully-offline static-analysis pass that encodes this
//! repository's determinism, overflow and loud-rejection invariants as
//! CI-gated lints.  `cargo clippy` cannot see these rules because they are
//! repo-specific; every one of them is a defect class the repo actually
//! shipped and later dug out with byte-exactness tests or fuzzing:
//!
//! | rule | historical bug |
//! |------|----------------|
//! | `truncating-cast` | PR 5's `as u16` stream-length clamp |
//! | `unchecked-counter-add` | PR 6's `warmup_insts + measure_insts` u64 wrap |
//! | `nondeterministic-iteration` | HashMap order leaking into merged stats |
//! | `wallclock-in-sim` | wall-clock state breaking bit-exact replay |
//! | `unwrap-in-lib` | panics where the policy demands named errors |
//! | `unnamed-rejection` | rejections the fuzzer could only check dynamically |
//!
//! The pass is a small hand-written Rust lexer ([`lexer`]) — strings,
//! nested comments and raw strings handled correctly, no rustc internals,
//! consistent with the workspace's vendored-shim/offline constraint — plus
//! a rule engine ([`rules`]) that walks the workspace and reports named,
//! clickable `file:line:col` diagnostics.
//!
//! Two escape hatches, both of which must argue their case:
//!
//! * `// prestage: allow(<rule>, <reason>)` on (or directly above) the
//!   offending line.  A pragma without a reason is itself a finding.
//! * the checked-in ratchet baseline (`crates/analyze/baseline.json`,
//!   strict JSON via `prestage-json`): per-(rule, file) budgets with a
//!   written reason each, refreshed by `--update-baseline` — which never
//!   invents reasons, so a new bucket keeps the run red until justified.

pub mod baseline;
pub mod cli;
pub mod lexer;
pub mod rules;

pub use baseline::{Baseline, BaselineEntry, Ratchet};
pub use rules::{classify, Finding, FileClass, RULES};

use std::path::{Path, PathBuf};

/// Workspace-relative default location of the ratchet baseline.
pub const BASELINE_PATH: &str = "crates/analyze/baseline.json";

/// A suppression pragma: `// prestage: allow(<rule>, <reason>)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    pub line: usize,
    pub rule: String,
    pub reason: String,
}

/// Extract pragmas from a file's comments.  Malformed pragmas (unknown
/// rule, missing reason) come back as unsuppressible findings.
fn scan_pragmas(rel_path: &str, lexed: &lexer::Lexed) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for c in &lexed.comments {
        // Pragmas are directives, and only live in plain comments; doc
        // comments describing the pragma syntax are documentation.
        let doc = c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/*!")
            || (c.text.starts_with("/**") && !c.text.starts_with("/**/"));
        if doc {
            continue;
        }
        let Some(at) = c.text.find("prestage:") else { continue };
        let rest = c.text[at + "prestage:".len()..].trim_start();
        let bad = |message: String| Finding {
            rule: rules::PRAGMA,
            file: rel_path.to_string(),
            line: c.line,
            col: 1,
            message,
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            findings.push(bad(format!(
                "unrecognized prestage pragma {:?} — the form is \
                 `// prestage: allow(<rule>, <reason>)`",
                c.text.trim_start_matches('/').trim()
            )));
            continue;
        };
        let Some(close) = args.rfind(')') else {
            findings.push(bad("pragma missing closing ')'".to_string()));
            continue;
        };
        let body = &args[..close];
        let (rule, reason) = match body.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (body.trim(), ""),
        };
        if !rules::rule_names().contains(&rule) {
            findings.push(bad(format!(
                "pragma names unknown rule {rule:?} (rules: {})",
                rules::rule_names().join(", ")
            )));
            continue;
        }
        if reason.is_empty() {
            findings.push(bad(format!(
                "pragma for `{rule}` carries no reason — suppressions must argue \
                 their case: `// prestage: allow({rule}, <why this is safe>)`"
            )));
            continue;
        }
        pragmas.push(Pragma {
            line: c.line,
            rule: rule.to_string(),
            reason: reason.to_string(),
        });
    }
    (pragmas, findings)
}

/// Analyze one source text as if it lived at `rel_path` (workspace-relative,
/// unix separators).  This is the whole pipeline — lex, classify, rules,
/// pragma suppression — and what the fixture tests drive directly.
pub fn analyze_source(rel_path: &str, source: &str, enabled: &[&str]) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let class = rules::classify(rel_path);
    let (pragmas, mut findings) = scan_pragmas(rel_path, &lexed);
    let raw = rules::run_rules(rel_path, class, &lexed, enabled);
    findings.extend(raw.into_iter().filter(|f| {
        !pragmas
            .iter()
            .any(|p| p.rule == f.rule && (p.line == f.line || p.line + 1 == f.line))
    }));
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

/// The result of a workspace pass.
#[derive(Debug, Default)]
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// Directories never descended into: build output, vendored shims (not
/// this repo's code), VCS state, artifacts, and lint-fixture corpora.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github", "results", "fixtures"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = Vec::new();
    for e in rd {
        let e = e.map_err(|e| format!("error listing {}: {e}", dir.display()))?;
        entries.push(e.path());
    }
    // Deterministic walk order → deterministic diagnostics.
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walk the workspace at `root` and run the enabled rules over every
/// non-vendored `.rs` file.  Findings are sorted by (file, line, col).
pub fn analyze_workspace(root: &Path, enabled: &[&str]) -> Result<Analysis, String> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut analysis = Analysis::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("walker escaped the workspace root: {}", path.display()))?;
        let rel = rel.to_string_lossy().replace('\\', "/");
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        analysis.files_scanned += 1;
        analysis
            .findings
            .extend(analyze_source(&rel, &source, enabled));
    }
    analysis
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(analysis)
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        let Some(parent) = dir.parent() else {
            return Err(format!(
                "no workspace Cargo.toml found above {}",
                start.display()
            ));
        };
        dir = parent.to_path_buf();
    }
}

/// Render one finding in the conventional clickable form.
pub fn render_finding(f: &Finding) -> String {
    format!("{}:{}:{}: {}: {}", f.file, f.line, f.col, f.rule, f.message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_on_same_or_previous_line_suppresses() {
        let src = "\
fn f(x: u64) -> u16 {
    // prestage: allow(truncating-cast, callers pass port numbers < 65536)
    let a = x as u16;
    let b = x as u16; // prestage: allow(truncating-cast, same proof as above)
    a + b
}
";
        let fs = analyze_source("crates/core/src/x.rs", src, &[rules::TRUNCATING_CAST]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn pragma_without_reason_is_a_finding() {
        let src = "// prestage: allow(truncating-cast)\nfn f(x: u64) -> u16 { x as u16 }\n";
        let fs = analyze_source("crates/core/src/x.rs", src, &[rules::TRUNCATING_CAST]);
        // The pragma is rejected AND does not suppress.
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().any(|f| f.rule == rules::PRAGMA));
        assert!(fs.iter().any(|f| f.rule == rules::TRUNCATING_CAST));
    }

    #[test]
    fn pragma_with_unknown_rule_is_a_finding() {
        let src = "// prestage: allow(no-such-rule, because)\nfn f() {}\n";
        let fs = analyze_source("crates/core/src/x.rs", src, &[]);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("no-such-rule"));
    }

    #[test]
    fn test_files_and_test_modules_are_exempt() {
        let src = "fn f(x: u64) -> u16 { x as u16 }\n";
        assert!(analyze_source("crates/core/tests/t.rs", src, &[rules::TRUNCATING_CAST])
            .is_empty());
        let src = "\
#[cfg(test)]
mod tests {
    fn g(x: u64) -> u16 { x.unwrap() as u16 }
}
";
        let fs = analyze_source(
            "crates/core/src/x.rs",
            src,
            &[rules::TRUNCATING_CAST, rules::UNWRAP_IN_LIB],
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn findings_are_sorted_and_renderable() {
        let src = "fn f(x: u64) -> (u16, u8) { (x as u16, x as u8) }\n";
        let fs = analyze_source("crates/core/src/x.rs", src, &[rules::TRUNCATING_CAST]);
        assert_eq!(fs.len(), 2);
        assert!(fs[0].col < fs[1].col);
        let r = render_finding(&fs[0]);
        assert!(r.starts_with("crates/core/src/x.rs:1:"), "{r}");
        assert!(r.contains("truncating-cast"));
    }
}
