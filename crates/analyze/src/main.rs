//! `prestage-analyze` — the standalone driver for the lint pass; the
//! `prestage lint` subcommand wraps the same [`prestage_analyze::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(prestage_analyze::cli::run("prestage-analyze", &args));
}
