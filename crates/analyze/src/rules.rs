//! The rule catalog: each rule encodes one defect class this repo has
//! actually shipped (see README "Static analysis" for the history), as a
//! pass over the token stream from [`crate::lexer`].
//!
//! Rules are deliberately syntactic — no type information, no name
//! resolution.  Where syntax cannot prove safety the code carries the
//! proof instead: a `// prestage: allow(<rule>, <reason>)` pragma or a
//! reasoned entry in the ratchet baseline.

use crate::lexer::{Lexed, Tok, Token};

/// Where a file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code: the default for `src/` trees.
    Lib,
    /// Binary/CLI code (`src/bin/`, `src/main.rs`).
    Bin,
    /// Tests, benches, examples, fixtures: exempt from every rule.
    Test,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

/// Rule metadata for `--list-rules` and pragma validation.
pub struct Rule {
    pub name: &'static str,
    pub summary: &'static str,
}

pub const TRUNCATING_CAST: &str = "truncating-cast";
pub const UNCHECKED_COUNTER_ADD: &str = "unchecked-counter-add";
pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
pub const WALLCLOCK_IN_SIM: &str = "wallclock-in-sim";
pub const UNWRAP_IN_LIB: &str = "unwrap-in-lib";
pub const UNNAMED_REJECTION: &str = "unnamed-rejection";
pub const MAP_IN_CYCLE_PATH: &str = "map-in-cycle-path";
/// Meta-rule for malformed suppression pragmas; never suppressible.
pub const PRAGMA: &str = "pragma";

pub const RULES: &[Rule] = &[
    Rule {
        name: TRUNCATING_CAST,
        summary: "narrowing `as u8/u16/u32` (and signed) casts outside justified sites \
                  — the PR 5 stream-length `as u16` truncation class",
    },
    Rule {
        name: UNCHECKED_COUNTER_ADD,
        summary: "bare `+`/`*` on `*_insts`/`*seed` counters — the PR 6 \
                  `warmup_insts + measure_insts` u64-wrap class; use checked_*/saturating_*",
    },
    Rule {
        name: NONDETERMINISTIC_ITERATION,
        summary: "HashMap/HashSet in library code, whose iteration order can leak into \
                  stats or output — use BTreeMap/BTreeSet or prove order-independence",
    },
    Rule {
        name: WALLCLOCK_IN_SIM,
        summary: "Instant/SystemTime outside the runner/CLI/bench timing layer — \
                  wall-clock in simulation code breaks bit-exact replay",
    },
    Rule {
        name: UNWRAP_IN_LIB,
        summary: ".unwrap()/.expect( in non-test library code — rejections must be \
                  named errors, not panics",
    },
    Rule {
        name: UNNAMED_REJECTION,
        summary: "panic!/assert! in parse/validate paths whose message names no \
                  field, offset or value — the loud-rejection policy, statically",
    },
    Rule {
        name: MAP_IN_CYCLE_PATH,
        summary: "BTreeMap/HashMap (and the Set variants) in per-cycle simulator \
                  files — the PR 9 raw-speed campaign replaced every one with flat \
                  state; new hot-path maps need a pragma proving they are cold",
    },
];

pub fn rule_names() -> Vec<&'static str> {
    RULES.iter().map(|r| r.name).collect()
}

/// Classify a workspace-relative path (unix separators).
pub fn classify(rel_path: &str) -> FileClass {
    let p = rel_path;
    if p.starts_with("tests/")
        || p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.starts_with("examples/")
        || p.contains("/fixtures/")
    {
        return FileClass::Test;
    }
    if p.contains("/src/bin/") || p.ends_with("/src/main.rs") || p == "src/main.rs" {
        return FileClass::Bin;
    }
    FileClass::Lib
}

/// Paths where wall-clock time is the *point* (timing layers), exempt from
/// [`WALLCLOCK_IN_SIM`].  The serve daemon is orchestration, not
/// simulation: its deadlines and stall detection are wall-clock by design
/// and never feed results.
const WALLCLOCK_ALLOWED: &[&str] = &[
    "src/bin/",
    "crates/bench/",
    "crates/serve/",
    "crates/sim/src/runner.rs",
];

/// Files ticked every simulated cycle, subject to [`MAP_IN_CYCLE_PATH`]:
/// the engine loop and everything it calls per cycle.  Tree/hash lookups
/// here cost pointer chases and hashing on the hottest path in the repo;
/// the flat replacements (rings, bitmaps, index-keyed vectors) are the
/// required idiom.  Cold-path files of the same crates (spec parsing,
/// config validation, reporting) are deliberately not listed.
const CYCLE_PATH_FILES: &[&str] = &[
    "crates/sim/src/engine.rs",
    "crates/sim/src/backend.rs",
    "crates/core/src/frontend.rs",
    "crates/core/src/queue.rs",
    "crates/core/src/prefetch.rs",
    "crates/core/src/buffer.rs",
    "crates/cache/src/array.rs",
    "crates/cache/src/bus.rs",
    "crates/cache/src/lru.rs",
    "crates/cache/src/port.rs",
    "crates/cache/src/tlb.rs",
    "crates/bpred/src/predictor.rs",
    "crates/bpred/src/gshare.rs",
    "crates/bpred/src/ras.rs",
    "crates/bpred/src/stream.rs",
];

/// Parse/validate surfaces subject to [`UNNAMED_REJECTION`]: everything
/// that turns untrusted bytes into values.
const REJECTION_PATHS: &[&str] = &[
    "crates/json/src/",
    "crates/serve/src/",
    "crates/sim/src/spec.rs",
    "crates/workload/src/trace_io.rs",
    "crates/workload/src/replay.rs",
    "fuzz/src/",
];

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Words that count as "naming" the rejected field/offset in a message.
const NAMING_WORDS: &[&str] = &[
    "field", "offset", "byte", "record", "chunk", "line", "key", "index", "cell", "seed",
    "spec", "bench", "name", "inst", "version", "header", "crc",
];

/// `#[cfg(test)]` / `#[test]` item line ranges (inclusive), so in-file test
/// modules are exempt without path heuristics.
pub fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].kind != Tok::Punct('#') || tokens[i + 1].kind != Tok::Punct('[') {
            i += 1;
            continue;
        }
        let attr_line = tokens[i].line;
        // Collect the attribute's identifiers up to the matching ']'.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut idents: Vec<&str> = Vec::new();
        while j < tokens.len() && depth > 0 {
            match &tokens[j].kind {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => depth -= 1,
                Tok::Ident(s) => idents.push(s),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = match idents.first() {
            Some(&"cfg") => idents.contains(&"test"),
            Some(&"test") => idents.len() == 1,
            _ => false,
        };
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes, then span the item: to the close of
        // its first brace block, or to a `;` for braceless items.
        let mut k = j;
        while k + 1 < tokens.len()
            && tokens[k].kind == Tok::Punct('#')
            && tokens[k + 1].kind == Tok::Punct('[')
        {
            let mut d = 1usize;
            k += 2;
            while k < tokens.len() && d > 0 {
                match tokens[k].kind {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => d -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        let mut end_line = attr_line;
        let mut brace = 0usize;
        while k < tokens.len() {
            match tokens[k].kind {
                Tok::Punct('{') => brace += 1,
                Tok::Punct('}') => {
                    brace = brace.saturating_sub(1);
                    if brace == 0 {
                        end_line = tokens[k].line;
                        break;
                    }
                }
                Tok::Punct(';') if brace == 0 => {
                    end_line = tokens[k].line;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if k >= tokens.len() {
            end_line = tokens.last().map_or(attr_line, |t| t.line);
        }
        regions.push((attr_line, end_line));
        i = j;
    }
    regions
}

fn in_test(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

fn ident(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(&Tok::Punct(c)) => Some(c),
        _ => None,
    }
}

/// Run every enabled rule over one lexed file.
pub fn run_rules(
    rel_path: &str,
    class: FileClass,
    lexed: &Lexed,
    enabled: &[&str],
) -> Vec<Finding> {
    if class == FileClass::Test {
        return Vec::new();
    }
    let tokens = &lexed.tokens;
    let regions = test_regions(tokens);
    let mut out = Vec::new();
    let on = |name: &str| enabled.contains(&name);

    let finding = |rule: &'static str, t: &Token, message: String| Finding {
        rule,
        file: rel_path.to_string(),
        line: t.line,
        col: t.col,
        message,
    };

    if on(TRUNCATING_CAST) {
        for i in 0..tokens.len() {
            if in_test(&regions, tokens[i].line) {
                continue;
            }
            if ident(tokens, i) == Some("as") {
                if let Some(ty) = ident(tokens, i + 1) {
                    if NARROW_TARGETS.contains(&ty) {
                        out.push(finding(
                            TRUNCATING_CAST,
                            &tokens[i],
                            format!(
                                "narrowing `as {ty}` cast silently truncates — use \
                                 `{ty}::try_from` (or prove the range and add a pragma)"
                            ),
                        ));
                    }
                }
            }
        }
    }

    if on(UNCHECKED_COUNTER_ADD) && class == FileClass::Lib {
        let is_counter = |s: &str| s.ends_with("_insts") || s.ends_with("seed");
        for i in 0..tokens.len() {
            if in_test(&regions, tokens[i].line) {
                continue;
            }
            let Some(name) = ident(tokens, i) else { continue };
            if !is_counter(name) {
                continue;
            }
            // `counter + x` / `counter * x` / `counter += x`.
            let next_is_op = matches!(punct(tokens, i + 1), Some('+') | Some('*'));
            // `x + counter`, only in clearly binary position.
            let prev_is_op = matches!(punct(tokens, i.wrapping_sub(1)), Some('+') | Some('*'))
                && i >= 2
                && matches!(
                    tokens[i - 2].kind,
                    Tok::Ident(_) | Tok::Num | Tok::Punct(')') | Tok::Punct(']')
                );
            if next_is_op || prev_is_op {
                out.push(finding(
                    UNCHECKED_COUNTER_ADD,
                    &tokens[i],
                    format!(
                        "bare arithmetic on counter `{name}` can wrap u64 — use \
                         checked_add/checked_mul (or saturating_*) and reject loudly"
                    ),
                ));
            }
        }
    }

    if on(NONDETERMINISTIC_ITERATION) && class == FileClass::Lib {
        let mut in_use = false;
        for i in 0..tokens.len() {
            match ident(tokens, i) {
                Some("use") if !matches!(punct(tokens, i.wrapping_sub(1)), Some('.')) => {
                    in_use = true
                }
                Some(name @ ("HashMap" | "HashSet"))
                    if !in_use && !in_test(&regions, tokens[i].line) =>
                {
                    out.push(finding(
                        NONDETERMINISTIC_ITERATION,
                        &tokens[i],
                        format!(
                            "`{name}` iteration order is nondeterministic and can leak \
                             into stats/output — use BTreeMap/BTreeSet, or pragma with \
                             a proof that it is never iterated (or its use is \
                             order-independent)"
                        ),
                    ));
                }
                _ => {}
            }
            if punct(tokens, i) == Some(';') {
                in_use = false;
            }
        }
    }

    if on(WALLCLOCK_IN_SIM)
        && class == FileClass::Lib
        && !WALLCLOCK_ALLOWED.iter().any(|p| rel_path.starts_with(p))
    {
        for i in 0..tokens.len() {
            if in_test(&regions, tokens[i].line) {
                continue;
            }
            if let Some(name @ ("Instant" | "SystemTime")) = ident(tokens, i) {
                out.push(finding(
                    WALLCLOCK_IN_SIM,
                    &tokens[i],
                    format!(
                        "`{name}` in simulation code — wall-clock state breaks bit-exact \
                         replay; time belongs in the runner/CLI/bench layer"
                    ),
                ));
            }
        }
    }

    if on(UNWRAP_IN_LIB) && class == FileClass::Lib {
        for i in 0..tokens.len() {
            if in_test(&regions, tokens[i].line) || punct(tokens, i) != Some('.') {
                continue;
            }
            let bad = match ident(tokens, i + 1) {
                Some("unwrap") => {
                    punct(tokens, i + 2) == Some('(') && punct(tokens, i + 3) == Some(')')
                }
                Some("expect") => punct(tokens, i + 2) == Some('('),
                _ => false,
            };
            if bad {
                let name = ident(tokens, i + 1).unwrap_or("unwrap");
                out.push(finding(
                    UNWRAP_IN_LIB,
                    &tokens[i + 1],
                    format!(
                        "`.{name}(…)` in library code panics instead of returning a \
                         named error — propagate a Result (or pragma an invariant)"
                    ),
                ));
            }
        }
    }

    if on(UNNAMED_REJECTION)
        && class == FileClass::Lib
        && REJECTION_PATHS.iter().any(|p| rel_path.starts_with(p))
    {
        check_rejections(rel_path, tokens, &regions, &mut out);
    }

    if on(MAP_IN_CYCLE_PATH) && CYCLE_PATH_FILES.contains(&rel_path) {
        let mut in_use = false;
        for i in 0..tokens.len() {
            match ident(tokens, i) {
                Some("use") if !matches!(punct(tokens, i.wrapping_sub(1)), Some('.')) => {
                    in_use = true
                }
                Some(name @ ("BTreeMap" | "BTreeSet" | "HashMap" | "HashSet"))
                    if !in_use && !in_test(&regions, tokens[i].line) =>
                {
                    out.push(finding(
                        MAP_IN_CYCLE_PATH,
                        &tokens[i],
                        format!(
                            "`{name}` in a per-cycle file — tree/hash lookups on the \
                             hottest path; use a flat ring/bitmap/index-keyed vector, \
                             or pragma with a proof the structure is touched off the \
                             per-cycle path"
                        ),
                    ));
                }
                _ => {}
            }
            if punct(tokens, i) == Some(';') {
                in_use = false;
            }
        }
    }

    out
}

/// Scan `panic!`/`assert!`/`assert_eq!`/`assert_ne!` calls and demand that
/// their message names what was rejected (a `{}` interpolation of the
/// offending value, or a field/offset word).
fn check_rejections(
    rel_path: &str,
    tokens: &[Token],
    regions: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < tokens.len() {
        let Some(mac @ ("panic" | "assert" | "assert_eq" | "assert_ne")) = ident(tokens, i)
        else {
            i += 1;
            continue;
        };
        if in_test(regions, tokens[i].line)
            || punct(tokens, i + 1) != Some('!')
            || punct(tokens, i + 2) != Some('(')
        {
            i += 1;
            continue;
        }
        let needs_comma = mac != "panic";
        // Walk the macro arguments at bracket depth 1.
        let mut depth = 1usize;
        let mut j = i + 3;
        let mut seen_comma = false;
        let mut message: Option<&str> = None;
        while j < tokens.len() && depth > 0 {
            match &tokens[j].kind {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                Tok::Punct(',') if depth == 1 => seen_comma = true,
                Tok::Str(s) if depth == 1 && (seen_comma || !needs_comma) => {
                    message = Some(s.as_str());
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        match message {
            None => out.push(Finding {
                rule: UNNAMED_REJECTION,
                file: rel_path.to_string(),
                line: tokens[i].line,
                col: tokens[i].col,
                message: format!(
                    "`{mac}!` without a message in a parse/validate path — every \
                     rejection must name the offending field/offset/value"
                ),
            }),
            Some(msg) if !message_names_something(msg) => out.push(Finding {
                rule: UNNAMED_REJECTION,
                file: rel_path.to_string(),
                line: tokens[i].line,
                col: tokens[i].col,
                message: format!(
                    "`{mac}!` message {msg:?} names no field, offset or value — \
                     interpolate the offender or name the field"
                ),
            }),
            Some(_) => {}
        }
        i = j.max(i + 1);
    }
}

/// A message "names" the rejection if it interpolates a value (`{…}` that
/// is not an escaped `{{`) or mentions a field/offset word.
fn message_names_something(msg: &str) -> bool {
    let bytes = msg.as_bytes();
    let mut k = 0;
    while k < bytes.len() {
        if bytes[k] == b'{' {
            if bytes.get(k + 1) == Some(&b'{') {
                k += 2;
                continue;
            }
            return true;
        }
        k += 1;
    }
    let lower = msg.to_lowercase();
    NAMING_WORDS.iter().any(|w| lower.contains(w))
}
