//! The hot-path-map bug class: tree/hash containers ticked every cycle.
//! Minimized from the pre-PR-9 back-end (BTreeMap RUU bookkeeping) and
//! bus (BTreeMap completion metadata) that the raw-speed campaign removed.

use std::collections::{BTreeMap, HashSet};

pub struct BackEnd {
    /// Keyed by producer seq, walked every issue cycle.
    pub last_writer: BTreeMap<u64, u64>,
}

pub fn touched_this_cycle(lines: &[u64]) -> HashSet<u64> {
    lines.iter().copied().collect()
}
