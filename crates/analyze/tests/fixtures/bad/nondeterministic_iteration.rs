//! The HashMap-order bug class: iteration order leaking into merged
//! statistics, breaking live == shard/merge == replay bit-exactness.

use std::collections::{HashMap, HashSet};

pub fn merge_counts(per_block: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
    per_block.iter().map(|(k, v)| (*k, *v)).collect()
}

pub fn touched_lines(lines: &[u64]) -> HashSet<u64> {
    lines.iter().copied().collect()
}
