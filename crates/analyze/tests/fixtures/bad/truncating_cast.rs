//! Minimized reproduction of the PR 5 predictor-table bug: a stream
//! length clamped through `as u16` silently truncated long streams and
//! aliased predictor entries.

pub fn record_stream(len: u64) -> u16 {
    len as u16
}

pub fn fold_index(x: u64, mask: u64) -> u32 {
    ((x >> 2) & mask) as u32
}
