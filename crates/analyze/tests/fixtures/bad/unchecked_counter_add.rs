//! Minimized reproduction of the PR 6 bug: `warmup_insts + measure_insts`
//! wrapped in release builds when a spec asked for absurd run lengths,
//! silently shortening the measured window.

pub struct RunLengths {
    pub warmup_insts: u64,
    pub measure_insts: u64,
}

impl RunLengths {
    pub fn total(&self) -> u64 {
        self.warmup_insts + self.measure_insts
    }

    pub fn scaled(&self, reps: u64) -> u64 {
        self.measure_insts * reps
    }
}
