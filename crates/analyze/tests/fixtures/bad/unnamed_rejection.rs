//! Rejections in parse/validate paths that name nothing: the fuzzer can
//! only catch these dynamically, one input at a time.

pub fn validate(count: u64, limit: u64) {
    assert!(count <= limit, "bad input");
    if count == 0 {
        panic!("invalid");
    }
}
