//! Library-code panics where the policy demands named errors.

pub fn head(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn parse_port(s: &str) -> u16 {
    s.parse().expect("port")
}
