//! Wall-clock state inside simulation code: anything derived from the
//! host clock poisons bit-exact replay.

use std::time::{Instant, SystemTime};

pub fn seed_from_clock() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

pub fn adaptive_budget(start: Instant) -> bool {
    start.elapsed().as_millis() < 100
}
