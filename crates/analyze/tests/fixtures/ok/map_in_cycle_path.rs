//! Clean counterpart: flat per-cycle state — index-keyed vectors and a
//! bitmap — exactly the shapes the raw-speed campaign installed.

pub struct BackEnd {
    /// Keyed by architectural register index: flat, O(1), no hashing.
    pub last_writer: Vec<u64>,
    /// Waiting-entry bitmap: bit k covers deque index k.
    pub waiting: u128,
}

pub fn touched_this_cycle(lines: &mut Vec<u64>) {
    lines.sort_unstable();
    lines.dedup();
}
