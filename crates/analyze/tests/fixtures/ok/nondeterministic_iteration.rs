//! Clean counterpart: ordered maps where order can reach output, and a
//! pragma'd keyed-only HashMap with the proof written down.

use std::collections::BTreeMap;

pub fn merge_counts(per_block: &BTreeMap<u64, u64>) -> Vec<(u64, u64)> {
    per_block.iter().map(|(k, v)| (*k, *v)).collect()
}

pub struct VisitCounters {
    // prestage: allow(nondeterministic-iteration, accessed only via entry() with a full key and never iterated — no order to leak)
    pub visits: std::collections::HashMap<u64, u32>,
}
