//! Clean counterpart: narrowing through `try_from` with a named
//! rejection, widening casts, and a pragma'd intentional fold.

pub fn record_stream(len: u64) -> Result<u16, String> {
    u16::try_from(len).map_err(|_| format!("stream length {len} overflows the u16 table field"))
}

pub fn widen(x: u16) -> u64 {
    x as u64
}

pub fn fold_tag(x: u64) -> u32 {
    // prestage: allow(truncating-cast, hash fold: collapsing to 32 bits is the point)
    ((x >> 2) ^ (x >> 33)) as u32
}
