//! Clean counterpart: instruction-count arithmetic goes through the
//! checked/saturating forms and rejects overflow by field name.

pub struct RunLengths {
    pub warmup_insts: u64,
    pub measure_insts: u64,
}

impl RunLengths {
    pub fn total(&self) -> Result<u64, String> {
        self.warmup_insts
            .checked_add(self.measure_insts)
            .ok_or_else(|| "warmup_insts + measure_insts overflows u64".to_string())
    }

    pub fn scaled(&self, reps: u64) -> u64 {
        self.measure_insts.saturating_mul(reps)
    }
}
