//! Clean counterpart: every rejection names the field or offset it
//! rejected, so a failure report is actionable without a debugger.

pub fn validate(count: u64, limit: u64) -> Result<(), String> {
    if count > limit {
        return Err(format!("record count {count} exceeds the header limit {limit}"));
    }
    if count == 0 {
        return Err("record count field must be non-zero".to_string());
    }
    Ok(())
}

pub fn check_magic(byte: u8, offset: usize) {
    assert!(byte == 0x50, "bad magic byte {byte:#x} at offset {offset}");
}
