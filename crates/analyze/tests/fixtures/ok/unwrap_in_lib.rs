//! Clean counterpart: named errors, defaults, and test-module unwraps
//! (which stay — tests are supposed to panic on violated expectations).

pub fn head(xs: &[u64]) -> Result<u64, String> {
    xs.first()
        .copied()
        .ok_or_else(|| "head of empty slice".to_string())
}

pub fn parse_port(s: &str) -> Result<u16, String> {
    s.parse()
        .map_err(|e| format!("port field {s:?} is not a u16: {e}"))
}

pub fn head_or_zero(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_here() {
        assert_eq!(super::parse_port("80").unwrap(), 80);
    }
}
