//! Clean counterpart: simulated time comes from the engine's own clock,
//! and seeds arrive as explicit inputs.

pub fn seed_from_spec(exec_seed: u64, cell_index: u64) -> u64 {
    exec_seed ^ cell_index.rotate_left(17)
}

pub fn budget_reached(sim_cycle: u64, budget_cycles: u64) -> bool {
    sim_cycle >= budget_cycles
}
