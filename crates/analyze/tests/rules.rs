//! Fixture-corpus tests: every rule must fire on its known-bad snippet
//! (including the minimized PR 5 and PR 6 reproductions) and stay silent
//! on the clean counterpart.

use prestage_analyze::{analyze_source, rules};

fn fixture(kind: &str, name: &str) -> String {
    let path = format!(
        "{}/tests/fixtures/{kind}/{name}.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Run one rule over a fixture as if it lived at `rel_path` (the fixture
/// directory itself is classified as test code and skipped by the walker,
/// so tests must re-home the source onto a library path).
fn run(rule: &'static str, rel_path: &str, kind: &str, name: &str) -> Vec<rules::Finding> {
    analyze_source(rel_path, &fixture(kind, name), &[rule])
}

#[test]
fn truncating_cast_fires_on_minimized_pr5_bug() {
    let fs = run(
        rules::TRUNCATING_CAST,
        "crates/bpred/src/fixture.rs",
        "bad",
        "truncating_cast",
    );
    assert_eq!(fs.len(), 2, "{fs:?}");
    assert!(fs.iter().all(|f| f.rule == rules::TRUNCATING_CAST));
    // The `len as u16` stream-length clamp is the PR 5 bug, minimized.
    assert!(fs.iter().any(|f| f.message.contains("as u16")), "{fs:?}");
}

#[test]
fn truncating_cast_clean_fixture_is_silent() {
    let fs = run(
        rules::TRUNCATING_CAST,
        "crates/bpred/src/fixture.rs",
        "ok",
        "truncating_cast",
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn unchecked_counter_add_fires_on_minimized_pr6_bug() {
    let fs = run(
        rules::UNCHECKED_COUNTER_ADD,
        "crates/sim/src/fixture.rs",
        "bad",
        "unchecked_counter_add",
    );
    // `warmup_insts + measure_insts` and `measure_insts * reps`.
    assert_eq!(fs.len(), 2, "{fs:?}");
    assert!(fs.iter().any(|f| f.message.contains("warmup_insts")), "{fs:?}");
    assert!(fs.iter().any(|f| f.message.contains("measure_insts")), "{fs:?}");
}

#[test]
fn unchecked_counter_add_clean_fixture_is_silent() {
    let fs = run(
        rules::UNCHECKED_COUNTER_ADD,
        "crates/sim/src/fixture.rs",
        "ok",
        "unchecked_counter_add",
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn nondeterministic_iteration_fires_and_skips_use_lines() {
    let fs = run(
        rules::NONDETERMINISTIC_ITERATION,
        "crates/sim/src/fixture.rs",
        "bad",
        "nondeterministic_iteration",
    );
    // One HashMap parameter + one HashSet return type; the `use` line
    // itself must NOT fire (imports are not uses of the type).
    assert_eq!(fs.len(), 2, "{fs:?}");
    assert!(fs.iter().all(|f| f.line > 4), "use line fired: {fs:?}");
}

#[test]
fn nondeterministic_iteration_clean_fixture_is_silent() {
    let fs = run(
        rules::NONDETERMINISTIC_ITERATION,
        "crates/sim/src/fixture.rs",
        "ok",
        "nondeterministic_iteration",
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn wallclock_in_sim_fires_outside_the_timing_layer() {
    let fs = run(
        rules::WALLCLOCK_IN_SIM,
        "crates/sim/src/fixture.rs",
        "bad",
        "wallclock_in_sim",
    );
    assert!(!fs.is_empty(), "{fs:?}");
    assert!(fs.iter().all(|f| f.rule == rules::WALLCLOCK_IN_SIM));
}

#[test]
fn wallclock_is_allowed_in_the_timing_layer() {
    // The same bad source re-homed into the runner (the timing layer) is
    // exempt by path.
    let src = fixture("bad", "wallclock_in_sim");
    let fs = analyze_source("crates/sim/src/runner.rs", &src, &[rules::WALLCLOCK_IN_SIM]);
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn wallclock_clean_fixture_is_silent() {
    let fs = run(
        rules::WALLCLOCK_IN_SIM,
        "crates/sim/src/fixture.rs",
        "ok",
        "wallclock_in_sim",
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn unwrap_in_lib_fires_on_unwrap_and_expect() {
    let fs = run(
        rules::UNWRAP_IN_LIB,
        "crates/core/src/fixture.rs",
        "bad",
        "unwrap_in_lib",
    );
    assert_eq!(fs.len(), 2, "{fs:?}");
}

#[test]
fn unwrap_in_lib_permits_defaults_and_test_modules() {
    let fs = run(
        rules::UNWRAP_IN_LIB,
        "crates/core/src/fixture.rs",
        "ok",
        "unwrap_in_lib",
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn unnamed_rejection_fires_on_anonymous_panics() {
    let fs = run(
        rules::UNNAMED_REJECTION,
        "crates/json/src/fixture.rs",
        "bad",
        "unnamed_rejection",
    );
    // `assert!(…, "bad input")` and `panic!("invalid")`.
    assert_eq!(fs.len(), 2, "{fs:?}");
}

#[test]
fn unnamed_rejection_only_applies_to_parse_paths() {
    // The same anonymous panics outside a parse/validate surface are the
    // unwrap rule's business, not this one's.
    let src = fixture("bad", "unnamed_rejection");
    let fs = analyze_source("crates/core/src/fixture.rs", &src, &[rules::UNNAMED_REJECTION]);
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn unnamed_rejection_clean_fixture_is_silent() {
    let fs = run(
        rules::UNNAMED_REJECTION,
        "crates/json/src/fixture.rs",
        "ok",
        "unnamed_rejection",
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn map_in_cycle_path_fires_in_per_cycle_files() {
    let fs = run(
        rules::MAP_IN_CYCLE_PATH,
        "crates/sim/src/backend.rs",
        "bad",
        "map_in_cycle_path",
    );
    // One BTreeMap field + one HashSet return type; the `use` line itself
    // must NOT fire (imports are not uses of the type).
    assert_eq!(fs.len(), 2, "{fs:?}");
    assert!(fs.iter().all(|f| f.rule == rules::MAP_IN_CYCLE_PATH));
    assert!(fs.iter().all(|f| f.line > 5), "use line fired: {fs:?}");
}

#[test]
fn map_in_cycle_path_only_applies_to_per_cycle_files() {
    // The same maps in a cold-path file of the same crate (spec parsing)
    // are fine — that is the nondeterministic-iteration rule's business.
    let src = fixture("bad", "map_in_cycle_path");
    let fs = analyze_source("crates/sim/src/spec.rs", &src, &[rules::MAP_IN_CYCLE_PATH]);
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn map_in_cycle_path_clean_fixture_is_silent() {
    let fs = run(
        rules::MAP_IN_CYCLE_PATH,
        "crates/sim/src/backend.rs",
        "ok",
        "map_in_cycle_path",
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn every_rule_has_a_firing_fixture() {
    // Belt and braces for the catalog: adding a rule without a bad
    // fixture fails here, not in review.
    let homes = [
        (rules::TRUNCATING_CAST, "crates/bpred/src/fixture.rs", "truncating_cast"),
        (
            rules::UNCHECKED_COUNTER_ADD,
            "crates/sim/src/fixture.rs",
            "unchecked_counter_add",
        ),
        (
            rules::NONDETERMINISTIC_ITERATION,
            "crates/sim/src/fixture.rs",
            "nondeterministic_iteration",
        ),
        (rules::WALLCLOCK_IN_SIM, "crates/sim/src/fixture.rs", "wallclock_in_sim"),
        (rules::UNWRAP_IN_LIB, "crates/core/src/fixture.rs", "unwrap_in_lib"),
        (rules::UNNAMED_REJECTION, "crates/json/src/fixture.rs", "unnamed_rejection"),
        (rules::MAP_IN_CYCLE_PATH, "crates/sim/src/backend.rs", "map_in_cycle_path"),
    ];
    assert_eq!(homes.len(), prestage_analyze::RULES.len());
    for (rule, home, name) in homes {
        let bad = analyze_source(home, &fixture("bad", name), &[rule]);
        assert!(!bad.is_empty(), "rule {rule} has no firing bad fixture");
        assert!(bad.iter().all(|f| f.rule == rule), "{rule}: {bad:?}");
        let ok = analyze_source(home, &fixture("ok", name), &[rule]);
        assert!(ok.is_empty(), "rule {rule} fires on its clean fixture: {ok:?}");
    }
}
