//! The lint pass applied to the workspace that ships it: clean modulo the
//! ratchet baseline, with every baseline entry carrying a written reason.

use prestage_analyze as analyze;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_modulo_baseline() {
    let root = workspace_root();
    let rules = analyze::rules::rule_names();
    let analysis = analyze::analyze_workspace(&root, &rules)
        .unwrap_or_else(|e| panic!("workspace walk failed: {e}"));
    assert!(analysis.files_scanned > 50, "walker found too few files");

    let baseline_path = root.join(analyze::BASELINE_PATH);
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
    let baseline = analyze::Baseline::parse(&text)
        .unwrap_or_else(|e| panic!("{}: {e}", baseline_path.display()));

    let ratchet = baseline.apply(&analysis.findings);
    assert!(
        ratchet.new.is_empty(),
        "non-baselined findings:\n{}",
        ratchet
            .new
            .iter()
            .map(analyze::render_finding)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        ratchet.unexplained.is_empty(),
        "baseline entries without a reason: {:?}",
        ratchet
            .unexplained
            .iter()
            .map(|e| (e.rule.as_str(), e.file.as_str()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn baseline_reasons_are_substantive() {
    // A reason must argue a case, not restate the rule name; insist on a
    // full clause, not a token.
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join(analyze::BASELINE_PATH)).unwrap();
    let baseline = analyze::Baseline::parse(&text).unwrap();
    assert!(!baseline.entries.is_empty());
    for e in &baseline.entries {
        assert!(
            e.reason.split_whitespace().count() >= 5,
            "baseline reason for ({}, {}) is too thin: {:?}",
            e.rule,
            e.file,
            e.reason
        );
    }
}

#[test]
fn baseline_round_trips_through_strict_json() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join(analyze::BASELINE_PATH)).unwrap();
    let baseline = analyze::Baseline::parse(&text).unwrap();
    let reparsed = analyze::Baseline::parse(&baseline.render()).unwrap();
    assert_eq!(baseline, reparsed);
}
