//! One Criterion group per figure family: `cargo bench` regenerates a
//! miniature of every reproduced artifact (the figure binaries in
//! `src/bin/` run the full-size versions).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use prestage_cacti::TechNode;
use prestage_sim::{ConfigPreset, Engine, SimConfig};
use prestage_workload::{build, specint2000, Workload};

fn small_workloads() -> Vec<Workload> {
    specint2000()
        .into_iter()
        .filter(|p| ["gzip", "gcc"].contains(&p.name))
        .map(|p| build(&p, 42))
        .collect()
}

fn run_point(preset: ConfigPreset, tech: TechNode, l1: usize, w: &Workload) -> f64 {
    let cfg = SimConfig::preset(preset, tech, l1).with_insts(2_000, 10_000);
    Engine::new(cfg, w, 7).run().ipc()
}

fn bench_fig1_family(c: &mut Criterion) {
    let w = small_workloads();
    let mut g = c.benchmark_group("fig1/latency_vs_ipc");
    g.sample_size(10);
    for preset in [ConfigPreset::Ideal, ConfigPreset::Base, ConfigPreset::BasePipelined] {
        g.bench_function(preset.label(), |b| {
            b.iter_batched(
                || (),
                |_| {
                    w.iter()
                        .map(|wl| run_point(preset, TechNode::T045, 4 << 10, wl))
                        .sum::<f64>()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_fig5_family(c: &mut Criterion) {
    let w = small_workloads();
    let mut g = c.benchmark_group("fig5/techniques");
    g.sample_size(10);
    for preset in [
        ConfigPreset::FdpL0,
        ConfigPreset::ClgpL0,
        ConfigPreset::ClgpL0Pb16,
    ] {
        g.bench_function(preset.label(), |b| {
            b.iter_batched(
                || (),
                |_| {
                    w.iter()
                        .map(|wl| run_point(preset, TechNode::T045, 4 << 10, wl))
                        .sum::<f64>()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_fig7_family(c: &mut Criterion) {
    // Fetch-source accounting costs: the counters behind Figures 7/8.
    let w = small_workloads();
    let mut g = c.benchmark_group("fig7/fetch_sources");
    g.sample_size(10);
    g.bench_function("clgp_source_distribution", |b| {
        b.iter_batched(
            || (),
            |_| {
                let cfg = SimConfig::preset(ConfigPreset::Clgp, TechNode::T045, 8 << 10)
                    .with_insts(2_000, 10_000);
                let s = Engine::new(cfg, &w[1], 7).run();
                s.front.fetch_share(s.front.fetch_pb)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_fig1_family, bench_fig5_family, bench_fig7_family);
criterion_main!(benches);
