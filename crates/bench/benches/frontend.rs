//! Front-end hot-loop benchmarks: one cycle of queue + prefetch + fetch
//! work for each prefetcher kind.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prestage_cache::{L2Config, L2System};
use prestage_cacti::TechNode;
use prestage_core::{
    ClgpPrefetcher, FdpPrefetcher, FrontEnd, FrontendConfig, InstrPrefetcher, NoPrefetcher,
    PrefetcherKind,
};

fn drive<P: InstrPrefetcher>(kind: PrefetcherKind, cycles: u64) -> u64 {
    let mut cfg = FrontendConfig::base(TechNode::T045, 8 << 10);
    cfg.prefetcher = kind;
    if kind != PrefetcherKind::None {
        cfg.pb_entries = 4;
    }
    let mut fe = FrontEnd::<P>::new(cfg);
    let mut l2 = L2System::new(L2Config::for_node(TechNode::T045));
    for i in 0..256u64 {
        l2.warm_fill(0x10000 + i * 64);
    }
    let mut out = Vec::new();
    let mut seq = 0u64;
    let mut delivered = 0u64;
    for now in 0..cycles {
        for c in l2.tick(now) {
            fe.on_completion(&c);
        }
        out.clear();
        fe.tick(now, &mut l2, 16, &mut out);
        delivered += out.iter().map(|d| d.count as u64).sum::<u64>();
        if fe.has_queue_space() {
            let start = 0x10000 + (seq % 240) * 64;
            fe.push_block(seq, start, 16);
            seq += 1;
        }
    }
    delivered
}

fn bench_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend/1k_cycles");
    g.bench_function("baseline", |b| {
        b.iter(|| black_box(drive::<NoPrefetcher>(PrefetcherKind::None, 1_000)))
    });
    g.bench_function("fdp", |b| {
        b.iter(|| black_box(drive::<FdpPrefetcher>(PrefetcherKind::Fdp, 1_000)))
    });
    g.bench_function("clgp", |b| {
        b.iter(|| black_box(drive::<ClgpPrefetcher>(PrefetcherKind::Clgp, 1_000)))
    });
    g.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
