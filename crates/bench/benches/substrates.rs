//! Micro-benchmarks of the substrate crates' hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prestage_bpred::{FetchBlockPredictor, StreamPredictor};
use prestage_cache::{L2Config, L2System, ReqClass, SetAssocCache};
use prestage_cacti::{latency_cycles, CacheGeometry, TechNode};
use prestage_workload::{build, specint2000, TraceGenerator};

fn bench_cacti(c: &mut Criterion) {
    c.bench_function("cacti/latency_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for shift in 8..=20 {
                let g = CacheGeometry::new(1 << shift, 64, 2, 1);
                acc += latency_cycles(black_box(&g), TechNode::T045);
            }
            acc
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut cache = SetAssocCache::new(32 << 10, 64, 2);
    for i in 0..512u64 {
        cache.fill(i * 64);
    }
    c.bench_function("cache/lookup_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(cache.lookup(i * 64))
        })
    });
    c.bench_function("cache/fill_evict", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.fill(i * 64))
        })
    });
}

fn bench_bus(c: &mut Criterion) {
    c.bench_function("bus/submit_tick_drain", |b| {
        b.iter(|| {
            let mut l2 = L2System::new(L2Config::for_node(TechNode::T045));
            for i in 0..16u64 {
                l2.submit(0x1000 + i * 64, ReqClass::Prefetch, i);
            }
            let mut done = 0;
            let mut now = 0;
            while done < 16 {
                done += l2.tick(now).len();
                now += 1;
            }
            now
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    let p = specint2000().into_iter().find(|p| p.name == "gcc").unwrap();
    let w = build(&p, 42);
    let mut pred = StreamPredictor::paper_default();
    let mut gen = TraceGenerator::new(&w, 7);
    let mut buf = Vec::new();
    // Warm the tables.
    for _ in 0..20_000 {
        let s = gen.next_stream(&mut buf);
        let tok = pred.token(s.start);
        let pr = pred.predict(s.start, &w.program);
        pred.train_with_token(&tok, &s, pr.stream.same_flow(&s));
    }
    c.bench_function("bpred/predict_train", |b| {
        b.iter(|| {
            let s = gen.next_stream(&mut buf);
            let tok = pred.token(s.start);
            let pr = pred.predict(s.start, &w.program);
            pred.train_with_token(&tok, &s, pr.stream.same_flow(&s));
            pr.stream.len
        })
    });
}

fn bench_tracegen(c: &mut Criterion) {
    let p = specint2000().into_iter().find(|p| p.name == "vortex").unwrap();
    let w = build(&p, 42);
    c.bench_function("workload/stream_generation", |b| {
        let mut gen = TraceGenerator::new(&w, 7);
        let mut buf = Vec::new();
        b.iter(|| {
            let s = gen.next_stream(&mut buf);
            black_box(s.len)
        })
    });
}

/// Trace I/O hot paths: CRC-verified v2 read throughput (what every
/// replayed sweep cell pays instead of live generation) and the one-time
/// record cost.  The `trace/*` medians land in the CI perf artifact via
/// the `CRITERION_MEDIANS_FILE` hook, next to `engine/*` and `bpred/*`.
fn bench_trace_io(c: &mut Criterion) {
    use prestage_workload::{record_trace, InstSource, TraceReader, TraceReplayer};
    use std::io::Cursor;

    let p = specint2000().into_iter().find(|p| p.name == "vortex").unwrap();
    let w = build(&p, 42);
    const N: u64 = 64 * 1024;
    let mut bytes = Cursor::new(Vec::new());
    record_trace(&mut bytes, &w, 7, N, 4096).unwrap();
    let bytes = bytes.into_inner();

    // Decode + CRC-verify the whole 64K-inst trace (per-inst cost is the
    // replay-side comparison point for workload/stream_generation).
    c.bench_function("trace/read_64k_insts", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for rec in TraceReader::new(&bytes[..]).unwrap() {
                black_box(rec.unwrap());
                n += 1;
            }
            n
        })
    });

    // The sweep-cell fast path: structural decode only, CRCs already
    // verified once by the spec runner.
    c.bench_function("trace/read_trusted_64k_insts", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for rec in TraceReader::trusted(&bytes[..]).unwrap() {
                black_box(rec.unwrap());
                n += 1;
            }
            n
        })
    });

    // The full replay path: read + stream reassembly, as the engine sees it.
    c.bench_function("trace/replay_streams_64k", |b| {
        b.iter(|| {
            let mut replayer =
                TraceReplayer::new(TraceReader::new(&bytes[..]).unwrap(), "bench");
            let mut buf = Vec::new();
            let mut seen = 0u64;
            while seen + 64 < N {
                seen += replayer.next_stream(&mut buf).len as u64;
            }
            seen
        })
    });

    // The sweep-cell replay path: all cells of a benchmark share one
    // decoded trace; per-cell cost is the slice scan + bulk copy.
    let decoded = std::sync::Arc::new(
        TraceReader::new(&bytes[..])
            .unwrap()
            .map(|r| r.unwrap())
            .collect::<Vec<_>>(),
    );
    c.bench_function("trace/replay_shared_64k", |b| {
        b.iter(|| {
            let mut replayer = prestage_workload::replay_shared(decoded.clone(), "bench");
            let mut buf = Vec::new();
            let mut seen = 0u64;
            while seen + 64 < N {
                seen += replayer.next_stream(&mut buf).len as u64;
            }
            seen
        })
    });

    // One-time record cost (generation + encode + CRC).
    c.bench_function("trace/record_16k_insts", |b| {
        b.iter(|| {
            let mut out = Cursor::new(Vec::with_capacity(512 << 10));
            record_trace(&mut out, &w, 7, 16 * 1024, 4096).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_cacti,
    bench_cache,
    bench_bus,
    bench_predictor,
    bench_tracegen,
    bench_trace_io
);
criterion_main!(benches);
