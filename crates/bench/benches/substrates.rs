//! Micro-benchmarks of the substrate crates' hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prestage_bpred::{FetchBlockPredictor, StreamPredictor};
use prestage_cache::{L2Config, L2System, ReqClass, SetAssocCache};
use prestage_cacti::{latency_cycles, CacheGeometry, TechNode};
use prestage_workload::{build, specint2000, TraceGenerator};

fn bench_cacti(c: &mut Criterion) {
    c.bench_function("cacti/latency_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for shift in 8..=20 {
                let g = CacheGeometry::new(1 << shift, 64, 2, 1);
                acc += latency_cycles(black_box(&g), TechNode::T045);
            }
            acc
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut cache = SetAssocCache::new(32 << 10, 64, 2);
    for i in 0..512u64 {
        cache.fill(i * 64);
    }
    c.bench_function("cache/lookup_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(cache.lookup(i * 64))
        })
    });
    c.bench_function("cache/fill_evict", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.fill(i * 64))
        })
    });
}

fn bench_bus(c: &mut Criterion) {
    c.bench_function("bus/submit_tick_drain", |b| {
        b.iter(|| {
            let mut l2 = L2System::new(L2Config::for_node(TechNode::T045));
            for i in 0..16u64 {
                l2.submit(0x1000 + i * 64, ReqClass::Prefetch, i);
            }
            let mut done = 0;
            let mut now = 0;
            while done < 16 {
                done += l2.tick(now).len();
                now += 1;
            }
            now
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    let p = specint2000().into_iter().find(|p| p.name == "gcc").unwrap();
    let w = build(&p, 42);
    let mut pred = StreamPredictor::paper_default();
    let mut gen = TraceGenerator::new(&w, 7);
    let mut buf = Vec::new();
    // Warm the tables.
    for _ in 0..20_000 {
        let s = gen.next_stream(&mut buf);
        let tok = pred.token(s.start);
        let pr = pred.predict(s.start, &w.program);
        pred.train_with_token(&tok, &s, pr.stream.same_flow(&s));
    }
    c.bench_function("bpred/predict_train", |b| {
        b.iter(|| {
            let s = gen.next_stream(&mut buf);
            let tok = pred.token(s.start);
            let pr = pred.predict(s.start, &w.program);
            pred.train_with_token(&tok, &s, pr.stream.same_flow(&s));
            pr.stream.len
        })
    });
}

fn bench_tracegen(c: &mut Criterion) {
    let p = specint2000().into_iter().find(|p| p.name == "vortex").unwrap();
    let w = build(&p, 42);
    c.bench_function("workload/stream_generation", |b| {
        let mut gen = TraceGenerator::new(&w, 7);
        let mut buf = Vec::new();
        b.iter(|| {
            let s = gen.next_stream(&mut buf);
            black_box(s.len)
        })
    });
}

criterion_group!(
    benches,
    bench_cacti,
    bench_cache,
    bench_bus,
    bench_predictor,
    bench_tracegen
);
criterion_main!(benches);
