//! Whole-simulator throughput: instructions simulated per wall second for
//! the main configuration families.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use prestage_cacti::TechNode;
use prestage_sim::{ConfigPreset, Engine, SimConfig};
use prestage_workload::{build, specint2000};

fn bench_engine(c: &mut Criterion) {
    let p = specint2000().into_iter().find(|p| p.name == "crafty").unwrap();
    let w = build(&p, 42);
    const MEASURE: u64 = 20_000;
    let mut g = c.benchmark_group("engine/crafty_20k");
    g.throughput(Throughput::Elements(MEASURE));
    g.sample_size(10);
    for preset in [
        ConfigPreset::Base,
        ConfigPreset::BasePipelined,
        ConfigPreset::FdpL0,
        ConfigPreset::ClgpL0,
        ConfigPreset::ClgpL0Pb16,
    ] {
        let cfg = SimConfig::preset(preset, TechNode::T045, 8 << 10).with_insts(5_000, MEASURE);
        g.bench_function(preset.label(), |b| {
            b.iter_batched(
                || Engine::new(cfg, &w, 7),
                |e| e.run(),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
