//! Ablation study of CLGP's design choices (DESIGN.md §6): which of the
//! mechanism's three departures from FDP buys what.
//!
//! * `free-on-use`  — replace the consumers-counter lifetime with FDP's
//!   free-on-use + LRU replacement.
//! * `migrate`      — copy used prestage lines into the L0/L1 (reintroduce
//!   the duplication CLGP avoids).
//! * `filter`       — skip prestaging L1-resident lines (give up the
//!   hit-latency avoidance, FDP-style).
//!
//! The ablation flags have no preset identity, so this binary derives its
//! workloads, run lengths and seeds from an `ExperimentSpec` and mutates
//! the spec-built base config per variant.

use prestage_bench::{note_result, results_dir};
use prestage_sim::{run_grid, ConfigPreset, ExperimentSpec, SimConfig};
use std::io::Write;

fn main() {
    let l1 = 4 << 10;
    let spec = ExperimentSpec {
        presets: vec![ConfigPreset::ClgpL0],
        l1_sizes: vec![l1],
        ..ExperimentSpec::from_env()
    };
    let w = spec
        .build_workloads()
        .unwrap_or_else(|e| panic!("invalid experiment spec: {e}"));
    let base_cfg = spec.sim_config(ConfigPreset::ClgpL0, l1);

    let variants: Vec<(&str, SimConfig)> = vec![
        ("CLGP (full)", base_cfg),
        ("  - consumers counter (free-on-use)", {
            let mut c = base_cfg;
            c.frontend.ablate_free_on_use = true;
            c
        }),
        ("  + migration (duplicate into L0/L1)", {
            let mut c = base_cfg;
            c.frontend.ablate_migrate = true;
            c
        }),
        ("  + L1 filtering (keep L1 hits slow)", {
            let mut c = base_cfg;
            c.frontend.ablate_filter = true;
            c
        }),
        ("all three (FDP-like management)", {
            let mut c = base_cfg;
            c.frontend.ablate_free_on_use = true;
            c.frontend.ablate_migrate = true;
            c.frontend.ablate_filter = true;
            c
        }),
    ];

    println!("\n# Ablation — CLGP design choices (4KB L1, 0.045um)");
    println!(
        "{:<40} {:>8} {:>9} {:>9}",
        "variant", "HMEAN", "PB share", "vs full"
    );
    std::fs::create_dir_all(results_dir()).unwrap();
    let mut csv = std::fs::File::create(results_dir().join("ablate.csv")).unwrap();
    writeln!(csv, "variant,hmean_ipc,pb_share").unwrap();
    // All five variants in one run_grid call on the shared cell pool.
    let configs: Vec<SimConfig> = variants.iter().map(|(_, c)| *c).collect();
    let grids = run_grid(&configs, &w, spec.exec_seed);
    let mut full = None;
    for ((name, _), r) in variants.iter().zip(&grids) {
        let h = r.hmean_ipc();
        let pb: f64 = r
            .per_bench
            .iter()
            .map(|(_, s)| s.front.fetch_share(s.front.fetch_pb))
            .sum::<f64>()
            / r.per_bench.len() as f64;
        let full_h = *full.get_or_insert(h);
        println!(
            "{:<40} {:>8.3} {:>8.1}% {:>8.1}%",
            name,
            h,
            100.0 * pb,
            100.0 * (h / full_h - 1.0)
        );
        writeln!(csv, "{},{:.4},{:.4}", name.trim(), h, pb).unwrap();
        eprintln!("  ran {name}");
    }
    note_result("ablate", "see results/ablate.csv");
}
