//! Run every table and figure in sequence (the full reproduction).
//!
//! Honours the same `PRESTAGE_*` environment knobs as the individual
//! binaries; results land in the workspace results dir (`PRESTAGE_RESULTS_DIR`
//! to override) and on stdout.

use std::process::Command;

fn main() {
    let exes = [
        ("table1", vec![]),
        ("table2", vec![]),
        ("table3", vec![]),
        ("fig1", vec![]),
        ("fig2", vec![]),
        ("fig4", vec![]),
        ("fig5", vec!["--tech", "90"]),
        ("fig5", vec!["--tech", "45"]),
        ("fig6", vec![]),
        ("fig7", vec![]),
        ("fig7", vec!["--l0", "on"]),
        ("fig8", vec![]),
        ("headline", vec![]),
        ("ablate", vec![]),
        ("related_work", vec![]),
    ];
    let self_path = std::env::current_exe().expect("own path");
    let dir = self_path.parent().expect("bin dir");
    for (exe, args) in exes {
        eprintln!("==> {exe} {}", args.join(" "));
        let status = Command::new(dir.join(exe))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("spawn {exe}: {e}"));
        assert!(status.success(), "{exe} failed");
    }
    eprintln!("all experiments complete; see results/");
}
