//! CI perf gate: a 2-preset × 3-size mini-grid through the flat cell pool,
//! persisted as a JSON artifact (`<results dir>/ci_grid.json`) and diffed
//! against the previous run's artifact.
//!
//! Per (preset, size) row it records the HMEAN IPC — deterministic given
//! seeds and run lengths, so any movement at all means simulator behaviour
//! changed — and the median per-cell wall-clock.  If the Criterion shim
//! left a medians file (`<results dir>/bench_medians.tsv`, written when
//! `cargo bench` runs with `CRITERION_MEDIANS_FILE` set), its `engine/*` /
//! `bpred/*` micro-bench medians are folded into the same artifact — and
//! the file is consumed, so stale medians from deleted benchmarks cannot
//! leak into later runs — so one file tracks both grid IPC and hot-path
//! latencies.  Movement beyond the warning bands prints GitHub
//! `::warning::` annotations; wall-clock regressions beyond the
//! spread-derived failure threshold recorded in the baseline print
//! `::error::` and exit nonzero — the warning→failure escalation the
//! per-row spread data was collected for.
//!
//! The experiment itself is an `ExperimentSpec` (honouring the usual
//! `PRESTAGE_*` override layer); a previous artifact can be supplied
//! explicitly via `PRESTAGE_PREV_JSON=<path>`.

use prestage_bench::perf::{diff, load_baseline, parse_medians_tsv, CellPerf, PerfReport, ServePerf};
use prestage_bench::{results_dir, size_label};
use prestage_cacti::TechNode;
use prestage_serve::{Dispatch, Response, Scheduler, ServeConfig};
use prestage_sim::{run_spec_cells, CellGrid, ConfigPreset, ExperimentSpec, ITlbConfig, PrefetcherKind};
use std::io::Write;

/// True median: mean of the two middle elements for even counts (the CI
/// benchmark set has 4), not the upward-biased upper-middle pick.
fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Drive a real in-process [`Scheduler`] over a one-preset sweep: journal,
/// cache, worker pool and merge all on the hot path.  Returns `None` (and
/// prints why) instead of killing the perf run when anything goes wrong —
/// a broken orchestrator shows up as a `serve` section vanishing from the
/// artifact, which `diff` flags as lost coverage.
fn measure_serve(spec: &ExperimentSpec) -> Option<ServePerf> {
    let sspec = ExperimentSpec {
        presets: vec![ConfigPreset::BaseL0],
        l1_sizes: vec![1 << 10],
        ..spec.clone()
    };
    let state = std::env::temp_dir().join(format!("prestage-ci-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state);
    let mut cfg = ServeConfig::new(state.clone());
    cfg.workers = 2;
    cfg.job_cells = 1; // one cell per job: throughput counts scheduler round-trips
    cfg.dispatch = Dispatch::InProcess;
    let sched = match Scheduler::new(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ci_grid: serve measurement skipped: {e}");
            return None;
        }
    };
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let s = sched.clone();
            std::thread::spawn(move || s.run_worker())
        })
        .collect();

    let finish = |sched: &Scheduler, workers: Vec<std::thread::JoinHandle<()>>| {
        sched.begin_drain();
        for w in workers {
            let _ = w.join();
        }
        let _ = std::fs::remove_dir_all(&state);
    };

    let t0 = std::time::Instant::now();
    let (id, jobs) = match sched.submit(&sspec) {
        Ok(Response::Submitted { sweep, jobs, .. }) if jobs > 0 => (sweep, jobs),
        Ok(r) => {
            eprintln!("ci_grid: serve measurement skipped: unexpected submit response {r:?}");
            finish(&sched, workers);
            return None;
        }
        Err(e) => {
            eprintln!("ci_grid: serve measurement skipped: {e}");
            finish(&sched, workers);
            return None;
        }
    };
    loop {
        let Response::Status { sweeps } = sched.status(Some(&id)) else {
            unreachable!("status always answers Status");
        };
        match sweeps.first().map(|s| s.state.as_str()) {
            Some("done") => break,
            Some(s) if s.starts_with("failed") => {
                eprintln!("ci_grid: serve measurement sweep failed: {s}");
                finish(&sched, workers);
                return None;
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    let jobs_per_s = jobs as f64 / t0.elapsed().as_secs_f64();

    // Resubmit the identical sweep: must be answered from the cache alone.
    let t1 = std::time::Instant::now();
    let hit = sched.submit(&sspec);
    let fetched = sched.fetch(&id);
    let cache_hit_s = t1.elapsed().as_secs_f64();
    finish(&sched, workers);
    match (hit, fetched) {
        (Ok(Response::Submitted { complete: true, jobs: 0, .. }), Response::Artifact { .. }) => {
            Some(ServePerf {
                jobs_per_s,
                cache_hit_s,
            })
        }
        (h, f) => {
            eprintln!("ci_grid: serve resubmission was not a pure cache hit: {h:?} / {f:?}");
            None
        }
    }
}

fn main() {
    let spec = ExperimentSpec {
        presets: vec![ConfigPreset::BaseL0, ConfigPreset::ClgpL0],
        tech: TechNode::T045,
        l1_sizes: vec![1 << 10, 4 << 10, 16 << 10],
        ..ExperimentSpec::from_env()
    };
    let grid = CellGrid::from_spec(&spec).unwrap_or_else(|e| {
        eprintln!("ci_grid: invalid spec: {e}");
        std::process::exit(2);
    });

    // Read the Criterion shim's micro-bench medians *before* the grid run:
    // a damaged file must fail in milliseconds, not after minutes of
    // simulation.  The file is consumed (deleted after the artifact is
    // written), so a benchmark removed from the bench suite cannot leak a
    // stale median into later runs — re-run `cargo bench` with
    // CRITERION_MEDIANS_FILE to regenerate it.
    let medians_path = results_dir().join("bench_medians.tsv");
    let medians_text = std::fs::read_to_string(&medians_path).ok();
    let benches = match &medians_text {
        Some(text) => match parse_medians_tsv(text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ci_grid: damaged medians file {}: {e}", medians_path.display());
                std::process::exit(2);
            }
        },
        None => {
            eprintln!(
                "no micro-bench medians at {} — grid rows only",
                medians_path.display()
            );
            Vec::new()
        }
    };

    let t0 = std::time::Instant::now();
    let results = run_spec_cells(&spec, &grid.cells()).expect("validated above");

    // Per-row medians (plus min/max — the noise-characterization data the
    // ROADMAP's warning→failure escalation needs), grouped by the cells'
    // own identity rather than any assumption about result order.
    let cell_walls: Vec<(prestage_sim::SweepCell, f64)> = results
        .iter()
        .map(|r| (r.cell, r.wall.as_secs_f64()))
        .collect();
    let names = spec.bench_names().expect("validated above");
    let merged = grid.merge_named(results, &names);
    let mut cells = Vec::new();
    for (pi, &preset) in spec.presets.iter().enumerate() {
        for (si, &l1) in spec.l1_sizes.iter().enumerate() {
            let mut walls: Vec<f64> = cell_walls
                .iter()
                .filter(|(c, _)| c.preset == preset && c.l1 == l1)
                .map(|(_, s)| *s)
                .collect();
            walls.sort_by(|a, b| a.total_cmp(b));
            cells.push(CellPerf {
                preset: preset.label().to_string(),
                l1,
                hmean_ipc: merged[pi][si].hmean_ipc(),
                median_cell_wall_s: median(&walls),
                min_cell_wall_s: walls[0],
                max_cell_wall_s: walls[walls.len() - 1],
            });
        }
    }

    // Mechanism rows: the pluggable prefetcher kinds (spec `prefetcher`
    // ids) ride the same artifact, so their HMEAN IPC and cell wall-clock
    // flow into the run-over-run diff like any preset row.
    let mut total_cells = grid.n_cells();
    let mech_l1 = 4 << 10;
    for kind in [PrefetcherKind::Mana, PrefetcherKind::ProgMap] {
        let mspec = ExperimentSpec {
            presets: vec![ConfigPreset::Fdp],
            l1_sizes: vec![mech_l1],
            prefetcher: Some(kind),
            ..spec.clone()
        };
        let mgrid = CellGrid::from_spec(&mspec).unwrap_or_else(|e| {
            eprintln!("ci_grid: invalid {} spec: {e}", kind.id());
            std::process::exit(2);
        });
        total_cells += mgrid.n_cells();
        let mresults = run_spec_cells(&mspec, &mgrid.cells()).expect("validated above");
        let mut walls: Vec<f64> = mresults.iter().map(|r| r.wall.as_secs_f64()).collect();
        walls.sort_by(|a, b| a.total_cmp(b));
        let mmerged = mgrid.merge_named(mresults, &names);
        cells.push(CellPerf {
            preset: kind.id().to_string(),
            l1: mech_l1,
            hmean_ipc: mmerged[0][0].hmean_ipc(),
            median_cell_wall_s: median(&walls),
            min_cell_wall_s: walls[0],
            max_cell_wall_s: walls[walls.len() - 1],
        });
    }
    // TLB-on row (artifact schema 6): the CLGP+L0 preset re-simulated with
    // the default i-TLB threaded through the fetch path, so the perf gate
    // watches both the translated cycle path's wall-clock (tlb probes are
    // hot-path work) and its IPC (translation stalls are timing behaviour).
    {
        let tspec = ExperimentSpec {
            presets: vec![ConfigPreset::ClgpL0],
            l1_sizes: vec![mech_l1],
            itlb: Some(ITlbConfig::default_config()),
            ..spec.clone()
        };
        let tgrid = CellGrid::from_spec(&tspec).unwrap_or_else(|e| {
            eprintln!("ci_grid: invalid TLB-on spec: {e}");
            std::process::exit(2);
        });
        total_cells += tgrid.n_cells();
        let tresults = run_spec_cells(&tspec, &tgrid.cells()).expect("validated above");
        let mut walls: Vec<f64> = tresults.iter().map(|r| r.wall.as_secs_f64()).collect();
        walls.sort_by(|a, b| a.total_cmp(b));
        let tmerged = tgrid.merge_named(tresults, &names);
        cells.push(CellPerf {
            preset: format!("{}+itlb", ConfigPreset::ClgpL0.id()),
            l1: mech_l1,
            hmean_ipc: tmerged[0][0].hmean_ipc(),
            median_cell_wall_s: median(&walls),
            min_cell_wall_s: walls[0],
            max_cell_wall_s: walls[walls.len() - 1],
        });
    }
    // Serve-orchestrator throughput on the same workload scale: a real
    // scheduler (journal + content cache + worker pool) over a one-preset
    // sweep, then the identical resubmission as a pure cache hit.
    let serve = measure_serve(&spec);
    let total_wall_s = t0.elapsed().as_secs_f64();

    let fail_threshold = PerfReport::derived_fail_threshold(&cells);
    let report = PerfReport {
        total_wall_s,
        cells,
        benches,
        serve,
        fail_threshold,
    };

    println!("# CI mini-grid ({total_cells} cells incl. mechanism rows, {total_wall_s:.2}s)");
    for c in &report.cells {
        println!(
            "{:<12} {:>6}  hmean_ipc {:.4}  cell wall {:.4}s [{:.4}..{:.4}, spread {:.0}%]",
            c.preset,
            size_label(c.l1),
            c.hmean_ipc,
            c.median_cell_wall_s,
            c.min_cell_wall_s,
            c.max_cell_wall_s,
            100.0 * c.wall_spread(),
        );
    }
    for b in &report.benches {
        let tp = match b.melem_s() {
            Some(t) => format!(" ({t:.2} Melem/s)"),
            None => String::new(),
        };
        println!("{:<30} median {:.1} ns/iter{tp}", b.name, b.median_ns);
    }
    if let Some(s) = &report.serve {
        println!(
            "serve: {:.1} jobs/s cold, cache hit in {:.4}s",
            s.jobs_per_s, s.cache_hit_s
        );
    }
    println!(
        "spread-derived wall-clock failure threshold: {:.0}%",
        100.0 * report.fail_threshold
    );

    let path = results_dir().join("ci_grid.json");
    let prev_path = std::env::var_os("PRESTAGE_PREV_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| path.clone());
    // Upgrade-or-compare, explicitly: a readable baseline (current schema,
    // or the previous one upgraded in place) is diffed; an unreadable one
    // is *named* — never a silent skip that reads as "no movement".
    let mut failed = false;
    match std::fs::read_to_string(&prev_path) {
        Err(_) => println!("\nno previous artifact at {} — baseline run", prev_path.display()),
        Ok(text) => match load_baseline(&text) {
            Err(why) => {
                println!("\n::warning::ci_grid: {why}; treating this as a baseline run");
            }
            Ok((prev, note)) => {
                println!("\n# vs previous run ({})", prev_path.display());
                if let Some(n) = note {
                    println!("note: {n}");
                }
                let (deltas, warnings, failures) = diff(&prev, &report);
                for d in &deltas {
                    println!("{d}");
                }
                for warn in &warnings {
                    // GitHub annotation; plain prefix everywhere else.
                    println!("::warning::ci_grid: {warn}");
                }
                for fail in &failures {
                    println!("::error::ci_grid: {fail}");
                }
                if warnings.is_empty() && failures.is_empty() {
                    println!("no movement beyond the warning bands");
                }
                failed = !failures.is_empty();
            }
        },
    }

    std::fs::create_dir_all(results_dir()).expect("results dir creatable");
    let mut f = std::fs::File::create(&path).expect("artifact writable");
    f.write_all(report.to_json().as_bytes()).expect("artifact written");
    // Consume the medians file now that it is folded into the artifact
    // (see the comment at the read site) — whatever it contained, so even
    // a degenerate file cannot linger.
    if medians_text.is_some() {
        let _ = std::fs::remove_file(&medians_path);
    }
    println!("\nwrote {}", path.display());
    if failed {
        // The artifact is written first: the failing run's numbers are
        // preserved for the next comparison and for the investigation.
        std::process::exit(1);
    }
}
