//! CI perf gate: a 2-preset × 3-size mini-grid through the flat cell pool,
//! persisted as a JSON artifact (`<results dir>/ci_grid.json`) and diffed
//! against the previous run's artifact.
//!
//! Per (preset, size) row it records the HMEAN IPC — deterministic given
//! seeds and run lengths, so any movement means simulator behaviour
//! changed — and the median per-cell wall-clock, the bench-medians artifact
//! the ROADMAP asks CI to track.  Movement beyond 10% prints GitHub
//! `::warning::` annotations; the exit status stays 0 so noisy runners
//! don't block merges.
//!
//! Honours the usual `PRESTAGE_*` knobs; a previous artifact can also be
//! supplied explicitly via `PRESTAGE_PREV_JSON=<path>`.

use prestage_bench::perf::{diff, CellPerf, PerfReport};
use prestage_bench::{config, exec_seed, results_dir, size_label, workloads};
use prestage_cacti::TechNode;
use prestage_sim::{run_cells, CellGrid, ConfigPreset};
use std::io::Write;

/// True median: mean of the two middle elements for even counts (the CI
/// benchmark set has 4), not the upward-biased upper-middle pick.
fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn main() {
    let presets = [ConfigPreset::BaseL0, ConfigPreset::ClgpL0];
    let sizes = [1 << 10, 4 << 10, 16 << 10];
    let tech = TechNode::T045;
    let w = workloads();
    if w.is_empty() {
        eprintln!("ci_grid: PRESTAGE_BENCH matched no benchmarks — nothing to measure");
        std::process::exit(2);
    }

    let grid = CellGrid::new(presets.to_vec(), tech, sizes.to_vec(), w.len(), exec_seed());
    let t0 = std::time::Instant::now();
    let results = run_cells(&grid.cells(), &w, |c| config(c.preset, c.tech, c.l1));
    let total_wall_s = t0.elapsed().as_secs_f64();

    // Per-row medians, grouped by the cells' own identity rather than any
    // assumption about result order.
    let cell_walls: Vec<(prestage_sim::SweepCell, f64)> = results
        .iter()
        .map(|r| (r.cell, r.wall.as_secs_f64()))
        .collect();
    let merged = grid.merge(results, &w);
    let mut cells = Vec::new();
    for (pi, &preset) in presets.iter().enumerate() {
        for (si, &l1) in sizes.iter().enumerate() {
            let mut walls: Vec<f64> = cell_walls
                .iter()
                .filter(|(c, _)| c.preset == preset && c.l1 == l1)
                .map(|(_, s)| *s)
                .collect();
            walls.sort_by(|a, b| a.total_cmp(b));
            cells.push(CellPerf {
                preset: preset.label().to_string(),
                l1,
                hmean_ipc: merged[pi][si].hmean_ipc(),
                median_cell_wall_s: median(&walls),
            });
        }
    }
    let report = PerfReport {
        schema: 1,
        total_wall_s,
        cells,
    };

    println!("# CI mini-grid ({} cells, {total_wall_s:.2}s)", grid.n_cells());
    for c in &report.cells {
        println!(
            "{:<12} {:>6}  hmean_ipc {:.4}  median cell {:.4}s",
            c.preset,
            size_label(c.l1),
            c.hmean_ipc,
            c.median_cell_wall_s
        );
    }

    let path = results_dir().join("ci_grid.json");
    let prev_path = std::env::var_os("PRESTAGE_PREV_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| path.clone());
    match std::fs::read_to_string(&prev_path)
        .ok()
        .and_then(|t| PerfReport::from_json(&t))
    {
        Some(prev) => {
            let (deltas, warnings) = diff(&prev, &report);
            println!("\n# vs previous run ({})", prev_path.display());
            for d in &deltas {
                println!("{d}");
            }
            for warn in &warnings {
                // GitHub annotation; plain prefix everywhere else.
                println!("::warning::ci_grid: {warn}");
            }
            if warnings.is_empty() {
                println!("no movement beyond 10%");
            }
        }
        None => println!("\nno previous artifact at {} — baseline run", prev_path.display()),
    }

    std::fs::create_dir_all(results_dir()).expect("results dir creatable");
    let mut f = std::fs::File::create(&path).expect("artifact writable");
    f.write_all(report.to_json().as_bytes()).expect("artifact written");
    println!("\nwrote {}", path.display());
}
