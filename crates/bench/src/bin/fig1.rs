//! Figure 1: effect of the L1 I-cache latency on processor performance at
//! 0.045 µm — `ideal` (all sizes one cycle) vs `pipelined` vs `base + L0`
//! vs `base`.  The declaration lives in `prestage_bench::figures`.

fn main() {
    prestage_bench::figures::run_figure("fig1");
}
