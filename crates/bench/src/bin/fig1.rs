//! Figure 1: effect of the L1 I-cache latency on processor performance at
//! 0.045 µm — `ideal` (all sizes one cycle) vs `pipelined` vs `base + L0`
//! vs `base`.

use prestage_bench::{ipc_sweep, print_sweep, workloads, write_sweep_csv, L1_SIZES};
use prestage_cacti::TechNode;
use prestage_sim::ConfigPreset;

fn main() {
    let w = workloads();
    let presets = [
        ConfigPreset::Ideal,
        ConfigPreset::BasePipelined,
        ConfigPreset::BaseL0,
        ConfigPreset::Base,
    ];
    let rows = ipc_sweep(&presets, &L1_SIZES, TechNode::T045, &w);
    print_sweep(
        "Figure 1 — L1 latency vs IPC (0.045um, HMEAN over SPECint2000)",
        &rows,
        &L1_SIZES,
    );
    let path = write_sweep_csv("fig1", &rows, &L1_SIZES).expect("write fig1.csv");
    eprintln!("wrote {}", path.display());
}
