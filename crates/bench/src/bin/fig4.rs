//! Figure 4(b): CLGP with and without an L0 cache (0.045 µm).

use prestage_bench::{ipc_sweep, print_sweep, workloads, write_sweep_csv, L1_SIZES};
use prestage_cacti::TechNode;
use prestage_sim::ConfigPreset;

fn main() {
    let w = workloads();
    let presets = [ConfigPreset::ClgpL0, ConfigPreset::Clgp];
    let rows = ipc_sweep(&presets, &L1_SIZES, TechNode::T045, &w);
    print_sweep(
        "Figure 4(b) — CLGP with/without L0 (0.045um)",
        &rows,
        &L1_SIZES,
    );
    let path = write_sweep_csv("fig4", &rows, &L1_SIZES).expect("write fig4.csv");
    eprintln!("wrote {}", path.display());
}
