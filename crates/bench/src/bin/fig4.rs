//! Figure 4(b): CLGP with and without an L0 cache (0.045 µm).  The
//! declaration lives in `prestage_bench::figures`.

fn main() {
    prestage_bench::figures::run_figure("fig4");
}
