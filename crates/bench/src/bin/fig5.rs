//! Figure 5: the headline comparison — baseline (L0 / pipelined), FDP and
//! CLGP, small and 16-entry pipelined pre-buffers, at both nodes.
//!
//! `--tech 90` reproduces Figure 5(a) (0.09 µm, 8-entry pre-buffer);
//! `--tech 45` (default) reproduces Figure 5(b) (0.045 µm, 4-entry).

use prestage_bench::{ipc_sweep, print_sweep, workloads, write_sweep_csv, L1_SIZES};
use prestage_cacti::TechNode;
use prestage_sim::ConfigPreset;

fn main() {
    let arg = std::env::args().nth(2).or_else(|| std::env::args().nth(1));
    let tech = match arg.as_deref() {
        Some("90") | Some("--tech=90") => TechNode::T090,
        _ => TechNode::T045,
    };
    let sub = if tech == TechNode::T090 { "a" } else { "b" };
    let w = workloads();
    let presets = [
        ConfigPreset::ClgpL0Pb16,
        ConfigPreset::ClgpL0,
        ConfigPreset::FdpL0Pb16,
        ConfigPreset::FdpL0,
        ConfigPreset::BasePipelined,
        ConfigPreset::BaseL0,
    ];
    let rows = ipc_sweep(&presets, &L1_SIZES, tech, &w);
    print_sweep(
        &format!("Figure 5({sub}) — all techniques at {}", tech.label()),
        &rows,
        &L1_SIZES,
    );
    let path = write_sweep_csv(&format!("fig5{sub}"), &rows, &L1_SIZES)
        .unwrap_or_else(|e| panic!("write fig5{sub}.csv: {e}"));
    eprintln!("wrote {}", path.display());
}
