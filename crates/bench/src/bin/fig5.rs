//! Figure 5: the headline comparison — baseline (L0 / pipelined), FDP and
//! CLGP, small and 16-entry pipelined pre-buffers, at both nodes.
//!
//! `--tech 90` reproduces Figure 5(a) (0.09 µm, 8-entry pre-buffer);
//! `--tech 45` (default) reproduces Figure 5(b) (0.045 µm, 4-entry).
//! The declarations live in `prestage_bench::figures` as `fig5a`/`fig5b`.

fn main() {
    let arg = std::env::args().nth(2).or_else(|| std::env::args().nth(1));
    let name = match arg.as_deref() {
        Some("90") | Some("--tech=90") => "fig5a",
        _ => "fig5b",
    };
    prestage_bench::figures::run_figure(name);
}
