//! Figure 6: per-benchmark IPC for the best configuration of the baseline,
//! FDP and CLGP (8 KB L1 I-cache, 0.045 µm).

use prestage_bench::{config, exec_seed, note_result, results_dir, workloads};
use prestage_cacti::TechNode;
use prestage_sim::{harmonic_mean, run_grid, ConfigPreset, SimConfig};
use std::io::Write;

fn main() {
    let w = workloads();
    let tech = TechNode::T045;
    let l1 = 8 << 10;
    let presets = [
        ConfigPreset::BasePipelined,
        ConfigPreset::FdpL0Pb16,
        ConfigPreset::ClgpL0Pb16,
    ];
    // All three presets in one run_grid call on the shared cell pool.
    let configs: Vec<SimConfig> = presets.iter().map(|&p| config(p, tech, l1)).collect();
    let results = run_grid(&configs, &w, exec_seed());
    eprintln!("  ran {} presets", presets.len());

    println!("\n# Figure 6 — per-benchmark IPC (8KB L1, 0.045um)");
    print!("{:<10}", "bench");
    for p in &presets {
        print!(" {:>15}", p.label());
    }
    println!();
    let mut csv = String::from("bench");
    for p in &presets {
        csv.push_str(&format!(",{}", p.label()));
    }
    csv.push('\n');
    for (i, (name, _)) in results[0].per_bench.iter().enumerate() {
        print!("{:<10}", name);
        csv.push_str(name);
        for r in &results {
            let ipc = r.per_bench[i].1.ipc();
            print!(" {:>15.3}", ipc);
            csv.push_str(&format!(",{ipc:.4}"));
        }
        println!();
        csv.push('\n');
    }
    print!("{:<10}", "HMEAN");
    csv.push_str("HMEAN");
    let mut hmeans = Vec::new();
    for r in &results {
        let v: Vec<f64> = r.per_bench.iter().map(|(_, s)| s.ipc()).collect();
        let h = harmonic_mean(&v);
        hmeans.push(h);
        print!(" {:>15.3}", h);
        csv.push_str(&format!(",{h:.4}"));
    }
    println!();
    csv.push('\n');

    std::fs::create_dir_all(results_dir()).unwrap();
    let mut f = std::fs::File::create(results_dir().join("fig6.csv")).unwrap();
    f.write_all(csv.as_bytes()).unwrap();

    note_result(
        "fig6",
        &format!(
            "HMEAN base-pipelined {:.3}, FDP+L0+PB16 {:.3}, CLGP+L0+PB16 {:.3} \
             (CLGP over FDP {:+.1}%, over base {:+.1}%)",
            hmeans[0],
            hmeans[1],
            hmeans[2],
            (hmeans[2] / hmeans[1] - 1.0) * 100.0,
            (hmeans[2] / hmeans[0] - 1.0) * 100.0
        ),
    );
}
