//! Figure 6: per-benchmark IPC for the best configuration of the baseline,
//! FDP and CLGP (8 KB L1 I-cache, 0.045 µm).  The declaration lives in
//! `prestage_bench::figures`.

fn main() {
    prestage_bench::figures::run_figure("fig6");
}
