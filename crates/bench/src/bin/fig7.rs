//! Figure 7: distribution of fetch sources for FDP vs CLGP across L1
//! sizes at 0.045 µm — (a) without, (b) with an L0 cache.
//!
//! `--l0 on` selects Figure 7(b); default reproduces 7(a).

use prestage_bench::{config, exec_seed, results_dir, size_label, workloads, L1_SIZES};
use prestage_cacti::TechNode;
use prestage_core::FrontStats;
use prestage_sim::{run_grid, ConfigPreset, SimConfig};
use std::io::Write;

fn shares(stats: &[FrontStats]) -> [f64; 5] {
    let mut acc = [0.0; 5];
    for f in stats {
        acc[0] += f.fetch_share(f.fetch_pb);
        acc[1] += f.fetch_share(f.fetch_l0);
        acc[2] += f.fetch_share(f.fetch_l1);
        acc[3] += f.fetch_share(f.fetch_l2);
        acc[4] += f.fetch_share(f.fetch_mem);
    }
    acc.map(|x| 100.0 * x / stats.len() as f64)
}

fn main() {
    let with_l0 = std::env::args().any(|a| a == "on" || a == "--l0=on");
    let sub = if with_l0 { "b" } else { "a" };
    let (fdp, clgp) = if with_l0 {
        (ConfigPreset::FdpL0, ConfigPreset::ClgpL0)
    } else {
        (ConfigPreset::Fdp, ConfigPreset::Clgp)
    };
    let w = workloads();
    let tech = TechNode::T045;

    println!("\n# Figure 7({sub}) — fetch source distribution (%, 0.045um)");
    println!(
        "{:<8} {:>6} | {:>6} {:>6} {:>6} {:>6} {:>6}",
        "config", "L1", "PB", "il0", "il1", "ul2", "Mem"
    );
    std::fs::create_dir_all(results_dir()).unwrap();
    let mut csv = std::fs::File::create(results_dir().join(format!("fig7{sub}.csv"))).unwrap();
    writeln!(csv, "config,l1,pb,il0,il1,ul2,mem").unwrap();
    // One run_grid over every (preset, size) row: the whole figure shares
    // the flat cell pool instead of resynchronising per row.
    let presets = [("FDP", fdp), ("CLGP", clgp)];
    let combos: Vec<(&str, usize)> = presets
        .iter()
        .flat_map(|&(name, _)| L1_SIZES.iter().map(move |&size| (name, size)))
        .collect();
    let configs: Vec<SimConfig> = presets
        .iter()
        .flat_map(|&(_, p)| L1_SIZES.iter().map(move |&size| config(p, tech, size)))
        .collect();
    let grids = run_grid(&configs, &w, exec_seed());
    eprintln!("  swept {} rows", grids.len());
    for ((name, size), r) in combos.iter().zip(&grids) {
        let st: Vec<_> = r.per_bench.iter().map(|(_, s)| s.front).collect();
        let sh = shares(&st);
        println!(
            "{:<8} {:>6} | {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
            name,
            size_label(*size),
            sh[0],
            sh[1],
            sh[2],
            sh[3],
            sh[4]
        );
        writeln!(
            csv,
            "{},{},{:.2},{:.2},{:.2},{:.2},{:.2}",
            name,
            size_label(*size),
            sh[0],
            sh[1],
            sh[2],
            sh[3],
            sh[4]
        )
        .unwrap();
    }
}
