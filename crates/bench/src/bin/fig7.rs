//! Figure 7: distribution of fetch sources for FDP vs CLGP across L1
//! sizes at 0.045 µm — (a) without, (b) with an L0 cache.
//!
//! `--l0 on` selects Figure 7(b); default reproduces 7(a).  The
//! declarations live in `prestage_bench::figures` as `fig7a`/`fig7b`.

fn main() {
    let with_l0 = std::env::args().any(|a| a == "on" || a == "--l0=on");
    prestage_bench::figures::run_figure(if with_l0 { "fig7b" } else { "fig7a" });
}
