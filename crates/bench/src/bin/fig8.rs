//! Figure 8: distribution of prefetch sources (where the line was found
//! when the prefetch request was processed) for FDP vs CLGP, 0.045 µm.
//! The declaration lives in `prestage_bench::figures`.

fn main() {
    prestage_bench::figures::run_figure("fig8");
}
