//! Figure 8: distribution of prefetch sources (where the line was found
//! when the prefetch request was processed) for FDP vs CLGP, 0.045 µm.

use prestage_bench::{config, exec_seed, results_dir, size_label, workloads, L1_SIZES};
use prestage_cacti::TechNode;
use prestage_sim::{run_grid, ConfigPreset, SimConfig};
use std::io::Write;

fn main() {
    let w = workloads();
    let tech = TechNode::T045;
    println!("\n# Figure 8 — prefetch source distribution (%, 0.045um)");
    println!(
        "{:<8} {:>6} | {:>6} {:>6} {:>6} {:>6}",
        "config", "L1", "PB", "il1", "ul2", "Mem"
    );
    std::fs::create_dir_all(results_dir()).unwrap();
    let mut csv = std::fs::File::create(results_dir().join("fig8.csv")).unwrap();
    writeln!(csv, "config,l1,pb,il1,ul2,mem").unwrap();
    // One run_grid over every (preset, size) row: the whole figure shares
    // the flat cell pool instead of resynchronising per row.
    let presets = [("FDP", ConfigPreset::Fdp), ("CLGP", ConfigPreset::Clgp)];
    let combos: Vec<(&str, usize)> = presets
        .iter()
        .flat_map(|&(name, _)| L1_SIZES.iter().map(move |&size| (name, size)))
        .collect();
    let configs: Vec<SimConfig> = presets
        .iter()
        .flat_map(|&(_, p)| L1_SIZES.iter().map(move |&size| config(p, tech, size)))
        .collect();
    let grids = run_grid(&configs, &w, exec_seed());
    eprintln!("  swept {} rows", grids.len());
    for (&(name, size), r) in combos.iter().zip(&grids) {
        let mut acc = [0.0f64; 4];
        for (_, s) in &r.per_bench {
            let f = s.front;
            let total = f.total_prefetch_requests().max(1) as f64;
            acc[0] += f.prefetch_from_pb as f64 / total;
            acc[1] += f.prefetch_from_l1 as f64 / total;
            acc[2] += f.prefetch_from_l2 as f64 / total;
            acc[3] += f.prefetch_from_mem as f64 / total;
        }
        let n = r.per_bench.len() as f64;
        let sh = acc.map(|x| 100.0 * x / n);
        println!(
            "{:<8} {:>6} | {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
            name,
            size_label(size),
            sh[0],
            sh[1],
            sh[2],
            sh[3]
        );
        writeln!(
            csv,
            "{},{},{:.2},{:.2},{:.2},{:.2}",
            name,
            size_label(size),
            sh[0],
            sh[1],
            sh[2],
            sh[3]
        )
        .unwrap();
    }
}
