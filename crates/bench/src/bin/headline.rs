//! The paper's headline numbers (abstract and §5.1):
//!
//! * CLGP over FDP at 4 KB: +3.5% (0.09 µm) / +12.5% (0.045 µm) with the
//!   16-entry pipelined pre-buffers; +4.8% / +26% with the small ones.
//! * CLGP over the pipelined baseline at 4 KB: +39% / +48%.
//! * Budget equivalence: CLGP with 2.5 KB total (1 KB L1 + 512 B L0 + 1 KB
//!   PB16 at 0.09 µm) matches a 16 KB pipelined I-cache — 6.4x the budget.
//! * Fetch-source headline: ≥86% of fetches from the prestage buffer
//!   (≈95% from one-cycle sources with an L0).
//!
//! Every section is a derived `ExperimentSpec` — the base spec (with the
//! environment's overrides) re-pointed at the section's presets and sizes.

use prestage_bench::{note_result, size_label, L1_SIZES};
use prestage_cacti::TechNode;
use prestage_sim::{try_run_spec_over, ConfigPreset, ExperimentSpec, GridResult};

fn main() {
    let base = ExperimentSpec::from_env();
    // One workload build shared by every section's derived spec — the
    // synthetic program synthesis is the expensive step.
    let w = base
        .build_workloads()
        .unwrap_or_else(|e| panic!("invalid experiment spec: {e}"));
    let run = |spec: &ExperimentSpec| -> Vec<Vec<GridResult>> {
        try_run_spec_over(spec, &w).unwrap_or_else(|e| panic!("invalid experiment spec: {e}"))
    };

    for tech in [TechNode::T090, TechNode::T045] {
        // All six presets at 4 KB in one grid on the shared cell pool.
        let spec = ExperimentSpec {
            presets: vec![
                ConfigPreset::ClgpL0Pb16,
                ConfigPreset::FdpL0Pb16,
                ConfigPreset::ClgpL0,
                ConfigPreset::FdpL0,
                ConfigPreset::BasePipelined,
                ConfigPreset::BaseL0,
            ],
            tech,
            l1_sizes: vec![4 << 10],
            ..base.clone()
        };
        let hs: Vec<f64> = run(&spec).iter().map(|row| row[0].hmean_ipc()).collect();
        let (clgp16, fdp16, clgp, fdp, pipe, base_l0) =
            (hs[0], hs[1], hs[2], hs[3], hs[4], hs[5]);
        note_result(
            &format!("headline {}", tech.label()),
            &format!(
                "4KB L1: CLGP+L0+PB16 {:.3} vs FDP+L0+PB16 {:.3} ({:+.1}%); \
                 CLGP+L0 {:.3} vs FDP+L0 {:.3} ({:+.1}%); \
                 CLGP+PB16 over base-pipelined {:.3} ({:+.1}%); \
                 CLGP+PB16 over base+L0 {:.3} ({:+.1}%)",
                clgp16,
                fdp16,
                (clgp16 / fdp16 - 1.0) * 100.0,
                clgp,
                fdp,
                (clgp / fdp - 1.0) * 100.0,
                pipe,
                (clgp16 / pipe - 1.0) * 100.0,
                base_l0,
                (clgp16 / base_l0 - 1.0) * 100.0,
            ),
        );
    }

    // Budget equivalence at 0.09um: CLGP 2.5KB total vs pipelined caches.
    let clgp_1k = run(&ExperimentSpec {
        presets: vec![ConfigPreset::ClgpL0Pb16],
        tech: TechNode::T090,
        l1_sizes: vec![1 << 10],
        ..base.clone()
    })[0][0]
        .hmean_ipc();
    // Walk the pipelined sizes one spec at a time so the search stops at
    // the first match instead of simulating the whole axis.
    let mut equiv = None;
    for &size in &L1_SIZES {
        let pipe = run(&ExperimentSpec {
            presets: vec![ConfigPreset::BasePipelined],
            tech: TechNode::T090,
            l1_sizes: vec![size],
            ..base.clone()
        })[0][0]
            .hmean_ipc();
        equiv = Some((size, pipe));
        if pipe >= clgp_1k {
            break;
        }
    }
    let (esize, epipe) = equiv.unwrap();
    note_result(
        "headline budget",
        &format!(
            "CLGP+L0+PB16 with 1KB L1 (2.5KB total budget) reaches {clgp_1k:.3}; \
             the smallest pipelined I-cache matching it is {} ({} IPC {epipe:.3}) \
             => {}x the 2.5KB budget",
            size_label(esize),
            size_label(esize),
            esize as f64 / 2560.0
        ),
    );

    // Fetch-source headline at 4KB / 0.045um.
    let spec = ExperimentSpec {
        presets: vec![ConfigPreset::Clgp, ConfigPreset::ClgpL0],
        tech: TechNode::T045,
        l1_sizes: vec![4 << 10],
        ..base
    };
    let rows = run(&spec);
    for (preset, row) in spec.presets.iter().zip(&rows) {
        let r = &row[0];
        let (mut pb, mut one) = (0.0, 0.0);
        for (_, s) in &r.per_bench {
            pb += s.front.fetch_share(s.front.fetch_pb);
            one += s.front.one_cycle_share();
        }
        let n = r.per_bench.len() as f64;
        note_result(
            "headline sources",
            &format!(
                "{}: {:.1}% of fetches from the prestage buffer, {:.1}% from one-cycle sources",
                preset.label(),
                100.0 * pb / n,
                100.0 * one / n
            ),
        );
    }
}
