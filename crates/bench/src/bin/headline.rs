//! The paper's headline numbers (abstract and §5.1):
//!
//! * CLGP over FDP at 4 KB: +3.5% (0.09 µm) / +12.5% (0.045 µm) with the
//!   16-entry pipelined pre-buffers; +4.8% / +26% with the small ones.
//! * CLGP over the pipelined baseline at 4 KB: +39% / +48%.
//! * Budget equivalence: CLGP with 2.5 KB total (1 KB L1 + 512 B L0 + 1 KB
//!   PB16 at 0.09 µm) matches a 16 KB pipelined I-cache — 6.4x the budget.
//! * Fetch-source headline: ≥86% of fetches from the prestage buffer
//!   (≈95% from one-cycle sources with an L0).

use prestage_bench::{config, exec_seed, note_result, workloads};
use prestage_cacti::TechNode;
use prestage_sim::{run_config_over, run_grid, ConfigPreset};

fn hmean(preset: ConfigPreset, tech: TechNode, l1: usize, w: &[prestage_workload::Workload]) -> f64 {
    run_config_over(config(preset, tech, l1), w, exec_seed()).hmean_ipc()
}

fn main() {
    let w = workloads();
    for tech in [TechNode::T090, TechNode::T045] {
        let l1 = 4 << 10;
        // All six presets in one run_grid call on the shared cell pool.
        let presets = [
            ConfigPreset::ClgpL0Pb16,
            ConfigPreset::FdpL0Pb16,
            ConfigPreset::ClgpL0,
            ConfigPreset::FdpL0,
            ConfigPreset::BasePipelined,
            ConfigPreset::BaseL0,
        ];
        let configs: Vec<_> = presets.iter().map(|&p| config(p, tech, l1)).collect();
        let hs: Vec<f64> = run_grid(&configs, &w, exec_seed())
            .iter()
            .map(|r| r.hmean_ipc())
            .collect();
        let (clgp16, fdp16, clgp, fdp, pipe, base_l0) =
            (hs[0], hs[1], hs[2], hs[3], hs[4], hs[5]);
        note_result(
            &format!("headline {}", tech.label()),
            &format!(
                "4KB L1: CLGP+L0+PB16 {:.3} vs FDP+L0+PB16 {:.3} ({:+.1}%); \
                 CLGP+L0 {:.3} vs FDP+L0 {:.3} ({:+.1}%); \
                 CLGP+PB16 over base-pipelined {:.3} ({:+.1}%); \
                 CLGP+PB16 over base+L0 {:.3} ({:+.1}%)",
                clgp16,
                fdp16,
                (clgp16 / fdp16 - 1.0) * 100.0,
                clgp,
                fdp,
                (clgp / fdp - 1.0) * 100.0,
                pipe,
                (clgp16 / pipe - 1.0) * 100.0,
                base_l0,
                (clgp16 / base_l0 - 1.0) * 100.0,
            ),
        );
    }

    // Budget equivalence at 0.09um: CLGP 2.5KB total vs pipelined caches.
    let tech = TechNode::T090;
    let clgp_1k = hmean(ConfigPreset::ClgpL0Pb16, tech, 1 << 10, &w);
    let mut equiv = None;
    for &size in &prestage_bench::L1_SIZES {
        let pipe = hmean(ConfigPreset::BasePipelined, tech, size, &w);
        if pipe >= clgp_1k {
            equiv = Some((size, pipe));
            break;
        }
        equiv = Some((size, pipe));
    }
    let (esize, epipe) = equiv.unwrap();
    note_result(
        "headline budget",
        &format!(
            "CLGP+L0+PB16 with 1KB L1 (2.5KB total budget) reaches {clgp_1k:.3}; \
             the smallest pipelined I-cache matching it is {} ({} IPC {epipe:.3}) \
             => {}x the 2.5KB budget",
            prestage_bench::size_label(esize),
            prestage_bench::size_label(esize),
            esize as f64 / 2560.0
        ),
    );

    // Fetch-source headline at 4KB / 0.045um.
    for (label, preset) in [("CLGP", ConfigPreset::Clgp), ("CLGP+L0", ConfigPreset::ClgpL0)] {
        let r = run_config_over(config(preset, TechNode::T045, 4 << 10), &w, exec_seed());
        let (mut pb, mut one) = (0.0, 0.0);
        for (_, s) in &r.per_bench {
            pb += s.front.fetch_share(s.front.fetch_pb);
            one += s.front.one_cycle_share();
        }
        let n = r.per_bench.len() as f64;
        note_result(
            "headline sources",
            &format!(
                "{label}: {:.1}% of fetches from the prestage buffer, {:.1}% from one-cycle sources",
                100.0 * pb / n,
                100.0 * one / n
            ),
        );
    }
}
