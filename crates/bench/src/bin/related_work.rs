//! Related-work comparison (§2.1): classic next-N-line sequential
//! prefetching vs the branch-predictor-guided schemes, plus the predictor
//! ablation (stream predictor vs gshare) behind the paper's claim — via
//! \[4\]/\[16\] — that "branch prediction based prefetching outperforms table
//! based prefetching" and tracks predictor quality.
//!
//! The NLP prefetcher override has no preset identity, so this binary
//! derives everything from an `ExperimentSpec` and mutates spec-built
//! configs; the predictor ablation runs the same spec with the spec's
//! `predictor` field swapped.

use prestage_bench::{note_result, results_dir};
use prestage_core::PrefetcherKind;
use prestage_sim::{
    harmonic_mean, run_grid, try_run_spec_over, ConfigPreset, ExperimentSpec, PredictorKind,
    SimConfig,
};
use std::io::Write;

fn main() {
    let l1 = 4 << 10;
    let base = ExperimentSpec {
        presets: vec![ConfigPreset::ClgpL0],
        l1_sizes: vec![l1],
        ..ExperimentSpec::from_env()
    };
    let w = base
        .build_workloads()
        .unwrap_or_else(|e| panic!("invalid experiment spec: {e}"));

    // --- Prefetch scheme ladder: none -> NLP -> FDP -> CLGP. -------------
    let mut nlp_cfg = base.sim_config(ConfigPreset::Fdp, l1);
    nlp_cfg.frontend.prefetcher = PrefetcherKind::NextLine;
    let schemes: Vec<(&str, SimConfig)> = vec![
        ("no prefetch (base)", base.sim_config(ConfigPreset::Base, l1)),
        ("next-2-line", nlp_cfg),
        ("FDP", base.sim_config(ConfigPreset::Fdp, l1)),
        ("CLGP", base.sim_config(ConfigPreset::Clgp, l1)),
    ];
    println!("\n# Related work — prefetch scheme ladder (4KB L1, 0.045um)");
    std::fs::create_dir_all(results_dir()).unwrap();
    let mut csv = std::fs::File::create(results_dir().join("related_work.csv")).unwrap();
    writeln!(csv, "scheme,hmean_ipc").unwrap();
    // The whole ladder in one run_grid call on the shared cell pool.
    let configs: Vec<SimConfig> = schemes.iter().map(|(_, c)| *c).collect();
    let grids = run_grid(&configs, &w, base.exec_seed);
    let mut ladder = Vec::new();
    for ((name, _), r) in schemes.iter().zip(&grids) {
        let h = r.hmean_ipc();
        println!("{name:<22} HMEAN {h:.3}");
        writeln!(csv, "{name},{h:.4}").unwrap();
        ladder.push(h);
        eprintln!("  ran {name}");
    }
    assert!(ladder.windows(2).all(|p| p[1] >= p[0] * 0.97),
        "scheme ladder regressed unexpectedly: {ladder:?}");

    // --- Predictor ablation: CLGP quality tracks predictor quality. ------
    println!("\n# Predictor ablation — CLGP+L0 under different predictors");
    writeln!(csv, "predictor,hmean_ipc").unwrap();
    for (name, kind) in [
        ("stream predictor (paper)", PredictorKind::Stream),
        ("gshare 16K", PredictorKind::Gshare),
    ] {
        // The predictor is a first-class spec field: same experiment,
        // different `predictor`.
        let spec = ExperimentSpec { predictor: kind, ..base.clone() };
        let rows = try_run_spec_over(&spec, &w)
            .unwrap_or_else(|e| panic!("invalid experiment spec: {e}"));
        let row = &rows[0][0];
        let ipcs: Vec<f64> = row.per_bench.iter().map(|(_, s)| s.ipc()).collect();
        let h = harmonic_mean(&ipcs);
        println!("{name:<28} HMEAN {h:.3}");
        writeln!(csv, "{name},{h:.4}").unwrap();
        eprintln!("  ran {name}");
    }
    note_result("related_work", "see results/related_work.csv");
}
