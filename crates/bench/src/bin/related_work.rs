//! Related-work comparison (§2.1): classic next-N-line sequential
//! prefetching vs the branch-predictor-guided schemes, the per-benchmark
//! mechanism comparison (CLGP vs FDP vs MANA vs program-map traversal —
//! the ROADMAP's record-and-replay prefetcher item, each a `prefetcher`
//! spec id), plus the predictor ablation (stream predictor vs gshare)
//! behind the paper's claim — via \[4\]/\[16\] — that "branch prediction
//! based prefetching outperforms table based prefetching" and tracks
//! predictor quality.
//!
//! Every row derives from an `ExperimentSpec`: preset-less mechanisms
//! ride the spec's `prefetcher` field, the predictor ablation swaps its
//! `predictor` field.  The mechanism table carries CACTI area/energy
//! columns for each mechanism's private metadata (MANA table + SAB,
//! program map, PIQ), so the comparison stays honest about hardware cost.
//!
//! The translation figure re-runs all six mechanisms with the spec's
//! `itlb` field set to the default i-TLB, so the comparison also shows
//! how each scheme degrades once every fetched *and prefetched* address
//! pays for translation — with the i-TLB's own CACTI cost attached.

use prestage_bench::{note_result, results_dir};
use prestage_cacti::{area_mm2, energy_nj_per_access, CacheGeometry};
use prestage_core::{prefetcher_state_bytes, ITlbConfig, PrefetcherKind};
use prestage_sim::{
    harmonic_mean, run_grid, try_run_spec_over, ConfigPreset, ExperimentSpec, PredictorKind,
    SimConfig,
};
use std::io::Write;

fn main() {
    let l1 = 4 << 10;
    let base = ExperimentSpec {
        presets: vec![ConfigPreset::ClgpL0],
        l1_sizes: vec![l1],
        ..ExperimentSpec::from_env()
    };
    let w = base
        .build_workloads()
        .unwrap_or_else(|e| panic!("invalid experiment spec: {e}"));

    // --- Prefetch scheme ladder: none -> NLP -> FDP -> CLGP. -------------
    let mut nlp_cfg = base.sim_config(ConfigPreset::Fdp, l1);
    nlp_cfg.frontend.prefetcher = PrefetcherKind::NextLine;
    let schemes: Vec<(&str, SimConfig)> = vec![
        ("no prefetch (base)", base.sim_config(ConfigPreset::Base, l1)),
        ("next-2-line", nlp_cfg),
        ("FDP", base.sim_config(ConfigPreset::Fdp, l1)),
        ("CLGP", base.sim_config(ConfigPreset::Clgp, l1)),
    ];
    println!("\n# Related work — prefetch scheme ladder (4KB L1, 0.045um)");
    std::fs::create_dir_all(results_dir()).unwrap();
    let mut csv = std::fs::File::create(results_dir().join("related_work.csv")).unwrap();
    writeln!(csv, "scheme,hmean_ipc").unwrap();
    // The whole ladder in one run_grid call on the shared cell pool.
    let configs: Vec<SimConfig> = schemes.iter().map(|(_, c)| *c).collect();
    let grids = run_grid(&configs, &w, base.exec_seed);
    let mut ladder = Vec::new();
    for ((name, _), r) in schemes.iter().zip(&grids) {
        let h = r.hmean_ipc();
        println!("{name:<22} HMEAN {h:.3}");
        writeln!(csv, "{name},{h:.4}").unwrap();
        ladder.push(h);
        eprintln!("  ran {name}");
    }
    assert!(ladder.windows(2).all(|p| p[1] >= p[0] * 0.97),
        "scheme ladder regressed unexpectedly: {ladder:?}");

    // --- Mechanism comparison: CLGP vs FDP vs MANA vs program map, ------
    // --- per benchmark, with CACTI hardware-cost columns.           ------
    // The classic pair runs through its presets; the two record-and-replay
    // mechanisms ride the spec's `prefetcher` field over the FDP preset
    // shape, so all four share the same pre-buffer budget.
    let mechanisms: Vec<(&str, ConfigPreset, Option<PrefetcherKind>)> = vec![
        ("FDP", ConfigPreset::Fdp, None),
        ("CLGP", ConfigPreset::Clgp, None),
        ("MANA", ConfigPreset::Fdp, Some(PrefetcherKind::Mana)),
        ("progmap", ConfigPreset::Fdp, Some(PrefetcherKind::ProgMap)),
    ];
    println!("\n# Mechanism comparison — per-benchmark IPC (4KB L1, 0.045um)");
    let mut rows = Vec::new();
    for &(name, preset, prefetcher) in &mechanisms {
        let spec = ExperimentSpec {
            presets: vec![preset],
            prefetcher,
            ..base.clone()
        };
        let grid = try_run_spec_over(&spec, &w)
            .unwrap_or_else(|e| panic!("invalid experiment spec: {e}"));
        let cfg = spec.sim_config(preset, l1);
        // CACTI cost of the mechanism's private metadata, modelled as a
        // small 4-way SRAM of 8-byte records at the spec's node.  The
        // SRAM is rounded up to the next power of two (what would be
        // built), and the "meta KB" column reports that *modelled*
        // capacity, so KB, mm² and nJ all describe the same structure.
        let bytes = prefetcher_state_bytes(&cfg.frontend);
        let (modeled, area, energy) = if bytes == 0 {
            (0, 0.0, 0.0)
        } else {
            let capacity = bytes.next_power_of_two().max(256);
            let g = CacheGeometry::new(capacity, 8, 4, 1);
            (capacity, area_mm2(&g, spec.tech), energy_nj_per_access(&g, spec.tech))
        };
        eprintln!("  ran mechanism {name}");
        rows.push((name, grid[0][0].clone(), modeled, area, energy));
    }
    print!("{:<10}", "bench");
    for (name, ..) in &rows {
        print!(" {name:>9}");
    }
    println!();
    let mut mcsv =
        std::fs::File::create(results_dir().join("related_work_mechanisms.csv")).unwrap();
    writeln!(mcsv, "bench,{}", mechanisms.iter().map(|m| m.0).collect::<Vec<_>>().join(","))
        .unwrap();
    for (bi, (bench, _)) in rows[0].1.per_bench.iter().enumerate() {
        print!("{bench:<10}");
        write!(mcsv, "{bench}").unwrap();
        for (_, grid, ..) in &rows {
            let ipc = grid.per_bench[bi].1.ipc();
            print!(" {ipc:>9.3}");
            write!(mcsv, ",{ipc:.4}").unwrap();
        }
        println!();
        writeln!(mcsv).unwrap();
    }
    for (label, f) in [
        ("HMEAN", None),
        ("meta KB", Some(0)),
        ("area mm2", Some(1)),
        ("nJ/access", Some(2)),
    ] {
        print!("{label:<10}");
        write!(mcsv, "{label}").unwrap();
        for &(_, ref grid, bytes, area, energy) in &rows {
            let v = match f {
                None => grid.hmean_ipc(),
                Some(0) => bytes as f64 / 1024.0,
                Some(1) => area,
                _ => energy,
            };
            print!(" {v:>9.3}");
            write!(mcsv, ",{v:.4}").unwrap();
        }
        println!();
        writeln!(mcsv).unwrap();
    }
    // Sanity: every mechanism actually runs (no wedged configuration).
    for (name, grid, ..) in &rows {
        assert!(grid.hmean_ipc() > 0.05, "{name} wedged: {}", grid.hmean_ipc());
    }

    // --- Six-mechanism comparison with address translation on. -----------
    // Every mechanism re-run with the default i-TLB threaded through the
    // fetch path: demand fetches and prefetch issues both pay (and train)
    // the same translation structure, so schemes that touch more distinct
    // pages show their real cost.  All six ride the FDP preset shape via
    // the spec `prefetcher` field, exactly like the mechanism table above.
    let itlb = ITlbConfig::default_config();
    println!(
        "\n# Mechanism comparison with i-TLB on ({}-entry {}-way, {} B pages, \
         {}-cycle walk; 4KB L1, 0.045um)",
        itlb.entries, itlb.assoc, itlb.page_bytes, itlb.miss_cycles
    );
    let mut tcsv =
        std::fs::File::create(results_dir().join("related_work_tlb.csv")).unwrap();
    writeln!(tcsv, "mechanism,hmean_ipc_no_tlb,hmean_ipc_tlb").unwrap();
    println!("{:<10} {:>9} {:>9}", "mechanism", "no-TLB", "TLB");
    for kind in PrefetcherKind::all() {
        let spec_off = ExperimentSpec {
            presets: vec![ConfigPreset::Fdp],
            prefetcher: Some(kind),
            ..base.clone()
        };
        let spec_on = ExperimentSpec { itlb: Some(itlb), ..spec_off.clone() };
        let off = try_run_spec_over(&spec_off, &w)
            .unwrap_or_else(|e| panic!("invalid experiment spec: {e}"));
        let on = try_run_spec_over(&spec_on, &w)
            .unwrap_or_else(|e| panic!("invalid experiment spec: {e}"));
        let (h_off, h_on) = (off[0][0].hmean_ipc(), on[0][0].hmean_ipc());
        println!("{:<10} {h_off:>9.3} {h_on:>9.3}", kind.id());
        writeln!(tcsv, "{},{h_off:.4},{h_on:.4}", kind.id()).unwrap();
        eprintln!("  ran {} with and without i-TLB", kind.id());
        assert!(h_on > 0.05, "{} wedged under translation: {h_on}", kind.id());
    }
    // CACTI cost of the i-TLB itself (16-byte tag+translation records in a
    // set-associative SRAM, rounded up to a buildable power of two), so
    // the TLB-on figure carries its own hardware-cost line.
    let tlb_capacity = itlb.state_bytes().next_power_of_two().max(256);
    let tlb_geom = CacheGeometry::new(tlb_capacity, 16, itlb.assoc, 1);
    let (tlb_area, tlb_energy) =
        (area_mm2(&tlb_geom, base.tech), energy_nj_per_access(&tlb_geom, base.tech));
    println!(
        "i-TLB cost: {:.1} KB modelled, {tlb_area:.4} mm2, {tlb_energy:.4} nJ/access",
        tlb_capacity as f64 / 1024.0
    );
    writeln!(tcsv, "itlb_modeled_kb,{:.4},", tlb_capacity as f64 / 1024.0).unwrap();
    writeln!(tcsv, "itlb_area_mm2,{tlb_area:.4},").unwrap();
    writeln!(tcsv, "itlb_energy_nj_per_access,{tlb_energy:.4},").unwrap();

    // --- Predictor ablation: CLGP quality tracks predictor quality. ------
    println!("\n# Predictor ablation — CLGP+L0 under different predictors");
    writeln!(csv, "predictor,hmean_ipc").unwrap();
    for (name, kind) in [
        ("stream predictor (paper)", PredictorKind::Stream),
        ("gshare 16K", PredictorKind::Gshare),
    ] {
        // The predictor is a first-class spec field: same experiment,
        // different `predictor`.
        let spec = ExperimentSpec { predictor: kind, ..base.clone() };
        let rows = try_run_spec_over(&spec, &w)
            .unwrap_or_else(|e| panic!("invalid experiment spec: {e}"));
        let row = &rows[0][0];
        let ipcs: Vec<f64> = row.per_bench.iter().map(|(_, s)| s.ipc()).collect();
        let h = harmonic_mean(&ipcs);
        println!("{name:<28} HMEAN {h:.3}");
        writeln!(csv, "{name},{h:.4}").unwrap();
        eprintln!("  ran {name}");
    }
    note_result("related_work", "see results/related_work.csv");
}
