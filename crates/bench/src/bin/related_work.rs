//! Related-work comparison (§2.1): classic next-N-line sequential
//! prefetching vs the branch-predictor-guided schemes, plus the predictor
//! ablation (stream predictor vs gshare) behind the paper's claim — via
//! \[4\]/\[16\] — that "branch prediction based prefetching outperforms table
//! based prefetching" and tracks predictor quality.

use prestage_bench::{config, exec_seed, note_result, results_dir, workloads};
use prestage_cacti::TechNode;
use prestage_sim::{
    harmonic_mean, pool_map, pool_threads, run_grid, ConfigPreset, Engine, PredictorKind,
    SimConfig,
};
use prestage_core::PrefetcherKind;
use std::io::Write;

fn main() {
    let w = workloads();
    let tech = TechNode::T045;
    let l1 = 4 << 10;

    // --- Prefetch scheme ladder: none -> NLP -> FDP -> CLGP. -------------
    let mut nlp_cfg = config(ConfigPreset::Fdp, tech, l1);
    nlp_cfg.frontend.prefetcher = PrefetcherKind::NextLine;
    let schemes: Vec<(&str, SimConfig)> = vec![
        ("no prefetch (base)", config(ConfigPreset::Base, tech, l1)),
        ("next-2-line", nlp_cfg),
        ("FDP", config(ConfigPreset::Fdp, tech, l1)),
        ("CLGP", config(ConfigPreset::Clgp, tech, l1)),
    ];
    println!("\n# Related work — prefetch scheme ladder (4KB L1, 0.045um)");
    std::fs::create_dir_all(results_dir()).unwrap();
    let mut csv = std::fs::File::create(results_dir().join("related_work.csv")).unwrap();
    writeln!(csv, "scheme,hmean_ipc").unwrap();
    // The whole ladder in one run_grid call on the shared cell pool.
    let configs: Vec<SimConfig> = schemes.iter().map(|(_, c)| *c).collect();
    let grids = run_grid(&configs, &w, exec_seed());
    let mut ladder = Vec::new();
    for ((name, _), r) in schemes.iter().zip(&grids) {
        let h = r.hmean_ipc();
        println!("{name:<22} HMEAN {h:.3}");
        writeln!(csv, "{name},{h:.4}").unwrap();
        ladder.push(h);
        eprintln!("  ran {name}");
    }
    assert!(ladder.windows(2).all(|p| p[1] >= p[0] * 0.97),
        "scheme ladder regressed unexpectedly: {ladder:?}");

    // --- Predictor ablation: CLGP quality tracks predictor quality. ------
    println!("\n# Predictor ablation — CLGP+L0 under different predictors");
    writeln!(csv, "predictor,hmean_ipc").unwrap();
    for (name, kind) in [
        ("stream predictor (paper)", PredictorKind::Stream),
        ("gshare 16K", PredictorKind::Gshare),
    ] {
        let cfg = config(ConfigPreset::ClgpL0, tech, l1);
        // The predictor override has no preset identity, so it rides the
        // executor directly rather than run_grid.
        let ipcs: Vec<f64> = pool_map(w.len(), pool_threads(), |i| {
            Engine::with_predictor(cfg, &w[i], exec_seed(), kind)
                .run()
                .ipc()
        });
        let h = harmonic_mean(&ipcs);
        println!("{name:<28} HMEAN {h:.3}");
        writeln!(csv, "{name},{h:.4}").unwrap();
        eprintln!("  ran {name}");
    }
    note_result("related_work", "see results/related_work.csv");
}
