//! Table 1: technological parameters predicted by the SIA.

use prestage_cacti::SIA_ROADMAP;

fn main() {
    println!("# Table 1 — SIA technology roadmap");
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Year",
        SIA_ROADMAP[0].year,
        SIA_ROADMAP[1].year,
        SIA_ROADMAP[2].year,
        SIA_ROADMAP[3].year,
        SIA_ROADMAP[4].year
    );
    print!("{:<22}", "Technology (um)");
    for e in &SIA_ROADMAP {
        print!(" {:>6}", e.feature_um);
    }
    println!();
    print!("{:<22}", "Clock Frequency (GHz)");
    for e in &SIA_ROADMAP {
        print!(" {:>6}", e.clock_ghz);
    }
    println!();
    print!("{:<22}", "Cycle time (ns)");
    for e in &SIA_ROADMAP {
        print!(" {:>6}", e.cycle_ns);
    }
    println!();
}
