//! Table 2: simulation parameters (the defaults of every run).

use prestage_bpred::StreamPredictorConfig;
use prestage_cacti::TechNode;
use prestage_core::FrontendConfig;
use prestage_sim::BackendConfig;

fn main() {
    let fe = FrontendConfig::base(TechNode::T045, 8 << 10);
    let be = BackendConfig::default();
    let sp = StreamPredictorConfig::default();
    println!("# Table 2 — simulation parameters");
    println!("Fetch/Issue/Commit      {} instructions", be.width);
    println!("RUU Size                {} instructions", be.ruu_size);
    println!(
        "Branch Predictor        {}K+{}K-entry stream pred., 1 cycle lat.",
        sp.l1_entries / 1024,
        sp.l2_entries / 1024
    );
    println!("RAS                     {}-entry", sp.ras_entries);
    println!("Pipeline depth          15 stages");
    println!(
        "L1 I-Cache              {}-way asc., 1 port, {}B/line",
        fe.l1_assoc, fe.line_bytes
    );
    println!(
        "L1 D-Cache              {}KB, {}-way, {}-cyc lat, {} ports, {}B/line",
        be.dcache_capacity >> 10,
        be.dcache_assoc,
        be.dcache_latency,
        be.dcache_ports,
        be.dcache_line
    );
    println!("L2 Cache                1MB, 2-way asc., 1 port, 128B/line");
    println!("Mem. lat.               200 cycles");
    println!("L2 bus BW               64B/cycle");
    println!("Pre. Buffer / L0 cache  {}B/line", fe.line_bytes);
}
