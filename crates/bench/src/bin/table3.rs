//! Table 3: L1 I-cache and L2 cache latencies per size and technology node,
//! from the calibrated CACTI model.

use prestage_bench::{size_label, L1_SIZES};
use prestage_cacti::{latency_cycles, CacheGeometry, TechNode};

fn main() {
    println!("# Table 3 — cache latencies (cycles)");
    print!("{:<12}", "Tech");
    for &s in &L1_SIZES {
        print!(" {:>6}", size_label(s));
    }
    println!(" {:>6}", "1MB");
    for node in [TechNode::T090, TechNode::T045] {
        print!("{:<12}", node.label());
        for &s in &L1_SIZES {
            let g = CacheGeometry::new(s, 64, 2, 1);
            print!(" {:>6}", latency_cycles(&g, node));
        }
        let l2 = CacheGeometry::new(1 << 20, 128, 2, 1);
        println!(" {:>6}", latency_cycles(&l2, node));
    }
}
