//! The paper's figures as declarations.
//!
//! Each figure is an [`ExperimentSpec`] (what to run) plus a
//! [`ReportKind`] (how to present it); [`run_figure`] is the whole figure
//! binary.  The environment's `PRESTAGE_*` overrides apply through the
//! spec's single [`env_overrides`](ExperimentSpec::env_overrides) layer,
//! and the same named specs are reachable from the `prestage` CLI
//! (`prestage run fig5b`, `prestage list`).

use crate::report::{self, ReportKind};
use prestage_cacti::TechNode;
use prestage_sim::{run_spec, ConfigPreset, ExperimentSpec};

/// One declared figure.
#[derive(Debug, Clone, Copy)]
pub struct Figure {
    /// Name: the CLI handle and the CSV base name ("fig5a" → fig5a.csv).
    pub name: &'static str,
    pub title: &'static str,
    pub report: ReportKind,
    /// The figure's experiment, before environment overrides.
    pub make_spec: fn() -> ExperimentSpec,
}

/// A spec over the full L1 axis at 0.045 µm with the given presets — the
/// shape of most figures; the defaults carry the §5.1 run lengths.
fn sweep_spec(presets: &[ConfigPreset]) -> ExperimentSpec {
    ExperimentSpec {
        presets: presets.to_vec(),
        ..ExperimentSpec::default()
    }
}

fn fig1() -> ExperimentSpec {
    use ConfigPreset::*;
    sweep_spec(&[Ideal, BasePipelined, BaseL0, Base])
}

fn fig2() -> ExperimentSpec {
    use ConfigPreset::*;
    sweep_spec(&[FdpL0, Fdp])
}

fn fig4() -> ExperimentSpec {
    use ConfigPreset::*;
    sweep_spec(&[ClgpL0, Clgp])
}

/// Figure 5's legend: every technique, proposed configurations first.
const FIG5_PRESETS: [ConfigPreset; 6] = [
    ConfigPreset::ClgpL0Pb16,
    ConfigPreset::ClgpL0,
    ConfigPreset::FdpL0Pb16,
    ConfigPreset::FdpL0,
    ConfigPreset::BasePipelined,
    ConfigPreset::BaseL0,
];

fn fig5a() -> ExperimentSpec {
    ExperimentSpec {
        tech: TechNode::T090,
        ..sweep_spec(&FIG5_PRESETS)
    }
}

fn fig5b() -> ExperimentSpec {
    sweep_spec(&FIG5_PRESETS)
}

fn fig6() -> ExperimentSpec {
    use ConfigPreset::*;
    ExperimentSpec {
        l1_sizes: vec![8 << 10],
        ..sweep_spec(&[BasePipelined, FdpL0Pb16, ClgpL0Pb16])
    }
}

fn fig7a() -> ExperimentSpec {
    use ConfigPreset::*;
    sweep_spec(&[Fdp, Clgp])
}

fn fig7b() -> ExperimentSpec {
    use ConfigPreset::*;
    sweep_spec(&[FdpL0, ClgpL0])
}

fn fig8() -> ExperimentSpec {
    use ConfigPreset::*;
    sweep_spec(&[Fdp, Clgp])
}

/// Every declared figure, paper order.
pub const FIGURES: [Figure; 9] = [
    Figure {
        name: "fig1",
        title: "Figure 1 — L1 latency vs IPC (0.045um, HMEAN over SPECint2000)",
        report: ReportKind::Sweep,
        make_spec: fig1,
    },
    Figure {
        name: "fig2",
        title: "Figure 2(b) — FDP with/without L0 (0.045um)",
        report: ReportKind::Sweep,
        make_spec: fig2,
    },
    Figure {
        name: "fig4",
        title: "Figure 4(b) — CLGP with/without L0 (0.045um)",
        report: ReportKind::Sweep,
        make_spec: fig4,
    },
    Figure {
        name: "fig5a",
        title: "Figure 5(a) — all techniques at 0.09um",
        report: ReportKind::Sweep,
        make_spec: fig5a,
    },
    Figure {
        name: "fig5b",
        title: "Figure 5(b) — all techniques at 0.045um",
        report: ReportKind::Sweep,
        make_spec: fig5b,
    },
    Figure {
        name: "fig6",
        title: "Figure 6 — per-benchmark IPC (8KB L1, 0.045um)",
        report: ReportKind::PerBench,
        make_spec: fig6,
    },
    Figure {
        name: "fig7a",
        title: "Figure 7(a) — fetch source distribution (%, 0.045um)",
        report: ReportKind::FetchSources,
        make_spec: fig7a,
    },
    Figure {
        name: "fig7b",
        title: "Figure 7(b) — fetch source distribution with L0 (%, 0.045um)",
        report: ReportKind::FetchSources,
        make_spec: fig7b,
    },
    Figure {
        name: "fig8",
        title: "Figure 8 — prefetch source distribution (%, 0.045um)",
        report: ReportKind::PrefetchSources,
        make_spec: fig8,
    },
];

/// Look up a figure declaration by name.
pub fn by_name(name: &str) -> Option<&'static Figure> {
    FIGURES.iter().find(|f| f.name == name)
}

/// Run one figure end-to-end: declared spec → env overrides → cell pool →
/// report + CSV.  This *is* the body of every `fig*` binary.
///
/// # Panics
/// On an unknown name or an invalid spec (e.g. a typo'd `PRESTAGE_BENCH`),
/// with the valid alternatives in the message.
pub fn run_figure(name: &str) {
    let fig = by_name(name).unwrap_or_else(|| {
        let names: Vec<&str> = FIGURES.iter().map(|f| f.name).collect();
        panic!("unknown figure {name:?}; declared figures: {}", names.join(", "))
    });
    let spec = (fig.make_spec)().env_overrides();
    let t0 = std::time::Instant::now();
    let rows = run_spec(&spec);
    eprintln!(
        "  swept {} cells ({} presets x {} sizes x {} benchmarks) in {:.2}s",
        spec.presets.len() * spec.l1_sizes.len() * rows[0][0].per_bench.len(),
        spec.presets.len(),
        spec.l1_sizes.len(),
        rows[0][0].per_bench.len(),
        t0.elapsed().as_secs_f64()
    );
    report::render(fig.report, fig.title, fig.name, &spec, &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_names_are_unique_and_specs_validate() {
        let mut seen = std::collections::HashSet::new();
        for fig in &FIGURES {
            assert!(seen.insert(fig.name), "duplicate figure {}", fig.name);
            let spec = (fig.make_spec)();
            spec.validate().unwrap_or_else(|e| panic!("{}: {e}", fig.name));
            // Declared figures serialize (the golden files in specs/ are
            // generated from these).
            let back = ExperimentSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec, "{}", fig.name);
        }
        assert!(by_name("fig6").is_some());
        assert!(by_name("fig3").is_none());
    }

    #[test]
    fn per_bench_figures_have_one_size() {
        for fig in &FIGURES {
            if fig.report == ReportKind::PerBench {
                assert_eq!((fig.make_spec)().l1_sizes.len(), 1, "{}", fig.name);
            }
        }
    }
}
