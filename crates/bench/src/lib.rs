//! # prestage-bench
//!
//! The experiment harness: shared sweep plumbing used by the per-figure
//! binaries in `src/bin/` (one per table/figure of the paper — see
//! DESIGN.md §5 for the index) and by the Criterion benches in `benches/`.
//!
//! Sweeps run on `prestage_sim`'s flat cell pool: [`ipc_sweep`] flattens
//! the whole (preset × L1-size × benchmark) grid into `SweepCell`s and
//! evaluates them on one work-stealing pool, so every figure binary keeps
//! all cores busy across cell boundaries.
//!
//! Run lengths and seeds are controlled by environment variables so the
//! full reproduction and quick smoke runs share one code path:
//!
//! * `PRESTAGE_WARMUP`    — warm-up instructions per run (default 200 000)
//! * `PRESTAGE_MEASURE`   — measured instructions per run (default 1 000 000)
//! * `PRESTAGE_SEED`      — workload *generation* seed (default 42)
//! * `PRESTAGE_EXEC_SEED` — engine *execution* seed (default 42); split
//!   from `PRESTAGE_SEED` so workload shape and execution jitter can be
//!   varied independently
//! * `PRESTAGE_BENCH`     — comma-separated benchmark filter (default: all 12)
//! * `PRESTAGE_THREADS`   — worker threads for the sweep pool (default:
//!   available parallelism)
//! * `PRESTAGE_RESULTS_DIR` — where CSV/notes artifacts land (default:
//!   `<workspace root>/results`, independent of the invocation cwd)
//!
//! Malformed numeric values fail loudly (`PRESTAGE_MEASURE=1e6` aborts with
//! the variable name and offending value instead of silently running the
//! default length).

pub mod perf;

use prestage_cacti::TechNode;
use prestage_sim::{run_cells, CellGrid, ConfigPreset, GridResult, SimConfig};
use prestage_workload::{build, specint2000, Workload};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// The paper's L1 I-cache sweep: 256 B … 64 KB.
pub const L1_SIZES: [usize; 9] = [
    256,
    512,
    1 << 10,
    2 << 10,
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
];

/// Human label for a size ("256B", "4K", "1.5K", ...).
///
/// Non-power-of-two sizes render exactly (`1536` → `"1.5K"`, never the
/// truncated `"1K"` that would collide with `1024`): `f64`'s `Display` is
/// the shortest exact representation, so distinct byte counts always get
/// distinct labels.
pub fn size_label(bytes: usize) -> String {
    if bytes < 1024 {
        format!("{bytes}B")
    } else {
        format!("{}K", bytes as f64 / 1024.0)
    }
}

/// Parse an env-var value, failing loudly on malformed input: a typo'd
/// `PRESTAGE_MEASURE=1e6` must abort, not silently run the default length.
/// Empty/whitespace values count as unset.
fn parse_env_u64(name: &str, value: Option<&str>, default: u64) -> u64 {
    match value.map(str::trim) {
        None | Some("") => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            panic!(
                "{name} must be an unsigned integer, got {v:?} \
                 (write e.g. {name}=1000000; scientific notation is not supported)"
            )
        }),
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    let value = std::env::var_os(name).map(|v| v.to_string_lossy().into_owned());
    parse_env_u64(name, value.as_deref(), default)
}

/// (warm-up, measured) instruction counts from the environment.
pub fn run_lengths() -> (u64, u64) {
    (
        env_u64("PRESTAGE_WARMUP", 200_000),
        env_u64("PRESTAGE_MEASURE", 1_000_000),
    )
}

/// Workload generation seed (`PRESTAGE_SEED`).
pub fn seed() -> u64 {
    env_u64("PRESTAGE_SEED", 42)
}

/// Engine execution seed (`PRESTAGE_EXEC_SEED`) — deliberately independent
/// of [`seed`]: regenerating workloads and re-jittering execution are
/// different experiments.
pub fn exec_seed() -> u64 {
    env_u64("PRESTAGE_EXEC_SEED", 42)
}

/// Directory where sweep artifacts (CSVs, notes, perf JSON) land:
/// `PRESTAGE_RESULTS_DIR` if set, else `<workspace root>/results` — derived
/// once, independent of the invocation cwd.
///
/// The workspace root is the compile-time manifest root when it still
/// exists (the normal case — and immune to a shared `CARGO_TARGET_DIR`
/// parked inside some *other* workspace); if the checkout moved since the
/// build, it is recovered by walking up from the running binary to the
/// nearest `[workspace]` manifest.
pub fn results_dir() -> &'static Path {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        if let Some(d) = std::env::var_os("PRESTAGE_RESULTS_DIR") {
            return PathBuf::from(d);
        }
        // crates/bench → crates → workspace root, fixed at compile time.
        let baked = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."));
        if baked.is_dir() {
            return baked.join("results");
        }
        let near_exe = std::env::current_exe().ok().and_then(|exe| {
            exe.ancestors()
                .find(|d| {
                    std::fs::read_to_string(d.join("Cargo.toml"))
                        .is_ok_and(|m| m.contains("[workspace]"))
                })
                .map(Path::to_path_buf)
        });
        near_exe.unwrap_or(baked).join("results")
    })
}

/// Build the SPECint2000 workload set (honouring `PRESTAGE_BENCH`).
pub fn workloads() -> Vec<Workload> {
    let filter: Option<Vec<String>> = std::env::var("PRESTAGE_BENCH")
        .ok()
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect());
    let seed = seed();
    specint2000()
        .into_iter()
        .filter(|p| {
            filter
                .as_ref()
                .is_none_or(|f| f.iter().any(|n| n == p.name))
        })
        .map(|p| build(&p, seed))
        .collect()
}

/// Build a preset configuration with environment-driven run lengths.
pub fn config(preset: ConfigPreset, tech: TechNode, l1: usize) -> SimConfig {
    let (w, m) = run_lengths();
    SimConfig::preset(preset, tech, l1).with_insts(w, m)
}

/// One row of an IPC sweep: a preset across all L1 sizes.
pub struct SweepRow {
    pub preset: ConfigPreset,
    pub results: Vec<(usize, GridResult)>,
}

/// Sweep `presets` × `sizes` at `tech` over `workloads`.
///
/// The whole grid is flattened into one cell list and evaluated on a
/// single work-stealing pool — cores never idle between (preset, size)
/// cells — then merged back into ordered rows.  Bit-exact for any thread
/// count or cell order.
pub fn ipc_sweep(
    presets: &[ConfigPreset],
    sizes: &[usize],
    tech: TechNode,
    workloads: &[Workload],
) -> Vec<SweepRow> {
    let grid = CellGrid::new(
        presets.to_vec(),
        tech,
        sizes.to_vec(),
        workloads.len(),
        exec_seed(),
    );
    let t0 = std::time::Instant::now();
    let results = run_cells(&grid.cells(), workloads, |c| config(c.preset, c.tech, c.l1));
    eprintln!(
        "  swept {} cells ({} presets x {} sizes x {} benchmarks) in {:.2}s",
        grid.n_cells(),
        presets.len(),
        sizes.len(),
        workloads.len(),
        t0.elapsed().as_secs_f64()
    );
    let merged = grid.merge(results, workloads);
    presets
        .iter()
        .zip(merged)
        .map(|(&preset, row)| SweepRow {
            preset,
            results: sizes.iter().copied().zip(row).collect(),
        })
        .collect()
}

/// Print an IPC sweep as an aligned text table (the figure's data series).
/// A cell whose HMEAN collapsed to zero gets its culprit benchmarks named
/// on stderr instead of hiding inside the table.
pub fn print_sweep(title: &str, rows: &[SweepRow], sizes: &[usize]) {
    println!("\n# {title}");
    print!("{:<16}", "config");
    for &s in sizes {
        print!(" {:>8}", size_label(s));
    }
    println!();
    for row in rows {
        print!("{:<16}", row.preset.label());
        for (size, r) in &row.results {
            print!(" {:>8.3}", r.hmean_ipc());
            let zeroed = r.zero_ipc_benches();
            if !zeroed.is_empty() {
                eprintln!(
                    "  WARNING: {} @ {}: zero IPC from {} — HMEAN reported as 0",
                    row.preset.label(),
                    size_label(*size),
                    zeroed.join(", ")
                );
            }
        }
        println!();
    }
}

/// Write an IPC sweep to `<results dir>/<name>.csv` (plus a per-benchmark
/// `<name>_detail.csv`), returning the path of the summary CSV.
pub fn write_sweep_csv(name: &str, rows: &[SweepRow], sizes: &[usize]) -> std::io::Result<PathBuf> {
    let labels: Vec<String> = sizes.iter().map(|&s| size_label(s)).collect();
    {
        let unique: std::collections::HashSet<&str> =
            labels.iter().map(String::as_str).collect();
        assert_eq!(
            unique.len(),
            labels.len(),
            "size labels collide in CSV header: {labels:?}"
        );
    }
    let dir = results_dir();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    write!(f, "config")?;
    for label in &labels {
        write!(f, ",{label}")?;
    }
    writeln!(f)?;
    for row in rows {
        write!(f, "{}", row.preset.label())?;
        for (_, r) in &row.results {
            write!(f, ",{:.4}", r.hmean_ipc())?;
        }
        writeln!(f)?;
    }
    // Per-benchmark detail sheet.
    let mut f = std::fs::File::create(dir.join(format!("{name}_detail.csv")))?;
    writeln!(f, "config,l1,bench,ipc,mpki,pb_share,l0_share,l1_share")?;
    for row in rows {
        for (size, r) in &row.results {
            for (name_b, s) in &r.per_bench {
                writeln!(
                    f,
                    "{},{},{},{:.4},{:.2},{:.4},{:.4},{:.4}",
                    row.preset.label(),
                    size_label(*size),
                    name_b,
                    s.ipc(),
                    s.mpki(),
                    s.front.fetch_share(s.front.fetch_pb),
                    s.front.fetch_share(s.front.fetch_l0),
                    s.front.fetch_share(s.front.fetch_l1),
                )?;
            }
        }
    }
    Ok(path)
}

/// Append a record of measured headline values (consumed by EXPERIMENTS.md
/// upkeep); returns the notes file's path.
pub fn note_result(name: &str, text: &str) -> PathBuf {
    println!("[{name}] {text}");
    let dir = results_dir();
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("headline_notes.txt");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("results dir writable");
    let _ = writeln!(f, "[{name}] {text}");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_labels() {
        assert_eq!(size_label(256), "256B");
        assert_eq!(size_label(4096), "4K");
        assert_eq!(size_label(64 << 10), "64K");
    }

    #[test]
    fn size_labels_are_exact_for_odd_sizes() {
        // 1536 used to truncate to "1K" and collide with 1024.
        assert_eq!(size_label(1536), "1.5K");
        assert_eq!(size_label(2560), "2.5K");
        assert_ne!(size_label(1536), size_label(1024));
        // Distinct sizes never collide across a dense range.
        let labels: std::collections::HashSet<String> =
            (256..4096).map(size_label).collect();
        assert_eq!(labels.len(), 4096 - 256);
    }

    #[test]
    fn sizes_match_paper_axis() {
        assert_eq!(L1_SIZES.len(), 9);
        assert_eq!(L1_SIZES[0], 256);
        assert_eq!(L1_SIZES[8], 64 << 10);
        for w in L1_SIZES.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn default_run_lengths() {
        // Env-free defaults (tests may run with env set; only check order).
        let (w, m) = run_lengths();
        assert!(w >= 1 && m >= w);
    }

    #[test]
    fn env_parsing_accepts_good_values_and_defaults() {
        assert_eq!(parse_env_u64("X", None, 7), 7);
        assert_eq!(parse_env_u64("X", Some(""), 7), 7);
        assert_eq!(parse_env_u64("X", Some("  "), 7), 7);
        assert_eq!(parse_env_u64("X", Some("123"), 7), 123);
        assert_eq!(parse_env_u64("X", Some(" 42 "), 7), 42);
    }

    #[test]
    #[should_panic(expected = "PRESTAGE_MEASURE must be an unsigned integer")]
    fn env_parsing_rejects_scientific_notation() {
        parse_env_u64("PRESTAGE_MEASURE", Some("1e6"), 0);
    }

    #[test]
    #[should_panic(expected = "must be an unsigned integer")]
    fn env_parsing_rejects_negatives() {
        parse_env_u64("PRESTAGE_WARMUP", Some("-5"), 0);
    }

    #[test]
    fn results_dir_is_cwd_independent() {
        // Either the env override or the workspace-root default — never a
        // bare relative "results" that depends on the invocation cwd.
        let dir = results_dir();
        assert!(
            dir.is_absolute() || std::env::var_os("PRESTAGE_RESULTS_DIR").is_some(),
            "results dir {dir:?} would depend on the cwd"
        );
    }
}
