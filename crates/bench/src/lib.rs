//! # prestage-bench
//!
//! The experiment harness: shared sweep plumbing used by the per-figure
//! binaries in `src/bin/` (one per table/figure of the paper — see
//! DESIGN.md §5 for the index) and by the Criterion benches in `benches/`.
//!
//! Run lengths are controlled by environment variables so the full
//! reproduction and quick smoke runs share one code path:
//!
//! * `PRESTAGE_WARMUP`  — warm-up instructions per run (default 200 000)
//! * `PRESTAGE_MEASURE` — measured instructions per run (default 1 000 000)
//! * `PRESTAGE_SEED`    — workload generation seed (default 42)
//! * `PRESTAGE_BENCH`   — comma-separated benchmark filter (default: all 12)

use prestage_cacti::TechNode;
use prestage_sim::{run_config_over, ConfigPreset, GridResult, SimConfig};
use prestage_workload::{build, specint2000, Workload};
use std::io::Write;
use std::path::Path;

/// The paper's L1 I-cache sweep: 256 B … 64 KB.
pub const L1_SIZES: [usize; 9] = [
    256,
    512,
    1 << 10,
    2 << 10,
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
];

/// Human label for a size ("256B", "4K", ...).
pub fn size_label(bytes: usize) -> String {
    if bytes < 1024 {
        format!("{bytes}B")
    } else {
        format!("{}K", bytes / 1024)
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// (warm-up, measured) instruction counts from the environment.
pub fn run_lengths() -> (u64, u64) {
    (
        env_u64("PRESTAGE_WARMUP", 200_000),
        env_u64("PRESTAGE_MEASURE", 1_000_000),
    )
}

/// Workload generation seed.
pub fn seed() -> u64 {
    env_u64("PRESTAGE_SEED", 42)
}

/// Build the SPECint2000 workload set (honouring `PRESTAGE_BENCH`).
pub fn workloads() -> Vec<Workload> {
    let filter: Option<Vec<String>> = std::env::var("PRESTAGE_BENCH")
        .ok()
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect());
    let seed = seed();
    specint2000()
        .into_iter()
        .filter(|p| {
            filter
                .as_ref()
                .is_none_or(|f| f.iter().any(|n| n == p.name))
        })
        .map(|p| build(&p, seed))
        .collect()
}

/// Build a preset configuration with environment-driven run lengths.
pub fn config(preset: ConfigPreset, tech: TechNode, l1: usize) -> SimConfig {
    let (w, m) = run_lengths();
    SimConfig::preset(preset, tech, l1).with_insts(w, m)
}

/// One row of an IPC sweep: a preset across all L1 sizes.
pub struct SweepRow {
    pub preset: ConfigPreset,
    pub results: Vec<(usize, GridResult)>,
}

/// Sweep `presets` × `sizes` at `tech` over `workloads`.
pub fn ipc_sweep(
    presets: &[ConfigPreset],
    sizes: &[usize],
    tech: TechNode,
    workloads: &[Workload],
) -> Vec<SweepRow> {
    presets
        .iter()
        .map(|&preset| {
            let results = sizes
                .iter()
                .map(|&s| {
                    let cfg = config(preset, tech, s);
                    (s, run_config_over(cfg, workloads, seed()))
                })
                .collect();
            eprintln!("  swept {}", preset.label());
            SweepRow { preset, results }
        })
        .collect()
}

/// Print an IPC sweep as an aligned text table (the figure's data series).
pub fn print_sweep(title: &str, rows: &[SweepRow], sizes: &[usize]) {
    println!("\n# {title}");
    print!("{:<16}", "config");
    for &s in sizes {
        print!(" {:>8}", size_label(s));
    }
    println!();
    for row in rows {
        print!("{:<16}", row.preset.label());
        for (_, r) in &row.results {
            print!(" {:>8.3}", r.hmean_ipc());
        }
        println!();
    }
}

/// Write an IPC sweep to `results/<name>.csv`.
pub fn write_sweep_csv(name: &str, rows: &[SweepRow], sizes: &[usize]) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(format!("{name}.csv")))?;
    write!(f, "config")?;
    for &s in sizes {
        write!(f, ",{}", size_label(s))?;
    }
    writeln!(f)?;
    for row in rows {
        write!(f, "{}", row.preset.label())?;
        for (_, r) in &row.results {
            write!(f, ",{:.4}", r.hmean_ipc())?;
        }
        writeln!(f)?;
    }
    // Per-benchmark detail sheet.
    let mut f = std::fs::File::create(dir.join(format!("{name}_detail.csv")))?;
    writeln!(f, "config,l1,bench,ipc,mpki,pb_share,l0_share,l1_share")?;
    for row in rows {
        for (size, r) in &row.results {
            for (name_b, s) in &r.per_bench {
                writeln!(
                    f,
                    "{},{},{},{:.4},{:.2},{:.4},{:.4},{:.4}",
                    row.preset.label(),
                    size_label(*size),
                    name_b,
                    s.ipc(),
                    s.mpki(),
                    s.front.fetch_share(s.front.fetch_pb),
                    s.front.fetch_share(s.front.fetch_l0),
                    s.front.fetch_share(s.front.fetch_l1),
                )?;
            }
        }
    }
    Ok(())
}

/// Append a record of measured headline values (consumed by EXPERIMENTS.md
/// upkeep).
pub fn note_result(name: &str, text: &str) {
    println!("[{name}] {text}");
    let _ = std::fs::create_dir_all("results");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("results/headline_notes.txt")
        .expect("results dir writable");
    let _ = writeln!(f, "[{name}] {text}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_labels() {
        assert_eq!(size_label(256), "256B");
        assert_eq!(size_label(4096), "4K");
        assert_eq!(size_label(64 << 10), "64K");
    }

    #[test]
    fn sizes_match_paper_axis() {
        assert_eq!(L1_SIZES.len(), 9);
        assert_eq!(L1_SIZES[0], 256);
        assert_eq!(L1_SIZES[8], 64 << 10);
        for w in L1_SIZES.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn default_run_lengths() {
        // Env-free defaults (tests may run with env set; only check order).
        let (w, m) = run_lengths();
        assert!(w >= 1 && m >= w);
    }
}
