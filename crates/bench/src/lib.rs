//! # prestage-bench
//!
//! The experiment harness: figure/table binaries in `src/bin/` (one per
//! table/figure of the paper — see DESIGN.md §5 for the index), the
//! Criterion benches in `benches/`, and the shared presentation layer.
//!
//! Since the `ExperimentSpec` redesign the harness has three layers:
//!
//! * **What to run** is an [`prestage_sim::ExperimentSpec`] — the only
//!   way experiments are configured.  The `PRESTAGE_*` environment knobs
//!   survive as a single override layer
//!   ([`ExperimentSpec::env_overrides`](prestage_sim::ExperimentSpec::env_overrides));
//!   no binary reads them directly.
//! * **Which figure is which** lives in [`figures`]: each figure is a
//!   declared spec plus a [`report::ReportKind`], and
//!   [`figures::run_figure`] is the entire body of every `fig*` binary.
//!   The same named specs drive `prestage run <name>`.
//! * **How results land on disk** is [`report`] (tables + CSVs) and
//!   [`perf`] (the CI perf artifact), all under [`results_dir`].
//!
//! Two environment variables remain artifact plumbing rather than
//! experiment configuration, and are documented as such in the README:
//! `PRESTAGE_RESULTS_DIR` (where CSVs/notes/perf JSON land) and
//! `PRESTAGE_PREV_JSON` (an explicit previous CI artifact for `ci_grid`).

pub mod figures;
pub mod perf;
pub mod report;

use std::io::Write;
use std::path::PathBuf;

/// The paper's L1 I-cache sweep axis, re-exported from the spec module.
pub use prestage_sim::L1_SIZES;

/// Where sweep artifacts land — re-exported from `prestage_sim` (the
/// anchoring moved down so the `prestage serve` daemon shares it without
/// depending on the figure harness); see
/// [`prestage_sim::results_dir`] for the resolution rules.
pub use prestage_sim::results_dir;

/// Human label for a size ("256B", "4K", "1.5K", ...).
///
/// Non-power-of-two sizes render exactly (`1536` → `"1.5K"`, never the
/// truncated `"1K"` that would collide with `1024`): `f64`'s `Display` is
/// the shortest exact representation, so distinct byte counts always get
/// distinct labels.
pub fn size_label(bytes: usize) -> String {
    if bytes < 1024 {
        format!("{bytes}B")
    } else {
        format!("{}K", bytes as f64 / 1024.0)
    }
}

/// Append a record of measured headline values (consumed by EXPERIMENTS.md
/// upkeep); returns the notes file's path.
pub fn note_result(name: &str, text: &str) -> PathBuf {
    println!("[{name}] {text}");
    let dir = results_dir();
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("headline_notes.txt");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("results dir writable");
    let _ = writeln!(f, "[{name}] {text}");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_labels() {
        assert_eq!(size_label(256), "256B");
        assert_eq!(size_label(4096), "4K");
        assert_eq!(size_label(64 << 10), "64K");
    }

    #[test]
    fn size_labels_are_exact_for_odd_sizes() {
        // 1536 used to truncate to "1K" and collide with 1024.
        assert_eq!(size_label(1536), "1.5K");
        assert_eq!(size_label(2560), "2.5K");
        assert_ne!(size_label(1536), size_label(1024));
        // Distinct sizes never collide across a dense range.
        let labels: std::collections::HashSet<String> =
            (256..4096).map(size_label).collect();
        assert_eq!(labels.len(), 4096 - 256);
    }

    #[test]
    fn sizes_match_paper_axis() {
        assert_eq!(L1_SIZES.len(), 9);
        assert_eq!(L1_SIZES[0], 256);
        assert_eq!(L1_SIZES[8], 64 << 10);
        for w in L1_SIZES.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn results_dir_reexport_is_cwd_independent() {
        // Either the env override or the workspace-root default — never a
        // bare relative "results" that depends on the invocation cwd.
        let dir = results_dir();
        assert!(
            dir.is_absolute() || std::env::var_os("PRESTAGE_RESULTS_DIR").is_some(),
            "results dir {dir:?} would depend on the cwd"
        );
    }
}
