//! Per-run performance artifacts for CI: one JSON report
//! (`results/ci_grid.json`) tracking both the mini-grid's per-row numbers
//! *and* the Criterion-shim micro-bench medians, plus a differ that flags
//! large movement against the previous run.
//!
//! Serialization rides the shared [`prestage_json`] module (the original
//! hand-rolled line scanner this module started as was promoted there).
//! Anything that does not parse as a complete schema-2 report — a future
//! schema, a truncated cache restore — reads as "no baseline" rather than
//! silently comparing less.
//!
//! Micro-bench medians arrive via the Criterion shim's
//! `CRITERION_MEDIANS_FILE` hook (vendor/criterion): each
//! `bench_function` appends a `name<TAB>median_ns` line, and
//! [`parse_medians_tsv`] folds the file into the report so one artifact
//! tracks grid IPC and hot-path latencies together (the ROADMAP's CI
//! perf-tracking item).

use prestage_json::Json;

/// One (preset, L1 size) row of the CI mini-grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellPerf {
    /// Preset label (e.g. `"CLGP+L0"`), or a mechanism id (`"mana"`) for
    /// the prefetcher-override rows.
    pub preset: String,
    pub l1: usize,
    /// Deterministic given seeds and run lengths — any movement at all
    /// means simulator behaviour changed.
    pub hmean_ipc: f64,
    /// Median wall-clock of the row's cells on this host (noisy; only
    /// large movements are meaningful).
    pub median_cell_wall_s: f64,
    /// Fastest cell of the row — with `max`, the raw data for the
    /// ROADMAP's runner-noise characterization: once enough artifacts
    /// record the per-row spread, the warning band can be tightened into
    /// a failure threshold with evidence instead of guesswork.
    pub min_cell_wall_s: f64,
    /// Slowest cell of the row.
    pub max_cell_wall_s: f64,
}

impl CellPerf {
    /// Within-row spread `max/min - 1`: the single-run noise proxy the
    /// escalation decision will be based on.
    pub fn wall_spread(&self) -> f64 {
        rel_delta(self.min_cell_wall_s, self.max_cell_wall_s)
    }
}

/// Median per-iteration latency of one Criterion-shim micro-bench
/// (e.g. `"engine/crafty_20k"`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMedian {
    pub name: String,
    pub median_ns: f64,
}

/// Throughput of the `prestage serve` orchestrator on this host, measured
/// by `ci_grid` driving a real scheduler over a small sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ServePerf {
    /// Jobs completed per second on a fresh (cold-cache) sweep —
    /// scheduler + journal + cache overhead on top of the cell sims.
    pub jobs_per_s: f64,
    /// Latency of resubmitting the identical sweep once cached: the pure
    /// cache-hit path (spec hash + artifact lookup, no simulation).
    pub cache_hit_s: f64,
}

/// A whole CI perf report.  The artifact's schema number is not a field:
/// [`PerfReport::to_json`] always writes [`PERF_SCHEMA`] and `from_json`
/// only accepts it, so a report that would be rejected by its own reader
/// cannot be constructed.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    pub total_wall_s: f64,
    pub cells: Vec<CellPerf>,
    /// Micro-bench medians; empty when no medians file was present.
    pub benches: Vec<BenchMedian>,
    /// Serve-orchestrator throughput; `None` when the measurement was
    /// skipped (serialized as JSON `null`).
    pub serve: Option<ServePerf>,
}

/// Current artifact schema.  2 added the `benches` section; 3 added the
/// per-row min/max cell wall-clock (noise characterization); 4 added the
/// `serve` orchestrator-throughput section.  Earlier-schema baselines
/// read as "no baseline" for one run after an upgrade.
pub const PERF_SCHEMA: u32 = 4;

/// Relative change `new/old - 1`, with a zero/zero as no change and a
/// from-zero jump as +inf.
fn rel_delta(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        new / old - 1.0
    }
}

impl PerfReport {
    pub fn to_json(&self) -> String {
        Json::obj([
            ("schema", u64::from(PERF_SCHEMA).into()),
            ("total_wall_s", self.total_wall_s.into()),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("preset", c.preset.as_str().into()),
                                ("l1", c.l1.into()),
                                ("hmean_ipc", c.hmean_ipc.into()),
                                ("median_cell_wall_s", c.median_cell_wall_s.into()),
                                ("min_cell_wall_s", c.min_cell_wall_s.into()),
                                ("max_cell_wall_s", c.max_cell_wall_s.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "benches",
                Json::Arr(
                    self.benches
                        .iter()
                        .map(|b| {
                            Json::obj([
                                ("name", b.name.as_str().into()),
                                ("median_ns", b.median_ns.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "serve",
                match &self.serve {
                    None => Json::Null,
                    Some(s) => Json::obj([
                        ("jobs_per_s", s.jobs_per_s.into()),
                        ("cache_hit_s", s.cache_hit_s.into()),
                    ]),
                },
            ),
        ])
        .pretty()
    }

    /// Parse a report previously written by [`PerfReport::to_json`].
    /// Returns `None` on anything that does not look like a complete
    /// current-schema report, so CI treats a stale or damaged artifact as
    /// "no baseline" rather than silently comparing less.
    pub fn from_json(text: &str) -> Option<PerfReport> {
        let v = Json::parse(text).ok()?;
        if v.get("schema")?.as_u64()? as u32 != PERF_SCHEMA {
            return None;
        }
        let cells = v
            .get("cells")?
            .as_arr()?
            .iter()
            .map(|c| {
                Some(CellPerf {
                    preset: c.get("preset")?.as_str()?.to_string(),
                    l1: c.get("l1")?.as_usize()?,
                    hmean_ipc: c.get("hmean_ipc")?.as_f64()?,
                    median_cell_wall_s: c.get("median_cell_wall_s")?.as_f64()?,
                    min_cell_wall_s: c.get("min_cell_wall_s")?.as_f64()?,
                    max_cell_wall_s: c.get("max_cell_wall_s")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        if cells.is_empty() {
            return None;
        }
        let benches = v
            .get("benches")?
            .as_arr()?
            .iter()
            .map(|b| {
                Some(BenchMedian {
                    name: b.get("name")?.as_str()?.to_string(),
                    median_ns: b.get("median_ns")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let serve = match v.get("serve")? {
            Json::Null => None,
            s => Some(ServePerf {
                jobs_per_s: s.get("jobs_per_s")?.as_f64()?,
                cache_hit_s: s.get("cache_hit_s")?.as_f64()?,
            }),
        };
        Some(PerfReport {
            total_wall_s: v.get("total_wall_s")?.as_f64()?,
            cells,
            benches,
            serve,
        })
    }
}

/// Parse the Criterion shim's medians file: one `name<TAB>median_ns` line
/// per benchmark, later lines winning on re-run (append semantics).
/// Malformed lines are a loud error — the file is machine-written, so
/// damage means the pipeline is broken.
pub fn parse_medians_tsv(text: &str) -> Result<Vec<BenchMedian>, String> {
    let mut out: Vec<BenchMedian> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (name, ns) = line
            .split_once('\t')
            .ok_or_else(|| format!("medians line {} has no tab: {line:?}", i + 1))?;
        let median_ns: f64 = ns
            .trim()
            .parse()
            .map_err(|_| format!("medians line {} has a bad number: {line:?}", i + 1))?;
        match out.iter_mut().find(|b| b.name == name) {
            Some(b) => b.median_ns = median_ns,
            None => out.push(BenchMedian {
                name: name.to_string(),
                median_ns,
            }),
        }
    }
    Ok(out)
}

/// IPC or wall-clock movement beyond this fraction warns (the simulator is
/// deterministic, so *any* IPC movement means behaviour changed).
const GRID_WARN: f64 = 0.10;
/// Micro-bench medians are noisier than grid rows; only a slowdown beyond
/// this fraction warns.
const BENCH_WARN: f64 = 0.25;

/// Compare `new` against `old`, matching grid rows by (preset, l1) and
/// micro-benches by name.
///
/// Returns `(deltas, warnings)`: every row's movement as a human-readable
/// line, and the subset that moved too much — grid IPC in *either*
/// direction and cell wall-clock up beyond 10%, micro-bench medians up
/// beyond 25%.  A row present in the baseline but missing from `new` also
/// warns: its regression coverage silently vanished.
pub fn diff(old: &PerfReport, new: &PerfReport) -> (Vec<String>, Vec<String>) {
    let mut deltas = Vec::new();
    let mut warnings = Vec::new();
    for prev in &old.cells {
        if !new
            .cells
            .iter()
            .any(|c| c.preset == prev.preset && c.l1 == prev.l1)
        {
            warnings.push(format!(
                "{} @ {}B: row present in baseline but missing from this run",
                prev.preset, prev.l1
            ));
        }
    }
    for c in &new.cells {
        let Some(prev) = old
            .cells
            .iter()
            .find(|p| p.preset == c.preset && p.l1 == c.l1)
        else {
            deltas.push(format!("{} @ {}B: new cell (no baseline)", c.preset, c.l1));
            continue;
        };
        let d_ipc = rel_delta(prev.hmean_ipc, c.hmean_ipc);
        let d_wall = rel_delta(prev.median_cell_wall_s, c.median_cell_wall_s);
        deltas.push(format!(
            "{} @ {}B: hmean_ipc {:.4} -> {:.4} ({:+.1}%), median cell wall {:.4}s -> {:.4}s ({:+.1}%), spread {:.0}% -> {:.0}%",
            c.preset,
            c.l1,
            prev.hmean_ipc,
            c.hmean_ipc,
            100.0 * d_ipc,
            prev.median_cell_wall_s,
            c.median_cell_wall_s,
            100.0 * d_wall,
            100.0 * prev.wall_spread(),
            100.0 * c.wall_spread(),
        ));
        if d_ipc.abs() > GRID_WARN {
            warnings.push(format!(
                "{} @ {}B: hmean IPC moved {:+.1}% ({:.4} -> {:.4})",
                c.preset,
                c.l1,
                100.0 * d_ipc,
                prev.hmean_ipc,
                c.hmean_ipc
            ));
        }
        if d_wall > GRID_WARN {
            warnings.push(format!(
                "{} @ {}B: median cell wall-clock up {:.1}% ({:.4}s -> {:.4}s)",
                c.preset,
                c.l1,
                100.0 * d_wall,
                prev.median_cell_wall_s,
                c.median_cell_wall_s
            ));
        }
    }
    for prev in &old.benches {
        if !new.benches.iter().any(|b| b.name == prev.name) {
            warnings.push(format!(
                "bench {}: present in baseline but missing from this run",
                prev.name
            ));
        }
    }
    for b in &new.benches {
        let Some(prev) = old.benches.iter().find(|p| p.name == b.name) else {
            deltas.push(format!("bench {}: new benchmark (no baseline)", b.name));
            continue;
        };
        let d = rel_delta(prev.median_ns, b.median_ns);
        deltas.push(format!(
            "bench {}: median {:.1}ns -> {:.1}ns ({:+.1}%)",
            b.name, prev.median_ns, b.median_ns, 100.0 * d
        ));
        if d > BENCH_WARN {
            warnings.push(format!(
                "bench {}: median latency up {:.1}% ({:.1}ns -> {:.1}ns)",
                b.name,
                100.0 * d,
                prev.median_ns,
                b.median_ns
            ));
        }
    }
    match (&old.serve, &new.serve) {
        (Some(prev), Some(s)) => {
            let d_tp = rel_delta(prev.jobs_per_s, s.jobs_per_s);
            let d_hit = rel_delta(prev.cache_hit_s, s.cache_hit_s);
            deltas.push(format!(
                "serve: {:.1} -> {:.1} jobs/s ({:+.1}%), cache hit {:.4}s -> {:.4}s ({:+.1}%)",
                prev.jobs_per_s,
                s.jobs_per_s,
                100.0 * d_tp,
                prev.cache_hit_s,
                s.cache_hit_s,
                100.0 * d_hit,
            ));
            // Throughput numbers ride on wall-clock, so use the wide
            // micro-bench band and only warn on regression.
            if d_tp < -BENCH_WARN {
                warnings.push(format!(
                    "serve: job throughput down {:.1}% ({:.1} -> {:.1} jobs/s)",
                    -100.0 * d_tp,
                    prev.jobs_per_s,
                    s.jobs_per_s
                ));
            }
            if d_hit > BENCH_WARN {
                warnings.push(format!(
                    "serve: cache-hit latency up {:.1}% ({:.4}s -> {:.4}s)",
                    100.0 * d_hit,
                    prev.cache_hit_s,
                    s.cache_hit_s
                ));
            }
        }
        (Some(_), None) => warnings.push(
            "serve: section present in baseline but missing from this run".to_string(),
        ),
        (None, Some(s)) => deltas.push(format!(
            "serve: {:.1} jobs/s, cache hit {:.4}s (no baseline)",
            s.jobs_per_s, s.cache_hit_s
        )),
        (None, None) => {}
    }
    (deltas, warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ipc: f64, wall: f64) -> PerfReport {
        PerfReport {
            total_wall_s: 2.5,
            cells: vec![
                CellPerf {
                    preset: "base+L0".into(),
                    l1: 1024,
                    hmean_ipc: ipc,
                    median_cell_wall_s: wall,
                    min_cell_wall_s: wall * 0.8,
                    max_cell_wall_s: wall * 1.3,
                },
                CellPerf {
                    preset: "CLGP+L0".into(),
                    l1: 4096,
                    hmean_ipc: 1.5,
                    median_cell_wall_s: 0.02,
                    min_cell_wall_s: 0.018,
                    max_cell_wall_s: 0.025,
                },
            ],
            benches: vec![BenchMedian {
                name: "engine/crafty_20k".into(),
                median_ns: 6_420_000.0,
            }],
            serve: None,
        }
    }

    #[test]
    fn json_roundtrips() {
        let r = report(1.25, 0.0125);
        let back = PerfReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn garbage_and_other_schemas_are_no_baseline() {
        assert!(PerfReport::from_json("").is_none());
        assert!(PerfReport::from_json("not json at all").is_none());
        let other = report(1.0, 1.0)
            .to_json()
            .replace("\"schema\": 4", "\"schema\": 2");
        assert!(PerfReport::from_json(&other).is_none());
    }

    #[test]
    fn truncated_artifact_is_no_baseline() {
        // An interrupted cache save must not read as a smaller valid
        // report: truncated JSON simply fails to parse.
        let full = report(1.0, 1.0).to_json();
        let cut = full.find("\"CLGP+L0\"").unwrap();
        assert!(PerfReport::from_json(&full[..cut]).is_none());
    }

    #[test]
    fn diff_flags_only_large_movement() {
        let old = report(1.00, 0.0100);
        // 5% slower wall, 5% lower IPC: reported, not warned.
        let (deltas, warnings) = diff(&old, &report(0.95, 0.0105));
        assert_eq!(deltas.len(), 3);
        assert!(warnings.is_empty(), "{warnings:?}");
        // 15% lower IPC and 20% slower: both warned.
        let (_, warnings) = diff(&old, &report(0.85, 0.0120));
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        // IPC is deterministic — a large *increase* is behaviour change too.
        let (_, warnings) = diff(&old, &report(1.30, 0.0080));
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("IPC moved"));
        // Faster wall-clock alone never warns.
        let (_, warnings) = diff(&old, &report(1.00, 0.0050));
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn per_row_spread_is_recorded_for_noise_characterization() {
        let r = report(1.0, 0.0100);
        assert!((r.cells[0].wall_spread() - (1.3 / 0.8 - 1.0)).abs() < 1e-9);
        // The spread survives the artifact round-trip and shows up in the
        // human-readable deltas, so successive CI runs accumulate the
        // noise evidence the warning→failure escalation needs.
        let back = PerfReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.cells[0].min_cell_wall_s, r.cells[0].min_cell_wall_s);
        assert_eq!(back.cells[0].max_cell_wall_s, r.cells[0].max_cell_wall_s);
        let (deltas, _) = diff(&r, &r);
        assert!(deltas[0].contains("spread"), "{deltas:?}");
    }

    #[test]
    fn diff_tracks_bench_medians_with_a_wider_band() {
        let old = report(1.0, 0.01);
        // 20% slower micro-bench: inside the noise band, no warning.
        let mut new = report(1.0, 0.01);
        new.benches[0].median_ns *= 1.20;
        let (deltas, warnings) = diff(&old, &new);
        assert!(deltas.iter().any(|d| d.contains("engine/crafty_20k")));
        assert!(warnings.is_empty(), "{warnings:?}");
        // 30% slower: warned.
        let mut new = report(1.0, 0.01);
        new.benches[0].median_ns *= 1.30;
        let (_, warnings) = diff(&old, &new);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("median latency up"));
        // 30% *faster* micro-bench never warns.
        let mut new = report(1.0, 0.01);
        new.benches[0].median_ns *= 0.70;
        let (_, warnings) = diff(&old, &new);
        assert!(warnings.is_empty(), "{warnings:?}");
        // A median that vanished from the run warns (coverage lost).
        let mut new = report(1.0, 0.01);
        new.benches.clear();
        let (_, warnings) = diff(&old, &new);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("missing from this run"));
    }

    #[test]
    fn diff_handles_unmatched_cells() {
        let old = PerfReport {
            total_wall_s: 0.0,
            cells: vec![],
            benches: vec![],
            serve: None,
        };
        let (deltas, warnings) = diff(&old, &report(1.0, 0.01));
        assert_eq!(deltas.len(), 3);
        assert!(deltas[0].contains("no baseline"));
        assert!(warnings.is_empty());
        // A baseline row that vanished from the new run is a warning: its
        // coverage silently disappeared.
        let mut shrunk = report(1.0, 0.01);
        shrunk.cells.truncate(1);
        let (_, warnings) = diff(&report(1.0, 0.01), &shrunk);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("missing from this run"));
    }

    #[test]
    fn serve_section_roundtrips_and_diffs() {
        let mut r = report(1.0, 0.01);
        r.serve = Some(ServePerf {
            jobs_per_s: 12.5,
            cache_hit_s: 0.003,
        });
        let back = PerfReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(back, r);
        // An absent section serializes as null and round-trips to None.
        let absent = report(1.0, 0.01);
        assert!(absent.to_json().contains("\"serve\": null"));
        assert_eq!(PerfReport::from_json(&absent.to_json()).unwrap().serve, None);

        // Small movement: reported, not warned.
        let mut faster = r.clone();
        faster.serve = Some(ServePerf {
            jobs_per_s: 13.0,
            cache_hit_s: 0.0032,
        });
        let (deltas, warnings) = diff(&r, &faster);
        assert!(deltas.iter().any(|d| d.contains("jobs/s")), "{deltas:?}");
        assert!(warnings.is_empty(), "{warnings:?}");
        // Throughput down 40% / cache-hit up 2x: both warned.
        let mut slow = r.clone();
        slow.serve = Some(ServePerf {
            jobs_per_s: 7.5,
            cache_hit_s: 0.006,
        });
        let (_, warnings) = diff(&r, &slow);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("throughput down"));
        assert!(warnings[1].contains("cache-hit latency up"));
        // Section vanishing is lost coverage; appearing is just new data.
        let (_, warnings) = diff(&r, &report(1.0, 0.01));
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("missing from this run"));
        let (deltas, warnings) = diff(&report(1.0, 0.01), &r);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert!(
            deltas.iter().any(|d| d.contains("no baseline")),
            "{deltas:?}"
        );
    }

    #[test]
    fn medians_tsv_parses_and_dedupes() {
        let text = "engine/crafty_20k\t6420000\nbpred/predict_train\t271.5\n\nengine/crafty_20k\t6500000\n";
        let medians = parse_medians_tsv(text).unwrap();
        assert_eq!(medians.len(), 2);
        assert_eq!(medians[0].name, "engine/crafty_20k");
        // Later lines win: a re-run's append supersedes the first.
        assert!((medians[0].median_ns - 6_500_000.0).abs() < 1e-9);
        assert!(parse_medians_tsv("no tab here").is_err());
        assert!(parse_medians_tsv("name\tnot_a_number").is_err());
    }
}
