//! Per-run performance artifacts for CI: one JSON report
//! (`results/ci_grid.json`) tracking both the mini-grid's per-row numbers
//! *and* the Criterion-shim micro-bench medians, plus a differ that flags
//! large movement against the previous run.
//!
//! Serialization rides the shared [`prestage_json`] module (the original
//! hand-rolled line scanner this module started as was promoted there).
//! Baselines load through [`load_baseline`]: the previous schema (5) is
//! upgraded in place so one schema bump never costs a comparison, and
//! anything else — an older schema, damaged JSON, a truncation — is a
//! *named* error rather than a silent "no baseline".
//!
//! Micro-bench medians arrive via the Criterion shim's
//! `CRITERION_MEDIANS_FILE` hook (vendor/criterion): each
//! `bench_function` appends a `name<TAB>median_ns` line, and
//! [`parse_medians_tsv`] folds the file into the report so one artifact
//! tracks grid IPC and hot-path latencies together (the ROADMAP's CI
//! perf-tracking item).

use prestage_json::Json;

/// One (preset, L1 size) row of the CI mini-grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellPerf {
    /// Preset label (e.g. `"CLGP+L0"`), or a mechanism id (`"mana"`) for
    /// the prefetcher-override rows.
    pub preset: String,
    pub l1: usize,
    /// Deterministic given seeds and run lengths — any movement at all
    /// means simulator behaviour changed.
    pub hmean_ipc: f64,
    /// Median wall-clock of the row's cells on this host (noisy; only
    /// large movements are meaningful).
    pub median_cell_wall_s: f64,
    /// Fastest cell of the row — with `max`, the raw data for the
    /// ROADMAP's runner-noise characterization: once enough artifacts
    /// record the per-row spread, the warning band can be tightened into
    /// a failure threshold with evidence instead of guesswork.
    pub min_cell_wall_s: f64,
    /// Slowest cell of the row.
    pub max_cell_wall_s: f64,
}

impl CellPerf {
    /// Within-row spread `max/min - 1`: the single-run noise proxy the
    /// escalation decision will be based on.
    pub fn wall_spread(&self) -> f64 {
        rel_delta(self.min_cell_wall_s, self.max_cell_wall_s)
    }
}

/// Median per-iteration latency of one Criterion-shim micro-bench
/// (e.g. `"engine/crafty_20k"`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMedian {
    pub name: String,
    pub median_ns: f64,
    /// Elements processed per iteration when the bench declared a
    /// throughput (`0` = unknown / not element-based).
    pub elems: u64,
    /// The shim's measurement policy (e.g. `"min-median:rounds=5,warmup=3"`);
    /// empty when the median predates policy recording.
    pub policy: String,
}

impl BenchMedian {
    /// Throughput in Melem/s, when the element count is known.
    pub fn melem_s(&self) -> Option<f64> {
        if self.elems == 0 || self.median_ns <= 0.0 || self.median_ns.is_nan() {
            return None;
        }
        Some(self.elems as f64 * 1_000.0 / self.median_ns)
    }
}

/// Throughput of the `prestage serve` orchestrator on this host, measured
/// by `ci_grid` driving a real scheduler over a small sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ServePerf {
    /// Jobs completed per second on a fresh (cold-cache) sweep —
    /// scheduler + journal + cache overhead on top of the cell sims.
    pub jobs_per_s: f64,
    /// Latency of resubmitting the identical sweep once cached: the pure
    /// cache-hit path (spec hash + artifact lookup, no simulation).
    pub cache_hit_s: f64,
}

/// A whole CI perf report.  The artifact's schema number is not a field:
/// [`PerfReport::to_json`] always writes [`PERF_SCHEMA`] and `from_json`
/// only accepts it, so a report that would be rejected by its own reader
/// cannot be constructed.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    pub total_wall_s: f64,
    pub cells: Vec<CellPerf>,
    /// Micro-bench medians; empty when no medians file was present.
    pub benches: Vec<BenchMedian>,
    /// Serve-orchestrator throughput; `None` when the measurement was
    /// skipped (serialized as JSON `null`).
    pub serve: Option<ServePerf>,
    /// Hard-failure threshold for wall-clock regressions, derived from
    /// this run's recorded per-row spreads (see
    /// [`PerfReport::derived_fail_threshold`]).  Recorded in the artifact
    /// so the *next* run fails against the noise envelope this host
    /// actually measured, not a guessed constant.
    pub fail_threshold: f64,
}

/// Current artifact schema.  2 added the `benches` section; 3 added the
/// per-row min/max cell wall-clock (noise characterization); 4 added the
/// `serve` orchestrator-throughput section; 5 added per-bench
/// `elems`/`policy` (throughput + measurement-policy provenance) and the
/// spread-derived `fail_threshold`; 6 grew the grid's row set with the
/// TLB-on row (an `itlb`-suffixed preset label simulated with address
/// translation enabled).  A schema-5 baseline is upgraded in place by
/// [`load_baseline`]; anything older reads as a *named* schema mismatch,
/// never a silent "no baseline".
pub const PERF_SCHEMA: u32 = 6;

/// Relative change `new/old - 1`, with a zero/zero as no change and a
/// from-zero jump as +inf.
fn rel_delta(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        new / old - 1.0
    }
}

impl PerfReport {
    /// Derive the wall-clock hard-failure threshold from recorded per-row
    /// spreads: a regression only fails the gate when it exceeds the
    /// noise envelope this host demonstrably produces *within one run*,
    /// with a 1.5x margin.  Clamped to `[0.15, 0.60]`: the floor keeps the
    /// gate above the 10% warning band, the ceiling stops one wild row
    /// from disabling the gate entirely.
    pub fn derived_fail_threshold(cells: &[CellPerf]) -> f64 {
        let max_spread = cells.iter().map(CellPerf::wall_spread).fold(0.0, f64::max);
        (1.5 * max_spread).clamp(0.15, 0.60)
    }

    pub fn to_json(&self) -> String {
        Json::obj([
            ("schema", u64::from(PERF_SCHEMA).into()),
            ("total_wall_s", self.total_wall_s.into()),
            ("fail_threshold", self.fail_threshold.into()),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("preset", c.preset.as_str().into()),
                                ("l1", c.l1.into()),
                                ("hmean_ipc", c.hmean_ipc.into()),
                                ("median_cell_wall_s", c.median_cell_wall_s.into()),
                                ("min_cell_wall_s", c.min_cell_wall_s.into()),
                                ("max_cell_wall_s", c.max_cell_wall_s.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "benches",
                Json::Arr(
                    self.benches
                        .iter()
                        .map(|b| {
                            Json::obj([
                                ("name", b.name.as_str().into()),
                                ("median_ns", b.median_ns.into()),
                                ("elems", b.elems.into()),
                                ("policy", b.policy.as_str().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "serve",
                match &self.serve {
                    None => Json::Null,
                    Some(s) => Json::obj([
                        ("jobs_per_s", s.jobs_per_s.into()),
                        ("cache_hit_s", s.cache_hit_s.into()),
                    ]),
                },
            ),
        ])
        .pretty()
    }

    /// Parse a report previously written by [`PerfReport::to_json`].
    /// Returns `None` on anything that does not look like a complete
    /// current-schema report, so CI treats a stale or damaged artifact as
    /// "no baseline" rather than silently comparing less.  For baseline
    /// loading with explicit schema-5 upgrade, use [`load_baseline`].
    pub fn from_json(text: &str) -> Option<PerfReport> {
        let v = Json::parse(text).ok()?;
        if v.get("schema")?.as_u64()? as u32 != PERF_SCHEMA {
            return None;
        }
        Self::parse_with_schema(&v, PERF_SCHEMA)
    }

    /// Shared body for schema 6 (current) and schema 5 (upgrade path):
    /// the two are structurally identical — 6 marks the grid's row set
    /// growing the TLB-on row — while the `schema >= 5` guards keep the
    /// historical field boundaries explicit.
    fn parse_with_schema(v: &Json, schema: u32) -> Option<PerfReport> {
        let cells = v
            .get("cells")?
            .as_arr()?
            .iter()
            .map(|c| {
                Some(CellPerf {
                    preset: c.get("preset")?.as_str()?.to_string(),
                    l1: c.get("l1")?.as_usize()?,
                    hmean_ipc: c.get("hmean_ipc")?.as_f64()?,
                    median_cell_wall_s: c.get("median_cell_wall_s")?.as_f64()?,
                    min_cell_wall_s: c.get("min_cell_wall_s")?.as_f64()?,
                    max_cell_wall_s: c.get("max_cell_wall_s")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        if cells.is_empty() {
            return None;
        }
        let benches = v
            .get("benches")?
            .as_arr()?
            .iter()
            .map(|b| {
                Some(BenchMedian {
                    name: b.get("name")?.as_str()?.to_string(),
                    median_ns: b.get("median_ns")?.as_f64()?,
                    elems: if schema >= 5 {
                        b.get("elems")?.as_u64()?
                    } else {
                        0
                    },
                    policy: if schema >= 5 {
                        b.get("policy")?.as_str()?.to_string()
                    } else {
                        String::new()
                    },
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let serve = match v.get("serve")? {
            Json::Null => None,
            s => Some(ServePerf {
                jobs_per_s: s.get("jobs_per_s")?.as_f64()?,
                cache_hit_s: s.get("cache_hit_s")?.as_f64()?,
            }),
        };
        let fail_threshold = if schema >= 5 {
            v.get("fail_threshold")?.as_f64()?
        } else {
            Self::derived_fail_threshold(&cells)
        };
        Some(PerfReport {
            total_wall_s: v.get("total_wall_s")?.as_f64()?,
            cells,
            benches,
            serve,
            fail_threshold,
        })
    }
}

/// Load a baseline artifact for comparison: upgrade-or-compare,
/// explicitly.  A current-schema report parses as-is; a schema-5 report
/// is upgraded in place (it predates the TLB-on grid row, which will
/// diff as a new cell) with a note saying so; anything else — an older
/// schema, a future schema, damaged JSON — is a *named* error, so CI
/// output states exactly why no comparison happened instead of silently
/// skipping it.
pub fn load_baseline(text: &str) -> Result<(PerfReport, Option<String>), String> {
    let v = Json::parse(text).map_err(|e| format!("baseline artifact is not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Json::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or("baseline artifact has no in-range numeric `schema` field")?;
    match schema {
        PERF_SCHEMA => PerfReport::parse_with_schema(&v, PERF_SCHEMA)
            .map(|r| (r, None))
            .ok_or_else(|| format!("baseline artifact is schema {PERF_SCHEMA} but incomplete")),
        5 => PerfReport::parse_with_schema(&v, 5)
            .map(|r| {
                let note = format!(
                    "baseline artifact upgraded from schema 5 to {PERF_SCHEMA} \
                     (predates the TLB-on grid row, which will diff as a new cell)"
                );
                (r, Some(note))
            })
            .ok_or_else(|| "baseline artifact is schema 5 but incomplete".to_string()),
        n => Err(format!(
            "baseline artifact is schema {n}, this build reads {PERF_SCHEMA} \
             (upgradeable: 5) — regenerate the baseline"
        )),
    }
}

/// Parse the Criterion shim's medians file: one
/// `name<TAB>median_ns[<TAB>elems<TAB>policy]` line per benchmark, later
/// lines winning on re-run (append semantics).  The two-column form is the
/// pre-policy shim's output and reads as unknown throughput/policy.
/// Malformed lines are a loud error — the file is machine-written, so
/// damage means the pipeline is broken.
pub fn parse_medians_tsv(text: &str) -> Result<Vec<BenchMedian>, String> {
    let mut out: Vec<BenchMedian> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        // `split` always yields at least one field; the empty fallback
        // only keeps this panic-free.
        let name = fields.next().unwrap_or("");
        let ns = fields
            .next()
            .ok_or_else(|| format!("medians line {} has no tab: {line:?}", i + 1))?;
        let median_ns: f64 = ns
            .trim()
            .parse()
            .map_err(|_| format!("medians line {} has a bad number: {line:?}", i + 1))?;
        let (elems, policy) = match (fields.next(), fields.next()) {
            (None, _) => (0, String::new()),
            (Some(e), p) => (
                e.trim().parse::<u64>().map_err(|_| {
                    format!("medians line {} has a bad element count: {line:?}", i + 1)
                })?,
                p.unwrap_or("").trim().to_string(),
            ),
        };
        let parsed = BenchMedian {
            name: name.to_string(),
            median_ns,
            elems,
            policy,
        };
        match out.iter_mut().find(|b| b.name == name) {
            Some(b) => *b = parsed,
            None => out.push(parsed),
        }
    }
    Ok(out)
}

/// IPC or wall-clock movement beyond this fraction warns (the simulator is
/// deterministic, so *any* IPC movement means behaviour changed).
const GRID_WARN: f64 = 0.10;
/// Micro-bench medians are noisier than grid rows; only a slowdown beyond
/// this fraction warns.
const BENCH_WARN: f64 = 0.25;

/// Compare `new` against `old`, matching grid rows by (preset, l1) and
/// micro-benches by name.
///
/// Returns `(deltas, warnings, failures)`: every row's movement as a
/// human-readable line; the subset that moved beyond the warning bands —
/// grid IPC in *either* direction and cell wall-clock up beyond 10%,
/// micro-bench medians up beyond 25%; and the subset of wall-clock
/// regressions beyond the spread-derived failure threshold (the larger of
/// the two runs' recorded [`PerfReport::fail_threshold`]s, so a noisy
/// *current* run cannot fail against a quiet baseline's envelope).
/// Failures are the gate: ci_grid exits nonzero on any.  A row present in
/// the baseline but missing from `new` warns: its regression coverage
/// silently vanished.
pub fn diff(old: &PerfReport, new: &PerfReport) -> (Vec<String>, Vec<String>, Vec<String>) {
    let mut deltas = Vec::new();
    let mut warnings = Vec::new();
    let mut failures = Vec::new();
    let fail_at = old.fail_threshold.max(new.fail_threshold);
    for prev in &old.cells {
        if !new
            .cells
            .iter()
            .any(|c| c.preset == prev.preset && c.l1 == prev.l1)
        {
            warnings.push(format!(
                "{} @ {}B: row present in baseline but missing from this run",
                prev.preset, prev.l1
            ));
        }
    }
    for c in &new.cells {
        let Some(prev) = old
            .cells
            .iter()
            .find(|p| p.preset == c.preset && p.l1 == c.l1)
        else {
            deltas.push(format!("{} @ {}B: new cell (no baseline)", c.preset, c.l1));
            continue;
        };
        let d_ipc = rel_delta(prev.hmean_ipc, c.hmean_ipc);
        let d_wall = rel_delta(prev.median_cell_wall_s, c.median_cell_wall_s);
        deltas.push(format!(
            "{} @ {}B: hmean_ipc {:.4} -> {:.4} ({:+.1}%), median cell wall {:.4}s -> {:.4}s ({:+.1}%), spread {:.0}% -> {:.0}%",
            c.preset,
            c.l1,
            prev.hmean_ipc,
            c.hmean_ipc,
            100.0 * d_ipc,
            prev.median_cell_wall_s,
            c.median_cell_wall_s,
            100.0 * d_wall,
            100.0 * prev.wall_spread(),
            100.0 * c.wall_spread(),
        ));
        if d_ipc.abs() > GRID_WARN {
            warnings.push(format!(
                "{} @ {}B: hmean IPC moved {:+.1}% ({:.4} -> {:.4})",
                c.preset,
                c.l1,
                100.0 * d_ipc,
                prev.hmean_ipc,
                c.hmean_ipc
            ));
        }
        if d_wall > fail_at {
            failures.push(format!(
                "{} @ {}B: median cell wall-clock up {:.1}% ({:.4}s -> {:.4}s), beyond the {:.0}% spread-derived threshold",
                c.preset,
                c.l1,
                100.0 * d_wall,
                prev.median_cell_wall_s,
                c.median_cell_wall_s,
                100.0 * fail_at,
            ));
        } else if d_wall > GRID_WARN {
            warnings.push(format!(
                "{} @ {}B: median cell wall-clock up {:.1}% ({:.4}s -> {:.4}s)",
                c.preset,
                c.l1,
                100.0 * d_wall,
                prev.median_cell_wall_s,
                c.median_cell_wall_s
            ));
        }
    }
    for prev in &old.benches {
        if !new.benches.iter().any(|b| b.name == prev.name) {
            warnings.push(format!(
                "bench {}: present in baseline but missing from this run",
                prev.name
            ));
        }
    }
    for b in &new.benches {
        let Some(prev) = old.benches.iter().find(|p| p.name == b.name) else {
            deltas.push(format!("bench {}: new benchmark (no baseline)", b.name));
            continue;
        };
        let d = rel_delta(prev.median_ns, b.median_ns);
        let tp = match (prev.melem_s(), b.melem_s()) {
            (Some(o), Some(n)) => format!(", {o:.2} -> {n:.2} Melem/s"),
            _ => String::new(),
        };
        deltas.push(format!(
            "bench {}: median {:.1}ns -> {:.1}ns ({:+.1}%){tp}",
            b.name, prev.median_ns, b.median_ns, 100.0 * d
        ));
        // Micro-bench medians ride a warn band 2.5x the grid's, so their
        // failure threshold scales by the same factor.
        let bench_fail = (fail_at * BENCH_WARN / GRID_WARN).max(BENCH_WARN);
        if d > bench_fail {
            failures.push(format!(
                "bench {}: median latency up {:.1}% ({:.1}ns -> {:.1}ns), beyond the {:.0}% spread-derived threshold",
                b.name,
                100.0 * d,
                prev.median_ns,
                b.median_ns,
                100.0 * bench_fail,
            ));
        } else if d > BENCH_WARN {
            warnings.push(format!(
                "bench {}: median latency up {:.1}% ({:.1}ns -> {:.1}ns)",
                b.name,
                100.0 * d,
                prev.median_ns,
                b.median_ns
            ));
        }
    }
    match (&old.serve, &new.serve) {
        (Some(prev), Some(s)) => {
            let d_tp = rel_delta(prev.jobs_per_s, s.jobs_per_s);
            let d_hit = rel_delta(prev.cache_hit_s, s.cache_hit_s);
            deltas.push(format!(
                "serve: {:.1} -> {:.1} jobs/s ({:+.1}%), cache hit {:.4}s -> {:.4}s ({:+.1}%)",
                prev.jobs_per_s,
                s.jobs_per_s,
                100.0 * d_tp,
                prev.cache_hit_s,
                s.cache_hit_s,
                100.0 * d_hit,
            ));
            // Throughput numbers ride on wall-clock, so use the wide
            // micro-bench band and only warn on regression.
            if d_tp < -BENCH_WARN {
                warnings.push(format!(
                    "serve: job throughput down {:.1}% ({:.1} -> {:.1} jobs/s)",
                    -100.0 * d_tp,
                    prev.jobs_per_s,
                    s.jobs_per_s
                ));
            }
            if d_hit > BENCH_WARN {
                warnings.push(format!(
                    "serve: cache-hit latency up {:.1}% ({:.4}s -> {:.4}s)",
                    100.0 * d_hit,
                    prev.cache_hit_s,
                    s.cache_hit_s
                ));
            }
        }
        (Some(_), None) => warnings.push(
            "serve: section present in baseline but missing from this run".to_string(),
        ),
        (None, Some(s)) => deltas.push(format!(
            "serve: {:.1} jobs/s, cache hit {:.4}s (no baseline)",
            s.jobs_per_s, s.cache_hit_s
        )),
        (None, None) => {}
    }
    (deltas, warnings, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ipc: f64, wall: f64) -> PerfReport {
        PerfReport {
            total_wall_s: 2.5,
            cells: vec![
                CellPerf {
                    preset: "base+L0".into(),
                    l1: 1024,
                    hmean_ipc: ipc,
                    median_cell_wall_s: wall,
                    min_cell_wall_s: wall * 0.8,
                    max_cell_wall_s: wall * 1.3,
                },
                CellPerf {
                    preset: "CLGP+L0".into(),
                    l1: 4096,
                    hmean_ipc: 1.5,
                    median_cell_wall_s: 0.02,
                    min_cell_wall_s: 0.018,
                    max_cell_wall_s: 0.025,
                },
            ],
            benches: vec![BenchMedian {
                name: "engine/crafty_20k".into(),
                median_ns: 6_420_000.0,
                elems: 20_000,
                policy: "min-median:rounds=5,warmup=3".into(),
            }],
            serve: None,
            fail_threshold: 0.20,
        }
    }

    #[test]
    fn json_roundtrips() {
        let r = report(1.25, 0.0125);
        let back = PerfReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn garbage_and_other_schemas_are_no_baseline() {
        assert!(PerfReport::from_json("").is_none());
        assert!(PerfReport::from_json("not json at all").is_none());
        let other = report(1.0, 1.0)
            .to_json()
            .replace("\"schema\": 6", "\"schema\": 2");
        assert!(PerfReport::from_json(&other).is_none());
    }

    /// A schema-5 artifact (the previous release's format — structurally
    /// identical, but written before the grid grew the TLB-on row) must
    /// read as the current schema's shape.
    fn schema5_json() -> String {
        report(1.0, 0.01)
            .to_json()
            .replace("\"schema\": 6", "\"schema\": 5")
    }

    #[test]
    fn baseline_upgrades_schema_5_and_names_everything_else() {
        // Schema 6 loads clean, no note.
        let six = report(1.0, 0.01);
        let (loaded, note) = load_baseline(&six.to_json()).expect("current schema loads");
        assert_eq!(loaded, six);
        assert!(note.is_none());

        // Schema 5 upgrades in place, with a note naming the boundary.
        let (up, note) = load_baseline(&schema5_json()).expect("schema 5 upgrades");
        let note = note.expect("upgrade is announced");
        assert!(note.contains("schema 5"), "{note}");
        assert!(note.contains("TLB"), "{note}");
        assert_eq!(up, report(1.0, 0.01));
        // The upgraded baseline diffs against a current report without
        // spurious warnings: the schema boundary costs nothing.
        let (deltas, warnings, failures) = diff(&up, &report(1.0, 0.01));
        assert!(!deltas.is_empty());
        assert!(warnings.is_empty(), "{warnings:?}");
        assert!(failures.is_empty(), "{failures:?}");

        // Everything else is a *named* refusal, not a silent skip —
        // including schema 4, which was upgradeable one release ago and
        // now names both itself and the supported upgrade floor.
        let e = load_baseline("not json").unwrap_err();
        assert!(e.contains("not JSON"), "{e}");
        let four = report(1.0, 1.0)
            .to_json()
            .replace("\"schema\": 6", "\"schema\": 4");
        let e = load_baseline(&four).unwrap_err();
        assert!(e.contains("schema 4"), "{e}");
        assert!(e.contains("upgradeable: 5"), "{e}");
        let two = report(1.0, 1.0)
            .to_json()
            .replace("\"schema\": 6", "\"schema\": 2");
        let e = load_baseline(&two).unwrap_err();
        assert!(e.contains("schema 2"), "{e}");
        let e = load_baseline("{\"schema\": true}").unwrap_err();
        assert!(e.contains("schema"), "{e}");
    }

    #[test]
    fn threshold_derivation_tracks_recorded_spread() {
        // Quiet rows: the floor holds.
        let mut r = report(1.0, 0.01);
        r.cells[0].min_cell_wall_s = 0.0099;
        r.cells[0].max_cell_wall_s = 0.0101;
        r.cells[1].min_cell_wall_s = 0.0199;
        r.cells[1].max_cell_wall_s = 0.0201;
        assert_eq!(PerfReport::derived_fail_threshold(&r.cells), 0.15);
        // A 30% within-run spread raises the threshold to 45%.
        r.cells[1].min_cell_wall_s = 0.020;
        r.cells[1].max_cell_wall_s = 0.026;
        let t = PerfReport::derived_fail_threshold(&r.cells);
        assert!((t - 0.45).abs() < 1e-9, "{t}");
        // One wild row cannot disable the gate: capped at 60%.
        r.cells[1].max_cell_wall_s = 0.2;
        assert_eq!(PerfReport::derived_fail_threshold(&r.cells), 0.60);
    }

    #[test]
    fn regressions_beyond_the_derived_threshold_fail_not_warn() {
        let old = report(1.00, 0.0100); // fail_threshold 0.20
        // +15% wall: warned, not failed.
        let (_, warnings, failures) = diff(&old, &report(1.00, 0.0115));
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(failures.is_empty(), "{failures:?}");
        // +30% wall: beyond the 20% threshold — a hard failure, and not
        // double-reported as a warning.
        let (_, warnings, failures) = diff(&old, &report(1.00, 0.0130));
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("spread-derived threshold"), "{failures:?}");
        // A noisy *current* run widens the gate instead of tripping it:
        // same +30%, but the new run recorded a 40% threshold itself.
        let mut noisy = report(1.00, 0.0130);
        noisy.fail_threshold = 0.40;
        let (_, warnings, failures) = diff(&old, &noisy);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(failures.is_empty(), "{failures:?}");
        // Bench medians escalate with a 2.5x-scaled threshold (their warn
        // band is 2.5x the grid's): +30% warns, +60% fails.
        let mut slow = report(1.00, 0.0100);
        slow.benches[0].median_ns *= 1.30;
        let (_, warnings, failures) = diff(&old, &slow);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(failures.is_empty(), "{failures:?}");
        let mut slower = report(1.00, 0.0100);
        slower.benches[0].median_ns *= 1.60;
        let (_, warnings, failures) = diff(&old, &slower);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(failures.len(), 1, "{failures:?}");
    }

    #[test]
    fn bench_throughput_derives_from_elems() {
        let r = report(1.0, 0.01);
        // 20k elems / 6.42ms = ~3.115 Melem/s.
        let tp = r.benches[0].melem_s().unwrap();
        assert!((tp - 3.115).abs() < 0.01, "{tp}");
        let mut unknown = r.benches[0].clone();
        unknown.elems = 0;
        assert!(unknown.melem_s().is_none());
        // Throughput shows up in the human-readable deltas.
        let (deltas, _, _) = diff(&r, &r);
        assert!(deltas.iter().any(|d| d.contains("Melem/s")), "{deltas:?}");
    }

    #[test]
    fn truncated_artifact_is_no_baseline() {
        // An interrupted cache save must not read as a smaller valid
        // report: truncated JSON simply fails to parse.
        let full = report(1.0, 1.0).to_json();
        let cut = full.find("\"CLGP+L0\"").unwrap();
        assert!(PerfReport::from_json(&full[..cut]).is_none());
    }

    #[test]
    fn diff_flags_only_large_movement() {
        let old = report(1.00, 0.0100);
        // 5% slower wall, 5% lower IPC: reported, not warned.
        let (deltas, warnings, _) = diff(&old, &report(0.95, 0.0105));
        assert_eq!(deltas.len(), 3);
        assert!(warnings.is_empty(), "{warnings:?}");
        // 15% lower IPC and 20% slower: both warned.
        let (_, warnings, _) = diff(&old, &report(0.85, 0.0120));
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        // IPC is deterministic — a large *increase* is behaviour change too.
        let (_, warnings, _) = diff(&old, &report(1.30, 0.0080));
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("IPC moved"));
        // Faster wall-clock alone never warns.
        let (_, warnings, _) = diff(&old, &report(1.00, 0.0050));
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn per_row_spread_is_recorded_for_noise_characterization() {
        let r = report(1.0, 0.0100);
        assert!((r.cells[0].wall_spread() - (1.3 / 0.8 - 1.0)).abs() < 1e-9);
        // The spread survives the artifact round-trip and shows up in the
        // human-readable deltas, so successive CI runs accumulate the
        // noise evidence the warning→failure escalation needs.
        let back = PerfReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.cells[0].min_cell_wall_s, r.cells[0].min_cell_wall_s);
        assert_eq!(back.cells[0].max_cell_wall_s, r.cells[0].max_cell_wall_s);
        let (deltas, _, _) = diff(&r, &r);
        assert!(deltas[0].contains("spread"), "{deltas:?}");
    }

    #[test]
    fn diff_tracks_bench_medians_with_a_wider_band() {
        let old = report(1.0, 0.01);
        // 20% slower micro-bench: inside the noise band, no warning.
        let mut new = report(1.0, 0.01);
        new.benches[0].median_ns *= 1.20;
        let (deltas, warnings, _) = diff(&old, &new);
        assert!(deltas.iter().any(|d| d.contains("engine/crafty_20k")));
        assert!(warnings.is_empty(), "{warnings:?}");
        // 30% slower: warned.
        let mut new = report(1.0, 0.01);
        new.benches[0].median_ns *= 1.30;
        let (_, warnings, _) = diff(&old, &new);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("median latency up"));
        // 30% *faster* micro-bench never warns.
        let mut new = report(1.0, 0.01);
        new.benches[0].median_ns *= 0.70;
        let (_, warnings, _) = diff(&old, &new);
        assert!(warnings.is_empty(), "{warnings:?}");
        // A median that vanished from the run warns (coverage lost).
        let mut new = report(1.0, 0.01);
        new.benches.clear();
        let (_, warnings, _) = diff(&old, &new);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("missing from this run"));
    }

    #[test]
    fn diff_handles_unmatched_cells() {
        let old = PerfReport {
            total_wall_s: 0.0,
            cells: vec![],
            benches: vec![],
            serve: None,
            fail_threshold: 0.15,
        };
        let (deltas, warnings, _) = diff(&old, &report(1.0, 0.01));
        assert_eq!(deltas.len(), 3);
        assert!(deltas[0].contains("no baseline"));
        assert!(warnings.is_empty());
        // A baseline row that vanished from the new run is a warning: its
        // coverage silently disappeared.
        let mut shrunk = report(1.0, 0.01);
        shrunk.cells.truncate(1);
        let (_, warnings, _) = diff(&report(1.0, 0.01), &shrunk);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("missing from this run"));
    }

    #[test]
    fn serve_section_roundtrips_and_diffs() {
        let mut r = report(1.0, 0.01);
        r.serve = Some(ServePerf {
            jobs_per_s: 12.5,
            cache_hit_s: 0.003,
        });
        let back = PerfReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(back, r);
        // An absent section serializes as null and round-trips to None.
        let absent = report(1.0, 0.01);
        assert!(absent.to_json().contains("\"serve\": null"));
        assert_eq!(PerfReport::from_json(&absent.to_json()).unwrap().serve, None);

        // Small movement: reported, not warned.
        let mut faster = r.clone();
        faster.serve = Some(ServePerf {
            jobs_per_s: 13.0,
            cache_hit_s: 0.0032,
        });
        let (deltas, warnings, _) = diff(&r, &faster);
        assert!(deltas.iter().any(|d| d.contains("jobs/s")), "{deltas:?}");
        assert!(warnings.is_empty(), "{warnings:?}");
        // Throughput down 40% / cache-hit up 2x: both warned.
        let mut slow = r.clone();
        slow.serve = Some(ServePerf {
            jobs_per_s: 7.5,
            cache_hit_s: 0.006,
        });
        let (_, warnings, _) = diff(&r, &slow);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("throughput down"));
        assert!(warnings[1].contains("cache-hit latency up"));
        // Section vanishing is lost coverage; appearing is just new data.
        let (_, warnings, _) = diff(&r, &report(1.0, 0.01));
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("missing from this run"));
        let (deltas, warnings, _) = diff(&report(1.0, 0.01), &r);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert!(
            deltas.iter().any(|d| d.contains("no baseline")),
            "{deltas:?}"
        );
    }

    #[test]
    fn medians_tsv_parses_and_dedupes() {
        let text = "engine/crafty_20k\t6420000\nbpred/predict_train\t271.5\n\nengine/crafty_20k\t6500000\n";
        let medians = parse_medians_tsv(text).unwrap();
        assert_eq!(medians.len(), 2);
        assert_eq!(medians[0].name, "engine/crafty_20k");
        // Later lines win: a re-run's append supersedes the first.
        assert!((medians[0].median_ns - 6_500_000.0).abs() < 1e-9);
        assert!(parse_medians_tsv("no tab here").is_err());
        assert!(parse_medians_tsv("name\tnot_a_number").is_err());
    }
}
