//! Per-run performance artifacts for CI: a tiny JSON report of the
//! mini-grid's per-cell medians, plus a differ that flags >10% movement
//! against the previous run.
//!
//! The vendored `serde` shim has no JSON backend (vendor/README.md), so the
//! report is written and read by hand.  The writer emits one cell per line
//! and the reader is a line-oriented scanner of exactly that shape — it is
//! a round-trip format for our own artifact, not a general JSON parser.

/// One (preset, L1 size) row of the CI mini-grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellPerf {
    /// Preset label (e.g. `"CLGP+L0"`). Labels contain no quotes or
    /// backslashes, so they embed in JSON unescaped.
    pub preset: String,
    pub l1: usize,
    /// Deterministic given seeds and run lengths — any movement at all
    /// means simulator behaviour changed.
    pub hmean_ipc: f64,
    /// Median wall-clock of the row's cells on this host (noisy; only
    /// large movements are meaningful).
    pub median_cell_wall_s: f64,
}

/// A whole CI perf report.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    pub schema: u32,
    pub total_wall_s: f64,
    pub cells: Vec<CellPerf>,
}

/// Relative change `new/old - 1`, with a zero/zero as no change and a
/// from-zero jump as +inf.
fn rel_delta(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        new / old - 1.0
    }
}

impl PerfReport {
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": {},\n", self.schema));
        s.push_str(&format!("  \"total_wall_s\": {:.6},\n", self.total_wall_s));
        // Row count up front: a baseline truncated mid-write must read as
        // "no baseline", not as a smaller valid report.
        s.push_str(&format!("  \"n_cells\": {},\n", self.cells.len()));
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 == self.cells.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"preset\": \"{}\", \"l1\": {}, \"hmean_ipc\": {:.6}, \
                 \"median_cell_wall_s\": {:.6}}}{comma}\n",
                c.preset, c.l1, c.hmean_ipc, c.median_cell_wall_s
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a report previously written by [`PerfReport::to_json`].
    /// Returns `None` on anything that does not look like a complete one —
    /// a future schema bump, or a truncated file whose `n_cells` header
    /// disagrees with the rows present — so CI treats a stale or damaged
    /// artifact as "no baseline" rather than silently comparing less.
    pub fn from_json(text: &str) -> Option<PerfReport> {
        let schema = scan_num(text, "\"schema\"")? as u32;
        if schema != 1 {
            return None;
        }
        let total_wall_s = scan_num(text, "\"total_wall_s\"")?;
        let n_cells = scan_num(text, "\"n_cells\"")? as usize;
        let mut cells = Vec::new();
        for line in text.lines() {
            if !line.contains("\"preset\"") {
                continue;
            }
            cells.push(CellPerf {
                preset: scan_str(line, "\"preset\"")?,
                l1: scan_num(line, "\"l1\"")? as usize,
                hmean_ipc: scan_num(line, "\"hmean_ipc\"")?,
                median_cell_wall_s: scan_num(line, "\"median_cell_wall_s\"")?,
            });
        }
        if cells.len() != n_cells || cells.is_empty() {
            return None;
        }
        Some(PerfReport {
            schema,
            total_wall_s,
            cells,
        })
    }
}

/// Value of `"key": <number>` after `key`, if present.
fn scan_num(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Value of `"key": "<string>"` after `key`, if present.
fn scan_str(text: &str, key: &str) -> Option<String> {
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Compare `new` against `old`, matching rows by (preset, l1).
///
/// Returns `(deltas, warnings)`: every row's movement as a human-readable
/// line, and the subset that moved by more than 10% — IPC in *either*
/// direction (the simulator is deterministic, so any IPC movement means
/// behaviour changed) and median cell wall-clock up (slower).  A row
/// present in the baseline but missing from `new` also warns: its
/// regression coverage silently vanished.
pub fn diff(old: &PerfReport, new: &PerfReport) -> (Vec<String>, Vec<String>) {
    let mut deltas = Vec::new();
    let mut warnings = Vec::new();
    for prev in &old.cells {
        if !new
            .cells
            .iter()
            .any(|c| c.preset == prev.preset && c.l1 == prev.l1)
        {
            warnings.push(format!(
                "{} @ {}B: row present in baseline but missing from this run",
                prev.preset, prev.l1
            ));
        }
    }
    for c in &new.cells {
        let Some(prev) = old
            .cells
            .iter()
            .find(|p| p.preset == c.preset && p.l1 == c.l1)
        else {
            deltas.push(format!("{} @ {}B: new cell (no baseline)", c.preset, c.l1));
            continue;
        };
        let d_ipc = rel_delta(prev.hmean_ipc, c.hmean_ipc);
        let d_wall = rel_delta(prev.median_cell_wall_s, c.median_cell_wall_s);
        deltas.push(format!(
            "{} @ {}B: hmean_ipc {:.4} -> {:.4} ({:+.1}%), median cell wall {:.4}s -> {:.4}s ({:+.1}%)",
            c.preset,
            c.l1,
            prev.hmean_ipc,
            c.hmean_ipc,
            100.0 * d_ipc,
            prev.median_cell_wall_s,
            c.median_cell_wall_s,
            100.0 * d_wall,
        ));
        if d_ipc.abs() > 0.10 {
            warnings.push(format!(
                "{} @ {}B: hmean IPC moved {:+.1}% ({:.4} -> {:.4})",
                c.preset,
                c.l1,
                100.0 * d_ipc,
                prev.hmean_ipc,
                c.hmean_ipc
            ));
        }
        if d_wall > 0.10 {
            warnings.push(format!(
                "{} @ {}B: median cell wall-clock up {:.1}% ({:.4}s -> {:.4}s)",
                c.preset,
                c.l1,
                100.0 * d_wall,
                prev.median_cell_wall_s,
                c.median_cell_wall_s
            ));
        }
    }
    (deltas, warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ipc: f64, wall: f64) -> PerfReport {
        PerfReport {
            schema: 1,
            total_wall_s: 2.5,
            cells: vec![
                CellPerf {
                    preset: "base+L0".into(),
                    l1: 1024,
                    hmean_ipc: ipc,
                    median_cell_wall_s: wall,
                },
                CellPerf {
                    preset: "CLGP+L0".into(),
                    l1: 4096,
                    hmean_ipc: 1.5,
                    median_cell_wall_s: 0.02,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrips() {
        let r = report(1.25, 0.0125);
        let back = PerfReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(back.schema, 1);
        assert_eq!(back.cells.len(), 2);
        assert!((back.total_wall_s - 2.5).abs() < 1e-9);
        assert_eq!(back.cells[0].preset, "base+L0");
        assert_eq!(back.cells[0].l1, 1024);
        assert!((back.cells[0].hmean_ipc - 1.25).abs() < 1e-6);
        assert!((back.cells[1].median_cell_wall_s - 0.02).abs() < 1e-6);
    }

    #[test]
    fn garbage_and_future_schemas_are_no_baseline() {
        assert!(PerfReport::from_json("").is_none());
        assert!(PerfReport::from_json("not json at all").is_none());
        let future = report(1.0, 1.0).to_json().replace(
            "\"schema\": 1",
            "\"schema\": 2",
        );
        assert!(PerfReport::from_json(&future).is_none());
    }

    #[test]
    fn truncated_artifact_is_no_baseline() {
        // An interrupted cache save that drops cell lines must not read as
        // a smaller valid report.
        let full = report(1.0, 1.0).to_json();
        let cut = full.find("\"CLGP+L0\"").unwrap();
        assert!(PerfReport::from_json(&full[..cut]).is_none());
        // Header without any rows is likewise no baseline.
        let header_only = &full[..full.find("{\"preset\"").unwrap()];
        assert!(PerfReport::from_json(header_only).is_none());
    }

    #[test]
    fn diff_flags_only_large_movement() {
        let old = report(1.00, 0.0100);
        // 5% slower wall, 5% lower IPC: reported, not warned.
        let (deltas, warnings) = diff(&old, &report(0.95, 0.0105));
        assert_eq!(deltas.len(), 2);
        assert!(warnings.is_empty(), "{warnings:?}");
        // 15% lower IPC and 20% slower: both warned.
        let (_, warnings) = diff(&old, &report(0.85, 0.0120));
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        // IPC is deterministic — a large *increase* is behaviour change too.
        let (_, warnings) = diff(&old, &report(1.30, 0.0080));
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("IPC moved"));
        // Faster wall-clock alone never warns.
        let (_, warnings) = diff(&old, &report(1.00, 0.0050));
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn diff_handles_unmatched_cells() {
        let old = PerfReport {
            schema: 1,
            total_wall_s: 0.0,
            cells: vec![],
        };
        let (deltas, warnings) = diff(&old, &report(1.0, 0.01));
        assert_eq!(deltas.len(), 2);
        assert!(deltas[0].contains("no baseline"));
        assert!(warnings.is_empty());
        // A baseline row that vanished from the new run is a warning: its
        // coverage silently disappeared.
        let mut shrunk = report(1.0, 0.01);
        shrunk.cells.truncate(1);
        let (_, warnings) = diff(&report(1.0, 0.01), &shrunk);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("missing from this run"));
    }
}
