//! The one place figure output is rendered.
//!
//! Every figure binary used to hand-roll its own table printing and CSV
//! emission; they are now declarations (an [`ExperimentSpec`] plus a
//! [`ReportKind`]) and this module owns the four renderings the paper's
//! figures need.  Each renderer takes the spec (for axes and labels) and
//! the ordered `[preset][size]` rows `run_spec` returned, prints the
//! figure's data series as an aligned text table, and writes the matching
//! CSV(s) under [`crate::results_dir`].

use crate::{note_result, results_dir, size_label};
use prestage_core::FrontStats;
use prestage_sim::{ExperimentSpec, GridResult};
use std::io::Write;
use std::path::PathBuf;

/// How a figure presents its grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// IPC vs L1 size, one row per preset (Figures 1, 2, 4, 5).
    Sweep,
    /// Per-benchmark IPC at a single L1 size, one column per preset
    /// (Figure 6).  Requires a one-size spec.
    PerBench,
    /// Fetch-source distribution per (preset, size) (Figure 7).
    FetchSources,
    /// Prefetch-source distribution per (preset, size) (Figure 8).
    PrefetchSources,
}

/// Render `rows` as `kind`, printing the table and writing
/// `<results dir>/<csv_name>.csv` (plus companions where the figure has
/// them).
pub fn render(
    kind: ReportKind,
    title: &str,
    csv_name: &str,
    spec: &ExperimentSpec,
    rows: &[Vec<GridResult>],
) {
    match kind {
        ReportKind::Sweep => sweep(title, csv_name, spec, rows),
        ReportKind::PerBench => per_bench(title, csv_name, spec, rows),
        ReportKind::FetchSources => fetch_sources(title, csv_name, spec, rows),
        ReportKind::PrefetchSources => prefetch_sources(title, csv_name, spec, rows),
    }
}

fn create_csv(name: &str) -> (std::fs::File, PathBuf) {
    let dir = results_dir();
    std::fs::create_dir_all(dir).expect("results dir creatable");
    let path = dir.join(format!("{name}.csv"));
    let f = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("create {}: {e}", path.display()));
    (f, path)
}

fn size_labels(spec: &ExperimentSpec) -> Vec<String> {
    let labels: Vec<String> = spec.l1_sizes.iter().map(|&s| size_label(s)).collect();
    // prestage: allow(nondeterministic-iteration, the set is only measured with len() for a duplicate check — an order-independent use)
    let unique: std::collections::HashSet<&str> = labels.iter().map(String::as_str).collect();
    assert_eq!(
        unique.len(),
        labels.len(),
        "size labels collide in CSV header: {labels:?}"
    );
    labels
}

/// Print an IPC sweep as an aligned text table (the figure's data
/// series), without touching the results dir — what `prestage run` uses
/// for ad-hoc spec files.  A cell whose HMEAN collapsed to zero gets its
/// culprit benchmarks named on stderr instead of hiding inside the table.
pub fn sweep_table(title: &str, spec: &ExperimentSpec, rows: &[Vec<GridResult>]) {
    let labels = size_labels(spec);
    println!("\n# {title}");
    print!("{:<16}", "config");
    for label in &labels {
        print!(" {label:>8}");
    }
    println!();
    for (preset, row) in spec.presets.iter().zip(rows) {
        print!("{:<16}", preset.label());
        for (&size, r) in spec.l1_sizes.iter().zip(row) {
            print!(" {:>8.3}", r.hmean_ipc());
            let zeroed = r.zero_ipc_benches();
            if !zeroed.is_empty() {
                eprintln!(
                    "  WARNING: {} @ {}: zero IPC from {} — HMEAN reported as 0",
                    preset.label(),
                    size_label(size),
                    zeroed.join(", ")
                );
            }
        }
        println!();
    }
}

/// [`sweep_table`] plus the summary and per-benchmark detail CSVs — the
/// full figure rendering.
pub fn sweep(title: &str, csv_name: &str, spec: &ExperimentSpec, rows: &[Vec<GridResult>]) {
    sweep_table(title, spec, rows);
    let labels = size_labels(spec);
    let (mut f, path) = create_csv(csv_name);
    write!(f, "config").unwrap();
    for label in &labels {
        write!(f, ",{label}").unwrap();
    }
    writeln!(f).unwrap();
    for (preset, row) in spec.presets.iter().zip(rows) {
        write!(f, "{}", preset.label()).unwrap();
        for r in row {
            write!(f, ",{:.4}", r.hmean_ipc()).unwrap();
        }
        writeln!(f).unwrap();
    }
    // Per-benchmark detail sheet.
    let (mut f, _) = create_csv(&format!("{csv_name}_detail"));
    writeln!(f, "config,l1,bench,ipc,mpki,pb_share,l0_share,l1_share").unwrap();
    for (preset, row) in spec.presets.iter().zip(rows) {
        for (&size, r) in spec.l1_sizes.iter().zip(row) {
            for (name_b, s) in &r.per_bench {
                writeln!(
                    f,
                    "{},{},{},{:.4},{:.2},{:.4},{:.4},{:.4}",
                    preset.label(),
                    size_label(size),
                    name_b,
                    s.ipc(),
                    s.mpki(),
                    s.front.fetch_share(s.front.fetch_pb),
                    s.front.fetch_share(s.front.fetch_l0),
                    s.front.fetch_share(s.front.fetch_l1),
                )
                .unwrap();
            }
        }
    }
    eprintln!("wrote {}", path.display());
}

/// Per-benchmark IPC columns at a single L1 size, with the HMEAN row the
/// paper's Figure 6 ends on; notes the pairwise HMEAN comparisons.
pub fn per_bench(title: &str, csv_name: &str, spec: &ExperimentSpec, rows: &[Vec<GridResult>]) {
    assert_eq!(
        spec.l1_sizes.len(),
        1,
        "per-benchmark report needs a single-size spec"
    );
    let results: Vec<&GridResult> = rows.iter().map(|row| &row[0]).collect();

    println!("\n# {title}");
    print!("{:<10}", "bench");
    for p in &spec.presets {
        print!(" {:>15}", p.label());
    }
    println!();
    let (mut csv, path) = create_csv(csv_name);
    write!(csv, "bench").unwrap();
    for p in &spec.presets {
        write!(csv, ",{}", p.label()).unwrap();
    }
    writeln!(csv).unwrap();
    for (i, (name, _)) in results[0].per_bench.iter().enumerate() {
        print!("{name:<10}");
        write!(csv, "{name}").unwrap();
        for r in &results {
            let ipc = r.per_bench[i].1.ipc();
            print!(" {ipc:>15.3}");
            write!(csv, ",{ipc:.4}").unwrap();
        }
        println!();
        writeln!(csv).unwrap();
    }
    print!("{:<10}", "HMEAN");
    write!(csv, "HMEAN").unwrap();
    let hmeans: Vec<f64> = results.iter().map(|r| r.hmean_ipc()).collect();
    for h in &hmeans {
        print!(" {h:>15.3}");
        write!(csv, ",{h:.4}").unwrap();
    }
    println!();
    writeln!(csv).unwrap();
    eprintln!("wrote {}", path.display());

    // Headline note: each preset's HMEAN, plus the last preset (the
    // paper's proposed configuration by figure-legend convention) over
    // every other.
    let mut note = spec
        .presets
        .iter()
        .zip(&hmeans)
        .map(|(p, h)| format!("{} {:.3}", p.label(), h))
        .collect::<Vec<_>>()
        .join(", ");
    if let (Some(last), Some(&last_h)) = (spec.presets.last(), hmeans.last()) {
        let gains = spec
            .presets
            .iter()
            .zip(&hmeans)
            .take(spec.presets.len() - 1)
            .map(|(p, h)| format!("over {} {:+.1}%", p.label(), (last_h / h - 1.0) * 100.0))
            .collect::<Vec<_>>()
            .join(", ");
        if !gains.is_empty() {
            note.push_str(&format!(" ({} {gains})", last.label()));
        }
    }
    note_result(csv_name, &format!("HMEAN {note}"));
}

fn fetch_shares(stats: &[FrontStats]) -> [f64; 5] {
    let mut acc = [0.0; 5];
    for f in stats {
        acc[0] += f.fetch_share(f.fetch_pb);
        acc[1] += f.fetch_share(f.fetch_l0);
        acc[2] += f.fetch_share(f.fetch_l1);
        acc[3] += f.fetch_share(f.fetch_l2);
        acc[4] += f.fetch_share(f.fetch_mem);
    }
    acc.map(|x| 100.0 * x / stats.len() as f64)
}

/// Distribution of fetch sources per (preset, size) — Figure 7.
pub fn fetch_sources(title: &str, csv_name: &str, spec: &ExperimentSpec, rows: &[Vec<GridResult>]) {
    println!("\n# {title}");
    println!(
        "{:<14} {:>6} | {:>6} {:>6} {:>6} {:>6} {:>6}",
        "config", "L1", "PB", "il0", "il1", "ul2", "Mem"
    );
    let (mut csv, path) = create_csv(csv_name);
    writeln!(csv, "config,l1,pb,il0,il1,ul2,mem").unwrap();
    for (preset, row) in spec.presets.iter().zip(rows) {
        for (&size, r) in spec.l1_sizes.iter().zip(row) {
            let st: Vec<_> = r.per_bench.iter().map(|(_, s)| s.front).collect();
            let sh = fetch_shares(&st);
            println!(
                "{:<14} {:>6} | {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
                preset.label(),
                size_label(size),
                sh[0],
                sh[1],
                sh[2],
                sh[3],
                sh[4]
            );
            writeln!(
                csv,
                "{},{},{:.2},{:.2},{:.2},{:.2},{:.2}",
                preset.label(),
                size_label(size),
                sh[0],
                sh[1],
                sh[2],
                sh[3],
                sh[4]
            )
            .unwrap();
        }
    }
    eprintln!("wrote {}", path.display());
}

/// Distribution of prefetch sources (where the line was found when the
/// prefetch request was processed) per (preset, size) — Figure 8.
pub fn prefetch_sources(
    title: &str,
    csv_name: &str,
    spec: &ExperimentSpec,
    rows: &[Vec<GridResult>],
) {
    println!("\n# {title}");
    println!(
        "{:<14} {:>6} | {:>6} {:>6} {:>6} {:>6}",
        "config", "L1", "PB", "il1", "ul2", "Mem"
    );
    let (mut csv, path) = create_csv(csv_name);
    writeln!(csv, "config,l1,pb,il1,ul2,mem").unwrap();
    for (preset, row) in spec.presets.iter().zip(rows) {
        for (&size, r) in spec.l1_sizes.iter().zip(row) {
            let mut acc = [0.0f64; 4];
            for (_, s) in &r.per_bench {
                let f = s.front;
                let total = f.total_prefetch_requests().max(1) as f64;
                acc[0] += f.prefetch_from_pb as f64 / total;
                acc[1] += f.prefetch_from_l1 as f64 / total;
                acc[2] += f.prefetch_from_l2 as f64 / total;
                acc[3] += f.prefetch_from_mem as f64 / total;
            }
            let n = r.per_bench.len() as f64;
            let sh = acc.map(|x| 100.0 * x / n);
            println!(
                "{:<14} {:>6} | {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
                preset.label(),
                size_label(size),
                sh[0],
                sh[1],
                sh[2],
                sh[3]
            );
            writeln!(
                csv,
                "{},{},{:.2},{:.2},{:.2},{:.2}",
                preset.label(),
                size_label(size),
                sh[0],
                sh[1],
                sh[2],
                sh[3]
            )
            .unwrap();
        }
    }
    eprintln!("wrote {}", path.display());
}
