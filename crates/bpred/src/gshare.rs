//! Gshare-over-dictionary fetch-block predictor.
//!
//! A classic gshare direction predictor (XOR of PC and global history into a
//! 2-bit counter table) that builds streams by walking the basic-block
//! dictionary, predicting each conditional branch as it goes.  It exists for
//! the ablation benches: the paper (and \[14\]) argue that decoupled
//! prefetching quality tracks predictor quality, so swapping the stream
//! predictor for gshare quantifies that sensitivity without touching the
//! front-end.

use crate::ras::{RasSnapshot, ReturnAddressStack};
use crate::stream::{
    FetchBlockPredictor, StreamDesc, StreamEnd, StreamPrediction, MAX_STREAM_INSTS,
};
use prestage_isa::{Addr, OpClass, Program, INST_BYTES};

/// Checkpoint of gshare speculative state.
#[derive(Debug, Clone)]
pub struct GshareCheckpoint {
    ghist: u64,
    ras: RasSnapshot,
}

/// Gshare + RAS, producing stream predictions by dictionary walk.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    /// 2-bit saturating counters.
    pht: Vec<u8>,
    mask: usize,
    ghist: u64,
    ras: ReturnAddressStack,
}

impl GsharePredictor {
    /// `pht_entries` must be a power of two (default configuration: 16K).
    pub fn new(pht_entries: usize, ras_entries: usize) -> Self {
        assert!(pht_entries.is_power_of_two());
        GsharePredictor {
            pht: vec![1; pht_entries], // weakly not-taken
            mask: pht_entries - 1,
            ghist: 0,
            ras: ReturnAddressStack::new(ras_entries),
        }
    }

    pub fn default_16k() -> Self {
        Self::new(16 << 10, 8)
    }

    #[inline]
    fn index(&self, pc: Addr, hist: u64) -> usize {
        (((pc >> 2) ^ hist) as usize) & self.mask
    }

    fn predict_dir(&self, pc: Addr, hist: u64) -> bool {
        self.pht[self.index(pc, hist)] >= 2
    }

    fn update_dir(&mut self, pc: Addr, hist: u64, taken: bool) {
        let idx = self.index(pc, hist);
        let c = &mut self.pht[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

impl FetchBlockPredictor for GsharePredictor {
    type Checkpoint = GshareCheckpoint;

    fn predict(&mut self, start: Addr, prog: &Program) -> StreamPrediction {
        let mut pc = start;
        let mut len = 0u32;
        let mut stream = loop {
            if len >= MAX_STREAM_INSTS {
                break StreamDesc {
                    start,
                    len,
                    next: pc,
                    end: StreamEnd::SequentialBreak,
                };
            }
            let Some(inst) = prog.inst_at(pc) else {
                // Off the image: close the stream at the boundary.
                break StreamDesc {
                    start,
                    len: len.max(1),
                    next: pc,
                    end: StreamEnd::SequentialBreak,
                };
            };
            len += 1;
            match inst.op {
                OpClass::CondBranch => {
                    let taken = self.predict_dir(pc, self.ghist);
                    self.ghist = (self.ghist << 1) | taken as u64;
                    if taken {
                        break StreamDesc {
                            start,
                            len,
                            next: inst.target.expect("branch target"),
                            end: StreamEnd::Taken,
                        };
                    }
                    pc += INST_BYTES;
                }
                OpClass::Jump => {
                    break StreamDesc {
                        start,
                        len,
                        next: inst.target.expect("jump target"),
                        end: StreamEnd::Taken,
                    }
                }
                OpClass::Call => {
                    break StreamDesc {
                        start,
                        len,
                        next: inst.target.expect("call target"),
                        end: StreamEnd::Call,
                    }
                }
                OpClass::Return => {
                    break StreamDesc {
                        start,
                        len,
                        next: 0,
                        end: StreamEnd::Return,
                    }
                }
                _ => pc += INST_BYTES,
            }
        };
        match stream.end {
            StreamEnd::Call => self.ras.push(stream.end_pc()),
            StreamEnd::Return => stream.next = self.ras.pop(),
            _ => {}
        }
        StreamPrediction {
            stream,
            table_hit: true,
            from_l2: false,
        }
    }

    fn train(&mut self, actual: &StreamDesc) {
        // Replay the stream's conditional branches: every embedded one was
        // not taken; the terminator was taken iff the stream ended Taken at
        // a conditional branch (unconditional CTIs need no direction
        // training).  History replay uses the retired history convention:
        // we simply fold outcomes into a scratch history starting from the
        // current one — gshare is noise-tolerant by design and this is an
        // ablation baseline.
        let mut hist = self.ghist;
        let end_pc = actual.end_pc();
        let mut pc = actual.start;
        while pc < end_pc {
            // Only the terminator can be taken.
            let is_last = pc + INST_BYTES == end_pc;
            let taken = is_last && actual.end == StreamEnd::Taken;
            self.update_dir(pc, hist, taken);
            hist = (hist << 1) | taken as u64;
            pc += INST_BYTES;
        }
    }

    fn checkpoint(&self) -> GshareCheckpoint {
        GshareCheckpoint {
            ghist: self.ghist,
            ras: self.ras.snapshot(),
        }
    }

    fn restore(&mut self, cp: &GshareCheckpoint) {
        self.ghist = cp.ghist;
        self.ras.restore(&cp.ras);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestage_isa::{straightline_block, ProgramBuilder, Terminator};

    fn loop_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.push(straightline_block(
            0x1000,
            7,
            Terminator::CondBranch {
                taken: 0x1000,
                not_taken: 0x1020,
            },
        ));
        pb.push(straightline_block(0x1020, 2, Terminator::Return));
        pb.finish().unwrap()
    }

    #[test]
    fn cold_predicts_not_taken() {
        let prog = loop_program();
        let mut g = GsharePredictor::default_16k();
        let p = g.predict(0x1000, &prog);
        // Weakly-not-taken counters: walks through the branch to the Return.
        assert_eq!(p.stream.end, StreamEnd::Return);
    }

    #[test]
    fn learns_taken_loop_branch()
    {
        let prog = loop_program();
        let mut g = GsharePredictor::default_16k();
        let taken = StreamDesc {
            start: 0x1000,
            len: 8,
            next: 0x1000,
            end: StreamEnd::Taken,
        };
        for _ in 0..4 {
            g.train(&taken);
        }
        let p = g.predict(0x1000, &prog);
        assert_eq!(p.stream.end, StreamEnd::Taken);
        assert_eq!(p.stream.next, 0x1000);
        assert_eq!(p.stream.len, 8);
    }

    #[test]
    fn training_embedded_branches_not_taken() {
        let prog = loop_program();
        let mut g = GsharePredictor::default_16k();
        // Bias the branch taken, then train a stream where it is embedded
        // (i.e. fell through to the Return).
        let taken = StreamDesc {
            start: 0x1000,
            len: 8,
            next: 0x1000,
            end: StreamEnd::Taken,
        };
        for _ in 0..4 {
            g.train(&taken);
        }
        let fallthrough = StreamDesc {
            start: 0x1000,
            len: 10,
            next: 0,
            end: StreamEnd::Return,
        };
        for _ in 0..6 {
            g.train(&fallthrough);
        }
        let p = g.predict(0x1000, &prog);
        assert_eq!(p.stream.end, StreamEnd::Return);
    }

    #[test]
    fn ras_roundtrip_through_calls() {
        let mut pb = ProgramBuilder::new();
        pb.push(straightline_block(
            0x100,
            2,
            Terminator::Call {
                target: 0x200,
                link: 0x10c,
            },
        ));
        pb.push(straightline_block(0x10c, 1, Terminator::Return));
        pb.push(straightline_block(0x200, 1, Terminator::Return));
        let prog = pb.finish().unwrap();
        let mut g = GsharePredictor::default_16k();
        let c = g.predict(0x100, &prog);
        assert_eq!(c.stream.next, 0x200);
        let r = g.predict(0x200, &prog);
        assert_eq!(r.stream.next, 0x10c);
    }

    #[test]
    fn checkpoint_restore() {
        let prog = loop_program();
        let mut g = GsharePredictor::default_16k();
        let cp = g.checkpoint();
        let _ = g.predict(0x1000, &prog);
        g.restore(&cp);
        assert_eq!(g.ghist, 0);
        assert_eq!(g.ras.depth(), 0);
    }
}
