//! # prestage-bpred
//!
//! Branch prediction substrate for the decoupled front-end.
//!
//! The paper's front-end (Table 2) uses a **stream predictor** (Ramirez,
//! Santana, Larriba-Pey, Valero — "Fetching instruction streams", MICRO'02)
//! with 1K + 6K entries and an 8-entry return address stack.  A *stream* is
//! a maximal run of sequential instructions ending at a taken control
//! transfer; one prediction names the whole next fetch block, which is what
//! lets the predictor run ahead of the I-cache and feed the FTQ/CLTQ.
//!
//! Module map:
//! * [`stream`] — stream descriptors, the segmentation invariants, and the
//!   maximum fetch-block length shared with the front-end.
//! * [`ras`] — checkpointable return address stack.
//! * [`predictor`] — the cascaded 1K (PC-indexed) + 6K (path-history
//!   indexed) stream predictor, with speculative history and repair.
//! * [`gshare`] — a classic gshare + BTB predictor wrapped to produce
//!   streams by walking the basic-block dictionary; used by the ablation
//!   benches.

pub mod gshare;
pub mod predictor;
pub mod ras;
pub mod stream;

pub use gshare::GsharePredictor;
pub use predictor::{PredCheckpoint, PredStats, StreamPredictor, StreamPredictorConfig, TrainToken};
pub use ras::{RasSnapshot, ReturnAddressStack};
pub use stream::{FetchBlockPredictor, StreamDesc, StreamEnd, StreamPrediction, MAX_STREAM_INSTS};
