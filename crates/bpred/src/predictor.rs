//! The cascaded stream predictor: a 1K-entry PC-indexed first level plus a
//! 6K-entry path-history-indexed second level (Table 2: "1K+6K-entry stream
//! pred., 1 cycle lat."), with an 8-entry RAS.
//!
//! Prediction returns a whole [`StreamDesc`] — start, length, and the next
//! stream's start — which the front-end turns into one FTQ entry (FDP) or a
//! run of CLTQ cache-line entries (CLGP).  Speculative path history and RAS
//! state advance at predict time and are checkpointed/restored around
//! mispredictions, mirroring the paper's "speculative lookups and updates of
//! the branch predictor".

use crate::ras::{RasSnapshot, ReturnAddressStack};
use crate::stream::{
    static_fallback_walk, FetchBlockPredictor, StreamDesc, StreamEnd, StreamPrediction,
};
use prestage_isa::{Addr, Program, INST_BYTES};
use serde::{Deserialize, Serialize};

/// Configuration of the cascaded stream predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamPredictorConfig {
    /// First-level (PC-indexed) entries.  Paper: 1024.
    pub l1_entries: usize,
    /// Second-level (history-indexed) entries.  Paper: 6144.
    pub l2_entries: usize,
    /// RAS entries.  Paper: 8.
    pub ras_entries: usize,
    /// Hysteresis ceiling (2-bit counters → 3).
    pub conf_max: u8,
}

impl Default for StreamPredictorConfig {
    fn default() -> Self {
        StreamPredictorConfig {
            l1_entries: 1024,
            l2_entries: 6144,
            ras_entries: 8,
            conf_max: 3,
        }
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Entry {
    valid: bool,
    tag: u32,
    /// Stream length in instructions, stored at full width: a narrower
    /// field silently clamped long streams (> 65535 instructions) and
    /// trained the predictor on a corrupted length.  Normal operation
    /// never exceeds `MAX_STREAM_INSTS`, but the table must be faithful
    /// to whatever [`StreamDesc`] it is trained with.
    len: u32,
    next: Addr,
    end: StreamEnd,
    conf: u8,
}

impl Entry {
    fn to_stream(self, start: Addr) -> StreamDesc {
        StreamDesc {
            start,
            len: self.len,
            next: self.next,
            end: self.end,
        }
    }

    fn matches(&self, actual: &StreamDesc) -> bool {
        self.valid
            && self.len == actual.len
            && self.end == actual.end
            && (self.end == StreamEnd::Return || self.next == actual.next)
    }
}

/// Context captured at predict time, needed to train the right entries with
/// the history that was live when the prediction was made.
#[derive(Debug, Clone, Copy)]
pub struct TrainToken {
    l1_idx: usize,
    l1_tag: u32,
    l2_idx: usize,
    l2_tag: u32,
}

/// Prediction accuracy and table-usage counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredStats {
    pub predictions: u64,
    pub l1_supplied: u64,
    pub l2_supplied: u64,
    pub fallback_supplied: u64,
    pub trained: u64,
    pub train_correct: u64,
}

impl PredStats {
    /// Fraction of trained predictions that were correct.
    pub fn accuracy(&self) -> f64 {
        if self.trained == 0 {
            return 0.0;
        }
        self.train_correct as f64 / self.trained as f64
    }
}

/// Checkpoint of all speculative predictor state.
#[derive(Debug, Clone)]
pub struct PredCheckpoint {
    history: u64,
    ras: RasSnapshot,
}

/// The cascaded stream predictor.
#[derive(Debug, Clone)]
pub struct StreamPredictor {
    cfg: StreamPredictorConfig,
    l1: Vec<Entry>,
    l2: Vec<Entry>,
    ras: ReturnAddressStack,
    /// Speculative path history: folded stream-start addresses.
    history: u64,
    stats: PredStats,
}

fn fold_tag(x: u64) -> u32 {
    // prestage: allow(truncating-cast, hash fold: collapsing 64 address bits into a 32-bit tag is the point; collisions only alias predictor entries, never corrupt results)
    ((x >> 2) ^ (x >> 17) ^ (x >> 33)) as u32 | 1
}

impl StreamPredictor {
    pub fn new(cfg: StreamPredictorConfig) -> Self {
        // The first level is indexed with `& (l1_entries - 1)` while the
        // second level uses `%`: a non-power-of-two first level would
        // silently alias entries and the two tables would disagree about
        // which streams they cover.  Reject it at construction, by name.
        assert!(
            cfg.l1_entries.is_power_of_two(),
            "StreamPredictorConfig.l1_entries must be a power of two \
             (the PC-indexed level is mask-indexed), got {}",
            cfg.l1_entries
        );
        StreamPredictor {
            l1: vec![Entry::default(); cfg.l1_entries],
            l2: vec![Entry::default(); cfg.l2_entries],
            ras: ReturnAddressStack::new(cfg.ras_entries),
            history: 0,
            stats: PredStats::default(),
            cfg,
        }
    }

    /// Paper configuration (1K + 6K entries, 8-entry RAS).
    pub fn paper_default() -> Self {
        Self::new(StreamPredictorConfig::default())
    }

    fn l1_index(&self, start: Addr) -> (usize, u32) {
        let idx = ((start >> 2) as usize) & (self.cfg.l1_entries - 1);
        (idx, fold_tag(start))
    }

    fn l2_index(&self, start: Addr, history: u64) -> (usize, u32) {
        let h = history ^ (start >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx = (h % self.cfg.l2_entries as u64) as usize;
        (idx, fold_tag(start ^ history.rotate_left(13)))
    }

    fn push_history(&mut self, next_start: Addr) {
        self.history = self.history.rotate_left(7) ^ (next_start >> 2);
    }

    /// Apply RAS side effects of following `stream`, resolving Return
    /// targets.  Returns the (possibly RAS-substituted) next address.
    fn apply_ras(&mut self, stream: &mut StreamDesc) {
        match stream.end {
            StreamEnd::Call => self.ras.push(stream.end_pc()),
            StreamEnd::Return => stream.next = self.ras.pop(),
            _ => {}
        }
    }

    pub fn stats(&self) -> &PredStats {
        &self.stats
    }

    /// Zero the accuracy counters (end of warm-up); tables are kept.
    pub fn reset_stats(&mut self) {
        self.stats = PredStats::default();
    }

    /// Update one table entry towards `actual` with hysteresis.
    fn train_entry(entry: &mut Entry, tag: u32, actual: &StreamDesc, conf_max: u8) {
        let same = entry.valid && entry.tag == tag && entry.matches(actual);
        if same {
            entry.conf = (entry.conf + 1).min(conf_max);
            return;
        }
        if entry.valid && entry.conf > 0 {
            entry.conf -= 1;
            return;
        }
        *entry = Entry {
            valid: true,
            tag,
            len: actual.len,
            next: actual.next,
            end: actual.end,
            conf: 1,
        };
    }
}

impl FetchBlockPredictor for StreamPredictor {
    type Checkpoint = PredCheckpoint;

    fn predict(&mut self, start: Addr, prog: &Program) -> StreamPrediction {
        let (i1, t1) = self.l1_index(start);
        let (i2, t2) = self.l2_index(start, self.history);
        self.predict_at(i1, t1, i2, t2, start, prog)
    }

    fn train(&mut self, actual: &StreamDesc) {
        // Trait-level train without a token: PC-indexed level only.  The
        // engine uses `train_with_token` for full cascade training; this
        // entry point exists for warm-up passes.
        let (i1, t1) = self.l1_index(actual.start);
        let conf_max = self.cfg.conf_max;
        Self::train_entry(&mut self.l1[i1], t1, actual, conf_max);
    }

    fn checkpoint(&self) -> PredCheckpoint {
        PredCheckpoint {
            history: self.history,
            ras: self.ras.snapshot(),
        }
    }

    fn restore(&mut self, cp: &PredCheckpoint) {
        self.history = cp.history;
        self.ras.restore(&cp.ras);
    }
}

impl StreamPredictor {
    /// Shared prediction body over precomputed table indices/tags.
    fn predict_at(
        &mut self,
        i1: usize,
        t1: u32,
        i2: usize,
        t2: u32,
        start: Addr,
        prog: &Program,
    ) -> StreamPrediction {
        self.stats.predictions += 1;
        let l2e = self.l2[i2];
        let l1e = self.l1[i1];
        let (mut stream, table_hit, from_l2) = if l2e.valid && l2e.tag == t2 {
            self.stats.l2_supplied += 1;
            (l2e.to_stream(start), true, true)
        } else if l1e.valid && l1e.tag == t1 {
            self.stats.l1_supplied += 1;
            (l1e.to_stream(start), true, false)
        } else {
            self.stats.fallback_supplied += 1;
            let fb = static_fallback_walk(start, prog).unwrap_or(StreamDesc {
                start,
                len: 1,
                next: start + INST_BYTES,
                end: StreamEnd::SequentialBreak,
            });
            (fb, false, false)
        };
        self.apply_ras(&mut stream);
        self.push_history(stream.next);
        StreamPrediction {
            stream,
            table_hit,
            from_l2,
        }
    }

    /// [`FetchBlockPredictor::predict`] reusing the table indices already
    /// computed for `tok` — which must have been captured by
    /// [`token`](Self::token) at this `start` with the current speculative
    /// history.  The on-path flow always takes a token for training, so
    /// this skips recomputing both index/tag pairs (the history-indexed
    /// level costs a 64-bit modulo per computation).
    pub fn predict_with_token(
        &mut self,
        tok: &TrainToken,
        start: Addr,
        prog: &Program,
    ) -> StreamPrediction {
        debug_assert_eq!((tok.l1_idx, tok.l1_tag), self.l1_index(start));
        debug_assert_eq!((tok.l2_idx, tok.l2_tag), self.l2_index(start, self.history));
        self.predict_at(tok.l1_idx, tok.l1_tag, tok.l2_idx, tok.l2_tag, start, prog)
    }

    /// Capture the training context for a prediction made at `start` with
    /// the *current* speculative history (call before `predict`).
    pub fn token(&self, start: Addr) -> TrainToken {
        let (l1_idx, l1_tag) = self.l1_index(start);
        let (l2_idx, l2_tag) = self.l2_index(start, self.history);
        TrainToken {
            l1_idx,
            l1_tag,
            l2_idx,
            l2_tag,
        }
    }

    /// Cascaded training: always train L1; train the history-indexed L2
    /// when the L1 entry alone would have mispredicted (classic cascade
    /// allocation policy).  `was_correct` is whether the *emitted*
    /// prediction matched the actual stream (for accuracy stats).
    pub fn train_with_token(&mut self, tok: &TrainToken, actual: &StreamDesc, was_correct: bool) {
        self.stats.trained += 1;
        if was_correct {
            self.stats.train_correct += 1;
        }
        let conf_max = self.cfg.conf_max;
        let l1_was_right = {
            let e = &self.l1[tok.l1_idx];
            e.valid && e.tag == tok.l1_tag && e.matches(actual)
        };
        Self::train_entry(&mut self.l1[tok.l1_idx], tok.l1_tag, actual, conf_max);
        if !l1_was_right {
            Self::train_entry(&mut self.l2[tok.l2_idx], tok.l2_tag, actual, conf_max);
        } else {
            // Keep a correct L2 entry fresh if it exists.
            let e = &mut self.l2[tok.l2_idx];
            if e.valid && e.tag == tok.l2_tag && e.matches(actual) {
                e.conf = (e.conf + 1).min(conf_max);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestage_isa::{straightline_block, ProgramBuilder, Terminator};

    fn loop_program() -> Program {
        // One block: 7 ALU + cond branch back to itself.
        let mut pb = ProgramBuilder::new();
        pb.push(straightline_block(
            0x1000,
            7,
            Terminator::CondBranch {
                taken: 0x1000,
                not_taken: 0x1020,
            },
        ));
        pb.push(straightline_block(0x1020, 2, Terminator::Return));
        pb.finish().unwrap()
    }

    fn taken_stream() -> StreamDesc {
        StreamDesc {
            start: 0x1000,
            len: 8,
            next: 0x1000,
            end: StreamEnd::Taken,
        }
    }

    #[test]
    fn fallback_then_learned() {
        let prog = loop_program();
        let mut p = StreamPredictor::paper_default();
        // Cold: fallback predicts not-taken => stream runs to the Return.
        let pred = p.predict(0x1000, &prog);
        assert!(!pred.table_hit);
        assert_eq!(pred.stream.end, StreamEnd::Return);

        // Train the taken back-edge twice; now the table supplies it.
        let tok = p.token(0x1000);
        p.train_with_token(&tok, &taken_stream(), false);
        let pred2 = p.predict(0x1000, &prog);
        assert!(pred2.table_hit);
        assert!(pred2.stream.same_flow(&taken_stream()));
    }

    #[test]
    fn hysteresis_resists_one_off_noise() {
        let prog = loop_program();
        let mut p = StreamPredictor::paper_default();
        let tok = p.token(0x1000);
        p.train_with_token(&tok, &taken_stream(), false);
        p.train_with_token(&tok, &taken_stream(), true);
        // One contradictory sample must not evict the hot entry.
        let exit = StreamDesc {
            start: 0x1000,
            len: 8,
            next: 0x1020,
            end: StreamEnd::Taken,
        };
        p.train_with_token(&tok, &exit, false);
        let pred = p.predict(0x1000, &prog);
        assert!(pred.stream.same_flow(&taken_stream()));
    }

    #[test]
    fn checkpoint_restores_history_and_ras() {
        let prog = loop_program();
        let mut p = StreamPredictor::paper_default();
        let tok = p.token(0x1000);
        p.train_with_token(&tok, &taken_stream(), false);
        let cp = p.checkpoint();
        let _ = p.predict(0x1000, &prog); // mutates history (next = 0x1000)
        assert_ne!(p.history, cp.history);
        p.restore(&cp);
        assert_eq!(p.history, cp.history);
        assert_eq!(p.ras.depth(), cp.ras.depth());
    }

    #[test]
    fn return_streams_use_ras() {
        let mut pb = ProgramBuilder::new();
        pb.push(straightline_block(
            0x100,
            2,
            Terminator::Call {
                target: 0x200,
                link: 0x10c,
            },
        ));
        pb.push(straightline_block(0x10c, 1, Terminator::Return));
        pb.push(straightline_block(0x200, 1, Terminator::Return));
        let prog = pb.finish().unwrap();

        let mut p = StreamPredictor::paper_default();
        let call = p.predict(0x100, &prog);
        assert_eq!(call.stream.end, StreamEnd::Call);
        assert_eq!(call.stream.next, 0x200);
        // The return stream pops the link pushed by the call.
        let ret = p.predict(0x200, &prog);
        assert_eq!(ret.stream.end, StreamEnd::Return);
        assert_eq!(ret.stream.next, 0x10c);
    }

    #[test]
    fn l2_differentiates_by_history() {
        // Same stream start, two different histories leading to different
        // continuations: L2 learns both; L1 alone cannot.
        let prog = loop_program();
        let mut p = StreamPredictor::paper_default();
        let a = StreamDesc {
            start: 0x1000,
            len: 8,
            next: 0x1000,
            end: StreamEnd::Taken,
        };
        let b = StreamDesc {
            start: 0x1000,
            len: 8,
            next: 0x1020,
            end: StreamEnd::Taken,
        };

        // History context 1 -> outcome a.
        p.history = 0x1111;
        let t1 = p.token(0x1000);
        p.train_with_token(&t1, &a, false);
        p.train_with_token(&t1, &b, false); // L1 now flip-flops
        p.train_with_token(&t1, &a, false);
        p.train_with_token(&t1, &a, false);
        // History context 2 -> outcome b.
        p.history = 0x2222;
        let t2 = p.token(0x1000);
        p.train_with_token(&t2, &b, false);
        p.train_with_token(&t2, &b, false);

        p.history = 0x1111;
        let pa = p.predict(0x1000, &prog);
        p.history = 0x2222;
        let pb = p.predict(0x1000, &prog);
        assert_eq!(pa.stream.next, 0x1000, "history 1 should predict a");
        assert_eq!(pb.stream.next, 0x1020, "history 2 should predict b");
        assert!(pb.from_l2);
    }

    #[test]
    fn long_streams_train_at_full_length() {
        // Regression: the table entry's length field used to be a u16 with
        // a silent `.min(u16::MAX)` clamp, so a synthetic stream longer
        // than 65535 instructions trained the predictor on a corrupted
        // length.  The table must reproduce what it was trained with.
        let prog = loop_program();
        let mut p = StreamPredictor::paper_default();
        let long = StreamDesc {
            start: 0x1000,
            len: 100_000, // > u16::MAX
            next: 0x1000,
            end: StreamEnd::Taken,
        };
        let tok = p.token(0x1000);
        p.train_with_token(&tok, &long, false);
        let pred = p.predict(0x1000, &prog);
        assert!(pred.table_hit, "entry should have been allocated");
        assert_eq!(
            pred.stream.len, 100_000,
            "trained length must survive table storage untruncated"
        );
        // And matching against the same stream counts as correct training
        // (the clamped entry used to mismatch forever).
        let tok = p.token(0x1000);
        p.train_with_token(&tok, &long, true);
        let pred = p.predict(0x1000, &prog);
        assert_eq!(pred.stream.len, 100_000);
    }

    #[test]
    #[should_panic(expected = "l1_entries must be a power of two")]
    fn non_pow2_l1_table_is_rejected_by_name() {
        let cfg = StreamPredictorConfig {
            l1_entries: 1000, // not a power of two: mask-indexing would alias
            ..StreamPredictorConfig::default()
        };
        let _ = StreamPredictor::new(cfg);
    }

    #[test]
    fn stats_track_sources() {
        let prog = loop_program();
        let mut p = StreamPredictor::paper_default();
        let _ = p.predict(0x1000, &prog);
        assert_eq!(p.stats().fallback_supplied, 1);
        let tok = p.token(0x1000);
        p.train_with_token(&tok, &taken_stream(), false);
        let _ = p.predict(0x1000, &prog);
        assert_eq!(p.stats().predictions, 2);
        assert!(p.stats().l1_supplied + p.stats().l2_supplied >= 1);
        assert!((p.stats().accuracy() - 0.0).abs() < 1e-9);
    }
}
