//! Checkpointable return address stack (8 entries per Table 2).

use prestage_isa::Addr;
use serde::{Deserialize, Serialize};

/// Circular return address stack.  Overflow silently wraps (overwriting the
/// oldest entry) and underflow returns the bottom value — the standard
/// hardware behaviours.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReturnAddressStack {
    entries: Vec<Addr>,
    /// Index of the next push slot.
    top: usize,
    /// Number of live entries (saturates at capacity).
    depth: usize,
}

/// Largest supported RAS: snapshots inline this many entries so that
/// checkpointing — which the engine does for every on-path fetch block —
/// never touches the heap.
pub const MAX_RAS_ENTRIES: usize = 16;

/// A full copy of the RAS — at 8 entries, copying is cheaper than any
/// cleverness, and restoring is exact even across overflows.  The entries
/// live in a fixed inline array (`MAX_RAS_ENTRIES`) so taking a snapshot
/// is a flat memcpy with no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RasSnapshot {
    entries: [Addr; MAX_RAS_ENTRIES],
    top: usize,
    depth: usize,
}

impl RasSnapshot {
    /// Live entries at the time the snapshot was taken.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl ReturnAddressStack {
    pub fn new(capacity: usize) -> Self {
        assert!(
            (1..=MAX_RAS_ENTRIES).contains(&capacity),
            "RAS capacity {capacity} outside the supported 1..={MAX_RAS_ENTRIES}"
        );
        ReturnAddressStack {
            entries: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// The paper's configuration: 8 entries.
    pub fn paper_default() -> Self {
        Self::new(8)
    }

    pub fn push(&mut self, addr: Addr) {
        self.entries[self.top] = addr;
        self.top = (self.top + 1) % self.entries.len();
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pop the predicted return target.  On underflow returns 0 (an
    /// unmapped address — the front-end treats it as a stream the dictionary
    /// cannot resolve and the misprediction machinery recovers).
    pub fn pop(&mut self) -> Addr {
        if self.depth == 0 {
            return 0;
        }
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        self.entries[self.top]
    }

    pub fn depth(&self) -> usize {
        self.depth
    }

    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    pub fn snapshot(&self) -> RasSnapshot {
        let mut entries = [0; MAX_RAS_ENTRIES];
        entries[..self.entries.len()].copy_from_slice(&self.entries);
        RasSnapshot {
            entries,
            top: self.top,
            depth: self.depth,
        }
    }

    /// Restore from a snapshot taken on a RAS of the same capacity.
    pub fn restore(&mut self, snap: &RasSnapshot) {
        let n = self.entries.len();
        self.entries.copy_from_slice(&snap.entries[..n]);
        self.top = snap.top;
        self.depth = snap.depth;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(8);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), 0x200);
        assert_eq!(r.pop(), 0x100);
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn underflow_returns_zero() {
        let mut r = ReturnAddressStack::new(4);
        assert_eq!(r.pop(), 0);
        r.push(0x40);
        assert_eq!(r.pop(), 0x40);
        assert_eq!(r.pop(), 0);
    }

    #[test]
    fn overflow_wraps_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(0x1);
        r.push(0x2);
        r.push(0x3); // overwrites 0x1
        assert_eq!(r.pop(), 0x3);
        assert_eq!(r.pop(), 0x2);
        // Depth exhausted: the overwritten 0x1 is gone.
        assert_eq!(r.pop(), 0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut r = ReturnAddressStack::new(8);
        r.push(0xa);
        r.push(0xb);
        let snap = r.snapshot();
        r.push(0xc);
        r.pop();
        r.pop();
        r.restore(&snap);
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), 0xb);
        assert_eq!(r.pop(), 0xa);
    }

    #[test]
    fn snapshot_survives_wraparound() {
        let mut r = ReturnAddressStack::new(2);
        r.push(0x1);
        r.push(0x2);
        r.push(0x3);
        let snap = r.snapshot();
        r.push(0x4);
        r.push(0x5);
        r.restore(&snap);
        assert_eq!(r.pop(), 0x3);
        assert_eq!(r.pop(), 0x2);
    }
}
