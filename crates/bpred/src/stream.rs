//! Instruction streams: the fetch entity predicted by the front-end.

use prestage_isa::{Addr, Program, INST_BYTES};
use serde::{Deserialize, Serialize};

/// Maximum instructions in one stream / fetch block.  Streams longer than
/// this are split by the segmentation logic (a "sequential break"), bounding
/// FTQ entry payloads and predictor length fields.
pub const MAX_STREAM_INSTS: u32 = 64;

/// Why a stream ended.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamEnd {
    /// Taken conditional branch or unconditional jump.
    #[default]
    Taken,
    /// Call: `next` is the callee; the link address goes on the RAS.
    Call,
    /// Return: `next` comes from the RAS.
    Return,
    /// No taken CTI within [`MAX_STREAM_INSTS`]: falls through sequentially.
    SequentialBreak,
}

/// A dynamic stream: `len` sequential instructions from `start`, continuing
/// at `next`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamDesc {
    pub start: Addr,
    /// Number of instructions, `1..=MAX_STREAM_INSTS`.
    pub len: u32,
    /// Predicted/actual address of the next stream start.
    pub next: Addr,
    pub end: StreamEnd,
}

impl StreamDesc {
    /// PC one past the last instruction of the stream.
    pub fn end_pc(&self) -> Addr {
        self.start + self.len as u64 * INST_BYTES
    }

    /// Link address for a call-terminated stream.
    pub fn link(&self) -> Addr {
        debug_assert_eq!(self.end, StreamEnd::Call);
        self.end_pc()
    }

    /// Two descriptors agree as *fetch directives* (same instructions, same
    /// continuation).
    pub fn same_flow(&self, other: &StreamDesc) -> bool {
        self.start == other.start && self.len == other.len && self.next == other.next
    }
}

/// A prediction emitted by a [`FetchBlockPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPrediction {
    pub stream: StreamDesc,
    /// True when a predictor table supplied the stream (as opposed to the
    /// static fall-back walk).
    pub table_hit: bool,
    /// True when the history-indexed second-level table supplied it.
    pub from_l2: bool,
}

/// Common interface of fetch-block predictors: the cascaded stream predictor
/// and the gshare-over-dictionary baseline.
pub trait FetchBlockPredictor {
    /// Opaque speculative-state checkpoint (history + RAS).
    type Checkpoint: Clone;

    /// Predict the stream starting at `start`, updating speculative state
    /// (path history, RAS pushes/pops).  `prog` is the basic-block
    /// dictionary, available for static fall-back walks — the same
    /// structure the paper's simulator uses for speculative lookups.
    fn predict(&mut self, start: Addr, prog: &Program) -> StreamPrediction;

    /// Train with a resolved actual stream.
    fn train(&mut self, actual: &StreamDesc);

    /// Capture speculative state before a prediction.
    fn checkpoint(&self) -> Self::Checkpoint;

    /// Restore speculative state (branch misprediction recovery).
    fn restore(&mut self, cp: &Self::Checkpoint);
}

/// Walk the basic-block dictionary from `start` assuming every conditional
/// branch falls through, until the first unconditional transfer or the
/// length cap: the static fall-back prediction used on table misses.
///
/// Returns `None` if `start` is not a mapped instruction.
pub fn static_fallback_walk(start: Addr, prog: &Program) -> Option<StreamDesc> {
    use prestage_isa::OpClass;
    let mut pc = start;
    let mut len = 0u32;
    while len < MAX_STREAM_INSTS {
        let inst = match prog.inst_at(pc) {
            Some(i) => i,
            None => {
                // Ran off the image mid-walk: close the stream here.
                if len == 0 {
                    return None;
                }
                return Some(StreamDesc {
                    start,
                    len,
                    next: pc,
                    end: StreamEnd::SequentialBreak,
                });
            }
        };
        len += 1;
        match inst.op {
            OpClass::Jump => {
                return Some(StreamDesc {
                    start,
                    len,
                    next: inst.target.expect("jump target"),
                    end: StreamEnd::Taken,
                })
            }
            OpClass::Call => {
                return Some(StreamDesc {
                    start,
                    len,
                    next: inst.target.expect("call target"),
                    end: StreamEnd::Call,
                })
            }
            OpClass::Return => {
                return Some(StreamDesc {
                    start,
                    len,
                    next: 0, // filled from the RAS by the caller
                    end: StreamEnd::Return,
                })
            }
            // Conditional branches predicted not-taken in the fall-back.
            _ => pc += INST_BYTES,
        }
    }
    Some(StreamDesc {
        start,
        len,
        next: pc,
        end: StreamEnd::SequentialBreak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestage_isa::{straightline_block, ProgramBuilder, Terminator};

    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        // 0x1000: 4 ALU + cond branch (taken -> 0x2000)
        pb.push(straightline_block(
            0x1000,
            4,
            Terminator::CondBranch {
                taken: 0x2000,
                not_taken: 0x1014,
            },
        ));
        // 0x1014: 2 ALU + jump -> 0x2000
        pb.push(straightline_block(0x1014, 2, Terminator::Jump { target: 0x2000 }));
        // 0x2000: 3 ALU + call -> 0x3000
        pb.push(straightline_block(
            0x2000,
            3,
            Terminator::Call {
                target: 0x3000,
                link: 0x2010,
            },
        ));
        // 0x2010: 1 ALU + return
        pb.push(straightline_block(0x2010, 1, Terminator::Return));
        // 0x3000: return
        pb.push(straightline_block(0x3000, 0, Terminator::Return));
        pb.finish().unwrap()
    }

    #[test]
    fn stream_geometry() {
        let s = StreamDesc {
            start: 0x1000,
            len: 5,
            next: 0x2000,
            end: StreamEnd::Taken,
        };
        assert_eq!(s.end_pc(), 0x1014);
        assert!(s.same_flow(&s));
    }

    #[test]
    fn fallback_walks_through_not_taken_branches() {
        let p = program();
        // From 0x1000: cond branch assumed not-taken, continues through
        // 0x1014 block, ends at the jump.
        let s = static_fallback_walk(0x1000, &p).unwrap();
        assert_eq!(s.start, 0x1000);
        assert_eq!(s.len, 8); // 4 ALU + branch + 2 ALU + jump
        assert_eq!(s.next, 0x2000);
        assert_eq!(s.end, StreamEnd::Taken);
    }

    #[test]
    fn fallback_stops_at_call_and_return() {
        let p = program();
        let s = static_fallback_walk(0x2000, &p).unwrap();
        assert_eq!(s.end, StreamEnd::Call);
        assert_eq!(s.next, 0x3000);
        assert_eq!(s.len, 4);

        let r = static_fallback_walk(0x3000, &p).unwrap();
        assert_eq!(r.end, StreamEnd::Return);
        assert_eq!(r.len, 1);
    }

    #[test]
    fn fallback_unmapped_start_is_none() {
        let p = program();
        assert!(static_fallback_walk(0x9999_0000, &p).is_none());
    }

    #[test]
    fn fallback_mid_block_start_works() {
        let p = program();
        // Starting in the middle of the 0x1000 block (e.g. branch target).
        let s = static_fallback_walk(0x1008, &p).unwrap();
        assert_eq!(s.start, 0x1008);
        assert_eq!(s.len, 6);
        assert_eq!(s.next, 0x2000);
    }
}
