//! Set-associative cache array with true LRU.

use crate::lru::LruSet;
use prestage_isa::Addr;
use serde::{Deserialize, Serialize};

/// Hit/miss counters for one array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub fills: u64,
    pub evictions: u64,
    pub probes: u64,
    pub probe_hits: u64,
    /// Prefetch-class fills dropped by the [`InsertionPolicy::Bypass`]
    /// policy (counted separately from `fills`, which only counts lines
    /// that actually entered the array).
    pub bypasses: u64,
}

/// Where a prefetch-class fill lands in the replacement order.
///
/// Demand fills always insert at MRU; this policy only governs fills tagged
/// [`FillClass::Prefetch`] — speculative lines whose usefulness is not yet
/// proven.  Per Jamet et al., naive MRU insertion of speculative lines can
/// erase a prefetcher's front-end gains by evicting demand-hot lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsertionPolicy {
    /// Insert at MRU, exactly like a demand fill (the historical behavior).
    Mru,
    /// Insert at the LRU position: the line gets one reuse window before it
    /// becomes the preferred victim, so useless prefetches barely pollute.
    Lru,
    /// Do not insert at all — the speculative line is dropped (bypass).
    Bypass,
}

impl InsertionPolicy {
    pub fn all() -> [InsertionPolicy; 3] {
        [
            InsertionPolicy::Mru,
            InsertionPolicy::Lru,
            InsertionPolicy::Bypass,
        ]
    }

    /// Stable wire id (spec JSON / CLI).
    pub fn id(self) -> &'static str {
        match self {
            InsertionPolicy::Mru => "mru",
            InsertionPolicy::Lru => "lru",
            InsertionPolicy::Bypass => "bypass",
        }
    }

    /// Parse a wire id; the error names every valid id.
    pub fn from_id(s: &str) -> Result<InsertionPolicy, String> {
        Self::all()
            .into_iter()
            .find(|p| p.id() == s)
            .ok_or_else(|| {
                let valid: Vec<&str> = Self::all().iter().map(|p| p.id()).collect();
                format!("unknown insertion policy `{s}` (valid: {})", valid.join(", "))
            })
    }
}

/// The class of a cache fill: who is inserting the line and how sure they
/// are it will be used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillClass {
    /// A demand miss (or a line the front-end already consumed): insert at
    /// MRU unconditionally.
    Demand,
    /// A speculative (prefetched) line: insertion is governed by the policy.
    Prefetch(InsertionPolicy),
}

impl CacheStats {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn miss_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

/// A set-associative cache directory (tags only — this simulator never needs
/// data values, just presence and replacement state).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    line_shift: u32,
    sets: usize,
    assoc: usize,
    /// `tags[set * assoc + way]` — stored as line numbers.
    tags: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    lru: Vec<LruSet>,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Build a cache of `capacity` bytes with `line`-byte lines, `assoc`
    /// ways.
    ///
    /// # Panics
    /// Panics on non-power-of-two capacity/line, a capacity smaller than
    /// one way of lines, or an associativity yielding a non-power-of-two
    /// set count — sets are mask-indexed (`& (sets - 1)`), so a
    /// non-power-of-two count would silently alias addresses into the
    /// wrong sets instead of using the whole array.
    pub fn new(capacity: usize, line: usize, assoc: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "cache capacity must be a power of two (mask-indexed sets), got {capacity}"
        );
        assert!(
            line.is_power_of_two(),
            "cache line size must be a power of two, got {line}"
        );
        assert!(assoc >= 1);
        let lines = capacity / line;
        assert!(lines >= assoc, "capacity below one way");
        let sets = lines / assoc;
        assert!(
            sets.is_power_of_two() && sets * assoc == lines,
            "associativity {assoc} over {lines} lines yields {sets} sets, which is \
             not a power of two — set indexing uses `& (sets - 1)` and would \
             silently alias"
        );
        SetAssocCache {
            line_shift: line.trailing_zeros(),
            sets,
            assoc,
            tags: vec![0; lines],
            valid: vec![false; lines],
            dirty: vec![false; lines],
            lru: (0..sets).map(|_| LruSet::new(assoc)).collect(),
            stats: CacheStats::default(),
        }
    }

    /// Fully associative helper.
    pub fn fully_associative(capacity: usize, line: usize) -> Self {
        let ways = capacity / line;
        Self::new(capacity, line, ways)
    }

    #[inline]
    fn line_num(&self, addr: Addr) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn set_of(&self, line_num: u64) -> usize {
        (line_num as usize) & (self.sets - 1)
    }

    fn find(&self, addr: Addr) -> Option<(usize, usize)> {
        let ln = self.line_num(addr);
        let set = self.set_of(ln);
        let base = set * self.assoc;
        (0..self.assoc)
            .find(|&w| self.valid[base + w] && self.tags[base + w] == ln)
            .map(|w| (set, w))
    }

    /// Demand access: returns `true` on hit and updates LRU.
    pub fn lookup(&mut self, addr: Addr) -> bool {
        match self.find(addr) {
            Some((set, way)) => {
                self.lru[set].touch(way);
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Tag probe with **no** LRU update and separate accounting — this is
    /// the extra tag port FDP's Enqueue Cache Probe Filtering uses.
    pub fn probe(&mut self, addr: Addr) -> bool {
        self.stats.probes += 1;
        let hit = self.find(addr).is_some();
        if hit {
            self.stats.probe_hits += 1;
        }
        hit
    }

    /// Presence check without any accounting (for assertions/invariants).
    pub fn contains(&self, addr: Addr) -> bool {
        self.find(addr).is_some()
    }

    /// Insert the line containing `addr`; evicts LRU if the set is full.
    /// Returns the evicted line's base address and dirty flag, if any.
    /// Filling an already-present line refreshes its LRU position instead.
    ///
    /// Equivalent to [`fill_with`](Self::fill_with) with
    /// [`FillClass::Demand`] — demand fills always insert at MRU.
    pub fn fill(&mut self, addr: Addr) -> Option<(Addr, bool)> {
        self.fill_with(addr, FillClass::Demand)
    }

    /// Classed insert: demand fills behave exactly like [`fill`](Self::fill)
    /// always has; prefetch-class fills follow their [`InsertionPolicy`].
    ///
    /// * `Prefetch(Mru)` is bit-identical to a demand fill.
    /// * `Prefetch(Lru)` inserts the line at the LRU position (and leaves
    ///   the replacement order untouched when the line is already present —
    ///   a speculative fill must not promote a line it did not bring in).
    /// * `Prefetch(Bypass)` drops the line entirely and counts a bypass.
    pub fn fill_with(&mut self, addr: Addr, class: FillClass) -> Option<(Addr, bool)> {
        if let FillClass::Prefetch(InsertionPolicy::Bypass) = class {
            self.stats.bypasses += 1;
            return None;
        }
        let at_lru = matches!(class, FillClass::Prefetch(InsertionPolicy::Lru));
        self.stats.fills += 1;
        if let Some((set, way)) = self.find(addr) {
            if !at_lru {
                self.lru[set].touch(way);
            }
            return None;
        }
        let ln = self.line_num(addr);
        let set = self.set_of(ln);
        let base = set * self.assoc;
        let way = (0..self.assoc)
            .find(|&w| !self.valid[base + w])
            .unwrap_or_else(|| self.lru[set].lru());
        let victim = if self.valid[base + way] {
            self.stats.evictions += 1;
            Some((
                self.tags[base + way] << self.line_shift,
                self.dirty[base + way],
            ))
        } else {
            None
        };
        self.tags[base + way] = ln;
        self.valid[base + way] = true;
        self.dirty[base + way] = false;
        if at_lru {
            self.lru[set].demote(way);
        } else {
            self.lru[set].touch(way);
        }
        victim
    }

    /// Mark the line containing `addr` dirty (store hit).  No-op on absence.
    pub fn set_dirty(&mut self, addr: Addr) {
        if let Some((set, way)) = self.find(addr) {
            self.dirty[set * self.assoc + way] = true;
        }
    }

    /// Remove the line containing `addr` if present.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        if let Some((set, way)) = self.find(addr) {
            self.valid[set * self.assoc + way] = false;
            true
        } else {
            false
        }
    }

    /// Drop all contents (keeps statistics).
    pub fn flush(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
        self.dirty.iter_mut().for_each(|d| *d = false);
    }

    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    pub fn capacity_bytes(&self) -> usize {
        (self.sets * self.assoc) << self.line_shift
    }

    pub fn line_bytes(&self) -> usize {
        1 << self.line_shift
    }

    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(1024, 64, 2);
        assert!(!c.lookup(0x40));
        c.fill(0x40);
        assert!(c.lookup(0x40));
        assert!(c.lookup(0x7f)); // same line
        assert!(!c.lookup(0x80)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2 sets, 2 ways, 64B lines => lines mapping to set0: 0x000, 0x080…
        let mut c = SetAssocCache::new(256, 64, 2);
        c.fill(0x000);
        c.fill(0x100); // same set 0
        assert!(c.lookup(0x000)); // make 0x000 MRU
        let victim = c.fill(0x200); // evicts LRU = 0x100
        assert_eq!(victim, Some((0x100, false)));
        assert!(c.contains(0x000));
        assert!(!c.contains(0x100));
        assert!(c.contains(0x200));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = SetAssocCache::new(256, 64, 2);
        c.fill(0x000);
        c.fill(0x100);
        // 0x000 is LRU; probing it must NOT refresh it.
        assert!(c.probe(0x000));
        let victim = c.fill(0x200);
        assert_eq!(victim, Some((0x000, false)));
        assert_eq!(c.stats().probes, 1);
        assert_eq!(c.stats().probe_hits, 1);
    }

    #[test]
    fn refill_of_present_line_refreshes() {
        let mut c = SetAssocCache::new(256, 64, 2);
        c.fill(0x000);
        c.fill(0x100);
        c.fill(0x000); // refresh, not duplicate
        let victim = c.fill(0x200);
        assert_eq!(victim, Some((0x100, false)));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = SetAssocCache::new(128, 64, 2);
        c.fill(0x000);
        c.set_dirty(0x000);
        c.fill(0x080);
        let victim = c.fill(0x100);
        assert_eq!(victim, Some((0x000, true)));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = SetAssocCache::new(256, 64, 4);
        c.fill(0x00);
        c.fill(0x40);
        assert!(c.invalidate(0x00));
        assert!(!c.invalidate(0x00));
        assert_eq!(c.occupancy(), 1);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(0x40));
    }

    #[test]
    fn fully_associative_uses_whole_capacity() {
        let mut c = SetAssocCache::fully_associative(256, 64);
        for i in 0..4u64 {
            c.fill(i * 0x1000); // wildly different indices all coexist
        }
        assert_eq!(c.occupancy(), 4);
        let victim = c.fill(0x9000);
        assert!(victim.is_some());
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn non_pow2_set_count_is_rejected() {
        // Regression: 4096 B / 64 B lines = 64 lines; 3 ways → 21 sets.
        // Set indexing is `& (sets - 1)`, so this used to silently alias
        // (and strand sets) instead of failing; now it refuses by name.
        let _ = SetAssocCache::new(4096, 64, 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be a power of two")]
    fn non_pow2_capacity_is_rejected_by_name() {
        let _ = SetAssocCache::new(1536, 64, 2);
    }

    #[test]
    fn capacity_reporting() {
        let c = SetAssocCache::new(32 << 10, 64, 2);
        assert_eq!(c.capacity_bytes(), 32 << 10);
        assert_eq!(c.line_bytes(), 64);
        assert_eq!(c.assoc(), 2);
    }

    #[test]
    fn prefetch_mru_fill_matches_demand_fill() {
        let mut a = SetAssocCache::new(256, 64, 2);
        let mut b = SetAssocCache::new(256, 64, 2);
        for addr in [0x000u64, 0x100, 0x000, 0x200, 0x300] {
            let va = a.fill(addr);
            let vb = b.fill_with(addr, FillClass::Prefetch(InsertionPolicy::Mru));
            assert_eq!(va, vb);
        }
        assert_eq!(a.stats(), b.stats());
        for addr in [0x000u64, 0x100, 0x200, 0x300] {
            assert_eq!(a.contains(addr), b.contains(addr));
        }
    }

    #[test]
    fn prefetch_lru_fill_is_preferred_victim() {
        let mut c = SetAssocCache::new(256, 64, 2);
        c.fill(0x000); // demand, MRU
        c.fill_with(0x100, FillClass::Prefetch(InsertionPolicy::Lru));
        // The speculative line is the victim even though it arrived last.
        let victim = c.fill(0x200);
        assert_eq!(victim, Some((0x100, false)));
        assert!(c.contains(0x000));
    }

    #[test]
    fn prefetch_lru_refill_does_not_promote() {
        let mut c = SetAssocCache::new(256, 64, 2);
        c.fill(0x000);
        c.fill(0x100); // 0x000 is now LRU
        c.fill_with(0x000, FillClass::Prefetch(InsertionPolicy::Lru));
        // 0x000 stays LRU: a speculative re-fill must not refresh it.
        let victim = c.fill(0x200);
        assert_eq!(victim, Some((0x000, false)));
    }

    #[test]
    fn prefetch_bypass_drops_line() {
        let mut c = SetAssocCache::new(256, 64, 2);
        c.fill_with(0x000, FillClass::Prefetch(InsertionPolicy::Bypass));
        assert!(!c.contains(0x000));
        assert_eq!(c.stats().bypasses, 1);
        assert_eq!(c.stats().fills, 0);
    }

    #[test]
    fn insertion_policy_ids_round_trip() {
        for p in InsertionPolicy::all() {
            assert_eq!(InsertionPolicy::from_id(p.id()), Ok(p));
        }
        let err = InsertionPolicy::from_id("plru").unwrap_err();
        assert!(err.contains("plru") && err.contains("mru") && err.contains("bypass"));
    }
}
