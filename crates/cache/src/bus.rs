//! The shared L2 system: unified L2 cache + the one-request-per-cycle L2
//! bus with priority arbitration + main memory.
//!
//! §4.1 of the paper: *"We have modeled a bus to the L2 cache that can only
//! serve one request per cycle, so a bus arbitration policy is needed. The
//! priority policy is the following: the most priority requests are those
//! corresponding to the L1 data cache; then, requests from the L1 I-cache
//! are served; finally, requests from the prefetching mechanism are attended
//! only if no previous request that use the bus is done in the same cycle."*
//!
//! [`L2System`] implements exactly that: requests queue per priority class,
//! one is granted per cycle, the granted request looks up the unified L2
//! (1 MB, 2-way, 128 B lines per Table 2) and completes after the L2 latency
//! (Table 3) or, on an L2 miss, after the additional 200-cycle memory
//! latency.  On a miss the line is installed in the L2 directory at grant
//! time — an MSHR-merge approximation that lets later requests for the same
//! line hit without modelling per-line MSHR lists.

use crate::array::SetAssocCache;
use prestage_cacti::{latency_cycles, CacheGeometry, TechNode};
use prestage_isa::{align_line, Addr};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Requestor classes, in strictly decreasing bus priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ReqClass {
    /// L1 data-cache demand misses and writebacks.
    DCache = 0,
    /// L1 instruction-cache demand misses.
    IFetch = 1,
    /// Instruction prefetches (FDP prefetch queue / CLGP prestage fills).
    Prefetch = 2,
}

/// Handle for an outstanding request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ReqId(pub u64);

/// Where a completed request's data came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSource {
    /// Unified L2 hit.
    L2,
    /// L2 miss serviced by main memory.
    Memory,
}

/// A finished request, handed back by [`L2System::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    pub id: ReqId,
    /// 64-byte-aligned requested line address.
    pub line: Addr,
    pub class: ReqClass,
    pub source: MemSource,
    /// Cycle at which the data is available to the requestor.
    pub ready_at: u64,
}

/// Static configuration of the L2 system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct L2Config {
    pub capacity: usize,
    pub line: usize,
    pub assoc: usize,
    /// L2 access latency in cycles (Table 3: 17 @ 0.09 µm, 24 @ 0.045 µm).
    pub l2_latency: u32,
    /// Main-memory latency in cycles (Table 2: 200).
    pub mem_latency: u32,
    /// Request unit transferred to the L1s, bytes (Table 2: 64 B/cycle bus).
    pub transfer: usize,
}

impl L2Config {
    /// The paper's L2 (Table 2) with the latency Table 3 assigns at `node`.
    pub fn for_node(node: TechNode) -> Self {
        let geom = CacheGeometry::new(1 << 20, 128, 2, 1);
        L2Config {
            capacity: 1 << 20,
            line: 128,
            assoc: 2,
            l2_latency: latency_cycles(&geom, node),
            mem_latency: 200,
            transfer: 64,
        }
    }
}

/// Bus/L2/memory statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    pub grants_dcache: u64,
    pub grants_ifetch: u64,
    pub grants_prefetch: u64,
    pub writebacks: u64,
    pub l2_hits: u64,
    pub l2_misses: u64,
    /// Total cycles requests spent queued waiting for a grant.
    pub wait_cycles: u64,
}

impl BusStats {
    pub fn grants(&self) -> u64 {
        self.grants_dcache + self.grants_ifetch + self.grants_prefetch
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    /// Cycle from which the request may be granted.
    want: u64,
    class: ReqClass,
    seq: u64,
    id: ReqId,
    line: Addr,
    writeback: bool,
}

// Order for the grant heap: earliest eligible first; among eligible, the
// caller filters by `want <= now`, so priority is (class, seq).
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.class, self.seq).cmp(&(other.class, other.seq))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A granted request waiting for its data, ordered by ready time (ties by
/// request seq).  Carries the full [`Completion`] so the completion phase
/// needs no side lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Inflight(Completion);

impl Ord for Inflight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.ready_at, self.0.id).cmp(&(other.0.ready_at, other.0.id))
    }
}

impl PartialOrd for Inflight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The unified L2 cache, its bus, and main memory.
#[derive(Debug)]
pub struct L2System {
    cfg: L2Config,
    l2: SetAssocCache,
    /// Requests awaiting a bus grant, by (class, seq).
    queue: BinaryHeap<Reverse<Pending>>,
    /// Requests granted, waiting for data, by (ready time, seq).
    inflight: BinaryHeap<Reverse<Inflight>>,
    /// Outstanding (queued or in-flight) read requests by line, for dedup.
    /// A flat list — outstanding reads number in the tens at most, and a
    /// cache-line scan beats tree chasing on the per-cycle path.
    by_line: Vec<(Addr, ReqId)>,
    next_seq: u64,
    stats: BusStats,
    /// Grant-phase scratch: requests popped but not yet eligible this
    /// cycle.  Persistent so the per-cycle [`tick_into`](Self::tick_into)
    /// path never allocates.
    deferred: Vec<Pending>,
}

impl L2System {
    pub fn new(cfg: L2Config) -> Self {
        L2System {
            cfg,
            l2: SetAssocCache::new(cfg.capacity, cfg.line, cfg.assoc),
            queue: BinaryHeap::new(),
            inflight: BinaryHeap::new(),
            by_line: Vec::new(),
            next_seq: 0,
            stats: BusStats::default(),
            deferred: Vec::new(),
        }
    }

    pub fn config(&self) -> &L2Config {
        &self.cfg
    }

    /// Submit a read request for the 64-byte line containing `addr`.
    /// The request becomes eligible for arbitration at cycle `now`.
    pub fn submit(&mut self, addr: Addr, class: ReqClass, now: u64) -> ReqId {
        let line = align_line(addr, self.cfg.transfer as u64);
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = ReqId(seq);
        self.queue.push(Reverse(Pending {
            want: now,
            class,
            seq,
            id,
            line,
            writeback: false,
        }));
        if !self.by_line.iter().any(|&(l, _)| l == line) {
            self.by_line.push((line, id));
        }
        id
    }

    /// Submit a dirty-line writeback (fire and forget: occupies a bus slot
    /// at data-cache priority but produces no completion).
    pub fn submit_writeback(&mut self, addr: Addr, now: u64) {
        let line = align_line(addr, self.cfg.transfer as u64);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Pending {
            want: now,
            class: ReqClass::DCache,
            seq,
            id: ReqId(seq),
            line,
            writeback: true,
        }));
    }

    /// If a read for `addr`'s line is already queued or in flight, its id.
    pub fn find_pending(&self, addr: Addr) -> Option<ReqId> {
        let line = align_line(addr, self.cfg.transfer as u64);
        self.by_line
            .iter()
            .find(|&&(l, _)| l == line)
            .map(|&(_, id)| id)
    }

    /// Raise the priority of a queued request (e.g. a prefetch that became a
    /// demand miss).  In-flight requests are unaffected.  Returns true if
    /// the request was found still queued.
    pub fn upgrade(&mut self, id: ReqId, class: ReqClass) -> bool {
        let mut found = false;
        let drained: Vec<_> = std::mem::take(&mut self.queue).into_vec();
        for Reverse(mut p) in drained {
            if p.id == id && class < p.class {
                p.class = class;
                found = true;
            }
            self.queue.push(Reverse(p));
        }
        found
    }

    /// Advance one cycle: grant at most one queued request (highest
    /// priority, oldest first, among those with `want <= now`), and return
    /// every completion whose data is ready at `now`.
    pub fn tick(&mut self, now: u64) -> Vec<Completion> {
        let mut done = Vec::new();
        self.tick_into(now, &mut done);
        done
    }

    /// Allocation-free [`tick`](Self::tick): completions ready at `now` are
    /// pushed into `out` (cleared first).  The cycle engine holds `out` as a
    /// persistent scratch so the per-cycle path never touches the heap.
    pub fn tick_into(&mut self, now: u64, out: &mut Vec<Completion>) {
        out.clear();
        // Grant phase: the heap orders by (class, seq); skim off requests
        // not yet eligible, grant the best eligible one, push the rest back.
        self.deferred.clear();
        let mut granted = None;
        while let Some(Reverse(p)) = self.queue.pop() {
            if p.want <= now {
                granted = Some(p);
                break;
            }
            self.deferred.push(p);
        }
        for d in self.deferred.drain(..) {
            self.queue.push(Reverse(d));
        }
        if let Some(p) = granted {
            self.stats.wait_cycles += now - p.want;
            match p.class {
                ReqClass::DCache => self.stats.grants_dcache += 1,
                ReqClass::IFetch => self.stats.grants_ifetch += 1,
                ReqClass::Prefetch => self.stats.grants_prefetch += 1,
            }
            if p.writeback {
                self.stats.writebacks += 1;
                self.l2.fill(p.line);
                self.l2.set_dirty(p.line);
            } else {
                let hit = self.l2.lookup(p.line);
                let (source, ready_at) = if hit {
                    self.stats.l2_hits += 1;
                    (MemSource::L2, now + self.cfg.l2_latency as u64)
                } else {
                    self.stats.l2_misses += 1;
                    self.l2.fill(p.line);
                    (
                        MemSource::Memory,
                        now + (self.cfg.l2_latency + self.cfg.mem_latency) as u64,
                    )
                };
                self.inflight.push(Reverse(Inflight(Completion {
                    id: p.id,
                    line: p.line,
                    class: p.class,
                    source,
                    ready_at,
                })));
            }
        }

        // Completion phase.
        while let Some(&Reverse(Inflight(c))) = self.inflight.peek() {
            if c.ready_at > now {
                break;
            }
            self.inflight.pop();
            if let Some(i) = self
                .by_line
                .iter()
                .position(|&(l, id)| l == c.line && id == c.id)
            {
                self.by_line.swap_remove(i);
            }
            out.push(c);
        }
    }

    /// Warm the L2 directory with a line (used to pre-load instruction
    /// footprints before timed simulation).
    pub fn warm_fill(&mut self, addr: Addr) {
        self.l2.fill(addr);
    }

    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Zero the bus and L2 counters (end of warm-up); contents are kept.
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::default();
        self.l2.reset_stats();
    }

    pub fn l2_stats(&self) -> &crate::array::CacheStats {
        self.l2.stats()
    }

    /// Outstanding request count (queued + in flight).
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> L2System {
        L2System::new(L2Config {
            capacity: 1 << 20,
            line: 128,
            assoc: 2,
            l2_latency: 17,
            mem_latency: 200,
            transfer: 64,
        })
    }

    /// Drive `tick` until the given request completes; returns completion.
    fn run_until(sys: &mut L2System, id: ReqId, from: u64, limit: u64) -> Completion {
        for now in from..from + limit {
            for c in sys.tick(now) {
                if c.id == id {
                    return c;
                }
            }
        }
        panic!("request {id:?} did not complete within {limit} cycles");
    }

    #[test]
    fn cold_miss_goes_to_memory_then_hits_l2() {
        let mut s = sys();
        let a = s.submit(0x4000, ReqClass::IFetch, 0);
        let c = run_until(&mut s, a, 0, 300);
        assert_eq!(c.source, MemSource::Memory);
        assert_eq!(c.ready_at, 17 + 200);
        // Second request to the same line now hits in L2.
        let b = s.submit(0x4000, ReqClass::IFetch, 300);
        let c2 = run_until(&mut s, b, 300, 40);
        assert_eq!(c2.source, MemSource::L2);
        assert_eq!(c2.ready_at, 300 + 17);
    }

    #[test]
    fn l2_line_covers_two_transfer_units() {
        // 128B L2 lines: 64B sublines 0x4000 and 0x4040 share an L2 line.
        let mut s = sys();
        let a = s.submit(0x4000, ReqClass::IFetch, 0);
        run_until(&mut s, a, 0, 300);
        let b = s.submit(0x4040, ReqClass::IFetch, 300);
        let c = run_until(&mut s, b, 300, 40);
        assert_eq!(c.source, MemSource::L2);
        assert_eq!(c.line, 0x4040);
    }

    /// Drive `tick` over a window and collect every completion.
    fn drain(sys: &mut L2System, from: u64, limit: u64) -> Vec<Completion> {
        let mut all = Vec::new();
        for now in from..from + limit {
            all.extend(sys.tick(now));
        }
        all
    }

    #[test]
    fn one_grant_per_cycle_with_priority() {
        let mut s = sys();
        // Three requests submitted the same cycle, reverse priority order.
        let p = s.submit(0x1000, ReqClass::Prefetch, 5);
        let i = s.submit(0x2000, ReqClass::IFetch, 5);
        let d = s.submit(0x3000, ReqClass::DCache, 5);
        // All misses -> ready = grant + 217. Grants at 5, 6, 7 in priority
        // order: DCache first, then IFetch, then Prefetch.
        let all = drain(&mut s, 5, 400);
        let find = |id| all.iter().find(|c| c.id == id).unwrap().ready_at;
        assert_eq!(find(d), 5 + 217);
        assert_eq!(find(i), 6 + 217);
        assert_eq!(find(p), 7 + 217);
    }

    #[test]
    fn fifo_within_class() {
        let mut s = sys();
        let a = s.submit(0x1000, ReqClass::Prefetch, 0);
        let b = s.submit(0x2000, ReqClass::Prefetch, 0);
        let all = drain(&mut s, 0, 400);
        let find = |id| all.iter().find(|c| c.id == id).unwrap().ready_at;
        assert!(find(a) < find(b));
    }

    #[test]
    fn upgrade_reorders_queue() {
        let mut s = sys();
        // Fill the current cycle with a higher-priority stream so the
        // prefetch would normally wait.
        let pf = s.submit(0x1000, ReqClass::Prefetch, 0);
        let _d1 = s.submit(0x2000, ReqClass::DCache, 0);
        let _d2 = s.submit(0x3000, ReqClass::DCache, 0);
        assert!(s.upgrade(pf, ReqClass::DCache));
        // After upgrade the prefetch competes at DCache priority but with
        // its original (oldest) sequence number, so it is granted first.
        let c = run_until(&mut s, pf, 0, 400);
        assert_eq!(c.ready_at, 217);
    }

    #[test]
    fn find_pending_dedups_by_line() {
        let mut s = sys();
        let a = s.submit(0x5000, ReqClass::Prefetch, 0);
        assert_eq!(s.find_pending(0x5004), Some(a)); // same 64B line
        assert_eq!(s.find_pending(0x5040), None); // next transfer unit
        run_until(&mut s, a, 0, 400);
        assert_eq!(s.find_pending(0x5000), None);
    }

    #[test]
    fn writeback_consumes_bus_slot() {
        let mut s = sys();
        s.submit_writeback(0x7000, 0);
        let i = s.submit(0x8000, ReqClass::IFetch, 0);
        // Writeback has DCache priority, so the ifetch grant slips to cycle 1.
        let c = run_until(&mut s, i, 0, 400);
        assert_eq!(c.ready_at, 1 + 217);
        assert_eq!(s.stats().writebacks, 1);
        assert_eq!(s.stats().grants_dcache, 1);
    }

    #[test]
    fn warm_fill_preloads_directory() {
        let mut s = sys();
        s.warm_fill(0x9000);
        let a = s.submit(0x9000, ReqClass::IFetch, 0);
        let c = run_until(&mut s, a, 0, 40);
        assert_eq!(c.source, MemSource::L2);
    }

    #[test]
    fn config_for_node_uses_table3() {
        assert_eq!(L2Config::for_node(TechNode::T090).l2_latency, 17);
        assert_eq!(L2Config::for_node(TechNode::T045).l2_latency, 24);
    }

    #[test]
    fn wait_cycles_accumulate_under_contention() {
        let mut s = sys();
        for n in 0..10 {
            s.submit(0x1000 * (n + 1), ReqClass::Prefetch, 0);
        }
        for now in 0..20 {
            s.tick(now);
        }
        // 10 requests granted over 10 cycles: total wait 0+1+..+9 = 45.
        assert_eq!(s.stats().wait_cycles, 45);
    }
}
