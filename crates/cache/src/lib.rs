//! # prestage-cache
//!
//! The cache substrate for the fetch-prestaging reproduction:
//!
//! * [`SetAssocCache`] — a set-associative, true-LRU cache array with
//!   separate *probe* (tag check only, used by FDP's Enqueue Cache Probe
//!   Filtering) and *lookup* (LRU-updating) operations.
//! * [`ArrayPort`] — occupancy/latency bookkeeping for single-ported
//!   arrays, covering both non-pipelined multi-cycle access (the array is
//!   busy for the whole access) and pipelined access (one new access per
//!   cycle, full latency per access) — the two L1 organisations the paper
//!   trades off.
//! * [`L2System`] — the unified L2 cache, the L2 bus (one request per
//!   cycle, priority: L1-D > L1-I demand > prefetch, §4.1 of the paper) and
//!   main memory behind it.
//! * [`ITlb`] — the instruction TLB the fetch path translates through when
//!   configured, with [`FillClass`]/[`InsertionPolicy`] classing speculative
//!   fills (insert-at-LRU / bypass) per Jamet et al.
//!
//! Latencies are supplied by [`prestage_cacti`] so every structure is
//! consistent with the paper's Table 3.

pub mod array;
pub mod bus;
pub mod lru;
pub mod port;
pub mod tlb;

pub use array::{CacheStats, FillClass, InsertionPolicy, SetAssocCache};
pub use bus::{BusStats, Completion, L2Config, L2System, MemSource, ReqClass, ReqId};
pub use port::ArrayPort;
pub use tlb::{ITlb, ITlbConfig, TlbCheckpoint, TlbStats};
