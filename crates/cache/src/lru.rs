//! True-LRU replacement state for one cache set.
//!
//! Associativities here are small (2-way L1s, up to 16-entry fully
//! associative buffers), so an explicit rank vector beats cleverer schemes:
//! rank 0 = MRU, rank `assoc-1` = LRU.

/// LRU ranks for the ways of one set.
#[derive(Debug, Clone)]
pub struct LruSet {
    /// `rank[way]` — 0 is most recently used.
    rank: Vec<u8>,
}

impl LruSet {
    pub fn new(assoc: usize) -> Self {
        assert!((1..=255).contains(&assoc));
        LruSet {
            rank: (0u8..=u8::MAX).take(assoc).collect(),
        }
    }

    /// Mark `way` most recently used.
    pub fn touch(&mut self, way: usize) {
        let old = self.rank[way];
        for r in &mut self.rank {
            if *r < old {
                *r += 1;
            }
        }
        self.rank[way] = 0;
    }

    /// The least recently used way.
    pub fn lru(&self) -> usize {
        // `rank` is a permutation of 0..assoc (maintained by `touch`), so
        // the way holding the maximum rank is the LRU way.  Ranks are
        // distinct, so the maximum is unique and no tie-break applies.
        self.rank
            .iter()
            .enumerate()
            .max_by_key(|&(_, &r)| r)
            .map(|(way, _)| way)
            .unwrap_or(0)
    }

    /// The least recently used way among `eligible` (e.g. CLGP restricts
    /// replacement to entries with a zero consumers counter).  Returns
    /// `None` when no way is eligible.
    pub fn lru_among(&self, mut eligible: impl FnMut(usize) -> bool) -> Option<usize> {
        self.rank
            .iter()
            .enumerate()
            .filter(|&(way, _)| eligible(way))
            .max_by_key(|&(_, &r)| r)
            .map(|(way, _)| way)
    }

    /// Mark `way` least recently used (the dual of [`touch`](Self::touch)).
    ///
    /// Used by the insert-at-LRU fill policy for speculative lines: the way
    /// drops to rank `assoc-1`, every way that was colder than it warms by
    /// one rank, and the permutation invariant is preserved.
    pub fn demote(&mut self, way: usize) {
        let old = self.rank[way];
        for r in &mut self.rank {
            if *r > old {
                *r -= 1;
            }
        }
        // prestage: allow(truncating-cast, new() asserts assoc <= 255 so len-1 fits u8)
        self.rank[way] = (self.rank.len() - 1) as u8;
    }

    /// Current rank of a way (0 = MRU).
    pub fn rank_of(&self, way: usize) -> u8 {
        self.rank[way]
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> usize {
        self.rank.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_set_is_identity_permutation() {
        let l = LruSet::new(4);
        assert_eq!(l.lru(), 3);
        assert_eq!(l.rank_of(0), 0);
    }

    #[test]
    fn touch_moves_to_mru() {
        let mut l = LruSet::new(4);
        l.touch(3);
        assert_eq!(l.rank_of(3), 0);
        assert_eq!(l.lru(), 2); // previous rank-2 way is now LRU
        l.touch(0);
        l.touch(1);
        l.touch(2);
        assert_eq!(l.lru(), 3);
    }

    #[test]
    fn repeated_touch_is_stable() {
        let mut l = LruSet::new(3);
        l.touch(1);
        l.touch(1);
        l.touch(1);
        assert_eq!(l.rank_of(1), 0);
        assert_eq!(l.lru(), 2);
    }

    #[test]
    fn lru_among_respects_eligibility() {
        let mut l = LruSet::new(4);
        l.touch(3); // ranks now: 3->0, 0->1, 1->2, 2->3
        assert_eq!(l.lru_among(|w| w != 2), Some(1));
        assert_eq!(l.lru_among(|w| w == 3), Some(3));
        assert_eq!(l.lru_among(|_| false), None);
    }

    #[test]
    fn ranks_stay_a_permutation() {
        let mut l = LruSet::new(8);
        // Arbitrary touch sequence.
        for i in [3usize, 1, 4, 1, 5, 2, 6, 5, 3, 5, 7, 0] {
            l.touch(i);
            let mut seen = [false; 8];
            for w in 0..8 {
                let r = l.rank_of(w) as usize;
                assert!(!seen[r], "duplicate rank");
                seen[r] = true;
            }
        }
    }

    #[test]
    fn demote_moves_to_lru() {
        let mut l = LruSet::new(4);
        l.touch(2); // ranks: 2->0, 0->1, 1->2, 3->3
        l.demote(2);
        assert_eq!(l.rank_of(2), 3);
        assert_eq!(l.lru(), 2);
        // Ways that were colder than the demoted way each warmed by one.
        assert_eq!(l.rank_of(0), 0);
        assert_eq!(l.rank_of(1), 1);
        assert_eq!(l.rank_of(3), 2);
    }

    #[test]
    fn demote_of_lru_is_identity() {
        let mut l = LruSet::new(3);
        let lru = l.lru();
        let before: Vec<u8> = (0..3).map(|w| l.rank_of(w)).collect();
        l.demote(lru);
        let after: Vec<u8> = (0..3).map(|w| l.rank_of(w)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn demote_preserves_permutation() {
        let mut l = LruSet::new(8);
        for (t, d) in [(3usize, 1usize), (4, 4), (0, 7), (5, 2), (6, 6)] {
            l.touch(t);
            l.demote(d);
            let mut seen = [false; 8];
            for w in 0..8 {
                let r = l.rank_of(w) as usize;
                assert!(!seen[r], "duplicate rank after demote");
                seen[r] = true;
            }
        }
    }
}
