//! Array-port occupancy: the timing difference between a non-pipelined
//! multi-cycle array and a pipelined one.
//!
//! The paper's central tension (§1) is that a large L1 either has a
//! multi-cycle *blocking* access (the array cannot accept a new access until
//! the previous one finishes) or is pipelined (a new access every cycle, but
//! each access still takes the full latency, lengthening the front-end and
//! thus the branch-misprediction penalty).  [`ArrayPort`] captures exactly
//! that: `start` returns when the access's data is available, while the
//! internal occupancy decides how soon the *next* access may begin.

use serde::{Deserialize, Serialize};

/// One port of a storage array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayPort {
    /// Access latency in cycles (≥ 1).
    latency: u32,
    /// Pipelined arrays accept one access per cycle; non-pipelined arrays
    /// block for the full latency.
    pipelined: bool,
    /// First cycle at which a new access may start.
    free_at: u64,
}

impl ArrayPort {
    pub fn new(latency: u32, pipelined: bool) -> Self {
        assert!(latency >= 1);
        ArrayPort {
            latency,
            pipelined,
            free_at: 0,
        }
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Whether the array is pipelined.
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// Number of pipeline stages this array contributes to the front-end:
    /// `latency` when pipelined, 1 otherwise (a non-pipelined array is a
    /// single long stage; it stalls instead of deepening the pipe).
    pub fn pipeline_stages(&self) -> u32 {
        if self.pipelined {
            self.latency
        } else {
            1
        }
    }

    /// Earliest cycle ≥ `now` at which an access could start.
    pub fn next_start(&self, now: u64) -> u64 {
        now.max(self.free_at)
    }

    /// True if an access may start exactly at `now`.
    pub fn can_start(&self, now: u64) -> bool {
        self.next_start(now) == now
    }

    /// Begin an access at (or after) `now`; returns the cycle its data is
    /// ready.
    pub fn start(&mut self, now: u64) -> u64 {
        let begin = self.next_start(now);
        self.free_at = begin + if self.pipelined { 1 } else { self.latency as u64 };
        begin + self.latency as u64
    }

    /// Discard any in-flight occupancy (pipeline flush).
    pub fn reset(&mut self) {
        self.free_at = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_port_back_to_back() {
        let mut p = ArrayPort::new(1, false);
        assert_eq!(p.start(10), 11);
        assert_eq!(p.start(11), 12);
        assert_eq!(p.start(11), 13); // second access in cycle 11 waits
    }

    #[test]
    fn non_pipelined_blocks_for_full_latency() {
        let mut p = ArrayPort::new(4, false);
        assert_eq!(p.start(0), 4);
        assert!(!p.can_start(1));
        assert_eq!(p.next_start(1), 4);
        assert_eq!(p.start(1), 8); // starts at 4, data at 8
    }

    #[test]
    fn pipelined_accepts_every_cycle() {
        let mut p = ArrayPort::new(4, true);
        assert_eq!(p.start(0), 4);
        assert!(p.can_start(1));
        assert_eq!(p.start(1), 5);
        assert_eq!(p.start(2), 6);
        // Two starts in the same cycle still serialise by one cycle.
        assert_eq!(p.start(2), 7);
    }

    #[test]
    fn pipeline_stage_accounting() {
        assert_eq!(ArrayPort::new(4, true).pipeline_stages(), 4);
        assert_eq!(ArrayPort::new(4, false).pipeline_stages(), 1);
        assert_eq!(ArrayPort::new(1, true).pipeline_stages(), 1);
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut p = ArrayPort::new(3, false);
        p.start(5);
        p.reset();
        assert!(p.can_start(0));
    }
}
