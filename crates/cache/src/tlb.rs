//! Instruction TLB: a set-associative translation cache over page numbers.
//!
//! The fetch path treats translation as a presence/latency question, exactly
//! like the tag arrays in [`crate::array`]: a hit costs nothing extra (the
//! lookup overlaps the I-cache tag access), a miss charges a fixed
//! `miss_cycles` page-walk latency and installs the translation.  The model
//! is deterministic — state is a pure function of the access sequence — and
//! checkpointable, because the engine restores i-TLB state on branch
//! redirects (wrong-path fetches must not leave translations behind, or
//! replay from a checkpoint would diverge from the live run).
//!
//! Sizing follows the other SRAMs: `entries / assoc` sets, mask-indexed, so
//! both must divide into a power-of-two set count
//! ([`ITlbConfig::validate`] refuses anything else by name).

use crate::lru::LruSet;
use prestage_isa::Addr;
use serde::{Deserialize, Serialize};

/// Configuration for an instruction TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ITlbConfig {
    /// Total translation entries (all ways).
    pub entries: usize,
    /// Associativity; `entries / assoc` sets, mask-indexed.
    pub assoc: usize,
    /// Page size in bytes; must be a power of two no smaller than a cache
    /// line (a line never straddles a page).
    pub page_bytes: u64,
    /// Fixed page-walk latency charged on a miss, in cycles.
    pub miss_cycles: u64,
}

impl ITlbConfig {
    /// A small, realistic default: 64 entries, 4-way, 4 KiB pages, 30-cycle
    /// walks.
    pub fn default_config() -> ITlbConfig {
        ITlbConfig {
            entries: 64,
            assoc: 4,
            page_bytes: 4096,
            miss_cycles: 30,
        }
    }

    /// Validate sizing; errors name the offending field and value.
    pub fn validate(&self, line_bytes: usize) -> Result<(), String> {
        if self.entries == 0 || self.assoc == 0 {
            return Err(format!(
                "itlb entries ({}) and assoc ({}) must both be at least 1",
                self.entries, self.assoc
            ));
        }
        if self.assoc > self.entries {
            return Err(format!(
                "itlb assoc ({}) exceeds entries ({})",
                self.assoc, self.entries
            ));
        }
        let sets = self.entries / self.assoc;
        if !sets.is_power_of_two() || sets * self.assoc != self.entries {
            return Err(format!(
                "itlb entries ({}) over assoc ({}) yields {sets} sets, which is not a \
                 power of two — TLB sets are mask-indexed and would silently alias",
                self.entries, self.assoc
            ));
        }
        if !self.page_bytes.is_power_of_two() {
            return Err(format!(
                "itlb page_bytes must be a power of two, got {}",
                self.page_bytes
            ));
        }
        if (self.page_bytes as usize) < line_bytes {
            return Err(format!(
                "itlb page_bytes ({}) below the cache line size ({line_bytes}) — a line \
                 would straddle pages",
                self.page_bytes
            ));
        }
        if self.miss_cycles == 0 {
            return Err("itlb miss_cycles must be at least 1 (a free walk is `itlb: null`)".into());
        }
        Ok(())
    }

    /// Modeled storage: one virtual-page tag plus a physical frame number
    /// per entry (8 bytes each on the 64-bit address space the ISA uses).
    pub fn state_bytes(&self) -> usize {
        self.entries * 16
    }
}

/// Opaque snapshot of i-TLB contents, captured at a predicted branch and
/// restored on redirect.  An empty checkpoint (the default) restores
/// nothing — the "no TLB configured" case.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TlbCheckpoint {
    words: Vec<u64>,
}

impl TlbCheckpoint {
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Heap bytes held by this checkpoint (capacity accounting).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * core::mem::size_of::<u64>()
    }
}

/// Hit/miss counters for the i-TLB (advisory; not part of any artifact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    pub hits: u64,
    pub misses: u64,
}

/// The instruction TLB proper.
#[derive(Debug, Clone)]
pub struct ITlb {
    page_shift: u32,
    sets: usize,
    assoc: usize,
    miss_cycles: u64,
    /// `tags[set * assoc + way]` — virtual page numbers.
    tags: Vec<u64>,
    valid: Vec<bool>,
    lru: Vec<LruSet>,
    stats: TlbStats,
}

impl ITlb {
    /// Build from a validated config.
    ///
    /// # Panics
    /// Panics when `cfg` fails [`ITlbConfig::validate`]-class sizing checks
    /// (the configuration layer validates first; these asserts defend the
    /// mask-indexing invariant).
    pub fn new(cfg: &ITlbConfig) -> ITlb {
        assert!(
            cfg.page_bytes.is_power_of_two(),
            "itlb page_bytes must be a power of two, got {}",
            cfg.page_bytes
        );
        assert!(cfg.assoc >= 1 && cfg.assoc <= cfg.entries, "itlb assoc out of range");
        let sets = cfg.entries / cfg.assoc;
        assert!(
            sets.is_power_of_two() && sets * cfg.assoc == cfg.entries,
            "itlb entries ({}) over assoc ({}) yields a non-power-of-two set count",
            cfg.entries,
            cfg.assoc
        );
        ITlb {
            page_shift: cfg.page_bytes.trailing_zeros(),
            sets,
            assoc: cfg.assoc,
            miss_cycles: cfg.miss_cycles,
            tags: vec![0; cfg.entries],
            valid: vec![false; cfg.entries],
            lru: (0..sets).map(|_| LruSet::new(cfg.assoc)).collect(),
            stats: TlbStats::default(),
        }
    }

    #[inline]
    fn page_num(&self, addr: Addr) -> u64 {
        addr >> self.page_shift
    }

    #[inline]
    fn set_of(&self, page: u64) -> usize {
        (page as usize) & (self.sets - 1)
    }

    fn find(&self, page: u64) -> Option<(usize, usize)> {
        let set = self.set_of(page);
        let base = set * self.assoc;
        (0..self.assoc)
            .find(|&w| self.valid[base + w] && self.tags[base + w] == page)
            .map(|w| (set, w))
    }

    /// Translate the page containing `addr`.  Returns the cycle at which
    /// the translation is available: `now` on a hit, `now + miss_cycles` on
    /// a miss (the walk also installs the translation, evicting LRU).
    pub fn translate(&mut self, addr: Addr, now: u64) -> u64 {
        let page = self.page_num(addr);
        if let Some((set, way)) = self.find(page) {
            self.lru[set].touch(way);
            self.stats.hits += 1;
            return now;
        }
        self.stats.misses += 1;
        let set = self.set_of(page);
        let base = set * self.assoc;
        let way = (0..self.assoc)
            .find(|&w| !self.valid[base + w])
            .unwrap_or_else(|| self.lru[set].lru());
        self.tags[base + way] = page;
        self.valid[base + way] = true;
        self.lru[set].touch(way);
        now.saturating_add(self.miss_cycles)
    }

    /// Presence probe with no replacement or statistics side effects — what
    /// a mechanism uses to *probe around* a would-be miss instead of paying
    /// for the walk.
    pub fn probe(&self, addr: Addr) -> bool {
        self.find(self.page_num(addr)).is_some()
    }

    /// Fixed page-walk latency this TLB charges on a miss.
    pub fn miss_cycles(&self) -> u64 {
        self.miss_cycles
    }

    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Modeled storage for budget accounting (mirrors
    /// [`ITlbConfig::state_bytes`]).
    pub fn state_bytes(&self) -> usize {
        self.sets * self.assoc * 16
    }

    /// Snapshot tags, valid bits and replacement state (not statistics —
    /// counters keep counting across redirects like every other array).
    pub fn checkpoint(&self) -> TlbCheckpoint {
        let mut words = Vec::with_capacity(self.tags.len() * 3);
        for i in 0..self.tags.len() {
            words.push(self.tags[i]);
            words.push(u64::from(self.valid[i]));
        }
        for set in &self.lru {
            for way in 0..set.ways() {
                words.push(u64::from(set.rank_of(way)));
            }
        }
        TlbCheckpoint { words }
    }

    /// Restore a snapshot taken by [`checkpoint`](Self::checkpoint) on this
    /// same geometry.  An empty checkpoint is a no-op.
    pub fn restore(&mut self, cp: &TlbCheckpoint) {
        if cp.words.is_empty() {
            return;
        }
        let n = self.tags.len();
        assert!(
            cp.words.len() == n * 3,
            "itlb checkpoint holds {} words, this geometry needs {} — \
             checkpoint/restore crossed configurations",
            cp.words.len(),
            n * 3
        );
        for i in 0..n {
            self.tags[i] = cp.words[2 * i];
            self.valid[i] = cp.words[2 * i + 1] != 0;
        }
        // Replacement ranks: rebuild each set by touching ways in reverse
        // rank order (coldest first), which reproduces the exact permutation.
        for (s, set) in self.lru.iter_mut().enumerate() {
            let base = 2 * n + s * self.assoc;
            let ranks = &cp.words[base..base + self.assoc];
            let mut order: Vec<usize> = (0..self.assoc).collect();
            order.sort_by_key(|&w| core::cmp::Reverse(ranks[w]));
            for w in order {
                set.touch(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ITlb {
        ITlb::new(&ITlbConfig {
            entries: 8,
            assoc: 2,
            page_bytes: 4096,
            miss_cycles: 25,
        })
    }

    #[test]
    fn miss_then_hit_within_page() {
        let mut t = tiny();
        assert_eq!(t.translate(0x1000, 100), 125); // cold miss
        assert_eq!(t.translate(0x1fff, 130), 130); // same page: hit
        assert_eq!(t.translate(0x2000, 130), 155); // next page: miss
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut t = tiny();
        assert!(!t.probe(0x5000));
        t.translate(0x5000, 0);
        assert!(t.probe(0x5000));
        let stats_before = *t.stats();
        assert!(t.probe(0x5000));
        assert_eq!(*t.stats(), stats_before);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 4 sets, 2 ways; pages 0, 4, 8 share set 0.
        let mut t = tiny();
        t.translate(0x0000, 0);
        t.translate(0x4000, 0);
        t.translate(0x0000, 0); // refresh page 0
        t.translate(0x8000, 0); // evicts page 4
        assert!(t.probe(0x0000));
        assert!(!t.probe(0x4000));
        assert!(t.probe(0x8000));
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let mut t = tiny();
        for (addr, at) in [(0x1000u64, 0u64), (0x2000, 5), (0x1000, 9), (0x9000, 12)] {
            t.translate(addr, at);
        }
        let cp = t.checkpoint();
        let mut u = tiny();
        u.restore(&cp);
        // Identical contents…
        for page in 0..16u64 {
            assert_eq!(t.probe(page << 12), u.probe(page << 12), "page {page}");
        }
        // …and identical future behavior (replacement state restored too).
        for (addr, at) in [(0x3000u64, 20u64), (0x1000, 21), (0xb000, 22), (0x7000, 23)] {
            assert_eq!(t.translate(addr, at), u.translate(addr, at), "addr {addr:#x}");
        }
    }

    #[test]
    fn empty_checkpoint_is_noop() {
        let mut t = tiny();
        t.translate(0x1000, 0);
        t.restore(&TlbCheckpoint::default());
        assert!(t.probe(0x1000));
    }

    #[test]
    fn deterministic_across_instances() {
        let seq: Vec<(u64, u64)> = (0..200).map(|i| ((i * 37) % 64 << 12, i)).collect();
        let mut a = tiny();
        let mut b = tiny();
        for &(addr, at) in &seq {
            assert_eq!(a.translate(addr, at), b.translate(addr, at));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn validate_names_offending_fields() {
        let ok = ITlbConfig::default_config();
        assert!(ok.validate(64).is_ok());
        let bad_sets = ITlbConfig { entries: 48, assoc: 4, ..ok };
        assert!(bad_sets.validate(64).unwrap_err().contains("entries (48)"));
        let bad_page = ITlbConfig { page_bytes: 3000, ..ok };
        assert!(bad_page.validate(64).unwrap_err().contains("page_bytes"));
        let small_page = ITlbConfig { page_bytes: 32, ..ok };
        assert!(small_page.validate(64).unwrap_err().contains("line"));
        let free_walk = ITlbConfig { miss_cycles: 0, ..ok };
        assert!(free_walk.validate(64).unwrap_err().contains("miss_cycles"));
        let zero = ITlbConfig { entries: 0, ..ok };
        assert!(zero.validate(64).unwrap_err().contains("entries"));
    }

    #[test]
    fn state_bytes_accounting() {
        let cfg = ITlbConfig::default_config();
        assert_eq!(cfg.state_bytes(), 64 * 16);
        assert_eq!(ITlb::new(&cfg).state_bytes(), cfg.state_bytes());
    }

    #[test]
    #[should_panic(expected = "checkpoint holds")]
    fn cross_geometry_restore_is_refused() {
        let big = ITlb::new(&ITlbConfig {
            entries: 16,
            assoc: 2,
            page_bytes: 4096,
            miss_cycles: 25,
        });
        let cp = big.checkpoint();
        tiny().restore(&cp);
    }
}
