//! First-order SRAM area model.
//!
//! The paper argues (§1, §5.1, citing Agarwal et al. DATE'03) that pipelining
//! a large cache costs extra area — latches, decoders, sense amplifiers,
//! precharge circuitry and multiplexers — and that CLGP reaches the same
//! performance from a much smaller cache budget.  This module provides the
//! numbers backing the "6.4X our hardware budget" style comparisons.

use crate::geometry::CacheGeometry;
use crate::tech::TechNode;

/// Area of one bit cell in square micrometres at the base 0.80 µm process.
/// (Roughly 100 λ² with λ = feature/2.)
const BITCELL_UM2_BASE: f64 = 25.0;
/// Overhead factor for decoders, sense amps and routing in an unpipelined
/// array.
const PERIPHERY_FACTOR: f64 = 1.35;
/// Extra area per added pipeline stage (latch banks, duplicated precharge
/// and decode circuitry), as a fraction of the unpipelined array area.
const PIPELINE_STAGE_OVERHEAD: f64 = 0.08;
/// Tag bits per line (address tag + valid + LRU bookkeeping), conservative.
const TAG_BITS_PER_LINE: f64 = 40.0;

/// Estimated silicon area in mm² of an unpipelined array.
pub fn area_mm2(g: &CacheGeometry, node: TechNode) -> f64 {
    let scale = node.feature_um() / 0.80;
    let cell = BITCELL_UM2_BASE * scale * scale;
    let port_growth = {
        // Each extra port grows the cell in both dimensions.
        let p = 1.0 + 0.6 * (g.ports.saturating_sub(1)) as f64;
        p * p
    };
    let bits = g.data_bits() as f64 + TAG_BITS_PER_LINE * g.lines() as f64;
    bits * cell * port_growth * PERIPHERY_FACTOR / 1.0e6
}

/// Multiplicative area overhead of pipelining an array into `stages` stages.
///
/// `stages == 1` means unpipelined (overhead 1.0).
pub fn pipelining_area_overhead(stages: u32) -> f64 {
    1.0 + PIPELINE_STAGE_OVERHEAD * stages.saturating_sub(1) as f64
}

/// Total area of an array pipelined into `stages` stages.
pub fn pipelined_area_mm2(g: &CacheGeometry, node: TechNode, stages: u32) -> f64 {
    area_mm2(g, node) * pipelining_area_overhead(stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scales_with_capacity() {
        let small = CacheGeometry::new(4 << 10, 64, 2, 1);
        let big = CacheGeometry::new(64 << 10, 64, 2, 1);
        let a_small = area_mm2(&small, TechNode::T090);
        let a_big = area_mm2(&big, TechNode::T090);
        assert!(a_big > 10.0 * a_small, "{a_big} vs {a_small}");
        assert!(a_big < 20.0 * a_small, "{a_big} vs {a_small}");
    }

    #[test]
    fn area_shrinks_with_node() {
        let g = CacheGeometry::new(32 << 10, 64, 2, 1);
        assert!(area_mm2(&g, TechNode::T045) < area_mm2(&g, TechNode::T090));
    }

    #[test]
    fn pipelining_costs_area() {
        assert_eq!(pipelining_area_overhead(1), 1.0);
        assert!(pipelining_area_overhead(4) > pipelining_area_overhead(2));
        let g = CacheGeometry::new(16 << 10, 64, 2, 1);
        assert!(
            pipelined_area_mm2(&g, TechNode::T045, 4) > area_mm2(&g, TechNode::T045)
        );
    }

    #[test]
    fn extra_ports_cost_area() {
        let p1 = CacheGeometry::new(32 << 10, 64, 2, 1);
        let p2 = CacheGeometry::new(32 << 10, 64, 2, 2);
        assert!(area_mm2(&p2, TechNode::T090) > 2.0 * area_mm2(&p1, TechNode::T090));
    }
}
