//! CACTI-style access-time model, calibrated to the paper's Table 3.
//!
//! The access path is decomposed into two component classes:
//!
//! * **Gate-tracked delay** `G` — decoder, sense amplifiers, tag compare,
//!   way select and repeater-assisted global routing.  These track the
//!   linear feature-size shrink ([`TechNode::gate_scale`]).  The routing
//!   term grows super-linearly with array size (unrepeated-segment RC), so
//!   megabyte-class arrays are dominated by it.
//! * **Wire-tracked delay** `W` — local wordline/bitline RC inside a
//!   subarray, implicitly assuming CACTI-style banking: it saturates once
//!   the array is large enough that further growth is absorbed by extra
//!   banks.  Local wires improve only with the square root of the shrink
//!   ([`TechNode::wire_scale`]), which is why mid-size arrays lose relatively
//!   more cycles at 0.045 µm than either tiny or huge arrays — exactly the
//!   non-uniform scaling visible in the paper's Table 3.
//!
//! CACTI 3.0 itself is an analytical model calibrated against SPICE decks we
//! do not have, so on top of the structural model we pin the exact
//! (size, node) → cycles anchors the paper publishes (Table 3 and §5.1) and
//! interpolate between them for geometries the paper does not list.
//! [`latency_cycles`] is the calibrated entry point used by the simulator;
//! [`latency_cycles_uncalibrated`] exposes the raw model, which the tests
//! show stays within one cycle of every anchor.

use crate::geometry::CacheGeometry;
use crate::tech::TechNode;

/// Model constants at the CACTI base process (0.80 µm), in nanoseconds.
mod k {
    /// Fixed periphery: decoder intrinsic + sense amplifier + compare.
    pub const FIXED: f64 = 0.80;
    /// Decoder tree depth cost per set-index bit.
    pub const PER_SET_BIT: f64 = 0.145;
    /// CAM/way-select cost per associativity bit (fully associative match).
    pub const PER_WAY_BIT: f64 = 0.015;
    /// Global routing per bit cell (repeated wire, linear regime).
    pub const ROUTE_PER_CELL: f64 = 1.6e-6;
    /// Unrepeated global-wire RC term for megabyte-class arrays
    /// (per (Mcell)^2).
    pub const ROUTE_QUAD: f64 = 0.20;
    /// Saturating local wordline/bitline delay: maximum value...
    pub const LOCAL_MAX: f64 = 0.98;
    /// ...and the cell count at which it has reached tanh(1) of it.
    pub const LOCAL_SAT_CELLS: f64 = 16_000.0;
    /// Tag storage bits per line (tag + valid + replacement state).
    pub const TAG_BITS_PER_LINE: f64 = 40.0;
    /// Linear cell-pitch growth per extra port.
    pub const PORT_PITCH: f64 = 0.6;
}

/// Total bit-cell count of the array (data + tags).
fn cells(g: &CacheGeometry) -> f64 {
    g.data_bits() as f64 + k::TAG_BITS_PER_LINE * g.lines() as f64
}

fn log2f(x: usize) -> f64 {
    (x.max(1) as f64).log2()
}

/// (gate-tracked, wire-tracked) delay components at the 0.80 µm base process.
fn base_components(g: &CacheGeometry) -> (f64, f64) {
    let n = cells(g);
    let port_factor = 1.0 + k::PORT_PITCH * g.ports.saturating_sub(1) as f64;
    let gate = k::FIXED
        + k::PER_SET_BIT * log2f(g.sets())
        + k::PER_WAY_BIT * log2f(g.assoc)
        + (k::ROUTE_PER_CELL * n + k::ROUTE_QUAD * (n / 1.0e6).powi(2)) * port_factor;
    let wire = k::LOCAL_MAX * (n / k::LOCAL_SAT_CELLS).tanh() * port_factor * port_factor;
    (gate, wire)
}

/// Raw structural access time in nanoseconds for `g` at `node`.
pub fn access_time_ns(g: &CacheGeometry, node: TechNode) -> f64 {
    let (gate, wire) = base_components(g);
    gate * node.gate_scale() + wire * node.wire_scale()
}

/// Uncalibrated latency in cycles: `ceil(access_ns / cycle_ns)`, minimum 1.
pub fn latency_cycles_uncalibrated(g: &CacheGeometry, node: TechNode) -> u32 {
    let t = access_time_ns(g, node);
    let cyc = (t / node.cycle_ns()).ceil();
    (cyc as u32).max(1)
}

/// Calibration anchors: (capacity bytes, cycles) from Table 3 of the paper.
/// Every size the paper lists is pinned exactly.
const ANCHORS_090: &[(usize, u32)] = &[
    (256, 1),
    (512, 1),
    (1 << 10, 2),
    (2 << 10, 2),
    (4 << 10, 3),
    (8 << 10, 3),
    (16 << 10, 3),
    (32 << 10, 3),
    (64 << 10, 3),
    (1 << 20, 17),
];

const ANCHORS_045: &[(usize, u32)] = &[
    (256, 1),
    (512, 2),
    (1 << 10, 3),
    (2 << 10, 4),
    (4 << 10, 4),
    (8 << 10, 4),
    (16 << 10, 4),
    (32 << 10, 4),
    (64 << 10, 5),
    (1 << 20, 24),
];

fn anchors(node: TechNode) -> Option<&'static [(usize, u32)]> {
    match node {
        TechNode::T090 => Some(ANCHORS_090),
        TechNode::T045 => Some(ANCHORS_045),
        _ => None,
    }
}

/// Calibrated access latency in processor cycles for `g` at `node`.
///
/// For the two nodes the paper evaluates, capacities at Table 3 anchor
/// points return the paper's value exactly; other capacities clamp the raw
/// structural model between the neighbouring anchors (monotone
/// interpolation).  For roadmap nodes the paper does not tabulate, the raw
/// structural model is used directly.
pub fn latency_cycles(g: &CacheGeometry, node: TechNode) -> u32 {
    let raw = latency_cycles_uncalibrated(g, node);
    let Some(table) = anchors(node) else {
        return raw;
    };
    if let Ok(i) = table.binary_search_by_key(&g.capacity, |&(c, _)| c) {
        return table[i].1;
    }
    let below = table
        .iter()
        .rev()
        .find(|&&(c, _)| c < g.capacity)
        .map(|&(_, cy)| cy);
    let above = table.iter().find(|&&(c, _)| c > g.capacity).map(|&(_, cy)| cy);
    match (below, above) {
        (Some(lo), Some(hi)) => raw.clamp(lo, hi),
        (Some(lo), None) => raw.max(lo),
        (None, Some(hi)) => raw.min(hi),
        (None, None) => raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1(size: usize) -> CacheGeometry {
        CacheGeometry::new(size, 64, 2, 1)
    }

    #[test]
    fn access_time_monotone_in_capacity() {
        for node in [TechNode::T090, TechNode::T045] {
            let mut prev = 0.0;
            for shift in 8..=20 {
                let t = access_time_ns(&l1(1 << shift), node);
                assert!(
                    t >= prev,
                    "access time not monotone at {}B {}",
                    1 << shift,
                    node
                );
                prev = t;
            }
        }
    }

    #[test]
    fn newer_node_has_smaller_absolute_delay_but_more_cycles() {
        // Gates get faster in absolute terms...
        let g = l1(32 << 10);
        assert!(access_time_ns(&g, TechNode::T045) < access_time_ns(&g, TechNode::T090));
        // ...but the cycle time shrinks faster, so the *cycle* latency grows.
        assert!(latency_cycles(&g, TechNode::T045) > latency_cycles(&g, TechNode::T090));
    }

    #[test]
    fn uncalibrated_model_tracks_table3_within_one_cycle() {
        for (node, table) in [(TechNode::T090, ANCHORS_090), (TechNode::T045, ANCHORS_045)] {
            for &(size, expect) in table {
                let geom = if size >= (1 << 20) {
                    CacheGeometry::new(size, 128, 2, 1)
                } else {
                    l1(size)
                };
                let raw = latency_cycles_uncalibrated(&geom, node);
                assert!(
                    (raw as i64 - expect as i64).abs() <= 1,
                    "{node} {size}B: raw {raw} vs table {expect}"
                );
            }
        }
    }

    #[test]
    fn interpolated_sizes_are_clamped_between_anchors() {
        // 128 KB is not in Table 3: it must land between the 64 KB and 1 MB
        // anchors at both nodes.
        let g = l1(128 << 10);
        let c90 = latency_cycles(&g, TechNode::T090);
        assert!((3..=17).contains(&c90), "128KB @0.09: {c90}");
        let c45 = latency_cycles(&g, TechNode::T045);
        assert!((5..=24).contains(&c45), "128KB @0.045: {c45}");
    }

    #[test]
    fn untabulated_node_uses_raw_model() {
        let g = l1(4 << 10);
        assert_eq!(
            latency_cycles(&g, TechNode::T180),
            latency_cycles_uncalibrated(&g, TechNode::T180)
        );
    }

    #[test]
    fn more_ports_never_faster() {
        for node in [TechNode::T090, TechNode::T045] {
            let one = access_time_ns(&CacheGeometry::new(32 << 10, 64, 2, 1), node);
            let two = access_time_ns(&CacheGeometry::new(32 << 10, 64, 2, 2), node);
            assert!(two >= one);
        }
    }

    #[test]
    fn old_nodes_reach_everything_in_a_cycle() {
        // At 0.18um the cycle time is 2ns: even a 64KB cache is single cycle
        // (the pre-gigahertz world the paper contrasts against).
        assert_eq!(latency_cycles(&l1(64 << 10), TechNode::T180), 1);
    }
}
