//! First-order per-access energy model.
//!
//! Complements [`crate::area`] for the paper's §1/§5 argument that pipelined
//! caches burn extra energy in latches, clocking and duplicated decode, while
//! CLGP serves most fetches from a tiny buffer.

use crate::geometry::CacheGeometry;
use crate::tech::TechNode;

/// Energy per accessed bit at the 0.80 µm base process, in nanojoules.
const NJ_PER_BIT_BASE: f64 = 6.0e-4;
/// Fixed periphery energy per access (decoder, sense amps), base process.
const NJ_PERIPHERY_BASE: f64 = 0.35;
/// Energy overhead fraction per added pipeline stage (latch banks + clock).
const PIPELINE_STAGE_ENERGY: f64 = 0.06;

/// Estimated energy per read access in nanojoules.
///
/// An access reads one set: `assoc` data lines plus their tags; energy
/// scales with the bits activated and, weakly, with total capacity through
/// longer wires (modelled as a square-root term).
pub fn energy_nj_per_access(g: &CacheGeometry, node: TechNode) -> f64 {
    // Dynamic energy ~ C V^2: capacitance scales with feature size, V^2
    // roughly with feature as well in constant-field scaling.
    let scale = node.feature_um() / 0.80;
    let escale = scale * scale;
    let bits_activated = (g.assoc * g.line * 8) as f64 + 40.0 * g.assoc as f64;
    let wire_factor = (g.data_bits() as f64).sqrt() / (32768.0f64).sqrt();
    (NJ_PER_BIT_BASE * bits_activated + NJ_PERIPHERY_BASE * wire_factor) * escale
}

/// Multiplicative energy overhead of pipelining into `stages` stages.
pub fn pipelining_energy_overhead(stages: u32) -> f64 {
    1.0 + PIPELINE_STAGE_ENERGY * stages.saturating_sub(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_associative_buffers_cost_more_per_line_but_less_total() {
        // A 256 B fully associative buffer activates all 4 ways, yet is far
        // cheaper per access than a 32 KB 2-way cache.
        let pb = CacheGeometry::fully_associative(256, 64, 1);
        let l1 = CacheGeometry::new(32 << 10, 64, 2, 1);
        let e_pb = energy_nj_per_access(&pb, TechNode::T045);
        let e_l1 = energy_nj_per_access(&l1, TechNode::T045);
        assert!(e_pb < e_l1, "{e_pb} vs {e_l1}");
    }

    #[test]
    fn energy_shrinks_with_node() {
        let g = CacheGeometry::new(16 << 10, 64, 2, 1);
        assert!(
            energy_nj_per_access(&g, TechNode::T045) < energy_nj_per_access(&g, TechNode::T090)
        );
    }

    #[test]
    fn pipelining_costs_energy() {
        assert_eq!(pipelining_energy_overhead(1), 1.0);
        assert!(pipelining_energy_overhead(3) > 1.1);
    }
}
