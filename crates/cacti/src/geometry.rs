//! Cache geometry descriptions and candidate array organisations.

use serde::{Deserialize, Serialize};

/// Physical description of a cache-like SRAM structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Line (block) size in bytes.
    pub line: usize,
    /// Associativity.  `usize::MAX` denotes fully associative; use
    /// [`CacheGeometry::fully_associative`] to construct such geometries.
    pub assoc: usize,
    /// Number of read/write ports.
    pub ports: usize,
}

impl CacheGeometry {
    /// A set-associative cache.
    ///
    /// # Panics
    /// Panics if any parameter is zero, not a power of two, or inconsistent
    /// (capacity smaller than one way of lines).
    pub fn new(capacity: usize, line: usize, assoc: usize, ports: usize) -> Self {
        assert!(capacity.is_power_of_two(), "capacity must be a power of two");
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(assoc >= 1 && ports >= 1);
        assert!(
            capacity >= line * assoc,
            "capacity {capacity} too small for {assoc}-way of {line}B lines"
        );
        Self {
            capacity,
            line,
            assoc,
            ports,
        }
    }

    /// A fully associative buffer (all lines are ways of a single set).
    pub fn fully_associative(capacity: usize, line: usize, ports: usize) -> Self {
        assert!(capacity.is_power_of_two() && line.is_power_of_two());
        assert!(capacity >= line);
        Self {
            capacity,
            line,
            assoc: capacity / line,
            ports,
        }
    }

    /// Number of lines held.
    pub fn lines(&self) -> usize {
        self.capacity / self.line
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.capacity / (self.line * self.assoc)).max(1)
    }

    /// True if this is a single-set (fully associative) structure.
    pub fn is_fully_associative(&self) -> bool {
        self.sets() == 1
    }

    /// Total data bits stored.
    pub fn data_bits(&self) -> usize {
        self.capacity * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_and_lines() {
        let g = CacheGeometry::new(4096, 64, 2, 1);
        assert_eq!(g.lines(), 64);
        assert_eq!(g.sets(), 32);
        assert!(!g.is_fully_associative());
    }

    #[test]
    fn fully_associative_has_one_set() {
        let g = CacheGeometry::fully_associative(256, 64, 1);
        assert_eq!(g.sets(), 1);
        assert_eq!(g.assoc, 4);
        assert!(g.is_fully_associative());
    }

    #[test]
    fn data_bits_counts_capacity() {
        let g = CacheGeometry::new(1024, 64, 2, 1);
        assert_eq!(g.data_bits(), 8192);
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        CacheGeometry::new(3000, 64, 2, 1);
    }

    #[test]
    #[should_panic]
    fn rejects_capacity_below_one_way() {
        CacheGeometry::new(64, 64, 2, 1);
    }
}
