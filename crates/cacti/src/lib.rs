//! # prestage-cacti
//!
//! A calibrated, CACTI-3.0-flavoured analytical timing / area / energy model
//! for cache-like SRAM structures, together with the SIA technology roadmap
//! used by the paper *Effective Instruction Prefetching via Fetch Prestaging*
//! (Falcón, Ramirez, Valero — IPDPS 2005).
//!
//! The paper derives its cache latencies (its Table 3) by feeding CACTI 3.0
//! access times through the SIA cycle-time predictions (its Table 1).  CACTI
//! itself is an analytical model calibrated against SPICE; we reproduce the
//! same pipeline here:
//!
//! 1. [`tech`] — the SIA roadmap (feature size, clock frequency, cycle time),
//!    verbatim from Table 1 of the paper.
//! 2. [`delay`] — a structural delay model (decoder, wordline, bitline, sense
//!    amplifier, tag compare, output routing) with per-node scale factors,
//!    minimised over array organisations, **calibrated** so that
//!    `ceil(access_ns / cycle_ns)` reproduces the paper's Table 3 exactly for
//!    every (size, node) pair it lists.
//! 3. [`area`] / [`energy`] — first-order area and energy estimates, used to
//!    quantify the pipelining overheads the paper argues about in §1 and §5.
//!
//! The top-level convenience API is [`latency_cycles`], which is what the
//! simulator uses for every storage structure.
//!
//! ```
//! use prestage_cacti::{latency_cycles, CacheGeometry, TechNode};
//!
//! let l1 = CacheGeometry::new(4 * 1024, 64, 2, 1);
//! assert_eq!(latency_cycles(&l1, TechNode::T090), 3); // Table 3, 4 KB @ 0.09um
//! assert_eq!(latency_cycles(&l1, TechNode::T045), 4); // Table 3, 4 KB @ 0.045um
//! ```

pub mod area;
pub mod delay;
pub mod energy;
pub mod geometry;
pub mod tech;

pub use area::{area_mm2, pipelining_area_overhead};
pub use delay::{access_time_ns, latency_cycles, latency_cycles_uncalibrated};
pub use energy::{energy_nj_per_access, pipelining_energy_overhead};
pub use geometry::CacheGeometry;
pub use tech::{SiaEntry, TechNode, SIA_ROADMAP};

#[cfg(test)]
mod table3_tests {
    use super::*;

    /// Table 3 of the paper: L1 I-cache and L2 latencies per size and node.
    /// These anchors are the ground truth the whole model is calibrated to.
    const TABLE3: &[(usize, u32, u32)] = &[
        // (size bytes, cycles @ 0.09um, cycles @ 0.045um)
        (256, 1, 1),
        (512, 1, 2),
        (1024, 2, 3),
        (2048, 2, 4),
        (4096, 3, 4),
        (8192, 3, 4),
        (16384, 3, 4),
        (32768, 3, 4),
        (65536, 3, 5),
    ];

    #[test]
    fn table3_l1_matches_paper_exactly() {
        for &(size, c90, c45) in TABLE3 {
            let g = CacheGeometry::new(size, 64, 2, 1);
            assert_eq!(
                latency_cycles(&g, TechNode::T090),
                c90,
                "L1 {size}B @ 0.09um"
            );
            assert_eq!(
                latency_cycles(&g, TechNode::T045),
                c45,
                "L1 {size}B @ 0.045um"
            );
        }
    }

    #[test]
    fn table3_l2_matches_paper_exactly() {
        let l2 = CacheGeometry::new(1 << 20, 128, 2, 1);
        assert_eq!(latency_cycles(&l2, TechNode::T090), 17, "1MB L2 @ 0.09um");
        assert_eq!(latency_cycles(&l2, TechNode::T045), 24, "1MB L2 @ 0.045um");
    }

    #[test]
    fn one_cycle_prebuffer_sizes_match_section_5_1() {
        // §5.1: "we have determined pre-buffers and L0 cache sizes that could
        // be accessed in one cycle: 512 bytes at 0.09um and 256 bytes at
        // 0.045um."
        let b512 = CacheGeometry::fully_associative(512, 64, 1);
        let b256 = CacheGeometry::fully_associative(256, 64, 1);
        assert_eq!(latency_cycles(&b512, TechNode::T090), 1);
        assert_eq!(latency_cycles(&b256, TechNode::T045), 1);
        // ... and the next size up is *not* single cycle any more.
        let b1k = CacheGeometry::fully_associative(1024, 64, 1);
        assert!(latency_cycles(&b1k, TechNode::T045) > 1);
    }
}
