//! SIA technology roadmap (Table 1 of the paper) and node arithmetic.

use serde::{Deserialize, Serialize};

/// A CMOS technology node from the SIA roadmap used by the paper.
///
/// The paper evaluates two of them (0.09 µm and 0.045 µm) but reproduces the
/// full roadmap row in its Table 1, so we carry all five.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechNode {
    /// 0.18 µm (1999)
    T180,
    /// 0.13 µm (2001)
    T130,
    /// 0.09 µm (2004) — "current" node in the paper.
    T090,
    /// 0.065 µm (2007)
    T065,
    /// 0.045 µm (2010) — "far future" node in the paper.
    T045,
}

/// One row of the SIA roadmap (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiaEntry {
    pub node: TechNode,
    pub year: u32,
    /// Feature size in micrometres.
    pub feature_um: f64,
    /// Predicted clock frequency in GHz.
    pub clock_ghz: f64,
    /// Cycle time in nanoseconds (1 / clock).
    pub cycle_ns: f64,
}

/// Table 1 of the paper, verbatim: technological parameters predicted by the
/// Semiconductor Industry Association.
pub const SIA_ROADMAP: [SiaEntry; 5] = [
    SiaEntry {
        node: TechNode::T180,
        year: 1999,
        feature_um: 0.18,
        clock_ghz: 0.5,
        cycle_ns: 2.0,
    },
    SiaEntry {
        node: TechNode::T130,
        year: 2001,
        feature_um: 0.13,
        clock_ghz: 1.7,
        cycle_ns: 0.59,
    },
    SiaEntry {
        node: TechNode::T090,
        year: 2004,
        feature_um: 0.09,
        clock_ghz: 4.0,
        cycle_ns: 0.25,
    },
    SiaEntry {
        node: TechNode::T065,
        year: 2007,
        feature_um: 0.065,
        clock_ghz: 6.7,
        cycle_ns: 0.15,
    },
    SiaEntry {
        node: TechNode::T045,
        year: 2010,
        feature_um: 0.045,
        clock_ghz: 11.5,
        cycle_ns: 0.087,
    },
];

impl TechNode {
    /// The roadmap row for this node.
    pub fn sia(self) -> &'static SiaEntry {
        match self {
            TechNode::T180 => &SIA_ROADMAP[0],
            TechNode::T130 => &SIA_ROADMAP[1],
            TechNode::T090 => &SIA_ROADMAP[2],
            TechNode::T065 => &SIA_ROADMAP[3],
            TechNode::T045 => &SIA_ROADMAP[4],
        }
    }

    /// Feature size in micrometres.
    pub fn feature_um(self) -> f64 {
        self.sia().feature_um
    }

    /// Processor cycle time in nanoseconds at this node.
    pub fn cycle_ns(self) -> f64 {
        self.sia().cycle_ns
    }

    /// Linear gate-delay scale factor relative to CACTI's native 0.80 µm
    /// process.  CACTI 3.0 scales logic delay linearly with feature size.
    pub fn gate_scale(self) -> f64 {
        self.feature_um() / 0.80
    }

    /// Wire-delay scale factor relative to 0.80 µm.  Wires do not improve as
    /// fast as gates when the process shrinks (thinner wires have higher
    /// resistance), which is the core technological premise of the paper
    /// (§2.2, "the future of wires").  We model wire delay as scaling with
    /// the square root of the linear shrink.
    pub fn wire_scale(self) -> f64 {
        self.gate_scale().sqrt()
    }

    /// All nodes, roadmap order.
    pub fn all() -> [TechNode; 5] {
        [
            TechNode::T180,
            TechNode::T130,
            TechNode::T090,
            TechNode::T065,
            TechNode::T045,
        ]
    }

    /// Nanometre shorthand, e.g. `"45"` — the form the CLI's `--tech`
    /// flag and `ExperimentSpec` JSON files use.
    pub fn id(self) -> &'static str {
        match self {
            TechNode::T180 => "180",
            TechNode::T130 => "130",
            TechNode::T090 => "90",
            TechNode::T065 => "65",
            TechNode::T045 => "45",
        }
    }

    /// Parse a node from its [`id`](Self::id) (`"45"`, `"45nm"`) or its
    /// [`label`](Self::label) (`"0.045um"`).
    pub fn from_id(s: &str) -> Option<TechNode> {
        let s = s.trim().to_lowercase();
        let s = s.strip_suffix("nm").unwrap_or(&s);
        TechNode::all()
            .into_iter()
            .find(|n| s == n.id() || s == n.label())
    }

    /// Short human-readable label, e.g. `"0.09um"`.
    pub fn label(self) -> &'static str {
        match self {
            TechNode::T180 => "0.18um",
            TechNode::T130 => "0.13um",
            TechNode::T090 => "0.09um",
            TechNode::T065 => "0.065um",
            TechNode::T045 => "0.045um",
        }
    }
}

impl std::fmt::Display for TechNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roadmap_matches_table1() {
        assert_eq!(SIA_ROADMAP[0].year, 1999);
        assert_eq!(SIA_ROADMAP[4].year, 2010);
        assert!((TechNode::T090.cycle_ns() - 0.25).abs() < 1e-12);
        assert!((TechNode::T045.cycle_ns() - 0.087).abs() < 1e-12);
        assert!((TechNode::T045.sia().clock_ghz - 11.5).abs() < 1e-12);
    }

    #[test]
    fn cycle_time_is_inverse_clock_within_rounding() {
        // Table 1 rounds cycle times; check they are consistent with the
        // clock column to ~5%.
        for e in &SIA_ROADMAP {
            let implied = 1.0 / e.clock_ghz;
            assert!(
                (implied - e.cycle_ns).abs() / implied < 0.06,
                "{:?}: {} vs {}",
                e.node,
                implied,
                e.cycle_ns
            );
        }
    }

    #[test]
    fn scaling_factors_are_monotone() {
        let nodes = TechNode::all();
        for w in nodes.windows(2) {
            assert!(w[0].gate_scale() > w[1].gate_scale());
            assert!(w[0].wire_scale() > w[1].wire_scale());
            // Wires improve more slowly than gates.
            assert!(
                w[1].wire_scale() / w[0].wire_scale() > w[1].gate_scale() / w[0].gate_scale()
            );
        }
    }
}
