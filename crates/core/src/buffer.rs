//! The pre-buffer: FDP's prefetch buffer and CLGP's prestage buffer.
//!
//! Both are small fully-associative line stores; the semantics differ
//! exactly as §3 of the paper describes:
//!
//! * **FDP prefetch buffer**: an entry is freed the moment the fetch unit
//!   uses it (the line is migrated into the I-cache/L0 by the front-end);
//!   allocation takes any free entry.
//! * **CLGP prestage buffer**: each entry carries a **consumers counter**
//!   counting queued CLTQ references.  Allocation may only replace an entry
//!   whose counter is zero (LRU among those); a fetch decrements the
//!   counter but the line *stays valid* and may hit again; a branch
//!   misprediction resets every counter to zero while leaving valid lines
//!   in place ("cache lines ... from the incorrect predicted path remain
//!   useful as long as the valid bit is set").

use prestage_cache::ReqId;
use prestage_isa::Addr;
use serde::{Deserialize, Serialize};

/// Replacement/usage semantics of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PbKind {
    /// FDP prefetch buffer: free-on-use.
    Fdp,
    /// CLGP prestage buffer: consumers-counter lifetime.
    Clgp,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Empty,
    /// Prefetch in flight (valid bit unset).
    Pending(ReqId),
    Valid,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    line: Addr,
    state: EntryState,
    consumers: u32,
    /// LRU stamp: smaller = older.
    lru: u64,
}

/// Result of a fetch-side lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PbLookup {
    /// Line present and usable now.
    Valid,
    /// Line allocated, data still in flight.
    Pending,
    /// Not present.
    Miss,
}

/// A fully associative pre-buffer.
#[derive(Debug, Clone)]
pub struct PreBuffer {
    kind: PbKind,
    entries: Vec<Entry>,
    tick: u64,
}

impl PreBuffer {
    pub fn new(kind: PbKind, n_entries: usize) -> Self {
        assert!(n_entries >= 1);
        PreBuffer {
            kind,
            entries: vec![
                Entry {
                    line: 0,
                    state: EntryState::Empty,
                    consumers: 0,
                    lru: 0,
                };
                n_entries
            ],
            tick: 0,
        }
    }

    pub fn kind(&self) -> PbKind {
        self.kind
    }

    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    fn stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn find(&self, line: Addr) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.state != EntryState::Empty && e.line == line)
    }

    /// Fetch-side lookup (does not change any state).
    pub fn lookup(&self, line: Addr) -> PbLookup {
        match self.find(line) {
            Some(i) => match self.entries[i].state {
                EntryState::Valid => PbLookup::Valid,
                EntryState::Pending(_) => PbLookup::Pending,
                EntryState::Empty => unreachable!(),
            },
            None => PbLookup::Miss,
        }
    }

    /// True when the line is present and valid right now.
    pub fn is_valid(&self, line: Addr) -> bool {
        self.lookup(line) == PbLookup::Valid
    }

    /// CLGP: bump the consumers counter of an existing entry (a CLTQ slot
    /// references it).  Returns false if the line is not present.
    pub fn bump_consumers(&mut self, line: Addr) -> bool {
        let Some(i) = self.find(line) else {
            return false;
        };
        self.entries[i].consumers += 1;
        true
    }

    /// Whether an allocation for a new prefetch could succeed right now.
    pub fn can_allocate(&self) -> bool {
        match self.kind {
            // FDP: an empty (used) entry, or any valid entry to LRU-replace
            // (never-used lines must not clog the buffer forever; only
            // in-flight entries are pinned).
            PbKind::Fdp => self
                .entries
                .iter()
                .any(|e| matches!(e.state, EntryState::Empty | EntryState::Valid)),
            PbKind::Clgp => self.entries.iter().any(|e| e.consumers == 0),
        }
    }

    /// Allocate an entry for `line`, recording the in-flight request.
    /// Returns false when no entry is replaceable (the prefetcher stalls).
    ///
    /// CLGP picks the LRU entry among those with a zero consumers counter
    /// (empty entries first); the new entry starts with `consumers = 1` and
    /// valid unset, per §3.2.3.
    pub fn allocate(&mut self, line: Addr, req: ReqId) -> bool {
        debug_assert!(self.find(line).is_none(), "line already buffered");
        let victim = match self.kind {
            PbKind::Fdp => {
                let empty = self
                    .entries
                    .iter()
                    .position(|e| e.state == EntryState::Empty);
                empty.or_else(|| {
                    // LRU among valid (arrived but never used) entries.
                    self.entries
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.state == EntryState::Valid)
                        .min_by_key(|(_, e)| e.lru)
                        .map(|(i, _)| i)
                })
            }
            PbKind::Clgp => {
                let empty = self
                    .entries
                    .iter()
                    .position(|e| e.state == EntryState::Empty && e.consumers == 0);
                empty.or_else(|| {
                    self.entries
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.consumers == 0)
                        .min_by_key(|(_, e)| e.lru)
                        .map(|(i, _)| i)
                })
            }
        };
        let Some(i) = victim else {
            return false;
        };
        let lru = self.stamp();
        self.entries[i] = Entry {
            line,
            state: EntryState::Pending(req),
            consumers: if self.kind == PbKind::Clgp { 1 } else { 0 },
            lru,
        };
        true
    }

    /// Install an already-available line directly (e.g. a CLGP prefetch
    /// that found the line in the L1 and copies it over after the L1
    /// latency; the caller models the delay by calling this at arrival
    /// time).  Same replacement rules as [`PreBuffer::allocate`].
    pub fn install_valid(&mut self, line: Addr) -> bool {
        if let Some(i) = self.find(line) {
            self.entries[i].state = EntryState::Valid;
            return true;
        }
        // Reuse allocate's victim policy with a dummy id, then mark valid.
        if !self.allocate(line, ReqId(u64::MAX)) {
            return false;
        }
        let i = self.find(line).expect("just allocated");
        self.entries[i].state = EntryState::Valid;
        true
    }

    /// A prefetch completion arrived: mark the pending entry valid.
    /// Returns the line if an entry was still waiting for this request
    /// (it may have been replaced meanwhile — then the fill is dropped).
    pub fn complete(&mut self, req: ReqId) -> Option<Addr> {
        for e in &mut self.entries {
            if e.state == EntryState::Pending(req) {
                e.state = EntryState::Valid;
                return Some(e.line);
            }
        }
        None
    }

    /// The fetch unit consumed `line`.
    ///
    /// * FDP: the entry is freed (caller migrates the line to a cache).
    /// * CLGP: consumers counter decrements (saturating); the line stays.
    pub fn consume(&mut self, line: Addr) {
        let Some(i) = self.find(line) else {
            return;
        };
        match self.kind {
            PbKind::Fdp => self.entries[i].state = EntryState::Empty,
            PbKind::Clgp => {
                self.entries[i].consumers = self.entries[i].consumers.saturating_sub(1);
                let stamp = self.stamp();
                self.entries[i].lru = stamp;
            }
        }
    }

    /// Branch misprediction: CLGP resets all consumers counters (entries
    /// become replaceable) but keeps valid lines; FDP buffers keep their
    /// contents too (lines may still be useful on the correct path).
    pub fn on_mispredict(&mut self) {
        if self.kind == PbKind::Clgp {
            for e in &mut self.entries {
                e.consumers = 0;
            }
        }
    }

    /// Number of non-empty entries.
    pub fn occupancy(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.state != EntryState::Empty)
            .count()
    }

    /// Sum of consumers counters (CLGP pressure metric).
    pub fn total_consumers(&self) -> u32 {
        self.entries.iter().map(|e| e.consumers).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R1: ReqId = ReqId(1);
    const R2: ReqId = ReqId(2);
    const R3: ReqId = ReqId(3);

    #[test]
    fn fdp_free_on_use() {
        let mut pb = PreBuffer::new(PbKind::Fdp, 2);
        assert!(pb.allocate(0x1000, R1));
        assert_eq!(pb.lookup(0x1000), PbLookup::Pending);
        assert_eq!(pb.complete(R1), Some(0x1000));
        assert_eq!(pb.lookup(0x1000), PbLookup::Valid);
        pb.consume(0x1000);
        assert_eq!(pb.lookup(0x1000), PbLookup::Miss);
        assert!(pb.can_allocate());
    }

    #[test]
    fn fdp_stalls_on_inflight_but_replaces_stale_valid() {
        let mut pb = PreBuffer::new(PbKind::Fdp, 2);
        assert!(pb.allocate(0x1000, R1));
        assert!(pb.allocate(0x2000, R2));
        // Both in flight: nothing replaceable.
        assert!(!pb.can_allocate());
        assert!(!pb.allocate(0x3000, R3));
        // One arrives but is never used: it becomes the LRU fallback victim
        // so stale lines cannot clog the buffer.
        pb.complete(R1);
        assert!(pb.can_allocate());
        assert!(pb.allocate(0x3000, R3));
        assert_eq!(pb.lookup(0x1000), PbLookup::Miss);
        assert_eq!(pb.lookup(0x2000), PbLookup::Pending);
    }

    #[test]
    fn clgp_consumer_lifetime() {
        let mut pb = PreBuffer::new(PbKind::Clgp, 2);
        assert!(pb.allocate(0x1000, R1)); // consumers = 1
        assert!(pb.bump_consumers(0x1000)); // = 2
        pb.complete(R1);
        // One consumer fetches: counter 1, still valid, not replaceable.
        pb.consume(0x1000);
        assert_eq!(pb.lookup(0x1000), PbLookup::Valid);
        assert!(pb.allocate(0x2000, R2)); // uses the empty entry
        // Both entries now have live consumers: nothing is replaceable.
        assert!(!pb.can_allocate());
        // Second consumer fetches: counter 0 — now replaceable, line stays.
        pb.consume(0x1000);
        assert_eq!(pb.lookup(0x1000), PbLookup::Valid);
        assert!(pb.allocate(0x3000, R3)); // replaces 0x1000 (consumers 0)
        assert_eq!(pb.lookup(0x1000), PbLookup::Miss);
    }

    #[test]
    fn clgp_replaces_lru_among_free() {
        let mut pb = PreBuffer::new(PbKind::Clgp, 3);
        pb.allocate(0x1000, R1);
        pb.allocate(0x2000, R2);
        pb.allocate(0x3000, R3);
        pb.complete(R1);
        pb.complete(R2);
        pb.complete(R3);
        // Drain all consumers; touch order 0x1000 (oldest) .. 0x3000.
        pb.consume(0x1000);
        pb.consume(0x2000);
        pb.consume(0x3000);
        // All replaceable; LRU is 0x1000 (earliest final touch).
        assert!(pb.allocate(0x4000, ReqId(9)));
        assert_eq!(pb.lookup(0x1000), PbLookup::Miss);
        assert_eq!(pb.lookup(0x2000), PbLookup::Valid);
    }

    #[test]
    fn clgp_mispredict_resets_counters_keeps_lines() {
        let mut pb = PreBuffer::new(PbKind::Clgp, 2);
        pb.allocate(0x1000, R1);
        pb.bump_consumers(0x1000);
        pb.bump_consumers(0x1000);
        pb.complete(R1);
        pb.on_mispredict();
        assert_eq!(pb.total_consumers(), 0);
        // Line still answers hits (useful wrong-path line)...
        assert_eq!(pb.lookup(0x1000), PbLookup::Valid);
        // ...but is replaceable by new correct-path prefetches.
        assert!(pb.allocate(0x2000, R2));
        assert!(pb.allocate(0x3000, R3));
        assert_eq!(pb.lookup(0x1000), PbLookup::Miss);
    }

    #[test]
    fn pending_entry_replaced_after_reset_drops_late_fill() {
        let mut pb = PreBuffer::new(PbKind::Clgp, 1);
        pb.allocate(0x1000, R1);
        pb.on_mispredict(); // consumers -> 0 while still pending
        assert!(pb.allocate(0x2000, R2)); // replaces the pending entry
        // The late completion for the replaced request is dropped.
        assert_eq!(pb.complete(R1), None);
        assert_eq!(pb.complete(R2), Some(0x2000));
    }

    #[test]
    fn install_valid_immediate() {
        let mut pb = PreBuffer::new(PbKind::Clgp, 2);
        assert!(pb.install_valid(0x7000));
        assert_eq!(pb.lookup(0x7000), PbLookup::Valid);
        // Installing over a pending entry upgrades it.
        pb.allocate(0x8000, R1);
        assert!(pb.install_valid(0x8000));
        assert_eq!(pb.lookup(0x8000), PbLookup::Valid);
    }

    #[test]
    fn consume_on_missing_line_is_noop() {
        let mut pb = PreBuffer::new(PbKind::Fdp, 1);
        pb.consume(0xdead_0000); // must not panic
        assert_eq!(pb.occupancy(), 0);
    }
}
