//! Front-end configuration and derived latencies.

use prestage_cache::{ITlbConfig, InsertionPolicy};
use prestage_cacti::{latency_cycles, CacheGeometry, TechNode};
use serde::{Deserialize, Serialize};

/// Which prefetch engine drives the pre-buffer.
///
/// Every kind is a pluggable mechanism behind the
/// [`InstrPrefetcher`](crate::prefetch::InstrPrefetcher) trait; the
/// front-end is generic over the mechanism and the registry hook is the
/// monomorphic `InstrPrefetcher::from_config`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No prefetching (baseline).
    None,
    /// Fetch Directed Prefetching with Enqueue Cache Probe Filtering.
    Fdp,
    /// Cache Line Guided Prestaging.
    Clgp,
    /// Next-N-line prefetching (Smith '82), the classic sequential scheme
    /// of the paper's related work: each demand line fetch triggers
    /// prefetches of the next `nlp_degree` sequential lines into an
    /// FDP-style buffer.
    NextLine,
    /// MANA (Ansari et al., "MANA: Microarchitecting an Instruction
    /// Prefetcher", HPCA'20-style record-and-replay): spatial-region
    /// records keyed by trigger line in a set-associative MANA table,
    /// chained by successor pointers and chased ahead of fetch by a small
    /// stream address buffer.
    Mana,
    /// High-level program-map traversal (Murthy & Sohi): a coarse-grained
    /// region-successor map over the workload's block graph; fetching into
    /// a new region prefetches the lines of the next learned region(s).
    ProgMap,
}

impl PrefetcherKind {
    /// All kinds, ladder order (baseline → classic → paper → modern).
    pub fn all() -> [PrefetcherKind; 6] {
        use PrefetcherKind::*;
        [None, NextLine, Fdp, Clgp, Mana, ProgMap]
    }

    /// Stable identifier used by `ExperimentSpec` JSON and the CLI.
    pub fn id(self) -> &'static str {
        match self {
            PrefetcherKind::None => "none",
            PrefetcherKind::Fdp => "fdp",
            PrefetcherKind::Clgp => "clgp",
            PrefetcherKind::NextLine => "nextline",
            PrefetcherKind::Mana => "mana",
            PrefetcherKind::ProgMap => "progmap",
        }
    }

    /// Parse an [`id`](Self::id) (case-insensitive).
    pub fn from_id(s: &str) -> Option<PrefetcherKind> {
        let s = s.trim().to_lowercase();
        PrefetcherKind::all().into_iter().find(|k| k.id() == s)
    }

    /// Human-readable label for figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PrefetcherKind::None => "no prefetch",
            PrefetcherKind::Fdp => "FDP",
            PrefetcherKind::Clgp => "CLGP",
            PrefetcherKind::NextLine => "next-N-line",
            PrefetcherKind::Mana => "MANA",
            PrefetcherKind::ProgMap => "program map",
        }
    }
}

/// Static configuration of the front-end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontendConfig {
    pub tech: TechNode,
    /// Instructions delivered per cycle (Table 2: 4).
    pub fetch_width: u32,
    /// I-cache line size in bytes (Table 2: 64).
    pub line_bytes: u64,
    /// L1 I-cache capacity in bytes.
    pub l1_capacity: usize,
    /// L1 associativity (Table 2: 2).
    pub l1_assoc: usize,
    /// Pipeline the L1 access (latency stages, 1/cycle throughput).
    pub l1_pipelined: bool,
    /// Figure 1's "ideal": the L1 answers in one cycle regardless of size.
    pub ideal_l1: bool,
    /// Optional L0 filter cache capacity (fully associative).
    pub l0_capacity: Option<usize>,
    /// Pre-buffer entries (64 B lines); 0 disables the pre-buffer.
    pub pb_entries: usize,
    /// Pipeline the pre-buffer access (the 16-entry configurations).
    pub pb_pipelined: bool,
    /// Decoupling-queue capacity in fetch blocks (Table 2 text: 8).
    pub queue_blocks: usize,
    pub prefetcher: PrefetcherKind,
    /// FDP prefetch-instruction-queue entries.
    pub piq_entries: usize,
    /// Maximum overlapped line fetches (fetch pipeline depth).
    pub max_inflight: usize,
    /// Sequential prefetch degree for [`PrefetcherKind::NextLine`].
    pub nlp_degree: u32,
    /// MANA-table entries (total, across its 4-way sets); power of two.
    pub mana_entries: usize,
    /// Lines per MANA spatial region (trigger + `region - 1` bitmap bits);
    /// at most 33 (a `u32` bitmap plus the trigger line itself).
    pub mana_region_lines: u32,
    /// Stream-address-buffer entries (active MANA record chains).
    pub mana_sab_entries: usize,
    /// Records chased ahead per MANA stream advance.
    pub mana_degree: u32,
    /// Program-map entries (direct-mapped region-successor table); power
    /// of two.
    pub progmap_entries: usize,
    /// Program-map region granularity in bytes; power of two, at least
    /// one cache line.
    pub progmap_region_bytes: u64,
    /// Regions traversed ahead per program-map region change.
    pub progmap_degree: u32,
    /// Ablation: CLGP's prestage buffer uses FDP's free-on-use replacement
    /// instead of consumers counters (quantifies the counter's coverage).
    pub ablate_free_on_use: bool,
    /// Ablation: CLGP migrates used prestage lines into the L0/L1 like FDP
    /// (quantifies the no-duplication policy).
    pub ablate_migrate: bool,
    /// Ablation: CLGP filters L1-resident lines like FDP (quantifies
    /// hit-latency avoidance, the paper's "even to avoid the hit penalty").
    pub ablate_filter: bool,
    /// Optional instruction TLB.  `None` models free translation (the
    /// paper's implicit assumption); `Some` threads every fetched or
    /// prefetched address through a set-associative i-TLB whose misses
    /// charge a fixed page-walk latency.
    pub itlb: Option<ITlbConfig>,
    /// Insertion-policy override for *prefetch-class* fills into the
    /// L0/L1 (migrated pre-buffer lines).  `None` uses each mechanism's
    /// own choice ([`InstrPrefetcher::prefetch_insertion`]
    /// (crate::prefetch::InstrPrefetcher::prefetch_insertion), MRU for
    /// every current mechanism); `Some` forces one policy across
    /// mechanisms for apples-to-apples sweeps.
    pub insertion: Option<InsertionPolicy>,
}

impl FrontendConfig {
    /// A Table 2 baseline at `tech` with the given L1 capacity: no
    /// prefetching, no L0, non-pipelined L1.
    pub fn base(tech: TechNode, l1_capacity: usize) -> Self {
        FrontendConfig {
            tech,
            fetch_width: 4,
            line_bytes: 64,
            l1_capacity,
            l1_assoc: 2,
            l1_pipelined: false,
            ideal_l1: false,
            l0_capacity: None,
            pb_entries: 0,
            pb_pipelined: false,
            queue_blocks: 8,
            prefetcher: PrefetcherKind::None,
            piq_entries: 8,
            max_inflight: 4,
            nlp_degree: 2,
            mana_entries: 1024,
            mana_region_lines: 8,
            mana_sab_entries: 4,
            mana_degree: 2,
            progmap_entries: 2048,
            progmap_region_bytes: 256,
            progmap_degree: 2,
            ablate_free_on_use: false,
            ablate_migrate: false,
            ablate_filter: false,
            itlb: None,
            insertion: None,
        }
    }

    /// Check every sizing invariant the storage structures assume, naming
    /// the offending field.  Mask-indexed tables (the L1's sets, the MANA
    /// table, the program map) silently alias on non-power-of-two sizes,
    /// so spec consumers validate here *before* anything is constructed.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line_bytes {} is not a power of two",
                self.line_bytes
            ));
        }
        if !self.l1_capacity.is_power_of_two() {
            return Err(format!(
                "l1_capacity {} is not a power of two (cache sets are \
                 mask-indexed and would silently alias)",
                self.l1_capacity
            ));
        }
        let lines = self.l1_capacity / self.line_bytes as usize;
        if self.l1_assoc == 0 || lines < self.l1_assoc {
            return Err(format!(
                "l1_assoc {} does not fit {} lines of l1_capacity",
                self.l1_assoc, lines
            ));
        }
        let sets = lines / self.l1_assoc;
        if !sets.is_power_of_two() || sets * self.l1_assoc != lines {
            return Err(format!(
                "l1_assoc {} over {lines} lines yields a non-power-of-two \
                 set count ({sets}) — set indexing is mask-based and would \
                 silently alias",
                self.l1_assoc
            ));
        }
        if let Some(l0) = self.l0_capacity {
            if !l0.is_power_of_two() {
                return Err(format!("l0_capacity {l0} is not a power of two"));
            }
        }
        if self.prefetcher == PrefetcherKind::Mana {
            if !self.mana_entries.is_power_of_two() {
                return Err(format!(
                    "mana_entries {} is not a power of two (the MANA table \
                     is mask-indexed)",
                    self.mana_entries
                ));
            }
            if self.mana_region_lines < 2 || self.mana_region_lines > 33 {
                return Err(format!(
                    "mana_region_lines {} out of range 2..=33 (a u32 bitmap \
                     plus the trigger line)",
                    self.mana_region_lines
                ));
            }
            if self.mana_sab_entries == 0 {
                return Err("mana_sab_entries must be at least 1".into());
            }
        }
        if let Some(itlb) = &self.itlb {
            itlb.validate(self.line_bytes as usize)?;
        }
        if self.prefetcher == PrefetcherKind::ProgMap {
            if !self.progmap_entries.is_power_of_two() {
                return Err(format!(
                    "progmap_entries {} is not a power of two (the program \
                     map is mask-indexed)",
                    self.progmap_entries
                ));
            }
            if !self.progmap_region_bytes.is_power_of_two()
                || self.progmap_region_bytes < self.line_bytes
            {
                return Err(format!(
                    "progmap_region_bytes {} must be a power of two of at \
                     least one {}-byte line",
                    self.progmap_region_bytes, self.line_bytes
                ));
            }
        }
        Ok(())
    }

    /// The single-cycle pre-buffer/L0 size CACTI allows at `tech`
    /// (§5.1: 512 B at 0.09 µm, 256 B at 0.045 µm), in 64-byte lines.
    pub fn one_cycle_buffer_lines(tech: TechNode) -> usize {
        let mut lines = 1usize;
        while lines < 64 {
            let next = CacheGeometry::fully_associative((lines * 2) * 64, 64, 1);
            if latency_cycles(&next, tech) > 1 {
                break;
            }
            lines *= 2;
        }
        lines
    }

    /// L1 access latency in cycles.
    pub fn l1_latency(&self) -> u32 {
        if self.ideal_l1 {
            return 1;
        }
        let g = CacheGeometry::new(self.l1_capacity, self.line_bytes as usize, self.l1_assoc, 1);
        latency_cycles(&g, self.tech)
    }

    /// L0 access latency in cycles (the L0 is sized to be single cycle).
    pub fn l0_latency(&self) -> u32 {
        match self.l0_capacity {
            Some(c) => {
                let g = CacheGeometry::fully_associative(c, self.line_bytes as usize, 1);
                latency_cycles(&g, self.tech)
            }
            None => 1,
        }
    }

    /// Pre-buffer access latency in cycles.
    pub fn pb_latency(&self) -> u32 {
        if self.pb_entries == 0 {
            return 1;
        }
        let bytes = (self.pb_entries * self.line_bytes as usize).next_power_of_two();
        let g = CacheGeometry::fully_associative(bytes, self.line_bytes as usize, 1);
        latency_cycles(&g, self.tech)
    }

    /// Extra pipeline stages the fetch stage contributes beyond one:
    /// pipelined arrays insert their full latency into the front-end,
    /// which is what inflates the branch-misprediction penalty (§1).
    pub fn fetch_pipeline_stages(&self) -> u32 {
        let mut stages = 1;
        if self.l1_pipelined {
            stages = stages.max(self.l1_latency());
        }
        if self.pb_pipelined {
            stages = stages.max(self.pb_latency());
        }
        stages
    }

    /// Total one-cycle-reachable cache budget in bytes (pre-buffer + L0),
    /// used for the paper's hardware-budget comparisons.
    pub fn one_cycle_budget_bytes(&self) -> usize {
        self.pb_entries * self.line_bytes as usize + self.l0_capacity.unwrap_or(0)
    }

    /// Total front-end storage budget (pre-buffer + L0 + L1).
    pub fn total_budget_bytes(&self) -> usize {
        self.one_cycle_budget_bytes() + self.l1_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cycle_buffer_sizes_match_paper() {
        assert_eq!(FrontendConfig::one_cycle_buffer_lines(TechNode::T090), 8); // 512 B
        assert_eq!(FrontendConfig::one_cycle_buffer_lines(TechNode::T045), 4); // 256 B
    }

    #[test]
    fn latencies_derive_from_table3() {
        let c = FrontendConfig::base(TechNode::T045, 8 << 10);
        assert_eq!(c.l1_latency(), 4);
        let c9 = FrontendConfig::base(TechNode::T090, 8 << 10);
        assert_eq!(c9.l1_latency(), 3);
    }

    #[test]
    fn ideal_l1_is_single_cycle() {
        let mut c = FrontendConfig::base(TechNode::T045, 64 << 10);
        c.ideal_l1 = true;
        assert_eq!(c.l1_latency(), 1);
    }

    #[test]
    fn pb16_latency_matches_section51() {
        // 16-entry pre-buffer = 1 KB: "pipelined into two stages at 0.09um
        // and into three stages at 0.045um".
        let mut c = FrontendConfig::base(TechNode::T090, 4 << 10);
        c.pb_entries = 16;
        assert_eq!(c.pb_latency(), 2);
        c.tech = TechNode::T045;
        assert_eq!(c.pb_latency(), 3);
    }

    #[test]
    fn fetch_stage_depth_tracks_pipelined_arrays() {
        let mut c = FrontendConfig::base(TechNode::T045, 64 << 10);
        assert_eq!(c.fetch_pipeline_stages(), 1);
        c.l1_pipelined = true;
        assert_eq!(c.fetch_pipeline_stages(), 5); // 64KB @0.045 = 5 cycles
        c.l1_pipelined = false;
        c.pb_entries = 16;
        c.pb_pipelined = true;
        assert_eq!(c.fetch_pipeline_stages(), 3);
    }

    #[test]
    fn itlb_validation_is_threaded_through() {
        let mut c = FrontendConfig::base(TechNode::T090, 4 << 10);
        assert!(c.validate().is_ok());
        c.itlb = Some(ITlbConfig::default_config());
        assert!(c.validate().is_ok());
        c.itlb = Some(ITlbConfig {
            page_bytes: 32, // below the 64-byte line
            ..ITlbConfig::default_config()
        });
        let err = c.validate().unwrap_err();
        assert!(err.contains("page_bytes"), "got: {err}");
        c.itlb = Some(ITlbConfig {
            entries: 48,
            ..ITlbConfig::default_config()
        });
        assert!(c.validate().unwrap_err().contains("itlb entries"));
    }

    #[test]
    fn budget_accounting() {
        let mut c = FrontendConfig::base(TechNode::T090, 1 << 10);
        c.pb_entries = 16;
        c.l0_capacity = Some(512);
        // 1KB PB + 0.5KB L0 + 1KB L1 = 2.5KB: the paper's §5.1 example.
        assert_eq!(c.total_budget_bytes(), 2560);
        assert_eq!(c.one_cycle_budget_bytes(), 1536);
    }
}
