//! The decoupled fetch front-end: fetch unit + prefetch engine.
//!
//! One [`FrontEnd`] instance owns the L1 I-cache, the optional L0 filter
//! cache, the pre-buffer (prefetch or prestage semantics), the decoupling
//! queue, and the prefetch engine.  The embedding simulator:
//!
//! 1. pushes predicted fetch blocks with [`FrontEnd::push_block`] (one per
//!    cycle, whenever [`FrontEnd::has_queue_space`]);
//! 2. calls [`FrontEnd::tick`] once per cycle, passing the shared
//!    [`L2System`] and the number of downstream (decode) slots available;
//!    deliveries come back tagged with block sequence, PC range and fetch
//!    source;
//! 3. routes L2 completions back via [`FrontEnd::on_completion`];
//! 4. calls [`FrontEnd::flush`] on a branch misprediction redirect.
//!
//! ## Fetch path
//!
//! The fetch unit works on one queue line at a time (up to
//! `cfg.max_inflight` overlapped), probing pre-buffer, L0 and L1 in
//! parallel; the fastest hit wins (pre-buffer and L0 are one cycle — or a
//! pipelined pre-buffer's full latency — while the L1 costs its CACTI
//! latency and, when not pipelined, blocks its port for the whole access).
//! Misses everywhere become demand requests to the L2 system at I-fetch
//! priority.  A line whose prefetch is still in flight is *waited on*
//! (prestaging hides the remaining latency) and counts as a pre-buffer
//! fetch, like the paper's fetch-source accounting.
//!
//! ## Fill policies (§3.1.1, §3.2.3, §3.2.4)
//!
//! * demand miss: fill L1, plus L0 when present;
//! * FDP pre-buffer fetch-hit: migrate the line to L0 (if present) else L1
//!   and free the entry;
//! * CLGP pre-buffer fetch-hit: decrement the consumers counter; **no
//!   migration** — evicted prestage lines are simply dropped, so pre-buffer
//!   and emergency-cache contents never duplicate.

use crate::buffer::{PbKind, PbLookup, PreBuffer};
use crate::config::{FrontendConfig, PrefetcherKind};
use crate::prefetch::{InstrPrefetcher, PrefetchCheckpoint, PrefetchView};
use crate::queue::{FetchQueue, LineSlot, QueueKind};
use crate::stats::FrontStats;
use prestage_cache::{
    ArrayPort, Completion, FillClass, ITlb, L2System, MemSource, ReqClass, ReqId, SetAssocCache,
    TlbCheckpoint, TlbStats,
};
use prestage_isa::{Addr, INST_BYTES};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Where a fetched line came from (Figure 7 categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FetchSource {
    PreBuffer,
    L0,
    L1,
    L2,
    Mem,
}

/// A batch of fetched instructions handed to decode this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    pub block_seq: u64,
    pub first_pc: Addr,
    pub count: u32,
    pub source: FetchSource,
    pub cycle: u64,
    /// This delivery finishes its fetch block.
    pub completes_block: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LfState {
    /// Waiting on a pending pre-buffer entry to become valid.
    WaitPb,
    /// Waiting on a demand request to the L2 system.
    WaitMem(ReqId),
    /// Data available at the given cycle.
    Ready(u64),
}

#[derive(Debug, Clone, Copy)]
struct LineFetch {
    slot: LineSlot,
    state: LfState,
    source: FetchSource,
    delivered: u32,
    counted: bool,
}

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Route {
    pub(crate) demand: bool,
    pub(crate) pb_fill: bool,
}

/// Flat routing table for in-flight L2 requests the front-end cares
/// about: a linear-scan `Vec` keyed by [`ReqId`].  The table is bounded
/// by the L2 system's outstanding-request count (a handful of entries),
/// is never iterated in key order, and sees one lookup per completion —
/// exactly the shape where a flat scan with `swap_remove` beats the
/// pointer-chasing `BTreeMap` it replaces.
#[derive(Debug, Default)]
pub(crate) struct RouteTable {
    entries: Vec<(ReqId, Route)>,
}

impl RouteTable {
    /// The route for `id`, inserting a default entry if absent
    /// (`BTreeMap::entry(..).or_default()` shaped).
    pub(crate) fn get_or_insert(&mut self, id: ReqId) -> &mut Route {
        match self.entries.iter().position(|(k, _)| *k == id) {
            Some(i) => &mut self.entries[i].1,
            None => {
                self.entries.push((id, Route::default()));
                // prestage: allow(unwrap-in-lib, the push on the previous line guarantees a last element)
                &mut self.entries.last_mut().expect("just pushed").1
            }
        }
    }

    pub(crate) fn remove(&mut self, id: ReqId) -> Option<Route> {
        let i = self.entries.iter().position(|(k, _)| *k == id)?;
        Some(self.entries.swap_remove(i).1)
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The decoupled fetch front-end, monomorphized over its prefetch
/// mechanism `P`: every per-cycle hook (`tick`, `observe_fetch`,
/// `migrate_used_lines`) is a direct — typically inlined — call, not a
/// virtual one.  Mechanism selection happens once, at the config layer:
/// the engine instantiates one `FrontEnd<P>` per [`PrefetcherKind`]
/// (see `prestage-sim`'s engine), and [`NoPrefetcher`] is the zero-sized
/// no-prefetch baseline.
///
/// [`NoPrefetcher`]: crate::prefetch::NoPrefetcher
#[derive(Debug)]
pub struct FrontEnd<P: InstrPrefetcher> {
    cfg: FrontendConfig,
    queue: FetchQueue,
    pb: Option<PreBuffer>,
    pb_port: ArrayPort,
    l1: SetAssocCache,
    l1_port: ArrayPort,
    /// Port used by prefetch copies out of the L1 (§3.1's "additional tag
    /// port (or replicated tags)" extended to the data array, so copies do
    /// not steal demand-fetch bandwidth).
    l1_copy_port: ArrayPort,
    l0: Option<(SetAssocCache, ArrayPort)>,
    inflight: VecDeque<LineFetch>,
    /// The prefetch mechanism; see [`crate::prefetch`].
    pf: P,
    /// Prefetch copies from the L1 completing at (cycle, synthetic id).
    l1_copies: Vec<(u64, ReqId)>,
    routes: RouteTable,
    next_synth: u64,
    /// Optional instruction TLB: every line address the fetch unit or the
    /// prefetch mechanism touches translates through it (misses charge
    /// `miss_cycles` before the array/L2 access starts).  `None` models
    /// free translation — the pre-TLB behavior, bit for bit.
    tlb: Option<ITlb>,
    /// Insertion class for prefetch-originated fills into L0/L1 (the
    /// migration path): the config override, else the mechanism's
    /// [`InstrPrefetcher::prefetch_insertion`] choice, resolved once.
    migrate_class: FillClass,
    stats: FrontStats,
}

/// Synthetic request-id namespace for L1→PB copies (disjoint from the
/// L2 system's sequence numbers).
const SYNTH_BASE: u64 = 1 << 63;

impl<P: InstrPrefetcher> FrontEnd<P> {
    /// # Panics
    /// On a configuration [`FrontendConfig::validate`] rejects (spec
    /// consumers validate earlier and report the field name instead).
    pub fn new(cfg: FrontendConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid front-end configuration: {e}");
        }
        let pf = P::from_config(&cfg);
        debug_assert_eq!(
            pf.kind(),
            cfg.prefetcher,
            "front-end instantiated with the wrong mechanism type"
        );
        let kind = match cfg.prefetcher {
            PrefetcherKind::Clgp => QueueKind::Cltq,
            _ => QueueKind::Ftq,
        };
        let pb = (cfg.pb_entries > 0).then(|| {
            PreBuffer::new(
                match cfg.prefetcher {
                    PrefetcherKind::Clgp if !cfg.ablate_free_on_use => PbKind::Clgp,
                    _ => PbKind::Fdp,
                },
                cfg.pb_entries,
            )
        });
        let l0 = cfg.l0_capacity.map(|c| {
            (
                SetAssocCache::fully_associative(c, cfg.line_bytes as usize),
                ArrayPort::new(cfg.l0_latency(), false),
            )
        });
        let migrate_class =
            FillClass::Prefetch(cfg.insertion.unwrap_or_else(|| pf.prefetch_insertion()));
        FrontEnd {
            queue: FetchQueue::new(kind, cfg.line_bytes, cfg.queue_blocks),
            pb,
            pb_port: ArrayPort::new(cfg.pb_latency(), cfg.pb_pipelined),
            l1: SetAssocCache::new(cfg.l1_capacity, cfg.line_bytes as usize, cfg.l1_assoc),
            l1_port: ArrayPort::new(cfg.l1_latency(), cfg.l1_pipelined),
            l1_copy_port: ArrayPort::new(cfg.l1_latency(), cfg.l1_pipelined),
            l0,
            inflight: VecDeque::new(),
            pf,
            l1_copies: Vec::new(),
            routes: RouteTable::default(),
            next_synth: SYNTH_BASE,
            tlb: cfg.itlb.map(|c| ITlb::new(&c)),
            migrate_class,
            cfg,
            stats: FrontStats::default(),
        }
    }

    pub fn config(&self) -> &FrontendConfig {
        &self.cfg
    }

    pub fn stats(&self) -> &FrontStats {
        &self.stats
    }

    /// Zero all counters (end of warm-up); cache/buffer contents and the
    /// prefetch mechanism's warm tables are kept.
    pub fn reset_stats(&mut self) {
        self.stats = FrontStats::default();
        self.l1.reset_stats();
        if let Some((l0, _)) = &mut self.l0 {
            l0.reset_stats();
        }
        if let Some(tlb) = &mut self.tlb {
            tlb.reset_stats();
        }
        self.pf.reset_stats();
    }

    pub fn queue(&self) -> &FetchQueue {
        &self.queue
    }

    /// Direct access to the L1 directory (warm-up / inspection).
    pub fn l1(&mut self) -> &mut SetAssocCache {
        &mut self.l1
    }

    /// True when another predicted fetch block can be accepted this cycle.
    pub fn has_queue_space(&self) -> bool {
        self.queue.has_space()
    }

    /// Enqueue a predicted fetch block.
    pub fn push_block(&mut self, seq: u64, start: Addr, len: u32) -> bool {
        let ok = self.queue.push_block(seq, start, len);
        if ok {
            self.stats.blocks_pushed += 1;
        } else {
            self.stats.blocks_rejected += 1;
        }
        ok
    }

    /// Branch misprediction reached the front-end: drop queued work and
    /// in-flight fetches; reset prestage consumers counters; tell the
    /// prefetch mechanism to drop its request queues.  Demand requests
    /// already in the memory system still complete and fill the caches
    /// (useful wrong-path warmth), they just deliver nothing.
    pub fn flush(&mut self) {
        self.queue.flush();
        self.inflight.clear();
        self.pf.on_redirect();
        if let Some(pb) = &mut self.pb {
            pb.on_mispredict();
        }
        self.stats.flushes += 1;
    }

    /// In-flight L2 requests the front-end still expects a completion for
    /// (demand fetches + pre-buffer fills).  Bounded by the L2 system's
    /// outstanding-request count — the engine's end-of-cell invariant
    /// checks exactly that.
    pub fn routes_len(&self) -> usize {
        self.routes.len()
    }

    /// Snapshot the prefetch mechanism's speculative state (training
    /// cursors, stream expectations) — taken by the engine when it detects
    /// a divergence, *before* wrong-path fetches are observed.
    pub fn prefetcher_checkpoint(&self) -> PrefetchCheckpoint {
        self.pf.checkpoint()
    }

    /// Reinstall a [`prefetcher_checkpoint`](Self::prefetcher_checkpoint)
    /// after the redirect [`flush`](Self::flush), so wrong-path
    /// observations do not corrupt the mechanism's speculative cursors.
    pub fn prefetcher_restore(&mut self, cp: &PrefetchCheckpoint) {
        self.pf.restore(cp);
    }

    /// Mechanism-private metadata storage in bytes (for the CACTI
    /// area/energy accounting); 0 for the no-prefetch baseline.
    pub fn prefetcher_state_bytes(&self) -> usize {
        self.pf.state_bytes()
    }

    /// i-TLB storage in bytes (0 when translation is free/unmodeled).
    pub fn tlb_state_bytes(&self) -> usize {
        self.tlb.as_ref().map_or(0, |t| t.state_bytes())
    }

    /// i-TLB hit/miss counters, when a TLB is configured.
    pub fn tlb_stats(&self) -> Option<TlbStats> {
        self.tlb.as_ref().map(|t| *t.stats())
    }

    /// Snapshot the i-TLB contents (tags + replacement state) — taken by
    /// the engine at a predicted branch, alongside
    /// [`prefetcher_checkpoint`](Self::prefetcher_checkpoint).  Empty when
    /// no TLB is configured.
    pub fn tlb_checkpoint(&self) -> TlbCheckpoint {
        self.tlb.as_ref().map(ITlb::checkpoint).unwrap_or_default()
    }

    /// Reinstall a [`tlb_checkpoint`](Self::tlb_checkpoint) after a
    /// redirect, so wrong-path translations do not survive into replayed
    /// right-path execution (keeping checkpoint replay bit-exact).
    pub fn tlb_restore(&mut self, cp: &TlbCheckpoint) {
        if let Some(tlb) = &mut self.tlb {
            tlb.restore(cp);
        }
    }

    /// Route an L2-system completion (the engine filters by requester).
    pub fn on_completion(&mut self, c: &Completion) {
        let Some(route) = self.routes.remove(c.id) else {
            return;
        };
        if route.pb_fill {
            if let Some(pb) = &mut self.pb {
                if pb.complete(c.id).is_some() {
                    match c.source {
                        MemSource::L2 => self.stats.prefetch_from_l2 += 1,
                        MemSource::Memory => self.stats.prefetch_from_mem += 1,
                    }
                }
            }
        }
        if route.demand {
            // Fill the emergency path: L1 always; L0 too when present.
            self.l1.fill(c.line);
            if let Some((l0, _)) = &mut self.l0 {
                l0.fill(c.line);
            }
            let source = match c.source {
                MemSource::L2 => FetchSource::L2,
                MemSource::Memory => FetchSource::Mem,
            };
            for lf in &mut self.inflight {
                if lf.state == LfState::WaitMem(c.id) {
                    lf.state = LfState::Ready(c.ready_at);
                    lf.source = source;
                }
            }
        }
    }

    /// One cycle of front-end work.  `downstream_free` bounds delivered
    /// instructions (decode-buffer backpressure).  Deliveries are appended
    /// to `out`.
    pub fn tick(
        &mut self,
        now: u64,
        l2: &mut L2System,
        downstream_free: u32,
        out: &mut Vec<Delivery>,
    ) {
        self.complete_l1_copies(now);
        self.resolve_waiting_pb(now, l2);
        self.deliver(now, downstream_free, out);
        self.start_fetches(now, l2);
        // Prefetch mechanism tick: lend it the view of everything a
        // prefetch engine may touch (it cannot reach the in-flight fetch
        // pipeline or the ports the fetch unit owns).  Disjoint field
        // borrows — no take/put-back, no indirection.
        let FrontEnd {
            cfg,
            queue,
            pb,
            l1,
            l0,
            l1_copy_port,
            l1_copies,
            routes,
            next_synth,
            tlb,
            stats,
            pf,
            ..
        } = self;
        let mut view = PrefetchView {
            cfg,
            queue,
            pb: pb.as_mut(),
            l1,
            l0: l0.as_mut().map(|(l0, _)| l0),
            l1_copy_port,
            l1_copies,
            routes,
            next_synth,
            tlb: tlb.as_mut(),
            stats,
        };
        pf.tick(now, &mut view, l2);
    }

    // -- fetch path -------------------------------------------------------

    fn complete_l1_copies(&mut self, now: u64) {
        if self.l1_copies.is_empty() {
            return;
        }
        let pb = self.pb.as_mut().expect("copies require a pre-buffer");
        self.l1_copies.retain(|&(ready, id)| {
            if ready <= now {
                pb.complete(id);
                false
            } else {
                true
            }
        });
    }

    fn resolve_waiting_pb(&mut self, now: u64, l2: &mut L2System) {
        if self.pb.is_none() {
            return;
        }
        // One interleaved pass.  The ready path draws on the PB port and
        // the vanished path on the L0/L1 ports — disjoint, so resolving
        // in index order is identical to two categorized passes.
        for i in 0..self.inflight.len() {
            if self.inflight[i].state != LfState::WaitPb {
                continue;
            }
            let line = self.inflight[i].slot.line;
            match self.pb.as_ref().expect("checked above").lookup(line) {
                PbLookup::Valid => {
                    let ready = self.pb_port.start(now);
                    self.inflight[i].state = LfState::Ready(ready);
                }
                PbLookup::Pending => {}
                // The pending entry was replaced underneath the waiter
                // (possible only around flush races): fall back to a
                // fresh storage probe so the fetch always completes.
                PbLookup::Miss => {
                    let (state, source) = self.probe_storage(line, now, l2);
                    self.inflight[i].state = state;
                    self.inflight[i].source = source;
                }
            }
        }
    }

    /// Translate `line`'s page on the demand path: the cycle at which the
    /// array/L2 access may start (`now` with no TLB or on a hit; a miss
    /// serializes the page walk before the access).
    fn translate_demand(&mut self, line: Addr, now: u64) -> u64 {
        match &mut self.tlb {
            Some(tlb) => tlb.translate(line, now),
            None => now,
        }
    }

    /// Probe L0 and L1 for `line` (the pre-buffer was already consulted);
    /// on a full miss, raise a demand request.  `at` is the cycle the
    /// access may start — `now`, pushed out by a TLB walk if one was
    /// needed.
    fn probe_storage(&mut self, line: Addr, at: u64, l2: &mut L2System) -> (LfState, FetchSource) {
        if let Some((l0, port)) = &mut self.l0 {
            if l0.lookup(line) {
                let ready = port.start(at);
                return (LfState::Ready(ready), FetchSource::L0);
            }
        }
        if self.l1.lookup(line) {
            let ready = self.l1_port.start(at);
            (LfState::Ready(ready), FetchSource::L1)
        } else {
            let tag_done = self.l1_port.start(at);
            let req = match l2.find_pending(line) {
                Some(r) => {
                    l2.upgrade(r, ReqClass::IFetch);
                    r
                }
                None => l2.submit(line, ReqClass::IFetch, tag_done),
            };
            self.routes.get_or_insert(req).demand = true;
            (LfState::WaitMem(req), FetchSource::L2)
        }
    }

    fn deliver(&mut self, now: u64, downstream_free: u32, out: &mut Vec<Delivery>) {
        let width = self.cfg.fetch_width.min(downstream_free);
        if width == 0 {
            return;
        }
        let Some(head) = self.inflight.front_mut() else {
            return;
        };
        let LfState::Ready(at) = head.state else {
            return;
        };
        if at > now {
            return;
        }
        let remaining = head.slot.n_insts - head.delivered;
        let n = remaining.min(width);
        let first_pc = head.slot.first_pc + head.delivered as u64 * INST_BYTES;
        head.delivered += n;
        let done = head.delivered == head.slot.n_insts;
        let delivery = Delivery {
            block_seq: head.slot.block_seq,
            first_pc,
            count: n,
            source: head.source,
            cycle: now,
            completes_block: done && head.slot.last_of_block,
        };
        // One batched counter update per delivery: the line count (first
        // delivery of the line only) and the instruction count land on the
        // same `SourceCount`, resolved once.
        let newly_counted = !head.counted;
        head.counted = true;
        {
            let stats = &mut self.stats;
            let c = match head.source {
                FetchSource::PreBuffer => &mut stats.fetch_pb,
                FetchSource::L0 => &mut stats.fetch_l0,
                FetchSource::L1 => &mut stats.fetch_l1,
                FetchSource::L2 => &mut stats.fetch_l2,
                FetchSource::Mem => &mut stats.fetch_mem,
            };
            c.lines += newly_counted as u64;
            c.insts += n as u64;
        }
        out.push(delivery);
        if done {
            let slot = head.slot;
            let source = head.source;
            self.inflight.pop_front();
            if source == FetchSource::PreBuffer {
                if let Some(pb) = &mut self.pb {
                    pb.consume(slot.line);
                    // Migration into the one-cycle reach — L0 when present
                    // (§3.1.1), else the L1 — is the mechanism's policy:
                    // FDP migrates, CLGP keeps buffer and caches disjoint.
                    // The fill carries the prefetch insertion class: these
                    // lines arrived speculatively, so the configured (or
                    // mechanism-chosen) policy may insert them at LRU or
                    // bypass the cache entirely.
                    if self.pf.migrate_used_lines() {
                        match &mut self.l0 {
                            Some((l0, _)) => {
                                l0.fill_with(slot.line, self.migrate_class);
                            }
                            None => {
                                self.l1.fill_with(slot.line, self.migrate_class);
                            }
                        }
                    }
                }
            }
        }
    }

    fn start_fetches(&mut self, now: u64, l2: &mut L2System) {
        while self.inflight.len() < self.cfg.max_inflight {
            // In-order fetch: a line waiting on memory (or on an in-flight
            // prestage fill) stalls the fetch engine; only ready hits may
            // overlap (which is what pipelined arrays exploit).  Without
            // this, the fetch unit itself would act as a 4-deep prefetcher
            // and mask the effect under study.
            if self
                .inflight
                .iter()
                .any(|lf| !matches!(lf.state, LfState::Ready(_)))
            {
                return;
            }
            let Some(slot) = self.queue.head_line() else {
                return;
            };
            let slot = *slot;
            let line = slot.line;

            // Parallel probe: pre-buffer and L0 are the fast sources.
            // Every arm that starts an access first translates the line's
            // page ([`translate_demand`](Self::translate_demand)): with no
            // TLB (or on a hit) the access starts at `now`, bit-identical
            // to the untranslated front-end; a miss serializes the page
            // walk ahead of the array/L2 access.
            let pb_state = self.pb.as_ref().map_or(PbLookup::Miss, |pb| pb.lookup(line));
            let (state, source) = match pb_state {
                PbLookup::Valid | PbLookup::Pending => {
                    // A CLTQ slot the prefetch scan never reached carries no
                    // consumers count yet: account it now so the entry is
                    // pinned while the fetch unit depends on it (delivery
                    // decrements it back).
                    if !slot.prefetched {
                        if let Some(pb) = &mut self.pb {
                            if pb.kind() == PbKind::Clgp {
                                pb.bump_consumers(line);
                            }
                        }
                    }
                    if pb_state == PbLookup::Valid {
                        let at = self.translate_demand(line, now);
                        let ready = self.pb_port.start(at);
                        (LfState::Ready(ready), FetchSource::PreBuffer)
                    } else {
                        (LfState::WaitPb, FetchSource::PreBuffer)
                    }
                }
                PbLookup::Miss => {
                    // A blocking (non-pipelined) L1 whose port is busy:
                    // leave L1-resident lines queued and retry next cycle
                    // rather than commit to a far-future access slot.
                    // (Checked before translating, so a retried line does
                    // not pay — or train — the TLB twice.)
                    if self.l1.contains(line)
                        && !self.cfg.l1_pipelined
                        && !self.l1_port.can_start(now)
                    {
                        return;
                    }
                    let at = self.translate_demand(line, now);
                    self.probe_storage(line, at, l2)
                }
            };
            self.queue.pop_head_line();
            // Observation hook: the mechanism sees the in-order fetch
            // stream (next-line triggers off it; MANA/program-map train
            // their tables and advance their stream expectations).
            self.pf.observe_fetch(&slot);
            self.inflight.push_back(LineFetch {
                slot,
                state,
                source,
                delivered: 0,
                counted: false,
            });
        }
    }

}
