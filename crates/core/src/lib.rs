//! # prestage-core
//!
//! The paper's primary contribution, as a reusable library: a decoupled
//! instruction fetch front-end whose prefetch path is an open mechanism
//! registry ([`prefetch::InstrPrefetcher`] behind [`PrefetcherKind`]):
//!
//! * **No prefetching** — the baseline (with optional L0 filter cache and
//!   optional pipelined L1).
//! * **FDP** — Fetch Directed Prefetching (Reinman, Calder, Austin,
//!   MICRO'99) with Enqueue Cache Probe Filtering, the strongest prior
//!   scheme the paper compares against (§3.1), including the L0 adaptation
//!   of §3.1.1.
//! * **CLGP** — Cache Line Guided Prestaging (§3.2): the fetch queue holds
//!   *cache lines* (CLTQ), every entry prefetches with **no filtering**,
//!   prestage-buffer entries carry a **consumers counter** that pins a line
//!   until its last queued use, fetched lines are **not** migrated into the
//!   I-cache, and the L1 is demoted to an *emergency cache* fed only by
//!   demand misses (mostly after branch mispredictions).
//! * **Next-N-line, MANA, program-map traversal** — the related-work
//!   comparison points (sequential prefetching; spatial-region
//!   record-and-replay per Ansari et al.; coarse region-successor
//!   traversal per Murthy & Sohi), each a [`prefetch`] mechanism riding
//!   the same pre-buffer and issue paths.
//!
//! The front-end is cycle-driven: the embedding simulator pushes predicted
//! fetch blocks in ([`FrontEnd::push_block`]), ticks it once per cycle with
//! access to the shared L2 system, and receives instruction deliveries
//! tagged with their block and fetch source.  All storage latencies come
//! from [`prestage_cacti`], so the same configuration reproduces both
//! technology nodes of the paper.

pub mod buffer;
pub mod config;
pub mod frontend;
pub mod prefetch;
pub mod queue;
pub mod stats;

pub use buffer::{PbKind, PbLookup, PreBuffer};
pub use config::{FrontendConfig, PrefetcherKind};
pub use prestage_cache::{ITlbConfig, InsertionPolicy, TlbCheckpoint, TlbStats};
pub use frontend::{Delivery, FetchSource, FrontEnd};
pub use prefetch::{
    prefetcher_state_bytes, ClgpPrefetcher, FdpPrefetcher, InstrPrefetcher, ManaPrefetcher,
    NextLinePrefetcher, NoPrefetcher, PrefetchCheckpoint, PrefetchView, ProgMapPrefetcher,
};
pub use queue::{FetchQueue, LineSlot, QueueKind};
pub use stats::{FrontStats, SourceCount};
