//! Pluggable instruction-prefetch mechanisms.
//!
//! The front-end used to hard-code a three-way branch (FDP / CLGP /
//! next-line) in its cycle loop; this module turns that into an open
//! mechanism registry.  Each mechanism implements [`InstrPrefetcher`]:
//!
//! * it **observes** the fetch stream ([`InstrPrefetcher::observe_fetch`]
//!   as the fetch unit accepts queue slots) and redirects
//!   ([`InstrPrefetcher::on_redirect`]), and owns the used-line migration
//!   policy ([`InstrPrefetcher::migrate_used_lines`]);
//! * it **emits prefetch requests** once per cycle through
//!   [`InstrPrefetcher::tick`], using the [`PrefetchView`] the front-end
//!   lends it (queue scan, pre-buffer allocation, L1 probe/copy ports, L2
//!   requests);
//! * its speculative training state is **checkpointed/restored** around
//!   wrong-path excursions ([`InstrPrefetcher::checkpoint`] /
//!   [`InstrPrefetcher::restore`]) and its counters reset at the warm-up
//!   boundary ([`InstrPrefetcher::reset_stats`]).
//!
//! The registry is *monomorphic*: [`InstrPrefetcher::from_config`] is the
//! per-type constructor, and the engine in `prestage-sim` dispatches on
//! [`PrefetcherKind`] exactly once — at construction — instantiating a
//! generic front-end per mechanism type, so the per-cycle hooks are
//! static (inlinable) calls rather than virtual ones.  [`NoPrefetcher`]
//! is the zero-sized no-prefetch baseline.  The paper's FDP (§3.1) and
//! CLGP (§3.2) engines and the related-work next-N-line scheme are ports
//! of the previous inlined code (bit-exact — the conformance suites hold
//! them to the old behaviour); [`ManaPrefetcher`] and
//! [`ProgMapPrefetcher`] are the new record-and-replay comparisons named
//! in the ROADMAP.

use crate::buffer::{PbLookup, PreBuffer};
use crate::config::{FrontendConfig, PrefetcherKind};
use crate::frontend::RouteTable;
use crate::queue::{FetchQueue, LineSlot};
use crate::stats::FrontStats;
use prestage_cache::{ArrayPort, ITlb, InsertionPolicy, L2System, ReqClass, ReqId, SetAssocCache};
use prestage_isa::Addr;
use std::collections::VecDeque;

/// Upper bound on any mechanism's internal request queue that is not
/// already bounded by `piq_entries` (MANA region expansions, program-map
/// traversals).  A hardware MSHR-file-sized structure, not a software
/// convenience.
pub const PREFETCH_QUEUE_CAP: usize = 32;

/// Opaque snapshot of a mechanism's *speculative* state (training cursors,
/// stream expectations) — the state that must be repaired when a branch
/// misprediction unwinds the fetch stream the mechanism observed.
/// Architectural tables (MANA records, the program map) are not part of
/// it, mirroring how the stream predictor checkpoints history + RAS but
/// not its tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefetchCheckpoint(Vec<u64>);

/// The slice of front-end state a mechanism may touch during its tick:
/// the decoupling queue (scan + `prefetched` bits), the pre-buffer, the
/// cache directories for probe filtering, and the shared issue paths
/// (synthetic L1 copies, prefetch-class L2 requests).
pub struct PrefetchView<'a> {
    pub cfg: &'a FrontendConfig,
    pub queue: &'a mut FetchQueue,
    pub pb: Option<&'a mut PreBuffer>,
    pub l1: &'a mut SetAssocCache,
    pub l0: Option<&'a mut SetAssocCache>,
    pub(crate) l1_copy_port: &'a mut ArrayPort,
    pub(crate) l1_copies: &'a mut Vec<(u64, ReqId)>,
    pub(crate) routes: &'a mut RouteTable,
    pub(crate) next_synth: &'a mut u64,
    pub(crate) tlb: Option<&'a mut ITlb>,
    pub stats: &'a mut FrontStats,
}

impl PrefetchView<'_> {
    /// Translate `line`'s page through the i-TLB on the prefetch path:
    /// the cycle at which the copy/L2 access may start.  With no TLB this
    /// is `now`; a miss pays the page walk *and installs the translation*
    /// — prefetchers both suffer and cause i-TLB traffic, which is the
    /// pollution-vs-warmth trade Jamet et al. study.
    fn translate(&mut self, line: Addr, now: u64) -> u64 {
        match &mut self.tlb {
            Some(tlb) => tlb.translate(line, now),
            None => now,
        }
    }

    /// Side-effect-free i-TLB presence probe: `None` when translation is
    /// unmodeled, else whether `line`'s page would hit.  A mechanism can
    /// use this to *probe around* walks — skip (or deprioritize) candidate
    /// lines whose translation is cold instead of paying `miss_cycles`.
    pub fn tlb_probe(&self, line: Addr) -> Option<bool> {
        self.tlb.as_ref().map(|t| t.probe(line))
    }

    /// Allocate `line` in the pre-buffer and fill it by copying out of the
    /// L1 over the replicated-tag copy port (§3.1's "additional tag port"
    /// extended to data).  Caller has verified the pre-buffer exists, the
    /// line is absent from it, allocation can succeed, and the line is
    /// L1-resident.
    pub fn copy_from_l1(&mut self, line: Addr, now: u64) {
        let at = self.translate(line, now);
        let pb = self.pb.as_deref_mut().expect("copy requires a pre-buffer");
        let done = self.l1_copy_port.start(at);
        let id = ReqId(*self.next_synth);
        *self.next_synth += 1;
        pb.allocate(line, id);
        self.l1_copies.push((done, id));
        self.stats.prefetch_from_l1 += 1;
        self.stats.prefetches_issued += 1;
    }

    /// Allocate `line` in the pre-buffer and raise (or piggy-back on) a
    /// prefetch-class request to the L2 system.  Caller has verified the
    /// pre-buffer exists, the line is absent from it, and allocation can
    /// succeed.  The line's page translates first: a cold translation
    /// delays the L2 submission by the page-walk latency.
    pub fn request_from_l2(&mut self, line: Addr, now: u64, l2: &mut L2System) {
        let at = self.translate(line, now);
        let pb = self.pb.as_deref_mut().expect("prefetch requires a pre-buffer");
        let req = match l2.find_pending(line) {
            Some(r) => r,
            None => l2.submit(line, ReqClass::Prefetch, at),
        };
        pb.allocate(line, req);
        self.routes.get_or_insert(req).pb_fill = true;
        self.stats.prefetches_issued += 1;
    }
}

/// A pluggable instruction-prefetch mechanism driving the shared
/// pre-buffer.  One instance lives inside each
/// [`FrontEnd`](crate::FrontEnd); the front-end calls the hooks, the
/// mechanism owns its tables and queues.
pub trait InstrPrefetcher: std::fmt::Debug {
    /// Which registry entry built this mechanism.
    fn kind(&self) -> PrefetcherKind;

    /// Build the mechanism for `cfg` — the monomorphic registry hook.
    /// The caller (the engine's per-[`PrefetcherKind`] dispatch) has
    /// already matched `cfg.prefetcher` to this type and validated `cfg`.
    fn from_config(cfg: &FrontendConfig) -> Self
    where
        Self: Sized;

    /// One cycle of prefetch work: scan whatever the mechanism scans and
    /// emit at most a port-limited number of requests through `fe`.
    fn tick(&mut self, now: u64, fe: &mut PrefetchView<'_>, l2: &mut L2System);

    /// The fetch unit accepted `slot` from the decoupling queue — the
    /// in-order (speculative, wrong-path-included) fetch stream every
    /// history-based mechanism trains on.
    fn observe_fetch(&mut self, slot: &LineSlot) {
        let _ = slot;
    }

    /// Whether a pre-buffer line the fetch unit just used should migrate
    /// into the one-cycle reach (L0 when present, else the L1).  FDP's
    /// §3.1.1 policy and the default; CLGP overrides it (no duplication —
    /// §3.2.3), as may any mechanism that copies L1-resident lines into
    /// the buffer and does not want them filled straight back.
    fn migrate_used_lines(&self) -> bool {
        true
    }

    /// How the mechanism's migrated (prefetch-class) lines insert into the
    /// L0/L1 replacement order — the `migrate_used_lines`-style policy
    /// hook behind [`FillClass::Prefetch`](prestage_cache::FillClass).
    /// MRU (demand-identical, the historical behavior) for every current
    /// mechanism; a confidence-tracking mechanism may return
    /// [`InsertionPolicy::Lru`] or [`InsertionPolicy::Bypass`] to keep
    /// speculative lines from displacing demand-hot ones.  The
    /// `FrontendConfig::insertion` knob overrides this per experiment.
    fn prefetch_insertion(&self) -> InsertionPolicy {
        InsertionPolicy::Mru
    }

    /// A branch-misprediction redirect reached the front-end: drop
    /// in-flight request queues and stale stream expectations.
    fn on_redirect(&mut self) {}

    /// Snapshot speculative training state (taken when the engine detects
    /// a divergence, i.e. before any wrong-path fetch is observed).
    fn checkpoint(&self) -> PrefetchCheckpoint {
        PrefetchCheckpoint::default()
    }

    /// Reinstall a [`checkpoint`](Self::checkpoint) (after the redirect
    /// flush), so wrong-path observations do not corrupt the mechanism's
    /// speculative cursors.
    fn restore(&mut self, cp: &PrefetchCheckpoint) {
        let _ = cp;
    }

    /// End of warm-up: clear measurement-only counters, keep warm tables.
    fn reset_stats(&mut self) {}

    /// Mechanism-private metadata storage in bytes (tables, queues,
    /// pointers — everything beyond the shared pre-buffer), for the CACTI
    /// area/energy accounting of the hardware-budget comparisons.
    fn state_bytes(&self) -> usize {
        0
    }
}

/// The no-prefetch baseline: a zero-sized mechanism whose hooks compile
/// to nothing.  A `FrontEnd<NoPrefetcher>` is exactly the pre-registry
/// prefetcher-less front-end — no pre-buffer traffic, no migration of
/// pre-buffer lines (there are none), no speculative state.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetcher;

impl InstrPrefetcher for NoPrefetcher {
    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::None
    }

    fn from_config(_cfg: &FrontendConfig) -> Self {
        NoPrefetcher
    }

    fn tick(&mut self, _now: u64, _fe: &mut PrefetchView<'_>, _l2: &mut L2System) {}

    fn migrate_used_lines(&self) -> bool {
        // Nothing ever enters the pre-buffer, so nothing migrates out.
        false
    }
}

/// Metadata storage the mechanism for `cfg` would use, without building it
/// — the sizing input for CACTI area/energy columns.
pub fn prefetcher_state_bytes(cfg: &FrontendConfig) -> usize {
    match cfg.prefetcher {
        PrefetcherKind::None => 0,
        // PIQ of line addresses.
        PrefetcherKind::Fdp | PrefetcherKind::NextLine => cfg.piq_entries * 8,
        // CLGP's bookkeeping (prefetched bits, consumers counters) lives in
        // the shared CLTQ and pre-buffer, both already accounted.
        PrefetcherKind::Clgp => 0,
        PrefetcherKind::Mana => {
            // Per record: trigger tag (4 B) + successor pointer (4 B) +
            // valid/replacement (1 B) + the spatial bitmap.
            let bitmap_bytes = (cfg.mana_region_lines as usize - 1).div_ceil(8);
            cfg.mana_entries * (9 + bitmap_bytes)
                + cfg.mana_sab_entries * 8
                + PREFETCH_QUEUE_CAP * 8
        }
        // Per map entry: region tag (4 B) + successor region (4 B).
        PrefetcherKind::ProgMap => cfg.progmap_entries * 8 + PREFETCH_QUEUE_CAP * 8,
    }
}

/// Issue the head of a mechanism-private request queue through the shared
/// pre-buffer path: drop it if already buffered (or one cycle away in the
/// L0), stall on a full buffer, serve L1-resident lines by copy (a
/// one-cycle buffer hit beats the multi-cycle L1 hit — CLGP's insight,
/// shared by both record-and-replay mechanisms), and otherwise raise an
/// L2 prefetch.  One request per call — the single prefetch port every
/// mechanism shares.
fn issue_queue_head(
    reqq: &mut VecDeque<Addr>,
    now: u64,
    fe: &mut PrefetchView<'_>,
    l2: &mut L2System,
) {
    let Some(&line) = reqq.front() else { return };
    let Some(pb) = fe.pb.as_deref_mut() else { return };
    if pb.lookup(line) != PbLookup::Miss {
        fe.stats.prefetch_from_pb += 1;
        reqq.pop_front();
        return;
    }
    if let Some(l0) = fe.l0.as_deref_mut() {
        if l0.probe(line) {
            fe.stats.prefetch_from_pb += 1;
            reqq.pop_front();
            return;
        }
    }
    let Some(pb) = fe.pb.as_deref_mut() else { return };
    if !pb.can_allocate() {
        fe.stats.pb_alloc_stalls += 1;
        return;
    }
    if fe.l1.probe(line) {
        fe.copy_from_l1(line, now);
    } else {
        fe.request_from_l2(line, now, l2);
    }
    reqq.pop_front();
}

/// Push `line` into a capped, duplicate-free request queue.
fn enqueue(reqq: &mut VecDeque<Addr>, line: Addr) {
    if reqq.len() < PREFETCH_QUEUE_CAP && !reqq.contains(&line) {
        reqq.push_back(line);
    }
}

// ---------------------------------------------------------------------------
// FDP (§3.1) — port of the previous inlined engine, bit-exact.
// ---------------------------------------------------------------------------

/// Fetch Directed Prefetching with Enqueue Cache Probe Filtering: scans
/// the FTQ through the probe filter into a PIQ, issues one prefetch per
/// cycle from its head.
#[derive(Debug)]
pub struct FdpPrefetcher {
    piq: VecDeque<Addr>,
    piq_entries: usize,
}

impl FdpPrefetcher {
    pub fn new(cfg: &FrontendConfig) -> Self {
        FdpPrefetcher {
            piq: VecDeque::new(),
            piq_entries: cfg.piq_entries,
        }
    }
}

impl InstrPrefetcher for FdpPrefetcher {
    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Fdp
    }

    fn from_config(cfg: &FrontendConfig) -> Self {
        FdpPrefetcher::new(cfg)
    }

    fn tick(&mut self, now: u64, fe: &mut PrefetchView<'_>, l2: &mut L2System) {
        // Enqueue phase: process up to two queue slots through the probe
        // filter (the "additional tag port / replicated tags").
        for _ in 0..2 {
            if self.piq.len() >= self.piq_entries {
                break;
            }
            let Some(pb) = fe.pb.as_deref_mut() else { break };
            let Some(slot) = fe.queue.first_unprefetched() else {
                break;
            };
            let line = slot.line;
            slot.prefetched = true;
            if pb.lookup(line) != PbLookup::Miss || self.piq.contains(&line) {
                fe.stats.prefetch_from_pb += 1;
                continue;
            }
            // Enqueue Cache Probe Filtering: no prefetch is done if the
            // line is already in the L1 (or the L0 when present) — the
            // paper's §5.2.  This is exactly FDP's weakness against CLGP:
            // L1-resident lines keep paying the multi-cycle hit.
            if let Some(l0) = fe.l0.as_deref_mut() {
                if l0.probe(line) {
                    fe.stats.filtered += 1;
                    fe.stats.prefetch_from_pb += 1;
                    continue;
                }
            }
            if fe.l1.probe(line) {
                fe.stats.filtered += 1;
                fe.stats.prefetch_from_l1 += 1;
                continue;
            }
            self.piq.push_back(line);
        }

        // Issue phase: one prefetch per cycle from the PIQ head.
        let Some(&line) = self.piq.front() else { return };
        let Some(pb) = fe.pb.as_deref_mut() else { return };
        if pb.lookup(line) != PbLookup::Miss {
            // Raced with a demand fill or duplicate: drop it.
            self.piq.pop_front();
            return;
        }
        if !pb.can_allocate() {
            fe.stats.pb_alloc_stalls += 1;
            return;
        }
        // §3.1.1: with an L0 the prefetch request is served by the L1
        // when the line is (rarely, post-filter) found there; otherwise —
        // and always in base FDP — by the L2 hierarchy.
        if fe.l0.is_some() && fe.l1.probe(line) {
            fe.copy_from_l1(line, now);
        } else {
            fe.request_from_l2(line, now, l2);
        }
        self.piq.pop_front();
    }

    fn on_redirect(&mut self) {
        self.piq.clear();
    }

    fn state_bytes(&self) -> usize {
        self.piq_entries * 8
    }
}

// ---------------------------------------------------------------------------
// Next-N-line (related work §2.1) — port of the previous inlined engine.
// ---------------------------------------------------------------------------

/// Sequential prefetching: every demand line fetch enqueues the next
/// `nlp_degree` lines; one queued candidate issues per cycle through the
/// same probe filter and buffer as FDP.
#[derive(Debug)]
pub struct NextLinePrefetcher {
    piq: VecDeque<Addr>,
    piq_entries: usize,
    degree: u32,
    line_bytes: u64,
}

impl NextLinePrefetcher {
    pub fn new(cfg: &FrontendConfig) -> Self {
        NextLinePrefetcher {
            piq: VecDeque::new(),
            piq_entries: cfg.piq_entries,
            degree: cfg.nlp_degree,
            line_bytes: cfg.line_bytes,
        }
    }
}

impl InstrPrefetcher for NextLinePrefetcher {
    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::NextLine
    }

    fn from_config(cfg: &FrontendConfig) -> Self {
        NextLinePrefetcher::new(cfg)
    }

    fn observe_fetch(&mut self, slot: &LineSlot) {
        // Next-N-line prefetching triggers off every demand line fetch.
        for k in 1..=self.degree as u64 {
            let next = slot.line + k * self.line_bytes;
            if self.piq.len() < self.piq_entries && !self.piq.contains(&next) {
                self.piq.push_back(next);
            }
        }
    }

    fn tick(&mut self, now: u64, fe: &mut PrefetchView<'_>, l2: &mut L2System) {
        let Some(&line) = self.piq.front() else { return };
        let Some(pb) = fe.pb.as_deref_mut() else { return };
        if pb.lookup(line) != PbLookup::Miss || fe.l1.probe(line) {
            fe.stats.filtered += 1;
            self.piq.pop_front();
            return;
        }
        let Some(pb) = fe.pb.as_deref_mut() else { return };
        if !pb.can_allocate() {
            fe.stats.pb_alloc_stalls += 1;
            return;
        }
        fe.request_from_l2(line, now, l2);
        self.piq.pop_front();
    }

    fn on_redirect(&mut self) {
        self.piq.clear();
    }

    fn state_bytes(&self) -> usize {
        self.piq_entries * 8
    }
}

// ---------------------------------------------------------------------------
// CLGP (§3.2) — port of the previous inlined engine, bit-exact.
// ---------------------------------------------------------------------------

/// Cache Line Guided Prestaging: scans CLTQ entries with **no filtering**
/// (a prestage hit is cheaper than a multi-cycle L1 hit), pinning lines
/// with consumers counters; at most one real prefetch per cycle.
#[derive(Debug)]
pub struct ClgpPrefetcher {
    /// True under the migration *or* free-on-use ablations: the first
    /// re-enables FDP's policy outright, the second frees the entry on
    /// use, after which not migrating would simply lose the line.
    migrate: bool,
}

impl ClgpPrefetcher {
    pub fn new(cfg: &FrontendConfig) -> Self {
        ClgpPrefetcher {
            migrate: cfg.ablate_migrate || cfg.ablate_free_on_use,
        }
    }
}

impl InstrPrefetcher for ClgpPrefetcher {
    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Clgp
    }

    fn from_config(cfg: &FrontendConfig) -> Self {
        ClgpPrefetcher::new(cfg)
    }

    fn migrate_used_lines(&self) -> bool {
        // §3.2.3: evicted prestage lines are simply dropped, so pre-buffer
        // and emergency-cache contents never duplicate (unless ablated).
        self.migrate
    }

    fn tick(&mut self, now: u64, fe: &mut PrefetchView<'_>, l2: &mut L2System) {
        // Scan up to four CLTQ entries; issue at most one real prefetch.
        // No filtering: lines are brought to the prestage buffer even when
        // they sit in the L1, because a prestage hit is cheaper than a
        // multi-cycle L1 hit.
        for _ in 0..4 {
            let Some(pb) = fe.pb.as_deref_mut() else { return };
            let Some(slot) = fe.queue.first_unprefetched() else {
                return;
            };
            let line = slot.line;
            if pb.lookup(line) != PbLookup::Miss {
                // Already prestaged (or arriving): extend its lifetime.
                pb.bump_consumers(line);
                slot.prefetched = true;
                fe.stats.prefetch_from_pb += 1;
                fe.stats.consumer_bumps += 1;
                continue;
            }
            // A line already one cycle away in the L0 needs no prestaging.
            if let Some(l0) = fe.l0.as_deref_mut() {
                if l0.probe(line) {
                    slot.prefetched = true;
                    fe.stats.prefetch_from_pb += 1;
                    continue;
                }
            }
            if !pb.can_allocate() {
                // Head-of-line stall: every entry is pinned by consumers.
                fe.stats.pb_alloc_stalls += 1;
                return;
            }
            slot.prefetched = true;
            if fe.cfg.ablate_filter && fe.l1.probe(line) {
                // Ablated CLGP: behave like FDP's filter — leave the line
                // to the multi-cycle L1.
                fe.stats.filtered += 1;
                fe.stats.prefetch_from_l1 += 1;
                continue;
            }
            if fe.l1.probe(line) {
                fe.copy_from_l1(line, now);
            } else {
                fe.request_from_l2(line, now, l2);
            }
            return; // one real prefetch per cycle
        }
    }
}

// ---------------------------------------------------------------------------
// MANA (Ansari et al.) — spatial-region records chased by a stream buffer.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default)]
struct ManaRecord {
    valid: bool,
    /// Trigger line number (line address >> line shift).
    trigger: u64,
    /// Spatial footprint: bit `k` set means line `trigger + 1 + k` was
    /// fetched within the region while this record was open.
    bitmap: u32,
    /// Trigger of the successor record (the chain pointer).
    next: u64,
    lru: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct SabEntry {
    valid: bool,
    /// Next trigger line this stream expects the fetch unit to reach.
    expected: u64,
    lru: u64,
}

/// MANA: a set-associative table of spatial-region records keyed by
/// trigger line, each carrying a footprint bitmap and a successor
/// pointer; a small stream address buffer (SAB) tracks the active record
/// chains and chases them `mana_degree` records ahead of fetch,
/// prestaging each record's footprint into the pre-buffer (L1-resident
/// lines are copied over, CLGP-style — a buffer hit is cheaper than a
/// multi-cycle L1 hit).
#[derive(Debug)]
pub struct ManaPrefetcher {
    sets: usize,
    assoc: usize,
    table: Vec<ManaRecord>,
    sab: Vec<SabEntry>,
    /// Record under construction: (trigger line, footprint bitmap).
    cur: Option<(u64, u32)>,
    last_line: Option<u64>,
    reqq: VecDeque<Addr>,
    tick: u64,
    region_lines: u32,
    degree: u32,
    line_shift: u32,
}

impl ManaPrefetcher {
    pub fn new(cfg: &FrontendConfig) -> Self {
        let assoc = cfg.mana_entries.min(4);
        ManaPrefetcher {
            sets: cfg.mana_entries / assoc,
            assoc,
            table: vec![ManaRecord::default(); cfg.mana_entries],
            sab: vec![SabEntry::default(); cfg.mana_sab_entries],
            cur: None,
            last_line: None,
            reqq: VecDeque::new(),
            tick: 0,
            region_lines: cfg.mana_region_lines,
            degree: cfg.mana_degree,
            line_shift: cfg.line_bytes.trailing_zeros(),
        }
    }

    fn stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn ways(&self, trigger: u64) -> std::ops::Range<usize> {
        let set = (trigger as usize) & (self.sets - 1);
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Look up the record for `trigger`, refreshing its recency.
    fn lookup(&mut self, trigger: u64) -> Option<ManaRecord> {
        let ways = self.ways(trigger);
        let stamp = self.stamp();
        let e = self.table[ways]
            .iter_mut()
            .find(|e| e.valid && e.trigger == trigger)?;
        e.lru = stamp;
        Some(*e)
    }

    fn contains(&self, trigger: u64) -> bool {
        let ways = self.ways(trigger);
        self.table[ways].iter().any(|e| e.valid && e.trigger == trigger)
    }

    /// Install (or update) the record for `trigger`.
    fn insert(&mut self, trigger: u64, bitmap: u32, next: u64) {
        let ways = self.ways(trigger);
        let stamp = self.stamp();
        let slots = &mut self.table[ways];
        let way = slots
            .iter()
            .position(|e| e.valid && e.trigger == trigger)
            .or_else(|| slots.iter().position(|e| !e.valid))
            .unwrap_or_else(|| {
                slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.lru)
                    .map(|(i, _)| i)
                    .expect("assoc >= 1")
            });
        slots[way] = ManaRecord {
            valid: true,
            trigger,
            bitmap,
            next,
            lru: stamp,
        };
    }

    /// Enqueue a record's spatial footprint (without the trigger itself —
    /// the caller prefetches or is already fetching it).
    fn enqueue_footprint(&mut self, trigger: u64, bitmap: u32) {
        for k in 0..self.region_lines.saturating_sub(1) {
            if bitmap & (1 << k) != 0 {
                enqueue(&mut self.reqq, (trigger + 1 + k as u64) << self.line_shift);
            }
        }
    }

    /// Chase the record chain from `from`, loading SAB entry `i` with the
    /// expectation of where the chain leads.
    fn chase(&mut self, i: usize, from: u64) {
        let mut cur = from;
        // The stream advances when fetch reaches the record *after* the
        // one just consumed — the successor seen on the first chain step
        // (when `from` has no record yet, keep expecting `from` itself so
        // the stream re-anchors once a record is learned for it).
        let mut expected = from;
        for step in 0..self.degree.max(1) {
            let Some(rec) = self.lookup(cur) else {
                // Chain ran off the table.
                break;
            };
            if step == 0 {
                expected = rec.next;
            } else {
                // Later records' triggers are real prefetch candidates
                // (the first trigger is the line being fetched right now).
                enqueue(&mut self.reqq, cur << self.line_shift);
            }
            self.enqueue_footprint(cur, rec.bitmap);
            cur = rec.next;
        }
        let stamp = self.stamp();
        self.sab[i] = SabEntry {
            valid: true,
            expected,
            lru: stamp,
        };
    }

    fn sab_slot(&mut self) -> usize {
        self.sab
            .iter()
            .position(|e| !e.valid)
            .unwrap_or_else(|| {
                self.sab
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.lru)
                    .map(|(i, _)| i)
                    .expect("sab_entries >= 1")
            })
    }
}

impl InstrPrefetcher for ManaPrefetcher {
    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Mana
    }

    fn from_config(cfg: &FrontendConfig) -> Self {
        ManaPrefetcher::new(cfg)
    }

    fn observe_fetch(&mut self, slot: &LineSlot) {
        let ln = slot.line >> self.line_shift;
        if self.last_line == Some(ln) {
            return;
        }
        // Train: extend the open record while the fetch stays in its
        // region; leaving the region commits the record with the new
        // trigger as its successor and opens the next one.
        match self.cur {
            None => self.cur = Some((ln, 0)),
            Some((t, bm)) => {
                if ln > t && ln - t < self.region_lines as u64 {
                    self.cur = Some((t, bm | 1 << (ln - t - 1)));
                } else {
                    self.insert(t, bm, ln);
                    self.cur = Some((ln, 0));
                }
            }
        }
        // Replay: advance the stream that expected this trigger, or spin
        // up a new one when the table knows this line as a trigger.
        if let Some(i) = self.sab.iter().position(|e| e.valid && e.expected == ln) {
            self.chase(i, ln);
        } else if self.contains(ln) {
            let i = self.sab_slot();
            self.chase(i, ln);
        }
        self.last_line = Some(ln);
    }

    fn tick(&mut self, now: u64, fe: &mut PrefetchView<'_>, l2: &mut L2System) {
        issue_queue_head(&mut self.reqq, now, fe, l2);
    }

    fn on_redirect(&mut self) {
        self.reqq.clear();
        self.cur = None;
        self.last_line = None;
        for e in &mut self.sab {
            e.valid = false;
        }
    }

    fn checkpoint(&self) -> PrefetchCheckpoint {
        let mut v = Vec::with_capacity(5 + 3 * self.sab.len());
        match self.cur {
            Some((t, bm)) => v.extend([1, t, bm as u64]),
            None => v.extend([0, 0, 0]),
        }
        match self.last_line {
            Some(ln) => v.extend([1, ln]),
            None => v.extend([0, 0]),
        }
        for e in &self.sab {
            v.extend([e.valid as u64, e.expected, e.lru]);
        }
        PrefetchCheckpoint(v)
    }

    fn restore(&mut self, cp: &PrefetchCheckpoint) {
        let v = &cp.0;
        debug_assert_eq!(v.len(), 5 + 3 * self.sab.len());
        self.cur = (v[0] == 1).then(|| {
            // Word 2 was written from a u32 (`bm as u64` in `checkpoint`).
            let Ok(bm) = u32::try_from(v[2]) else {
                unreachable!("checkpoint footprint-bitmap word {:#x} overflows u32", v[2])
            };
            (v[1], bm)
        });
        self.last_line = (v[3] == 1).then_some(v[4]);
        for (i, e) in self.sab.iter_mut().enumerate() {
            e.valid = v[5 + 3 * i] == 1;
            e.expected = v[6 + 3 * i];
            e.lru = v[7 + 3 * i];
        }
        self.reqq.clear();
    }

    fn state_bytes(&self) -> usize {
        let bitmap_bytes = (self.region_lines as usize - 1).div_ceil(8);
        self.table.len() * (9 + bitmap_bytes) + self.sab.len() * 8 + PREFETCH_QUEUE_CAP * 8
    }
}

// ---------------------------------------------------------------------------
// Program-map traversal (Murthy & Sohi) — coarse next-region prediction.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default)]
struct MapEntry {
    valid: bool,
    /// Region number this entry describes (the direct-mapped tag).
    region: u64,
    /// Learned successor region.
    next: u64,
}

/// High-level program-map traversal: a direct-mapped region-successor map
/// over the dynamic block graph.  Entering a new `progmap_region_bytes`
/// region records the transition and walks the map `progmap_degree`
/// regions ahead, enqueueing every line of each predicted region.  Like
/// MANA (and CLGP), L1-resident lines are copied into the pre-buffer
/// rather than filtered — on instruction footprints whose hot regions fit
/// the L1, an FDP-style filter would drop every candidate and the
/// traversal would never hide the multi-cycle L1 hit it exists to hide.
#[derive(Debug)]
pub struct ProgMapPrefetcher {
    map: Vec<MapEntry>,
    last_region: Option<u64>,
    reqq: VecDeque<Addr>,
    region_shift: u32,
    lines_per_region: u64,
    line_bytes: u64,
    degree: u32,
}

impl ProgMapPrefetcher {
    pub fn new(cfg: &FrontendConfig) -> Self {
        ProgMapPrefetcher {
            map: vec![MapEntry::default(); cfg.progmap_entries],
            last_region: None,
            reqq: VecDeque::new(),
            region_shift: cfg.progmap_region_bytes.trailing_zeros(),
            lines_per_region: cfg.progmap_region_bytes / cfg.line_bytes,
            line_bytes: cfg.line_bytes,
            degree: cfg.progmap_degree,
        }
    }

    fn idx(&self, region: u64) -> usize {
        (region as usize) & (self.map.len() - 1)
    }
}

impl InstrPrefetcher for ProgMapPrefetcher {
    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::ProgMap
    }

    fn from_config(cfg: &FrontendConfig) -> Self {
        ProgMapPrefetcher::new(cfg)
    }

    fn observe_fetch(&mut self, slot: &LineSlot) {
        let region = slot.line >> self.region_shift;
        if self.last_region == Some(region) {
            return;
        }
        // Record the observed transition (last write wins: the map tracks
        // the current dominant control flow, not a history).
        if let Some(last) = self.last_region {
            let i = self.idx(last);
            self.map[i] = MapEntry {
                valid: true,
                region: last,
                next: region,
            };
        }
        // Traverse ahead: enqueue every line of the next learned regions.
        let mut r = region;
        for _ in 0..self.degree {
            let e = self.map[self.idx(r)];
            if !e.valid || e.region != r || e.next == region {
                break;
            }
            let base = e.next << self.region_shift;
            for k in 0..self.lines_per_region {
                enqueue(&mut self.reqq, base + k * self.line_bytes);
            }
            r = e.next;
        }
        self.last_region = Some(region);
    }

    fn tick(&mut self, now: u64, fe: &mut PrefetchView<'_>, l2: &mut L2System) {
        issue_queue_head(&mut self.reqq, now, fe, l2);
    }

    fn on_redirect(&mut self) {
        self.reqq.clear();
        self.last_region = None;
    }

    fn checkpoint(&self) -> PrefetchCheckpoint {
        PrefetchCheckpoint(match self.last_region {
            Some(r) => vec![1, r],
            None => vec![0, 0],
        })
    }

    fn restore(&mut self, cp: &PrefetchCheckpoint) {
        debug_assert_eq!(cp.0.len(), 2);
        self.last_region = (cp.0[0] == 1).then_some(cp.0[1]);
        self.reqq.clear();
    }

    fn state_bytes(&self) -> usize {
        self.map.len() * 8 + PREFETCH_QUEUE_CAP * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(line: Addr) -> LineSlot {
        LineSlot {
            block_seq: 0,
            line,
            first_pc: line,
            n_insts: 16,
            prefetched: false,
            last_of_block: true,
        }
    }

    fn mana_cfg() -> FrontendConfig {
        let mut cfg = FrontendConfig::base(prestage_cacti::TechNode::T045, 4 << 10);
        cfg.prefetcher = PrefetcherKind::Mana;
        cfg.pb_entries = 4;
        cfg
    }

    #[test]
    fn mana_learns_records_and_chases_them() {
        let mut m = ManaPrefetcher::new(&mana_cfg());
        // First pass over a loop body: trigger 0x100, touches +1 and +3,
        // then jumps to trigger 0x200.
        for ln in [0x100u64, 0x101, 0x103, 0x200, 0x201, 0x100] {
            m.observe_fetch(&slot(ln << 6));
        }
        // Region record for 0x100 committed when fetch left for 0x200.
        let rec = m.lookup(0x100).expect("record learned");
        assert_eq!(rec.bitmap, 0b101, "footprint bits for +1 and +3");
        assert_eq!(rec.next, 0x200);
        // The second visit to 0x100 hit the table and chased the chain:
        // the footprint lines (and the successor record's) are queued.
        assert!(
            m.reqq.contains(&(0x101 << 6)) && m.reqq.contains(&(0x103 << 6)),
            "footprint queued: {:?}",
            m.reqq
        );
        assert!(
            m.reqq.contains(&(0x200 << 6)),
            "chained successor trigger queued: {:?}",
            m.reqq
        );
    }

    #[test]
    fn mana_checkpoint_round_trips_speculative_state() {
        let mut m = ManaPrefetcher::new(&mana_cfg());
        for ln in [0x10u64, 0x11, 0x40, 0x10] {
            m.observe_fetch(&slot(ln << 6));
        }
        let cp = m.checkpoint();
        let (cur, last) = (m.cur, m.last_line);
        let sab: Vec<(bool, u64)> = m.sab.iter().map(|e| (e.valid, e.expected)).collect();
        // Wrong path: observe garbage, then restore.
        for ln in [0x900u64, 0x905, 0x77] {
            m.observe_fetch(&slot(ln << 6));
        }
        assert_ne!(m.last_line, last);
        m.on_redirect();
        m.restore(&cp);
        assert_eq!(m.cur, cur);
        assert_eq!(m.last_line, last);
        let sab2: Vec<(bool, u64)> = m.sab.iter().map(|e| (e.valid, e.expected)).collect();
        assert_eq!(sab2, sab);
        assert!(m.reqq.is_empty(), "restore must not resurrect queued requests");
    }

    #[test]
    fn progmap_learns_region_transitions_and_traverses() {
        let mut cfg = FrontendConfig::base(prestage_cacti::TechNode::T045, 4 << 10);
        cfg.prefetcher = PrefetcherKind::ProgMap;
        cfg.pb_entries = 4;
        let mut p = ProgMapPrefetcher::new(&cfg);
        // Regions are 256 B = 4 lines.  Walk A(0x1000) → B(0x2000) →
        // C(0x3000), then return to A: the map now chains A→B→C.
        for pc in [0x1000u64, 0x2000, 0x3000, 0x1000] {
            p.observe_fetch(&slot(pc));
        }
        // Re-entering A traverses: all 4 lines of B and (degree 2) of C.
        for k in 0..4u64 {
            assert!(p.reqq.contains(&(0x2000 + k * 64)), "B line {k}: {:?}", p.reqq);
            assert!(p.reqq.contains(&(0x3000 + k * 64)), "C line {k}: {:?}", p.reqq);
        }
        // Same-region refetches are not transitions.
        let before = p.reqq.len();
        p.observe_fetch(&slot(0x1040));
        assert_eq!(p.reqq.len(), before);
    }

    #[test]
    fn registry_builds_every_kind_and_sizes_it() {
        for kind in PrefetcherKind::all() {
            let mut cfg = FrontendConfig::base(prestage_cacti::TechNode::T090, 4 << 10);
            cfg.prefetcher = kind;
            cfg.pb_entries = 8;
            // The trait stays object-safe even though dispatch is now
            // monomorphic: box each mechanism through `from_config` the way
            // the engine instantiates it.
            let pf: Box<dyn InstrPrefetcher> = match kind {
                PrefetcherKind::None => Box::new(NoPrefetcher::from_config(&cfg)),
                PrefetcherKind::NextLine => Box::new(NextLinePrefetcher::from_config(&cfg)),
                PrefetcherKind::Fdp => Box::new(FdpPrefetcher::from_config(&cfg)),
                PrefetcherKind::Clgp => Box::new(ClgpPrefetcher::from_config(&cfg)),
                PrefetcherKind::Mana => Box::new(ManaPrefetcher::from_config(&cfg)),
                PrefetcherKind::ProgMap => Box::new(ProgMapPrefetcher::from_config(&cfg)),
            };
            assert_eq!(pf.kind(), kind);
            assert_eq!(pf.state_bytes(), prefetcher_state_bytes(&cfg));
            assert_eq!(
                pf.migrate_used_lines(),
                kind != PrefetcherKind::None && kind != PrefetcherKind::Clgp,
                "only CLGP (by design) and the no-op baseline skip L1 migration"
            );
        }
    }

    #[test]
    fn prefetcher_ids_round_trip() {
        for kind in PrefetcherKind::all() {
            assert_eq!(PrefetcherKind::from_id(kind.id()), Some(kind));
            assert_eq!(PrefetcherKind::from_id(&kind.id().to_uppercase()), Some(kind));
        }
        assert_eq!(PrefetcherKind::from_id("nonesuch"), None);
    }
}
