//! The decoupling queue: FTQ (fetch blocks) or CLTQ (fetch cache lines).
//!
//! §4 of the paper: *"The queue that decouples prediction and fetch stages
//! (FTQ in Fetch Directed Prefetching; CLTQ in Cache Line Guided
//! Prestaging) can hold up to 8 fetch blocks. ... Although CLTQ has more
//! entries than FTQ, both queues have the same fetch blocks stored in them,
//! i.e. both techniques have the same opportunities to initiate new
//! prefetches."*
//!
//! Both queues are therefore capacity-bounded in *fetch blocks*; the
//! difference is granularity of bookkeeping.  This implementation
//! materialises the per-line slots for both (each slot carries the CLTQ's
//! `prefetched` bit; the `occupied` bit is implicit in slot liveness), so
//! one structure serves FDP, CLGP and the no-prefetch baseline.

use prestage_isa::{align_line, Addr, INST_BYTES};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Presentation/bookkeeping granularity of the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueKind {
    /// Fetch target queue: one logical entry per fetch block (FDP).
    Ftq,
    /// Cache line target queue: one entry per fetch cache line (CLGP).
    Cltq,
}

/// One fetch cache line awaiting fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineSlot {
    /// Sequence number of the owning fetch block.
    pub block_seq: u64,
    /// 64-byte-aligned line address.
    pub line: Addr,
    /// PC of the first instruction to fetch from this line.
    pub first_pc: Addr,
    /// Instructions to deliver from this line.
    pub n_insts: u32,
    /// CLTQ 'prefetched bit': the prefetcher has processed this slot.
    pub prefetched: bool,
    /// Last line of its fetch block.
    pub last_of_block: bool,
}

/// The decoupling queue.
///
/// Hot-path layout: one flat ring of line slots plus a block counter.
/// Block boundaries are recovered from each slot's `last_of_block` flag
/// (a block's lines are always pushed contiguously and completely), so
/// the per-block nesting the first implementation used — a `VecDeque` of
/// `VecDeque`s, one heap allocation per predicted block — is gone from
/// the per-cycle path.
#[derive(Debug, Clone)]
pub struct FetchQueue {
    kind: QueueKind,
    line_bytes: u64,
    max_blocks: usize,
    lines: VecDeque<LineSlot>,
    n_blocks: usize,
    /// Index of the first slot the prefetcher may not have processed:
    /// everything below it is `prefetched`.  Sound because the flag is
    /// set-only and slots leave from the front, so the scan in
    /// [`first_unprefetched`](Self::first_unprefetched) never needs to
    /// revisit the processed prefix.
    pf_cursor: usize,
}

impl FetchQueue {
    pub fn new(kind: QueueKind, line_bytes: u64, max_blocks: usize) -> Self {
        assert!(line_bytes.is_power_of_two() && max_blocks >= 1);
        FetchQueue {
            kind,
            line_bytes,
            max_blocks,
            // A fetch block spans at most fetch-width/line + 1 lines; 8 is
            // ample for the paper's 4-wide blocks, and the ring grows once
            // and stays if a configuration exceeds it.
            lines: VecDeque::with_capacity(max_blocks * 8),
            n_blocks: 0,
            pf_cursor: 0,
        }
    }

    pub fn kind(&self) -> QueueKind {
        self.kind
    }

    /// True if another fetch block can be accepted.
    pub fn has_space(&self) -> bool {
        self.n_blocks < self.max_blocks
    }

    /// Number of queued fetch blocks.
    pub fn len_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Number of queued line slots.
    pub fn len_lines(&self) -> usize {
        self.lines.len()
    }

    pub fn is_empty(&self) -> bool {
        self.n_blocks == 0
    }

    /// Enqueue a predicted fetch block of `len` instructions starting at
    /// `start`.  Returns false (and accepts nothing) when full.
    pub fn push_block(&mut self, seq: u64, start: Addr, len: u32) -> bool {
        if !self.has_space() || len == 0 {
            return false;
        }
        let end = start + len as u64 * INST_BYTES;
        let mut pc = start;
        while pc < end {
            let line = align_line(pc, self.line_bytes);
            let line_end = line + self.line_bytes;
            let last_pc = end.min(line_end);
            let span = (last_pc - pc) / INST_BYTES;
            // Bounded by both `len: u32` and the line size, but say so
            // instead of truncating (PR 5's `as u16` clamp hid exactly
            // this kind of silent wrap).
            let Ok(n) = u32::try_from(span) else {
                unreachable!(
                    "fetch-block line span {span} instructions overflows u32 \
                     (pc {pc:#x}, line end {last_pc:#x})"
                )
            };
            self.lines.push_back(LineSlot {
                block_seq: seq,
                line,
                first_pc: pc,
                n_insts: n,
                prefetched: false,
                last_of_block: last_pc == end,
            });
            pc = line_end;
        }
        self.n_blocks += 1;
        true
    }

    /// The next line the fetch unit should fetch (the queue head).
    pub fn head_line(&self) -> Option<&LineSlot> {
        self.lines.front()
    }

    /// Pop the head line after the fetch unit has accepted it.
    pub fn pop_head_line(&mut self) -> Option<LineSlot> {
        let slot = self.lines.pop_front()?;
        if slot.last_of_block {
            self.n_blocks -= 1;
        }
        self.pf_cursor = self.pf_cursor.saturating_sub(1);
        Some(slot)
    }

    /// The first slot not yet processed by the prefetcher.  Returns a
    /// mutable reference so the caller can set `prefetched`; the cursor
    /// makes this O(new slots), not a fresh front-to-back scan.
    pub fn first_unprefetched(&mut self) -> Option<&mut LineSlot> {
        while self
            .lines
            .get(self.pf_cursor)
            .is_some_and(|s| s.prefetched)
        {
            self.pf_cursor += 1;
        }
        self.lines.get_mut(self.pf_cursor)
    }

    /// Iterate all queued slots front to back.
    pub fn iter_lines(&self) -> impl Iterator<Item = &LineSlot> {
        self.lines.iter()
    }

    /// Drop everything (branch misprediction).
    pub fn flush(&mut self) {
        self.lines.clear();
        self.n_blocks = 0;
        self.pf_cursor = 0;
    }

    /// Sequence number of the newest queued block.
    pub fn newest_seq(&self) -> Option<u64> {
        self.lines.back().map(|s| s.block_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> FetchQueue {
        FetchQueue::new(QueueKind::Cltq, 64, 8)
    }

    #[test]
    fn splits_blocks_into_lines() {
        let mut q = q();
        // 20 insts from 0x1030: bytes [0x1030, 0x1080): lines 0x1000, 0x1040.
        assert!(q.push_block(1, 0x1030, 20));
        assert_eq!(q.len_blocks(), 1);
        assert_eq!(q.len_lines(), 2);
        let slots: Vec<_> = q.iter_lines().cloned().collect();
        assert_eq!(slots[0].line, 0x1000);
        assert_eq!(slots[0].first_pc, 0x1030);
        assert_eq!(slots[0].n_insts, 4);
        assert!(!slots[0].last_of_block);
        assert_eq!(slots[1].line, 0x1040);
        assert_eq!(slots[1].first_pc, 0x1040);
        assert_eq!(slots[1].n_insts, 16);
        assert!(slots[1].last_of_block);
    }

    #[test]
    fn capacity_counts_blocks_not_lines() {
        let mut q = q();
        for i in 0..8 {
            // Each block spans 3 lines.
            assert!(q.push_block(i, 0x2000 + i * 0x100, 48));
        }
        assert!(!q.has_space());
        assert!(!q.push_block(99, 0x9000, 4));
        assert_eq!(q.len_blocks(), 8);
        assert_eq!(q.len_lines(), 24);
    }

    #[test]
    fn fetch_consumes_in_order() {
        let mut q = q();
        q.push_block(1, 0x1000, 20); // 2 lines
        q.push_block(2, 0x3000, 4); // 1 line
        assert_eq!(q.head_line().unwrap().line, 0x1000);
        let a = q.pop_head_line().unwrap();
        assert_eq!(a.block_seq, 1);
        let b = q.pop_head_line().unwrap();
        assert_eq!(b.line, 0x1040);
        assert!(b.last_of_block);
        let c = q.pop_head_line().unwrap();
        assert_eq!(c.block_seq, 2);
        assert!(q.is_empty());
        assert!(q.pop_head_line().is_none());
    }

    #[test]
    fn popping_block_frees_capacity() {
        let mut q = FetchQueue::new(QueueKind::Ftq, 64, 1);
        assert!(q.push_block(1, 0x1000, 4));
        assert!(!q.push_block(2, 0x2000, 4));
        q.pop_head_line();
        assert!(q.has_space());
        assert!(q.push_block(2, 0x2000, 4));
    }

    #[test]
    fn prefetch_scan_skips_processed() {
        let mut q = q();
        q.push_block(1, 0x1000, 32); // 2 lines
        {
            let s = q.first_unprefetched().unwrap();
            assert_eq!(s.line, 0x1000);
            s.prefetched = true;
        }
        let s = q.first_unprefetched().unwrap();
        assert_eq!(s.line, 0x1040);
        s.prefetched = true;
        assert!(q.first_unprefetched().is_none());
    }

    #[test]
    fn flush_empties_everything() {
        let mut q = q();
        q.push_block(1, 0x1000, 64);
        q.flush();
        assert!(q.is_empty());
        assert_eq!(q.len_lines(), 0);
        assert!(q.head_line().is_none());
    }

    #[test]
    fn single_line_block() {
        let mut q = q();
        q.push_block(7, 0x1004, 3); // [0x1004, 0x1010): one line
        assert_eq!(q.len_lines(), 1);
        let s = q.head_line().unwrap();
        assert_eq!(s.n_insts, 3);
        assert!(s.last_of_block);
    }

    #[test]
    fn max_length_block_line_count() {
        let mut q = q();
        // 64 insts = 256 bytes from a line boundary = exactly 4 lines.
        q.push_block(1, 0x4000, 64);
        assert_eq!(q.len_lines(), 4);
        // Misaligned start adds one line.
        q.push_block(2, 0x5004, 64);
        assert_eq!(q.len_lines(), 4 + 5);
    }

    #[test]
    fn per_line_counts_survive_high_addresses_and_sum_to_len() {
        // Regression for the narrowing in `push_block`: per-line counts
        // are now range-checked, and must partition the block exactly
        // even when the PC sits in the top of the address space.
        let mut q = FetchQueue::new(QueueKind::Cltq, 64, 8);
        let start = 0xFFFF_FFFF_FFFF_F004; // line-misaligned, near the top
        let len = 48u32;
        assert!(q.push_block(7, start, len));
        let slots: Vec<_> = q.iter_lines().cloned().collect();
        assert_eq!(slots.iter().map(|s| s.n_insts).sum::<u32>(), len);
        assert!(slots.iter().all(|s| s.n_insts >= 1 && s.n_insts <= 16));
        assert_eq!(slots.first().map(|s| s.first_pc), Some(start));
        assert!(slots.last().is_some_and(|s| s.last_of_block));
    }
}
