//! Front-end statistics: the raw counters behind Figures 7 and 8.

use serde::{Deserialize, Serialize};

/// Counters for one storage source, tracked both per fetched line and per
/// delivered instruction (the paper's Figure 7 plots per-fetch shares).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceCount {
    pub lines: u64,
    pub insts: u64,
}

/// All front-end counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontStats {
    // -- Fetch sources (Figure 7) --
    pub fetch_pb: SourceCount,
    pub fetch_l0: SourceCount,
    pub fetch_l1: SourceCount,
    pub fetch_l2: SourceCount,
    pub fetch_mem: SourceCount,

    // -- Prefetch sources (Figure 8): where the line was found when the
    //    prefetch request was processed --
    pub prefetch_from_pb: u64,
    pub prefetch_from_l1: u64,
    pub prefetch_from_l2: u64,
    pub prefetch_from_mem: u64,

    /// Prefetch requests issued to the memory system (L1 copies + L2/Mem).
    pub prefetches_issued: u64,
    /// FDP only: candidates dropped by Enqueue Cache Probe Filtering.
    pub filtered: u64,
    /// Prefetches that stalled waiting for a free pre-buffer entry
    /// (cycle counts).
    pub pb_alloc_stalls: u64,

    /// Fetch blocks accepted into the queue.
    pub blocks_pushed: u64,
    /// Queue-full rejections.
    pub blocks_rejected: u64,
    /// Front-end flushes (branch mispredictions reaching the front-end).
    pub flushes: u64,

    /// CLGP: consumers-counter increments (a queued line was already
    /// prestaged).
    pub consumer_bumps: u64,
}

impl FrontStats {
    /// Total fetched lines across sources.
    pub fn total_fetch_lines(&self) -> u64 {
        self.fetch_pb.lines
            + self.fetch_l0.lines
            + self.fetch_l1.lines
            + self.fetch_l2.lines
            + self.fetch_mem.lines
    }

    /// Total delivered instructions across sources.
    pub fn total_fetch_insts(&self) -> u64 {
        self.fetch_pb.insts
            + self.fetch_l0.insts
            + self.fetch_l1.insts
            + self.fetch_l2.insts
            + self.fetch_mem.insts
    }

    /// Fraction of line fetches served by `count` (0 if none fetched).
    pub fn fetch_share(&self, count: SourceCount) -> f64 {
        let t = self.total_fetch_lines();
        if t == 0 {
            0.0
        } else {
            count.lines as f64 / t as f64
        }
    }

    /// Fraction of fetches served within one cycle (pre-buffer + L0):
    /// the paper's headline "95% of fetches from one-cycle sources".
    pub fn one_cycle_share(&self) -> f64 {
        self.fetch_share(self.fetch_pb) + self.fetch_share(self.fetch_l0)
    }

    /// Total prefetch requests processed (including those resolved in the
    /// pre-buffer or filtered).
    pub fn total_prefetch_requests(&self) -> u64 {
        self.prefetch_from_pb + self.prefetch_from_l1 + self.prefetch_from_l2
            + self.prefetch_from_mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let s = FrontStats {
            fetch_pb: SourceCount { lines: 60, insts: 240 },
            fetch_l0: SourceCount { lines: 20, insts: 80 },
            fetch_l1: SourceCount { lines: 15, insts: 60 },
            fetch_l2: SourceCount { lines: 4, insts: 16 },
            fetch_mem: SourceCount { lines: 1, insts: 4 },
            ..FrontStats::default()
        };
        let total = s.fetch_share(s.fetch_pb)
            + s.fetch_share(s.fetch_l0)
            + s.fetch_share(s.fetch_l1)
            + s.fetch_share(s.fetch_l2)
            + s.fetch_share(s.fetch_mem);
        assert!((total - 1.0).abs() < 1e-12);
        assert!((s.one_cycle_share() - 0.8).abs() < 1e-12);
        assert_eq!(s.total_fetch_insts(), 400);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = FrontStats::default();
        assert_eq!(s.total_fetch_lines(), 0);
        assert_eq!(s.fetch_share(s.fetch_pb), 0.0);
        assert_eq!(s.one_cycle_share(), 0.0);
    }
}
