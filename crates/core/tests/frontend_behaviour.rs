//! Behavioural tests of the decoupled front-end: FDP vs CLGP semantics
//! against a live L2 system, exercising the exact mechanisms §3 of the
//! paper describes.

use prestage_cache::{L2Config, L2System};
use prestage_cacti::TechNode;
use prestage_core::{
    ClgpPrefetcher, Delivery, FetchSource, FrontEnd, FrontendConfig, InstrPrefetcher,
    NextLinePrefetcher, NoPrefetcher, PrefetcherKind,
};
use prestage_core::FdpPrefetcher;

fn l2(tech: TechNode) -> L2System {
    L2System::new(L2Config::for_node(tech))
}

/// Drive front-end + L2 for `cycles`, collecting deliveries.
fn run<P: InstrPrefetcher>(
    fe: &mut FrontEnd<P>,
    l2: &mut L2System,
    from: u64,
    cycles: u64,
    out: &mut Vec<Delivery>,
) {
    for now in from..from + cycles {
        for c in l2.tick(now) {
            fe.on_completion(&c);
        }
        fe.tick(now, l2, 16, out);
    }
}

fn base_cfg(tech: TechNode, l1_kb: usize, pf: PrefetcherKind) -> FrontendConfig {
    let mut cfg = FrontendConfig::base(tech, l1_kb << 10);
    cfg.prefetcher = pf;
    if pf != PrefetcherKind::None {
        cfg.pb_entries = 4;
    }
    cfg
}

#[test]
fn cold_fetch_misses_to_memory_then_hits_l1() {
    let mut fe = FrontEnd::<NoPrefetcher>::new(base_cfg(TechNode::T045, 8, PrefetcherKind::None));
    let mut l2 = l2(TechNode::T045);
    let mut out = Vec::new();

    assert!(fe.push_block(1, 0x1000, 8));
    run(&mut fe, &mut l2, 0, 300, &mut out);
    assert!(!out.is_empty());
    assert_eq!(out[0].source, FetchSource::Mem);
    let total: u32 = out.iter().map(|d| d.count).sum();
    assert_eq!(total, 8);
    // Completion well after the 24 (L2) + 200 (mem) latency.
    assert!(out[0].cycle >= 224, "cycle {}", out[0].cycle);
    assert!(out.last().unwrap().completes_block);

    // Same line again: now an L1 hit with the Table 3 latency (4 cycles).
    out.clear();
    fe.push_block(2, 0x1000, 8);
    run(&mut fe, &mut l2, 300, 40, &mut out);
    assert_eq!(out[0].source, FetchSource::L1);
    assert!(out[0].cycle - 300 <= 8, "late L1 hit: {}", out[0].cycle);
}

#[test]
fn deliveries_respect_fetch_width() {
    let mut fe = FrontEnd::<NoPrefetcher>::new(base_cfg(TechNode::T045, 8, PrefetcherKind::None));
    let mut l2 = l2(TechNode::T045);
    let mut out = Vec::new();
    // 16 instructions on one line.
    fe.push_block(1, 0x2000, 16);
    run(&mut fe, &mut l2, 0, 400, &mut out);
    assert!(out.iter().all(|d| d.count <= 4));
    let total: u32 = out.iter().map(|d| d.count).sum();
    assert_eq!(total, 16);
    // Consecutive deliveries of the same line on consecutive cycles.
    let cycles: Vec<u64> = out.iter().map(|d| d.cycle).collect();
    for w in cycles.windows(2) {
        assert_eq!(w[1], w[0] + 1);
    }
}

#[test]
fn clgp_prestages_ahead_and_serves_from_buffer() {
    let tech = TechNode::T045;
    let mut fe = FrontEnd::<ClgpPrefetcher>::new(base_cfg(tech, 8, PrefetcherKind::Clgp));
    let mut l2 = l2(tech);
    let mut out = Vec::new();

    // Warm the L2 with the whole region so prefetches are L2 hits.
    for line in 0..32u64 {
        l2.warm_fill(0x8000 + line * 64);
    }
    // First block fetches cold (demand), subsequent blocks should be
    // prestaged by the run-ahead before the fetch unit reaches them.
    for b in 0..8u64 {
        assert!(fe.push_block(b, 0x8000 + b * 256, 16));
    }
    run(&mut fe, &mut l2, 0, 600, &mut out);
    let pb_lines = out
        .iter()
        .filter(|d| d.source == FetchSource::PreBuffer)
        .count();
    assert!(pb_lines > 0, "no prestage-buffer fetches at all");
    // Later blocks must be served from the prestage buffer.
    let late: Vec<_> = out.iter().filter(|d| d.block_seq >= 4).collect();
    assert!(
        late.iter()
            .filter(|d| d.source == FetchSource::PreBuffer)
            .count() as f64
            >= 0.5 * late.len() as f64,
        "run-ahead prestaging ineffective: {:?}",
        late.iter().map(|d| d.source).collect::<Vec<_>>()
    );
}

#[test]
fn clgp_does_not_migrate_lines_into_l1() {
    let tech = TechNode::T045;
    let mut fe = FrontEnd::<ClgpPrefetcher>::new(base_cfg(tech, 8, PrefetcherKind::Clgp));
    let mut l2 = l2(tech);
    let mut out = Vec::new();
    for i in 0..8u64 {
        l2.warm_fill(0x8000 + i * 64);
    }
    // Several blocks: the head is fetched on demand, the rest prestage.
    for b in 0..4u64 {
        fe.push_block(b, 0x8000 + b * 64, 16);
    }
    run(&mut fe, &mut l2, 0, 600, &mut out);
    let pb_lines: Vec<_> = out
        .iter()
        .filter(|d| d.source == FetchSource::PreBuffer)
        .map(|d| d.first_pc & !63)
        .collect();
    assert!(!pb_lines.is_empty(), "expected prestage-buffer fetches");
    // §3.2.3: "it is not transferred to the first level I-cache".
    for line in pb_lines {
        assert!(
            !fe.l1().contains(line),
            "CLGP must not replicate prestage line {line:#x} into the L1"
        );
    }
}

#[test]
fn fdp_migrates_used_lines_into_l1() {
    let tech = TechNode::T045;
    let mut fe = FrontEnd::<FdpPrefetcher>::new(base_cfg(tech, 8, PrefetcherKind::Fdp));
    let mut l2 = l2(tech);
    let mut out = Vec::new();
    for i in 0..8u64 {
        l2.warm_fill(0x8000 + i * 64);
    }
    for b in 0..4u64 {
        fe.push_block(b, 0x8000 + b * 64, 16);
    }
    run(&mut fe, &mut l2, 0, 600, &mut out);
    let pb_lines: Vec<_> = out
        .iter()
        .filter(|d| d.source == FetchSource::PreBuffer)
        .map(|d| d.first_pc & !63)
        .collect();
    assert!(!pb_lines.is_empty(), "expected prefetch-buffer fetches");
    // §3.1: "when a line from the prefetch buffer is used by the fetch
    // unit, it is transferred to the I-cache".
    for line in pb_lines {
        assert!(
            fe.l1().contains(line),
            "FDP must move used prefetch-buffer line {line:#x} into the L1"
        );
    }
}

#[test]
fn fdp_filters_lines_already_in_l1() {
    let tech = TechNode::T045;
    let mut fe = FrontEnd::<FdpPrefetcher>::new(base_cfg(tech, 8, PrefetcherKind::Fdp));
    let mut l2 = l2(tech);
    let mut out = Vec::new();

    // Fetch a block cold so its lines land in the L1.
    fe.push_block(1, 0x4000, 8);
    run(&mut fe, &mut l2, 0, 300, &mut out);
    assert!(fe.l1().contains(0x4000));
    // Re-queue the block twice: the fetch unit takes the first copy (an
    // L1 hit), so the prefetch scan reaches the second and the probe
    // filter must reject it.
    let issued_before = fe.stats().prefetches_issued;
    fe.push_block(2, 0x4000, 8);
    fe.push_block(3, 0x4000, 8);
    run(&mut fe, &mut l2, 300, 50, &mut out);
    assert_eq!(
        fe.stats().prefetches_issued,
        issued_before,
        "filtered line was prefetched anyway"
    );
    assert!(fe.stats().filtered > 0);
}

#[test]
fn clgp_prestages_even_l1_resident_lines() {
    // The opposite of the FDP test: CLGP has no filtering — an L1-resident
    // line is *copied* into the prestage buffer to dodge the multi-cycle
    // hit (§3.2.3), showing up as an il1 prefetch source (Figure 8).
    let tech = TechNode::T045;
    let mut fe = FrontEnd::<ClgpPrefetcher>::new(base_cfg(tech, 8, PrefetcherKind::Clgp));
    let mut l2 = l2(tech);
    let mut out = Vec::new();

    fe.push_block(1, 0x4000, 8);
    run(&mut fe, &mut l2, 0, 300, &mut out);
    assert!(fe.l1().contains(0x4000));
    out.clear();
    // Two copies: the fetch unit takes the first (L1 hit) while the
    // prestager copies the line for the second.
    fe.push_block(2, 0x4000, 8);
    fe.push_block(3, 0x4000, 8);
    run(&mut fe, &mut l2, 300, 60, &mut out);
    assert!(fe.stats().prefetch_from_l1 > 0, "no L1->PB copy happened");
    // And a fetch is served by the prestage buffer at one cycle.
    assert!(out.iter().any(|d| d.source == FetchSource::PreBuffer));
}

#[test]
fn clgp_consumers_counter_pins_shared_lines() {
    let tech = TechNode::T045;
    let mut cfg = base_cfg(tech, 8, PrefetcherKind::Clgp);
    cfg.pb_entries = 2; // tiny buffer: pinning matters
    let mut fe = FrontEnd::<ClgpPrefetcher>::new(cfg);
    let mut l2 = l2(tech);
    let mut out = Vec::new();
    l2.warm_fill(0x8000);
    l2.warm_fill(0x8040);

    // Three blocks all starting on the same line 0x8000.
    fe.push_block(1, 0x8000, 4);
    fe.push_block(2, 0x8000, 4);
    fe.push_block(3, 0x8000, 4);
    run(&mut fe, &mut l2, 0, 400, &mut out);
    assert!(fe.stats().consumer_bumps >= 1, "consumers never bumped");
    // Only one prefetch was needed for the shared line.
    assert_eq!(fe.stats().prefetches_issued, 1);
    // All three blocks delivered, the last two from the pinned entry.
    let blocks: std::collections::HashSet<_> = out.iter().map(|d| d.block_seq).collect();
    assert_eq!(blocks.len(), 3);
    let pb_count = out
        .iter()
        .filter(|d| d.source == FetchSource::PreBuffer)
        .count();
    assert!(pb_count >= 2);
}

#[test]
fn flush_clears_queue_and_resets_counters() {
    let tech = TechNode::T045;
    let mut fe = FrontEnd::<ClgpPrefetcher>::new(base_cfg(tech, 8, PrefetcherKind::Clgp));
    let mut l2 = l2(tech);
    let mut out = Vec::new();
    l2.warm_fill(0x8000);

    for b in 0..8u64 {
        fe.push_block(b, 0x8000 + b * 64, 16);
    }
    run(&mut fe, &mut l2, 0, 30, &mut out);
    fe.flush();
    assert!(fe.queue().is_empty());
    assert!(fe.has_queue_space());
    assert_eq!(fe.stats().flushes, 1);
    // After a flush the front-end accepts and serves a new (correct-path)
    // block normally.
    out.clear();
    fe.push_block(100, 0x8000, 4);
    run(&mut fe, &mut l2, 30, 300, &mut out);
    assert_eq!(out.iter().map(|d| d.count).sum::<u32>(), 4);
}

#[test]
fn pipelined_l1_streams_lines_back_to_back() {
    let tech = TechNode::T045;
    // 64KB L1 at 0.045um: 5-cycle latency.
    let mut plain = FrontendConfig::base(tech, 64 << 10);
    plain.max_inflight = 4;
    let mut piped = plain;
    piped.l1_pipelined = true;

    let run_one = |cfg: FrontendConfig| -> u64 {
        let mut fe = FrontEnd::<NoPrefetcher>::new(cfg);
        let mut l2sys = l2(tech);
        let mut out = Vec::new();
        // Warm the L1 with 8 consecutive lines.
        for i in 0..8u64 {
            fe.l1().fill(0x4000 + i * 64);
        }
        for b in 0..8u64 {
            fe.push_block(b, 0x4000 + b * 64, 16);
        }
        run(&mut fe, &mut l2sys, 0, 500, &mut out);
        assert_eq!(out.iter().map(|d| d.count).sum::<u32>(), 128);
        out.last().unwrap().cycle
    };
    let t_plain = run_one(plain);
    let t_piped = run_one(piped);
    assert!(
        t_piped < t_plain,
        "pipelined L1 should finish sooner: {t_piped} vs {t_plain}"
    );
}

#[test]
fn l0_serves_one_cycle_after_demand_fill() {
    let tech = TechNode::T045;
    let mut cfg = FrontendConfig::base(tech, 32 << 10);
    cfg.l0_capacity = Some(256);
    let mut fe = FrontEnd::<NoPrefetcher>::new(cfg);
    let mut l2sys = l2(tech);
    let mut out = Vec::new();

    fe.push_block(1, 0x5000, 4);
    run(&mut fe, &mut l2sys, 0, 300, &mut out);
    assert_eq!(out[0].source, FetchSource::Mem);
    // The demand fill populated the L0: next fetch is one cycle.
    out.clear();
    fe.push_block(2, 0x5000, 4);
    run(&mut fe, &mut l2sys, 300, 20, &mut out);
    assert_eq!(out[0].source, FetchSource::L0);
    assert!(out[0].cycle <= 302);
}

#[test]
fn queue_capacity_is_eight_blocks() {
    let mut fe = FrontEnd::<ClgpPrefetcher>::new(base_cfg(TechNode::T090, 4, PrefetcherKind::Clgp));
    for b in 0..8u64 {
        assert!(fe.push_block(b, 0x1000 + b * 0x100, 16));
    }
    assert!(!fe.has_queue_space());
    assert!(!fe.push_block(99, 0x9000, 4));
    assert_eq!(fe.stats().blocks_rejected, 1);
}

#[test]
fn next_line_prefetcher_covers_sequential_streams() {
    // The related-work baseline: sequential code behind a demand fetch is
    // covered by next-N-line prefetching.
    let tech = TechNode::T045;
    let mut cfg = FrontendConfig::base(tech, 8 << 10);
    cfg.prefetcher = PrefetcherKind::NextLine;
    cfg.pb_entries = 4;
    cfg.nlp_degree = 2;
    let mut fe = FrontEnd::<NextLinePrefetcher>::new(cfg);
    let mut l2sys = l2(tech);
    for i in 0..16u64 {
        l2sys.warm_fill(0xA000 + i * 64);
    }
    let mut out = Vec::new();
    // Sequential blocks, line after line.
    for b in 0..8u64 {
        fe.push_block(b, 0xA000 + b * 64, 16);
    }
    run(&mut fe, &mut l2sys, 0, 800, &mut out);
    assert!(fe.stats().prefetches_issued > 0, "NLP issued nothing");
    let pb = out
        .iter()
        .filter(|d| d.source == FetchSource::PreBuffer)
        .count();
    assert!(pb >= 3, "sequential prefetches unused: {pb}");
}

#[test]
fn next_line_prefetcher_filters_resident_lines() {
    let tech = TechNode::T045;
    let mut cfg = FrontendConfig::base(tech, 8 << 10);
    cfg.prefetcher = PrefetcherKind::NextLine;
    cfg.pb_entries = 4;
    let mut fe = FrontEnd::<NextLinePrefetcher>::new(cfg);
    let mut l2sys = l2(tech);
    // Everything already in the L1: nothing should be prefetched.
    for i in 0..8u64 {
        fe.l1().fill(0xB000 + i * 64);
    }
    let mut out = Vec::new();
    for b in 0..4u64 {
        fe.push_block(b, 0xB000 + b * 64, 16);
    }
    run(&mut fe, &mut l2sys, 0, 300, &mut out);
    assert_eq!(fe.stats().prefetches_issued, 0);
    assert!(fe.stats().filtered > 0);
}

#[test]
fn ablated_clgp_filter_behaves_like_fdp_for_l1_lines() {
    let tech = TechNode::T045;
    let mut cfg = base_cfg(tech, 8, PrefetcherKind::Clgp);
    cfg.ablate_filter = true;
    let mut fe = FrontEnd::<ClgpPrefetcher>::new(cfg);
    let mut l2sys = l2(tech);
    let mut out = Vec::new();
    fe.push_block(1, 0x4000, 8);
    run(&mut fe, &mut l2sys, 0, 300, &mut out);
    assert!(fe.l1().contains(0x4000));
    out.clear();
    fe.push_block(2, 0x4000, 8);
    fe.push_block(3, 0x4000, 8);
    run(&mut fe, &mut l2sys, 300, 60, &mut out);
    // With the filter ablation, no L1 copy happens and the fetches pay the
    // multi-cycle L1 (contrast with clgp_prestages_even_l1_resident_lines).
    assert_eq!(fe.stats().prefetch_from_l1, fe.stats().filtered);
    assert!(out.iter().any(|d| d.source == FetchSource::L1));
}

#[test]
fn ablated_free_on_use_clgp_loses_reuse() {
    let tech = TechNode::T045;
    let mut keep = base_cfg(tech, 8, PrefetcherKind::Clgp);
    keep.pb_entries = 2;
    let mut drop = keep;
    drop.ablate_free_on_use = true;

    let run_one = |cfg: FrontendConfig| {
        let mut fe = FrontEnd::<ClgpPrefetcher>::new(cfg);
        let mut l2sys = l2(tech);
        l2sys.warm_fill(0x8000);
        let mut out = Vec::new();
        // The same line requested by many blocks: the counter keeps it.
        for b in 0..6u64 {
            fe.push_block(b, 0x8000, 8);
        }
        run(&mut fe, &mut l2sys, 0, 500, &mut out);
        out.iter()
            .filter(|d| d.source == FetchSource::PreBuffer)
            .count()
    };
    let with_counter = run_one(keep);
    let without = run_one(drop);
    assert!(
        with_counter >= without,
        "counter should not reduce prestage hits: {with_counter} vs {without}"
    );
}
