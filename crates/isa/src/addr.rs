//! Address arithmetic helpers.

/// A byte address in the simulated machine.
pub type Addr = u64;

/// Size of one instruction in bytes (Alpha AXP: fixed 4-byte encoding).
pub const INST_BYTES: u64 = 4;

/// Align `addr` down to a `line`-byte boundary.
///
/// # Panics
/// Panics (debug builds) if `line` is not a power of two.
#[inline]
pub fn align_line(addr: Addr, line: u64) -> Addr {
    debug_assert!(line.is_power_of_two());
    addr & !(line - 1)
}

/// The line number (address divided by line size) containing `addr`.
#[inline]
pub fn line_of(addr: Addr, line: u64) -> u64 {
    debug_assert!(line.is_power_of_two());
    addr >> line.trailing_zeros()
}

/// Number of `line`-byte cache lines touched by the byte range
/// `[start, start + bytes)`.
#[inline]
pub fn lines_spanned(start: Addr, bytes: u64, line: u64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    line_of(start + bytes - 1, line) - line_of(start, line) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align() {
        assert_eq!(align_line(0x1234, 64), 0x1200);
        assert_eq!(align_line(0x1240, 64), 0x1240);
        assert_eq!(align_line(0x0, 64), 0x0);
    }

    #[test]
    fn line_numbers() {
        assert_eq!(line_of(0, 64), 0);
        assert_eq!(line_of(63, 64), 0);
        assert_eq!(line_of(64, 64), 1);
        assert_eq!(line_of(0x1000, 128), 0x20);
    }

    #[test]
    fn span_counting() {
        assert_eq!(lines_spanned(0, 64, 64), 1);
        assert_eq!(lines_spanned(0, 65, 64), 2);
        assert_eq!(lines_spanned(60, 8, 64), 2);
        assert_eq!(lines_spanned(60, 4, 64), 1);
        assert_eq!(lines_spanned(100, 0, 64), 0);
        // A 17-instruction stream starting mid-line touches 2-3 lines.
        assert_eq!(lines_spanned(32, 17 * 4, 64), 2);
    }
}
