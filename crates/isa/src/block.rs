//! Basic blocks and their terminators.

use crate::addr::{Addr, INST_BYTES};
use crate::inst::{OpClass, StaticInst};
use serde::{Deserialize, Serialize};

/// Identifier of a basic block inside a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// How control leaves a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Conditional branch: `taken` target or fall-through.
    CondBranch { taken: Addr, not_taken: Addr },
    /// Unconditional jump.
    Jump { target: Addr },
    /// Call: control goes to `target`; `link` is the return address
    /// (pushed on the RAS).
    Call { target: Addr, link: Addr },
    /// Return through the RAS.
    Return,
    /// No control transfer: execution falls through to `next`.
    FallThrough { next: Addr },
}

impl Terminator {
    /// All statically-known successor addresses (RAS targets excluded).
    pub fn static_successors(&self) -> Vec<Addr> {
        match *self {
            Terminator::CondBranch { taken, not_taken } => vec![taken, not_taken],
            Terminator::Jump { target } => vec![target],
            Terminator::Call { target, .. } => vec![target],
            Terminator::Return => vec![],
            Terminator::FallThrough { next } => vec![next],
        }
    }
}

/// A straight-line run of instructions ending in (at most) one control
/// transfer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    pub id: BlockId,
    /// PC of the first instruction.
    pub start: Addr,
    /// The instructions, contiguous from `start` at 4-byte stride.  When the
    /// terminator is a CTI, the final instruction is that CTI.
    pub insts: Vec<StaticInst>,
    pub term: Terminator,
}

impl BasicBlock {
    /// PC one past the last instruction (= fall-through address).
    pub fn end(&self) -> Addr {
        self.start + self.insts.len() as u64 * INST_BYTES
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the block holds no instructions (invalid in a finished
    /// program; used transiently by builders).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Whether `pc` addresses an instruction in this block.
    pub fn contains(&self, pc: Addr) -> bool {
        pc >= self.start && pc < self.end() && (pc - self.start).is_multiple_of(INST_BYTES)
    }

    /// The instruction at `pc`, if it lies in this block.
    pub fn inst_at(&self, pc: Addr) -> Option<&StaticInst> {
        if !self.contains(pc) {
            return None;
        }
        let idx = ((pc - self.start) / INST_BYTES) as usize;
        self.insts.get(idx)
    }

    /// Internal consistency: contiguous PCs, CTI placement matching the
    /// terminator.
    pub fn validate(&self) -> Result<(), String> {
        if self.insts.is_empty() {
            return Err(format!("block {:?} at {:#x} is empty", self.id, self.start));
        }
        for (i, inst) in self.insts.iter().enumerate() {
            let expect = self.start + i as u64 * INST_BYTES;
            if inst.pc != expect {
                return Err(format!(
                    "block {:?}: inst {} has pc {:#x}, expected {:#x}",
                    self.id, i, inst.pc, expect
                ));
            }
            let is_last = i + 1 == self.insts.len();
            if inst.op.is_cti() && !is_last {
                return Err(format!(
                    "block {:?}: CTI at {:#x} is not the final instruction",
                    self.id, inst.pc
                ));
            }
        }
        let last = self.insts.last().unwrap();
        let term_matches = match self.term {
            Terminator::CondBranch { not_taken, .. } => {
                last.op == OpClass::CondBranch && not_taken == self.end()
            }
            Terminator::Jump { target } => {
                last.op == OpClass::Jump && last.target == Some(target)
            }
            Terminator::Call { target, link } => {
                last.op == OpClass::Call && last.target == Some(target) && link == self.end()
            }
            Terminator::Return => last.op == OpClass::Return,
            Terminator::FallThrough { next } => !last.op.is_cti() && next == self.end(),
        };
        if !term_matches {
            return Err(format!(
                "block {:?}: terminator {:?} inconsistent with final inst {:?}",
                self.id, self.term, last
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Reg;

    fn mkblock(start: Addr, n_plain: usize, term: Terminator) -> BasicBlock {
        let mut insts = Vec::new();
        for i in 0..n_plain {
            insts.push(StaticInst::plain(
                start + i as u64 * 4,
                OpClass::IntAlu,
                Some(Reg::int(1)),
                Some(Reg::int(2)),
                None,
            ));
        }
        let tail_pc = start + n_plain as u64 * 4;
        match term {
            Terminator::CondBranch { taken, .. } => {
                insts.push(StaticInst::cti(tail_pc, OpClass::CondBranch, Some(taken)))
            }
            Terminator::Jump { target } => {
                insts.push(StaticInst::cti(tail_pc, OpClass::Jump, Some(target)))
            }
            Terminator::Call { target, .. } => {
                insts.push(StaticInst::cti(tail_pc, OpClass::Call, Some(target)))
            }
            Terminator::Return => insts.push(StaticInst::cti(tail_pc, OpClass::Return, None)),
            Terminator::FallThrough { .. } => {}
        }
        BasicBlock {
            id: BlockId(0),
            start,
            insts,
            term,
        }
    }

    #[test]
    fn end_and_contains() {
        let b = mkblock(
            0x1000,
            3,
            Terminator::CondBranch {
                taken: 0x2000,
                not_taken: 0x1010,
            },
        );
        assert_eq!(b.end(), 0x1010);
        assert!(b.contains(0x1000));
        assert!(b.contains(0x100c));
        assert!(!b.contains(0x1010));
        assert!(!b.contains(0x1002)); // misaligned
        assert!(b.validate().is_ok());
    }

    #[test]
    fn inst_lookup() {
        let b = mkblock(0x40, 2, Terminator::FallThrough { next: 0x48 });
        assert_eq!(b.inst_at(0x44).unwrap().pc, 0x44);
        assert!(b.inst_at(0x48).is_none());
        assert!(b.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_fallthrough() {
        let b = mkblock(0x40, 2, Terminator::FallThrough { next: 0x99 });
        assert!(b.validate().is_err());
    }

    #[test]
    fn validation_catches_mid_block_cti() {
        let mut b = mkblock(0x40, 2, Terminator::FallThrough { next: 0x48 });
        b.insts[0] = StaticInst::cti(0x40, OpClass::Jump, Some(0x80));
        assert!(b.validate().is_err());
    }

    #[test]
    fn successors() {
        let t = Terminator::CondBranch {
            taken: 0x2000,
            not_taken: 0x1010,
        };
        assert_eq!(t.static_successors(), vec![0x2000, 0x1010]);
        assert!(Terminator::Return.static_successors().is_empty());
    }
}
