//! Static instruction model: operation classes, registers, and the
//! per-instruction record stored in the basic-block dictionary.

use crate::addr::Addr;
use serde::{Deserialize, Serialize};

/// Total architectural registers: 32 integer + 32 floating point.
pub const NUM_REGS: usize = 64;
/// First floating-point register index.
pub const FIRST_FP_REG: u8 = 32;
/// The hard-wired zero register (Alpha `r31`): never creates a dependency.
pub const REG_ZERO: Reg = Reg(31);

/// An architectural register.  `0..32` integer, `32..64` floating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// Integer register `i`.
    pub fn int(i: u8) -> Reg {
        assert!(i < FIRST_FP_REG);
        Reg(i)
    }

    /// Floating-point register `i`.
    pub fn fp(i: u8) -> Reg {
        assert!(i < 32);
        Reg(FIRST_FP_REG + i)
    }

    /// True for the hard-wired zero register, which never carries a
    /// dependency.
    pub fn is_zero(self) -> bool {
        self == REG_ZERO
    }

    /// Index into a 64-entry scoreboard.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Operation class of a static instruction.
///
/// The back-end only needs classes (for latency and port binding), not full
/// opcodes — the same granularity the paper's trace simulator keeps in its
/// basic-block dictionary ("type, source/target registers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply (long latency).
    IntMul,
    /// Floating-point add/sub/convert.
    FpAlu,
    /// Floating-point multiply/divide.
    FpMul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Direct call (pushes a return address).
    Call,
    /// Return (pops a return address).
    Return,
}

impl OpClass {
    /// Execution latency in cycles once issued (loads add cache time).
    pub fn exec_latency(self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::CondBranch | OpClass::Jump | OpClass::Call
            | OpClass::Return | OpClass::Store => 1,
            OpClass::IntMul => 7,
            OpClass::FpAlu => 4,
            OpClass::FpMul => 6,
            OpClass::Load => 1, // plus memory time
        }
    }

    /// Any control-transfer instruction.
    pub fn is_cti(self) -> bool {
        matches!(
            self,
            OpClass::CondBranch | OpClass::Jump | OpClass::Call | OpClass::Return
        )
    }

    /// Conditional branch (the only class the direction predictor guesses).
    pub fn is_cond_branch(self) -> bool {
        matches!(self, OpClass::CondBranch)
    }

    /// Touches data memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }
}

/// One static instruction in the basic-block dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticInst {
    /// Program counter of this instruction.
    pub pc: Addr,
    /// Operation class.
    pub op: OpClass,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// First source register, if any.
    pub src1: Option<Reg>,
    /// Second source register, if any.
    pub src2: Option<Reg>,
    /// Direct control-flow target (branch taken target / jump / call target).
    pub target: Option<Addr>,
}

impl StaticInst {
    /// A plain non-CTI instruction.
    pub fn plain(
        pc: Addr,
        op: OpClass,
        dst: Option<Reg>,
        src1: Option<Reg>,
        src2: Option<Reg>,
    ) -> Self {
        assert!(!op.is_cti(), "use StaticInst::cti for control transfers");
        StaticInst {
            pc,
            op,
            dst,
            src1,
            src2,
            target: None,
        }
    }

    /// A control-transfer instruction.  `target` is `None` only for
    /// [`OpClass::Return`] (indirect through the return address stack).
    pub fn cti(pc: Addr, op: OpClass, target: Option<Addr>) -> Self {
        assert!(op.is_cti());
        assert!(
            target.is_some() || op == OpClass::Return,
            "direct CTIs need a target"
        );
        StaticInst {
            pc,
            op,
            dst: None,
            src1: None,
            src2: None,
            target,
        }
    }

    /// The fall-through PC.
    #[inline]
    pub fn next_pc(&self) -> Addr {
        self.pc + crate::addr::INST_BYTES
    }

    /// Sources that actually create dependencies (zero register excluded).
    pub fn dep_sources(&self) -> impl Iterator<Item = Reg> + '_ {
        [self.src1, self.src2]
            .into_iter()
            .flatten()
            .filter(|r| !r.is_zero())
    }

    /// Destination that actually produces a value (zero register excluded).
    pub fn dep_dest(&self) -> Option<Reg> {
        self.dst.filter(|r| !r.is_zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_ordered() {
        assert!(OpClass::IntMul.exec_latency() > OpClass::IntAlu.exec_latency());
        assert!(OpClass::FpMul.exec_latency() > OpClass::FpAlu.exec_latency());
    }

    #[test]
    fn cti_classification() {
        assert!(OpClass::CondBranch.is_cti());
        assert!(OpClass::Return.is_cti());
        assert!(!OpClass::Load.is_cti());
        assert!(OpClass::CondBranch.is_cond_branch());
        assert!(!OpClass::Jump.is_cond_branch());
    }

    #[test]
    fn zero_register_breaks_dependencies() {
        let i = StaticInst::plain(
            0x100,
            OpClass::IntAlu,
            Some(REG_ZERO),
            Some(Reg::int(3)),
            Some(REG_ZERO),
        );
        assert_eq!(i.dep_dest(), None);
        let srcs: Vec<_> = i.dep_sources().collect();
        assert_eq!(srcs, vec![Reg::int(3)]);
    }

    #[test]
    fn fp_registers_distinct_from_int() {
        assert_ne!(Reg::int(5), Reg::fp(5));
        assert_eq!(Reg::fp(0).index(), 32);
    }

    #[test]
    #[should_panic]
    fn plain_rejects_cti() {
        StaticInst::plain(0, OpClass::Jump, None, None, None);
    }

    #[test]
    #[should_panic]
    fn direct_cti_requires_target() {
        StaticInst::cti(0, OpClass::Call, None);
    }
}
