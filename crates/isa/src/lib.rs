//! # prestage-isa
//!
//! The instruction-set substrate of the fetch-prestaging reproduction: an
//! Alpha-AXP-flavoured instruction model (fixed 4-byte instructions, 32
//! integer + 32 floating-point registers), basic blocks, and the **static
//! basic-block dictionary** ([`Program`]).
//!
//! The paper's trace-driven simulator "permit\[s\] execution along wrong paths
//! by having a separate basic block dictionary in which we have the
//! information of all static instructions (type, source/target registers)"
//! (§4).  [`Program`] is that dictionary: given any PC inside the program
//! image it returns the static instruction, its basic block, and the block's
//! control-flow successors, which is exactly what the front-end needs to
//! keep fetching (and prefetching, and speculatively updating the branch
//! predictor) down a mispredicted path.

pub mod addr;
pub mod block;
pub mod inst;
pub mod program;

pub use addr::{align_line, line_of, Addr, INST_BYTES};
pub use block::{BasicBlock, BlockId, Terminator};
pub use inst::{OpClass, Reg, StaticInst, FIRST_FP_REG, NUM_REGS, REG_ZERO};
pub use program::{straightline_block, Program, ProgramBuilder, ProgramError};
