//! The static program image: the paper's "basic block dictionary".
//!
//! §4 of the paper: *"We permit execution along wrong paths by having a
//! separate basic block dictionary in which we have the information of all
//! static instructions (type, source/target registers). That allows for
//! prefetching even along wrong paths, as well as performing speculative
//! lookups and updates of the branch predictor."*
//!
//! [`Program`] provides exactly that: O(log n) lookup from any PC to its
//! static instruction and enclosing basic block.

use crate::addr::{Addr, INST_BYTES};
use crate::block::{BasicBlock, BlockId, Terminator};
use crate::inst::StaticInst;
use serde::{Deserialize, Serialize};

/// Errors detected while assembling a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// Two blocks overlap in the address space.
    Overlap { a: BlockId, b: BlockId },
    /// A block failed internal validation.
    InvalidBlock(String),
    /// A control-flow target does not resolve to the start of any
    /// instruction in the program.
    DanglingTarget { from: BlockId, target: Addr },
    /// The program has no blocks.
    Empty,
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::Overlap { a, b } => write!(f, "blocks {a:?} and {b:?} overlap"),
            ProgramError::InvalidBlock(msg) => write!(f, "invalid block: {msg}"),
            ProgramError::DanglingTarget { from, target } => {
                write!(f, "block {from:?} targets unmapped address {target:#x}")
            }
            ProgramError::Empty => write!(f, "program has no basic blocks"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// An immutable static program image (basic-block dictionary).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    /// Blocks sorted by start address; `BlockId` indexes this vector.
    blocks: Vec<BasicBlock>,
    /// Entry point.
    entry: Addr,
}

impl Program {
    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total static instructions.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// The entry-point PC.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Static code footprint in bytes: highest end minus lowest start.
    /// (The builders lay blocks out contiguously, so this equals the true
    /// instruction bytes for generated programs.)
    pub fn footprint_bytes(&self) -> u64 {
        if self.blocks.is_empty() {
            return 0;
        }
        self.blocks.last().unwrap().end() - self.blocks[0].start
    }

    /// All blocks, in address order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// The block containing `pc`, if any.
    pub fn block_at(&self, pc: Addr) -> Option<&BasicBlock> {
        let idx = self.blocks.partition_point(|b| b.start <= pc);
        if idx == 0 {
            return None;
        }
        let b = &self.blocks[idx - 1];
        b.contains(pc).then_some(b)
    }

    /// The block *starting* at `pc`, if any.
    pub fn block_starting_at(&self, pc: Addr) -> Option<&BasicBlock> {
        let idx = self.blocks.binary_search_by_key(&pc, |b| b.start).ok()?;
        Some(&self.blocks[idx])
    }

    /// The static instruction at `pc`, if mapped.
    pub fn inst_at(&self, pc: Addr) -> Option<&StaticInst> {
        self.block_at(pc)?.inst_at(pc)
    }

    /// True when `pc` addresses a mapped instruction.
    pub fn is_mapped(&self, pc: Addr) -> bool {
        self.inst_at(pc).is_some()
    }
}

/// Incrementally assembles a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    blocks: Vec<BasicBlock>,
    entry: Option<Addr>,
}

impl ProgramBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the entry point (defaults to the lowest block start).
    pub fn entry(&mut self, pc: Addr) -> &mut Self {
        self.entry = Some(pc);
        self
    }

    /// Add a block.  Ids are reassigned on `finish` to address order.
    pub fn push(&mut self, block: BasicBlock) -> &mut Self {
        self.blocks.push(block);
        self
    }

    /// Next free address after all blocks added so far (for contiguous
    /// layout), or `base` if none.
    pub fn cursor(&self, base: Addr) -> Addr {
        self.blocks.iter().map(|b| b.end()).max().unwrap_or(base)
    }

    /// Validate everything and produce the immutable program.
    pub fn finish(mut self) -> Result<Program, ProgramError> {
        if self.blocks.is_empty() {
            return Err(ProgramError::Empty);
        }
        self.blocks.sort_by_key(|b| b.start);
        for (i, b) in self.blocks.iter_mut().enumerate() {
            b.id = BlockId(i as u32);
        }
        for w in self.blocks.windows(2) {
            if w[1].start < w[0].end() {
                return Err(ProgramError::Overlap {
                    a: w[0].id,
                    b: w[1].id,
                });
            }
        }
        for b in &self.blocks {
            b.validate().map_err(ProgramError::InvalidBlock)?;
        }
        let entry = self.entry.unwrap_or(self.blocks[0].start);
        let prog = Program {
            blocks: self.blocks,
            entry,
        };
        // Every static successor and the entry must resolve.
        if !prog.is_mapped(prog.entry) {
            return Err(ProgramError::DanglingTarget {
                from: BlockId(0),
                target: prog.entry,
            });
        }
        for b in prog.blocks() {
            for succ in b.term.static_successors() {
                if !prog.is_mapped(succ) {
                    return Err(ProgramError::DanglingTarget {
                        from: b.id,
                        target: succ,
                    });
                }
            }
        }
        Ok(prog)
    }
}

/// Convenience: build a straight-line block of `n` ALU instructions ending
/// with the given terminator CTI (used heavily in tests across the
/// workspace).
pub fn straightline_block(start: Addr, n_plain: usize, term: Terminator) -> BasicBlock {
    use crate::inst::{OpClass, Reg};
    let mut insts = Vec::with_capacity(n_plain + 1);
    for i in 0..n_plain {
        insts.push(StaticInst::plain(
            start + i as u64 * INST_BYTES,
            OpClass::IntAlu,
            Some(Reg::int((i % 30) as u8 + 1)),
            Some(Reg::int(((i + 1) % 30) as u8 + 1)),
            None,
        ));
    }
    let tail = start + n_plain as u64 * INST_BYTES;
    match term {
        Terminator::CondBranch { taken, .. } => {
            insts.push(StaticInst::cti(tail, OpClass::CondBranch, Some(taken)))
        }
        Terminator::Jump { target } => {
            insts.push(StaticInst::cti(tail, OpClass::Jump, Some(target)))
        }
        Terminator::Call { target, .. } => {
            insts.push(StaticInst::cti(tail, OpClass::Call, Some(target)))
        }
        Terminator::Return => insts.push(StaticInst::cti(tail, OpClass::Return, None)),
        Terminator::FallThrough { .. } => {}
    }
    BasicBlock {
        id: BlockId(u32::MAX),
        start,
        insts,
        term,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::OpClass;

    fn two_block_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.push(straightline_block(
            0x1000,
            3,
            Terminator::CondBranch {
                taken: 0x1000,
                not_taken: 0x1010,
            },
        ));
        pb.push(straightline_block(0x1010, 4, Terminator::Return));
        pb.finish().unwrap()
    }

    #[test]
    fn lookup_paths() {
        let p = two_block_program();
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.num_insts(), 9);
        assert_eq!(p.entry(), 0x1000);
        assert_eq!(p.footprint_bytes(), 0x24);
        assert!(p.block_at(0x100c).unwrap().contains(0x100c));
        assert_eq!(p.inst_at(0x100c).unwrap().op, OpClass::CondBranch);
        assert_eq!(p.inst_at(0x1020).unwrap().op, OpClass::Return);
        assert!(p.inst_at(0x0).is_none());
        assert!(p.inst_at(0x1024).is_none());
        assert!(p.block_starting_at(0x1010).is_some());
        assert!(p.block_starting_at(0x1014).is_none());
    }

    #[test]
    fn rejects_overlap() {
        let mut pb = ProgramBuilder::new();
        pb.push(straightline_block(
            0x1000,
            4,
            Terminator::FallThrough { next: 0x1014 },
        ));
        pb.push(straightline_block(0x1008, 4, Terminator::Return));
        assert!(matches!(pb.finish(), Err(ProgramError::Overlap { .. })));
    }

    #[test]
    fn rejects_dangling_target() {
        let mut pb = ProgramBuilder::new();
        pb.push(straightline_block(
            0x1000,
            2,
            Terminator::Jump { target: 0xdead0 },
        ));
        assert!(matches!(
            pb.finish(),
            Err(ProgramError::DanglingTarget { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            ProgramBuilder::new().finish(),
            Err(ProgramError::Empty)
        ));
    }

    #[test]
    fn fallthrough_must_be_contiguous() {
        let mut pb = ProgramBuilder::new();
        // FallThrough block whose `next` skips a gap: block validation fails.
        pb.push(straightline_block(
            0x1000,
            2,
            Terminator::FallThrough { next: 0x2000 },
        ));
        pb.push(straightline_block(0x2000, 2, Terminator::Return));
        assert!(matches!(pb.finish(), Err(ProgramError::InvalidBlock(_))));
    }

    #[test]
    fn cursor_tracks_layout() {
        let mut pb = ProgramBuilder::new();
        assert_eq!(pb.cursor(0x400), 0x400);
        pb.push(straightline_block(0x400, 3, Terminator::Return));
        assert_eq!(pb.cursor(0x400), 0x400 + 4 * 4);
    }
}
