//! # prestage-json
//!
//! A minimal JSON value tree with a hand-written parser and a
//! deterministic writer — the one serialization substrate shared by the
//! [`ExperimentSpec`] API, the `prestage shard`/`merge` files, and the CI
//! perf artifacts.  The vendored `serde` shim has no data-format backend
//! (vendor/README.md), so everything that crosses a process boundary in
//! this workspace goes through this module instead.
//!
//! Design constraints, in order:
//!
//! 1. **Integers stay exact.** Counters and seeds are `u64`; routing them
//!    through `f64` would corrupt values above 2^53.  [`Json::Int`] holds
//!    `i128` and is emitted verbatim, so a shard written on one host merges
//!    bit-exactly on another.
//! 2. **Output is deterministic.** Object keys keep insertion order, floats
//!    are printed in their shortest round-trip form (with a forced `.0` for
//!    integral values so they re-parse as floats), and there is exactly one
//!    rendering per value tree — equal trees produce equal bytes, which is
//!    what lets CI `diff` a merged shard run against a single-process run.
//! 3. **Errors carry position.** [`Json::parse`] reports the byte offset
//!    and a human-readable reason, matching the workspace's loud-parsing
//!    policy.
//!
//! Non-goals: streaming, zero-copy, or full `serde` integration.  The
//! trees involved are kilobytes.
//!
//! [`ExperimentSpec`]: https://docs.rs/prestage-sim

use std::fmt;

/// A parsed JSON value.
///
/// Numbers are split into [`Json::Int`] (no decimal point or exponent in
/// the source; exact) and [`Json::Float`] (everything else) so that `u64`
/// counters survive a round-trip unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in insertion order (preserved by the writer).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset into the input plus a reason.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Nesting beyond this depth is rejected rather than risking a stack
/// overflow on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, reason: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            reason: reason.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected '{lit}'"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return self.err("nesting deeper than 128 levels");
        }
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']' in array"),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return self.err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.expect_byte(b':')?;
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return self.err("expected ',' or '}' in object"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                // Surrogate pairs are not needed by any
                                // artifact this workspace writes.
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    // prestage: allow(unwrap-in-lib, the loop above advanced pos over continuation bytes of input already required to be valid UTF-8, so the slice is valid by construction)
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // prestage: allow(unwrap-in-lib, the slice holds only ASCII digit/sign/exponent bytes matched by the loop above — always valid UTF-8)
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            match text.parse::<f64>() {
                Ok(v) if v.is_finite() => Ok(Json::Float(v)),
                _ => self.err(format!("bad number {text:?}")),
            }
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .or_else(|_| self.err(format!("bad integer {text:?}")))
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            // prestage: allow(truncating-cast, char to u32 is a widening conversion — every char is a valid u32 code point; the rule is syntactic and cannot see the source type)
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Print a float so it re-parses as a float: Rust's shortest round-trip
/// form, with `.0` forced onto integral values (otherwise `1.0` would be
/// written as `1` and come back as [`Json::Int`]).
fn float_repr(v: f64) -> String {
    assert!(
        v.is_finite(),
        "JSON cannot represent a non-finite float ({v})"
    );
    let s = format!("{v}");
    if s.bytes().any(|b| b == b'.' || b == b'e' || b == b'E') {
        s
    } else {
        format!("{s}.0")
    }
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed, any
    /// other trailing content rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing content after document");
        }
        Ok(v)
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented rendering (2 spaces per level) with a trailing newline —
    /// the on-disk format of every artifact this workspace writes.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, padc) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * (level + 1)),
                " ".repeat(w * level),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(v) => out.push_str(&float_repr(*v)),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&padc);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&padc);
                out.push('}');
            }
        }
    }

    /// Build an object from key/value pairs (insertion order preserved).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    // -- Accessors: `None` on type mismatch, so callers surface their own
    //    context-bearing errors. --

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object keys in insertion order (used to reject unknown fields).
    pub fn keys(&self) -> Option<Vec<&str>> {
        match self {
            Json::Obj(pairs) => Some(pairs.iter().map(|(k, _)| k.as_str()).collect()),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_i128().and_then(|i| u64::try_from(i).ok())
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_i128().and_then(|i| usize::try_from(i).ok())
    }

    /// Numeric value as `f64` ([`Json::Int`] widens; may round above 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i128)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i128)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v as i128)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        match v {
            Some(v) => v.into(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-7", "42"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.render(), text);
        }
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::Float(1.5).render(), "1.5");
    }

    #[test]
    fn u64_counters_stay_exact() {
        // 2^53 + 1 is the first integer f64 cannot hold.
        let v = Json::from(u64::MAX);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
        let boundary = (1u64 << 53) + 1;
        let back = Json::parse(&Json::from(boundary).render()).unwrap();
        assert_eq!(back.as_u64(), Some(boundary));
    }

    #[test]
    fn integral_floats_stay_floats() {
        // 1.0 must not collapse to the integer 1 across a round-trip.
        let v = Json::Float(1.0);
        assert_eq!(v.render(), "1.0");
        assert_eq!(Json::parse("1.0").unwrap(), Json::Float(1.0));
        // Shortest-repr exponent forms parse back exactly.
        let tiny = Json::Float(1e-7);
        assert_eq!(Json::parse(&tiny.render()).unwrap(), tiny);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for v in [0.125, std::f64::consts::PI, 1e300, -2.5e-10, 0.1 + 0.2] {
            let back = Json::parse(&Json::Float(v).render()).unwrap();
            assert_eq!(back, Json::Float(v), "{v}");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_floats_refuse_to_serialize() {
        Json::Float(f64::NAN).render();
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a \"quoted\\path\"\nwith\ttabs and µnicode";
        let v = Json::Str(s.to_string());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(
            Json::parse(r#""µm""#).unwrap(),
            Json::Str("\u{b5}m".into())
        );
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::obj([
            ("name", "fig1".into()),
            ("sizes", Json::Arr(vec![256u64.into(), 512u64.into()])),
            ("bench", Json::Null),
            (
                "inner",
                Json::obj([("ok", true.into()), ("x", 2.5.into())]),
            ),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
        assert_eq!(v.get("name").and_then(Json::as_str), Some("fig1"));
        assert_eq!(v.get("bench").map(Json::is_null), Some(true));
        assert_eq!(
            v.keys().unwrap(),
            vec!["name", "sizes", "bench", "inner"]
        );
    }

    #[test]
    fn pretty_output_is_stable() {
        let v = Json::obj([("a", 1u64.into()), ("b", Json::Arr(vec![]))]);
        assert_eq!(v.pretty(), "{\n  \"a\": 1,\n  \"b\": []\n}\n");
    }

    #[test]
    fn errors_carry_position_and_reason() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(e.offset, 6);
        let e = Json::parse("[1, 2").unwrap_err();
        assert!(e.reason.contains("expected"));
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("1e999").is_err(), "overflowing float rejected");
        // Duplicate keys would make `get` ambiguous.
        let e = Json::parse("{\"a\": 1, \"a\": 2}").unwrap_err();
        assert!(e.reason.contains("duplicate"));
    }

    #[test]
    fn depth_bomb_rejected() {
        let bomb = "[".repeat(5_000);
        let e = Json::parse(&bomb).unwrap_err();
        assert!(e.reason.contains("nesting"));
    }
}
