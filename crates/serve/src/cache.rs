//! The content-addressed result store.
//!
//! Every entry is keyed by a canonical JSON value — a cell identity or a
//! portable sweep spec — and holds one JSON value.  The key's compact
//! rendering is hashed ([`content_hash`]) to pick the entry file
//! `<root>/<hh>/<hash>.json` (`hh` = first two hex digits, a fan-out
//! directory), and the file stores *both* the key and the value, so a get
//! verifies the stored key against the requested one byte-for-byte: a
//! hash collision is a loud named error, never a silently wrong result.
//!
//! Writes go through a temp file + atomic rename, so a reader (or a
//! crashed writer) never observes a half-written entry, and concurrent
//! writers of the same key are idempotent — the values are deterministic,
//! so last-rename-wins is byte-identical to first-rename-wins.

use prestage_json::Json;
use std::path::{Path, PathBuf};

/// On-disk schema of one cache entry file.
pub const CACHE_SCHEMA: u64 = 1;

/// 128-bit FNV-1a over `bytes`, as 32 hex digits: two independent 64-bit
/// lanes with distinct offset bases, each avalanched through a
/// xorshift-multiply finalizer (raw FNV leaves short inputs' differences
/// stuck in the low bits, which would collapse the leading-byte fan-out
/// directories).  Not cryptographic — collision *detection* is the
/// stored-key comparison in [`Store::get`]; the hash only has to spread
/// entries across file names.
pub fn content_hash(bytes: &[u8]) -> String {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn avalanche(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^ (x >> 33)
    }
    let mut a: u64 = 0xcbf2_9ce4_8422_2325;
    let mut b: u64 = 0x6c62_272e_07bb_0142;
    for &byte in bytes {
        a = (a ^ u64::from(byte)).wrapping_mul(PRIME);
        b = (b ^ u64::from(byte.rotate_left(3))).wrapping_mul(PRIME);
    }
    format!("{:016x}{:016x}", avalanche(a), avalanche(b))
}

/// A content-addressed key → value store rooted at one directory.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: &Path) -> Result<Store, String> {
        std::fs::create_dir_all(root)
            .map_err(|e| format!("cannot create cache root {}: {e}", root.display()))?;
        Ok(Store {
            root: root.to_path_buf(),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, hash: &str) -> PathBuf {
        self.root.join(&hash[..2]).join(format!("{hash}.json"))
    }

    /// Look `key` up.  `Ok(None)` on a miss; a present entry whose stored
    /// key does not match `key` byte-for-byte (a 128-bit hash collision,
    /// or a corrupted entry) is a loud error naming the entry file.
    pub fn get(&self, key: &Json) -> Result<Option<Json>, String> {
        let key_text = key.render();
        let path = self.entry_path(&content_hash(key_text.as_bytes()));
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read cache entry {}: {e}", path.display())),
        };
        let v = Json::parse(&text)
            .map_err(|e| format!("cache entry {}: {e}", path.display()))?;
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("cache entry {} has no schema field", path.display()))?;
        if schema != CACHE_SCHEMA {
            return Err(format!(
                "cache entry {} has schema {schema}, this build reads {CACHE_SCHEMA}",
                path.display()
            ));
        }
        let stored_key = v
            .get("key")
            .ok_or_else(|| format!("cache entry {} has no key field", path.display()))?;
        if stored_key.render() != key_text {
            return Err(format!(
                "cache entry {} stores a different key than the one that hashed \
                 to it — hash collision or corrupted entry; remove the file to recover",
                path.display()
            ));
        }
        let value = v
            .get("value")
            .ok_or_else(|| format!("cache entry {} has no value field", path.display()))?;
        Ok(Some(value.clone()))
    }

    /// Insert `key` → `value` (idempotent: rewriting a key with the same
    /// deterministic value is byte-identical either way).  Atomic via
    /// temp file + rename: no reader ever sees a partial entry.
    pub fn put(&self, key: &Json, value: &Json) -> Result<(), String> {
        let key_text = key.render();
        let hash = content_hash(key_text.as_bytes());
        let path = self.entry_path(&hash);
        let dir = path.parent().unwrap_or(&self.root);
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
        let entry = Json::obj([
            ("schema", CACHE_SCHEMA.into()),
            ("key", key.clone()),
            ("value", value.clone()),
        ])
        .pretty();
        let tmp = dir.join(format!("{hash}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, &entry)
            .map_err(|e| format!("cannot write cache temp {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("cannot move cache entry into place at {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let d = std::env::temp_dir().join(format!(
                "prestage-cache-test-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&d);
            std::fs::create_dir_all(&d).unwrap();
            TempDir(d)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn hash_is_stable_and_spread() {
        let h = content_hash(b"hello");
        assert_eq!(h.len(), 32);
        assert_eq!(h, content_hash(b"hello"));
        assert_ne!(h, content_hash(b"hellp"));
        // Single-bit flips land in different fan-out dirs often enough.
        let dirs: std::collections::BTreeSet<String> = (0u8..64)
            .map(|i| content_hash(&[i])[..2].to_string())
            .collect();
        assert!(dirs.len() > 16, "fan-out too narrow: {dirs:?}");
    }

    #[test]
    fn get_put_roundtrip_and_miss() {
        let tmp = TempDir::new("roundtrip");
        let store = Store::open(&tmp.0).unwrap();
        let key = Json::obj([("kind", "cell".into()), ("l1", 1024usize.into())]);
        assert_eq!(store.get(&key).unwrap(), None);
        let value = Json::obj([("cycles", 123u64.into())]);
        store.put(&key, &value).unwrap();
        assert_eq!(store.get(&key).unwrap(), Some(value.clone()));
        // Idempotent re-put.
        store.put(&key, &value).unwrap();
        assert_eq!(store.get(&key).unwrap(), Some(value));
        // A different key misses.
        let other = Json::obj([("kind", "cell".into()), ("l1", 2048usize.into())]);
        assert_eq!(store.get(&other).unwrap(), None);
    }

    #[test]
    fn collision_is_loud() {
        let tmp = TempDir::new("collision");
        let store = Store::open(&tmp.0).unwrap();
        let key = Json::obj([("kind", "sweep".into())]);
        store.put(&key, &Json::Null).unwrap();
        // Corrupt the entry: swap the stored key for a different one.
        let hash = content_hash(key.render().as_bytes());
        let path = tmp.0.join(&hash[..2]).join(format!("{hash}.json"));
        let forged = Json::obj([
            ("schema", CACHE_SCHEMA.into()),
            ("key", Json::obj([("kind", "forged".into())])),
            ("value", Json::Null),
        ])
        .pretty();
        std::fs::write(&path, forged).unwrap();
        let err = store.get(&key).unwrap_err();
        assert!(err.contains("different key"), "{err}");
    }
}
