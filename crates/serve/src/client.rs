//! Client-side plumbing shared by the `prestage submit`/`status`/`fetch`
//! verbs: daemon discovery through the state directory's address file,
//! and one-shot framed request/response exchanges.

use crate::protocol::{read_frame, write_frame, Request, Response};
use crate::server::ADDR_FILE;
use std::net::TcpStream;
use std::path::Path;

/// Resolve the daemon address: an explicit `--addr` wins; otherwise read
/// the address file the daemon wrote into its state directory.
pub fn resolve_addr(explicit: Option<&str>, state_dir: &Path) -> Result<String, String> {
    if let Some(a) = explicit {
        return Ok(a.to_string());
    }
    let path = state_dir.join(ADDR_FILE);
    match std::fs::read_to_string(&path) {
        Ok(s) => Ok(s.trim().to_string()),
        Err(e) => Err(format!(
            "cannot read daemon address file {} (is `prestage serve` running \
             with this state dir? pass --addr to override): {e}",
            path.display()
        )),
    }
}

/// One request/response exchange with the daemon at `addr`.
pub fn request(addr: &str, req: &Request) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to the daemon at {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    write_frame(&mut stream, &req.to_json())?;
    let v = read_frame(&mut stream)?.ok_or_else(|| {
        format!("daemon at {addr} closed the connection without a response frame")
    })?;
    Response::from_json(&v)
}
