//! # prestage-serve
//!
//! The always-on sweep orchestrator behind `prestage serve` and its
//! client verbs `submit`, `status`, and `fetch`.
//!
//! The daemon accepts [`ExperimentSpec`](prestage_sim::ExperimentSpec)
//! submissions over a tiny length-prefixed JSON frame protocol
//! ([`protocol`]), validates them through the same strict parser the CLI
//! uses, splits each sweep into contiguous cell-range jobs on a
//! crash-safe journaled queue ([`queue`]), and evaluates jobs on a
//! configurable worker pool ([`scheduler`]) — in-process on the sim's
//! cancellable runner, or as child `prestage shard` processes.  Every
//! cell result lands in a content-addressed store ([`cache`]) keyed by
//! the cell's *identity* (not its grid position), so overlapping sweeps
//! share work, and a finished sweep's canonical grid artifact is cached
//! under the content hash of its portable spec — resubmitting the same
//! experiment is a pure cache hit, byte-identical to `prestage run`.
//!
//! Determinism is the contract that makes all of this safe: cells are
//! bit-exact for any pool width, host, or dispatch mode, so cache
//! entries written by different workers (or a stolen backup attempt of
//! a straggling job) are interchangeable, and a kill/restart resumes
//! from the journal to the same bytes a single uninterrupted run
//! produces.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod queue;
pub mod scheduler;
pub mod server;

pub use cache::{content_hash, Store, CACHE_SCHEMA};
pub use client::{request, resolve_addr};
pub use protocol::{
    decode_frame, encode_frame, encode_frame_text, read_frame, write_frame, Request, Response,
    SweepStatus, FRAME_HEADER, FRAME_MAGIC, MAX_FRAME,
};
pub use queue::{replay, JobRange, Journal, QueueState, JOURNAL_FILE};
pub use scheduler::{split_jobs, sweep_id, Dispatch, Scheduler, ServeConfig};
pub use server::{check, serve, ADDR_FILE};

use std::path::PathBuf;

/// Default daemon state directory: `serve/` under the workspace results
/// dir, so `PRESTAGE_RESULTS_DIR` anchors the daemon exactly like every
/// other artifact path (and the default is cwd-independent).
pub fn default_state_dir() -> PathBuf {
    prestage_sim::results_dir().join("serve")
}
