//! The `prestage serve` wire protocol: length-prefixed JSON frames.
//!
//! A frame is `b"PSRV"` (4 magic bytes) + a little-endian `u32` payload
//! length + that many bytes of UTF-8 JSON.  One request frame gets one
//! response frame; connections may pipeline several request/response
//! pairs.  The payload grammar is a tagged object (`{"type": ...}`) parsed
//! strictly on both sides — unknown fields and unknown types are rejected
//! by name, and every framing error carries the byte offset it was
//! detected at, matching the loud-rejection policy of the other wire
//! formats (and fuzzed the same way: the `frame` target feeds arbitrary
//! bytes through [`decode_frame`] + [`Request::from_json`]).

use prestage_json::Json;
use prestage_sim::ExperimentSpec;
use std::io::{Read, Write};

/// Leading magic of every frame — a cheap guard against a stray client
/// (an HTTP probe, a chatty port scanner) being parsed as JSON.
pub const FRAME_MAGIC: [u8; 4] = *b"PSRV";

/// Frame header size: magic + little-endian `u32` payload length.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a frame payload.  Artifacts for paper-size grids are a
/// few MB; anything larger than this is a corrupt length field, and
/// refusing it here keeps a hostile header from asking the daemon to
/// allocate 4 GB.
pub const MAX_FRAME: usize = 32 << 20;

/// Encode one value as a frame (header + rendered JSON payload).
pub fn encode_frame(v: &Json) -> Vec<u8> {
    encode_frame_text(&v.render())
}

/// [`encode_frame`] for pre-rendered payload text (the fuzz seeds use
/// this to build frames around deliberately malformed payloads).
pub fn encode_frame_text(payload: &str) -> Vec<u8> {
    let len = u32::try_from(payload.len()).unwrap_or_else(|_| {
        panic!(
            "frame payload of {} bytes overflows the u32 length header",
            payload.len()
        )
    });
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Decode one frame from the front of `bytes`: the payload value plus the
/// number of bytes consumed.  Total — every malformed input is an `Err`
/// naming the offending byte offset or header field, never a panic (the
/// `frame` fuzz target holds it to that).
pub fn decode_frame(bytes: &[u8]) -> Result<(Json, usize), String> {
    if bytes.len() < FRAME_HEADER {
        return Err(format!(
            "frame header truncated: {} byte(s), need {FRAME_HEADER}",
            bytes.len()
        ));
    }
    if bytes[..4] != FRAME_MAGIC {
        return Err(format!(
            "bad frame magic at byte offset 0: {:02x?} (want {:02x?})",
            &bytes[..4],
            FRAME_MAGIC
        ));
    }
    let len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
    if len > MAX_FRAME {
        return Err(format!(
            "frame length header claims {len} bytes, over the {MAX_FRAME}-byte cap"
        ));
    }
    let end = FRAME_HEADER + len;
    if bytes.len() < end {
        return Err(format!(
            "frame payload truncated: length header claims {len} byte(s), \
             only {} present after the header",
            bytes.len() - FRAME_HEADER
        ));
    }
    let text = std::str::from_utf8(&bytes[FRAME_HEADER..end]).map_err(|e| {
        format!(
            "frame payload is not UTF-8 at payload byte offset {}",
            e.valid_up_to()
        )
    })?;
    let v = Json::parse(text).map_err(|e| format!("frame payload: {e}"))?;
    Ok((v, end))
}

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, v: &Json) -> Result<(), String> {
    let bytes = encode_frame(v);
    w.write_all(&bytes)
        .and_then(|()| w.flush())
        .map_err(|e| format!("writing frame: {e}"))
}

/// Read one frame from a stream.  `Ok(None)` on clean EOF before any
/// header byte (the peer hung up between frames); errors name what broke.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, String> {
    let mut header = [0u8; FRAME_HEADER];
    match r.read(&mut header) {
        Ok(0) => return Ok(None),
        Ok(mut got) => {
            while got < FRAME_HEADER {
                let n = r
                    .read(&mut header[got..])
                    .map_err(|e| format!("reading frame header: {e}"))?;
                if n == 0 {
                    return Err(format!(
                        "connection closed mid-header: {got} of {FRAME_HEADER} byte(s)"
                    ));
                }
                got += n;
            }
        }
        Err(e) => return Err(format!("reading frame header: {e}")),
    }
    if header[..4] != FRAME_MAGIC {
        return Err(format!(
            "bad frame magic at byte offset 0: {:02x?} (want {:02x?})",
            &header[..4],
            FRAME_MAGIC
        ));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_FRAME {
        return Err(format!(
            "frame length header claims {len} bytes, over the {MAX_FRAME}-byte cap"
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| format!("reading {len}-byte frame payload: {e}"))?;
    let text = std::str::from_utf8(&payload).map_err(|e| {
        format!(
            "frame payload is not UTF-8 at payload byte offset {}",
            e.valid_up_to()
        )
    })?;
    Json::parse(text)
        .map(Some)
        .map_err(|e| format!("frame payload: {e}"))
}

/// Reject objects carrying keys outside `known` — a misspelled field must
/// not silently become a default.
fn reject_unknown(v: &Json, what: &str, known: &[&str]) -> Result<(), String> {
    let keys = v
        .keys()
        .ok_or_else(|| format!("{what} must be a JSON object"))?;
    for k in keys {
        if !known.contains(&k) {
            return Err(format!("unknown field {k:?} in {what}"));
        }
    }
    Ok(())
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Submit a sweep; the daemon answers with its identity and progress.
    Submit {
        /// The experiment to run, validated server-side like `prestage run`.
        spec: ExperimentSpec,
    },
    /// Progress counters for one sweep (`Some`) or all known sweeps.
    Status {
        /// Sweep id, or `None` for everything the daemon knows about.
        sweep: Option<String>,
    },
    /// Fetch a completed sweep's grid artifact.
    Fetch {
        /// Sweep id as returned by submit.
        sweep: String,
    },
    /// Ask the daemon to drain in-flight jobs and exit.
    Shutdown,
}

impl Request {
    /// Serialize as the wire payload object.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::obj([("type", "ping".into())]),
            Request::Submit { spec } => Json::obj([
                ("type", "submit".into()),
                ("spec", spec.to_json_value()),
            ]),
            Request::Status { sweep } => Json::obj([
                ("type", "status".into()),
                ("sweep", sweep.clone().into()),
            ]),
            Request::Fetch { sweep } => Json::obj([
                ("type", "fetch".into()),
                ("sweep", sweep.as_str().into()),
            ]),
            Request::Shutdown => Json::obj([("type", "shutdown".into())]),
        }
    }

    /// Strict parse of a request payload: the `type` tag selects the
    /// variant, required fields must be present, unknown fields are
    /// rejected by name.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let tag = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("request has no string \"type\" field")?;
        match tag {
            "ping" => {
                reject_unknown(v, "ping request", &["type"])?;
                Ok(Request::Ping)
            }
            "submit" => {
                reject_unknown(v, "submit request", &["type", "spec"])?;
                let spec = ExperimentSpec::from_json_value(
                    v.get("spec").ok_or("submit request has no spec field")?,
                )?;
                Ok(Request::Submit { spec })
            }
            "status" => {
                reject_unknown(v, "status request", &["type", "sweep"])?;
                let sweep = match v.get("sweep") {
                    None | Some(Json::Null) => None,
                    Some(s) => Some(
                        s.as_str()
                            .ok_or("status request sweep field must be a string or null")?
                            .to_string(),
                    ),
                };
                Ok(Request::Status { sweep })
            }
            "fetch" => {
                reject_unknown(v, "fetch request", &["type", "sweep"])?;
                let sweep = v
                    .get("sweep")
                    .and_then(Json::as_str)
                    .ok_or("fetch request has no string sweep field")?;
                Ok(Request::Fetch {
                    sweep: sweep.to_string(),
                })
            }
            "shutdown" => {
                reject_unknown(v, "shutdown request", &["type"])?;
                Ok(Request::Shutdown)
            }
            other => Err(format!("unknown request type {other:?}")),
        }
    }
}

/// Progress counters for one sweep, as reported by `status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepStatus {
    /// Content-addressed sweep id.
    pub sweep: String,
    /// `"queued"`, `"running"`, `"done"` or `"failed: <why>"`.
    pub state: String,
    /// Total cells in the sweep grid.
    pub cells_total: usize,
    /// Cells with results so far (cache hits included).
    pub cells_done: usize,
    /// Cells served straight from the content-addressed cache.
    pub cached_cells: usize,
    /// Total jobs the sweep was split into (0 for a pure cache hit).
    pub jobs_total: usize,
    /// Jobs completed so far.
    pub jobs_done: usize,
}

impl SweepStatus {
    fn to_json(&self) -> Json {
        Json::obj([
            ("sweep", self.sweep.as_str().into()),
            ("state", self.state.as_str().into()),
            ("cells_total", self.cells_total.into()),
            ("cells_done", self.cells_done.into()),
            ("cached_cells", self.cached_cells.into()),
            ("jobs_total", self.jobs_total.into()),
            ("jobs_done", self.jobs_done.into()),
        ])
    }

    fn from_json(v: &Json) -> Result<SweepStatus, String> {
        reject_unknown(
            v,
            "sweep status",
            &[
                "sweep",
                "state",
                "cells_total",
                "cells_done",
                "cached_cells",
                "jobs_total",
                "jobs_done",
            ],
        )?;
        let field = |key: &str| {
            v.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("sweep status field {key:?} missing or not an integer"))
        };
        let s = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("sweep status field {key:?} missing or not a string"))
        };
        Ok(SweepStatus {
            sweep: s("sweep")?,
            state: s("state")?,
            cells_total: field("cells_total")?,
            cells_done: field("cells_done")?,
            cached_cells: field("cached_cells")?,
            jobs_total: field("jobs_total")?,
            jobs_done: field("jobs_done")?,
        })
    }
}

/// One daemon response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to ping.
    Pong,
    /// Answer to submit: the sweep's identity and how far along it is.
    Submitted {
        /// Content-addressed sweep id (hash of the portable spec JSON).
        sweep: String,
        /// Total cells in the grid.
        cells: usize,
        /// Jobs enqueued for this submission (0 on a pure cache hit).
        jobs: usize,
        /// Cells already present in the content-addressed cache.
        cached_cells: usize,
        /// Whether the artifact is already available to fetch.
        complete: bool,
    },
    /// Answer to status.
    Status {
        /// Counters per sweep, sorted by sweep id.
        sweeps: Vec<SweepStatus>,
    },
    /// Answer to fetch: the canonical grid artifact, byte-identical to
    /// `prestage run --out` of the same spec.
    Artifact {
        /// Sweep id the artifact belongs to.
        sweep: String,
        /// The artifact text.
        artifact: String,
    },
    /// Any request-level failure, with the reason.
    Error {
        /// What went wrong (named field/offset, per the rejection policy).
        error: String,
    },
    /// Answer to shutdown: the daemon is draining.
    ShuttingDown,
}

impl Response {
    /// Serialize as the wire payload object.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Pong => Json::obj([("type", "pong".into())]),
            Response::Submitted {
                sweep,
                cells,
                jobs,
                cached_cells,
                complete,
            } => Json::obj([
                ("type", "submitted".into()),
                ("sweep", sweep.as_str().into()),
                ("cells", (*cells).into()),
                ("jobs", (*jobs).into()),
                ("cached_cells", (*cached_cells).into()),
                ("complete", (*complete).into()),
            ]),
            Response::Status { sweeps } => Json::obj([
                ("type", "status".into()),
                (
                    "sweeps",
                    Json::Arr(sweeps.iter().map(SweepStatus::to_json).collect()),
                ),
            ]),
            Response::Artifact { sweep, artifact } => Json::obj([
                ("type", "artifact".into()),
                ("sweep", sweep.as_str().into()),
                ("artifact", artifact.as_str().into()),
            ]),
            Response::Error { error } => Json::obj([
                ("type", "error".into()),
                ("error", error.as_str().into()),
            ]),
            Response::ShuttingDown => Json::obj([("type", "shutting_down".into())]),
        }
    }

    /// Strict parse of a response payload (the client side of
    /// [`Request::from_json`]'s contract).
    pub fn from_json(v: &Json) -> Result<Response, String> {
        let tag = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("response has no string \"type\" field")?;
        match tag {
            "pong" => {
                reject_unknown(v, "pong response", &["type"])?;
                Ok(Response::Pong)
            }
            "submitted" => {
                reject_unknown(
                    v,
                    "submitted response",
                    &["type", "sweep", "cells", "jobs", "cached_cells", "complete"],
                )?;
                let n = |key: &str| {
                    v.get(key).and_then(Json::as_usize).ok_or_else(|| {
                        format!("submitted response field {key:?} missing or not an integer")
                    })
                };
                Ok(Response::Submitted {
                    sweep: v
                        .get("sweep")
                        .and_then(Json::as_str)
                        .ok_or("submitted response has no string sweep field")?
                        .to_string(),
                    cells: n("cells")?,
                    jobs: n("jobs")?,
                    cached_cells: n("cached_cells")?,
                    complete: v
                        .get("complete")
                        .and_then(Json::as_bool)
                        .ok_or("submitted response has no boolean complete field")?,
                })
            }
            "status" => {
                reject_unknown(v, "status response", &["type", "sweeps"])?;
                let sweeps = v
                    .get("sweeps")
                    .and_then(Json::as_arr)
                    .ok_or("status response has no sweeps array")?
                    .iter()
                    .map(SweepStatus::from_json)
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::Status { sweeps })
            }
            "artifact" => {
                reject_unknown(v, "artifact response", &["type", "sweep", "artifact"])?;
                let s = |key: &str| {
                    v.get(key)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| {
                            format!("artifact response field {key:?} missing or not a string")
                        })
                };
                Ok(Response::Artifact {
                    sweep: s("sweep")?,
                    artifact: s("artifact")?,
                })
            }
            "error" => {
                reject_unknown(v, "error response", &["type", "error"])?;
                Ok(Response::Error {
                    error: v
                        .get("error")
                        .and_then(Json::as_str)
                        .ok_or("error response has no string error field")?
                        .to_string(),
                })
            }
            "shutting_down" => {
                reject_unknown(v, "shutting_down response", &["type"])?;
                Ok(Response::ShuttingDown)
            }
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            presets: vec![prestage_sim::ConfigPreset::Base],
            l1_sizes: vec![1 << 10],
            bench: Some(vec!["gzip".into()]),
            warmup_insts: 1_000,
            measure_insts: 4_000,
            ..ExperimentSpec::default()
        }
    }

    #[test]
    fn frame_roundtrip() {
        let v = Request::Submit { spec: tiny_spec() }.to_json();
        let bytes = encode_frame(&v);
        let (back, consumed) = decode_frame(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(back, v);
        // Stream round-trip too.
        let mut cursor = std::io::Cursor::new(bytes);
        let streamed = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(streamed, v);
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn frame_rejections_are_named() {
        let cases: Vec<(Vec<u8>, &str)> = vec![
            (b"PSR".to_vec(), "header truncated"),
            (b"HTTP/1.1    ".to_vec(), "bad frame magic"),
            (
                {
                    let mut b = FRAME_MAGIC.to_vec();
                    b.extend_from_slice(&u32::MAX.to_le_bytes());
                    b
                },
                "over the",
            ),
            (
                {
                    let mut b = FRAME_MAGIC.to_vec();
                    b.extend_from_slice(&8u32.to_le_bytes());
                    b.extend_from_slice(b"abc");
                    b
                },
                "payload truncated",
            ),
            (
                {
                    let mut b = FRAME_MAGIC.to_vec();
                    b.extend_from_slice(&2u32.to_le_bytes());
                    b.extend_from_slice(&[0xff, 0xfe]);
                    b
                },
                "not UTF-8",
            ),
        ];
        for (bytes, want) in cases {
            let err = decode_frame(&bytes).unwrap_err();
            assert!(err.contains(want), "error {err:?} should contain {want:?}");
        }
    }

    #[test]
    fn request_roundtrip_and_strictness() {
        let reqs = vec![
            Request::Ping,
            Request::Submit { spec: tiny_spec() },
            Request::Status { sweep: None },
            Request::Status {
                sweep: Some("abc".into()),
            },
            Request::Fetch {
                sweep: "abc".into(),
            },
            Request::Shutdown,
        ];
        for r in reqs {
            assert_eq!(Request::from_json(&r.to_json()).unwrap(), r);
        }
        let bad = Json::obj([("type", "ping".into()), ("extra", 1u64.into())]);
        assert!(Request::from_json(&bad).unwrap_err().contains("extra"));
        let bad = Json::obj([("type", "teleport".into())]);
        assert!(Request::from_json(&bad).unwrap_err().contains("teleport"));
    }

    #[test]
    fn response_roundtrip() {
        let resps = vec![
            Response::Pong,
            Response::Submitted {
                sweep: "ab12".into(),
                cells: 8,
                jobs: 2,
                cached_cells: 4,
                complete: false,
            },
            Response::Status {
                sweeps: vec![SweepStatus {
                    sweep: "ab12".into(),
                    state: "running".into(),
                    cells_total: 8,
                    cells_done: 3,
                    cached_cells: 1,
                    jobs_total: 2,
                    jobs_done: 0,
                }],
            },
            Response::Artifact {
                sweep: "ab12".into(),
                artifact: "{\n}\n".into(),
            },
            Response::Error {
                error: "spec field \"tech\" unknown".into(),
            },
            Response::ShuttingDown,
        ];
        for r in resps {
            assert_eq!(Response::from_json(&r.to_json()).unwrap(), r);
        }
    }
}
