//! The persistent job queue: an append-only JSON-lines journal.
//!
//! Every state transition the daemon makes is one compact JSON line,
//! appended and flushed *before* the transition is acted on externally
//! (results are written to the cache before `job_done` is appended, so a
//! journaled job is never ahead of its data).  Restart = replay: the
//! journal rebuilds the queue, finished jobs stay finished, and jobs that
//! were in flight when the process died are simply re-enqueued — their
//! cells are mostly cache hits by then, so resume is cheap.
//!
//! Replay is strict with one carve-out: a malformed **final** line is
//! tolerated (a `kill -9` can tear the last append mid-write) and
//! reported; a malformed line anywhere else means real corruption and is
//! a loud error naming the line number.

use prestage_json::Json;
use prestage_sim::ExperimentSpec;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Half-open cell range `[start, end)` of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRange {
    /// First cell (flat grid position).
    pub start: usize,
    /// One past the last cell.
    pub end: usize,
}

impl JobRange {
    /// Number of cells in the job.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Lifecycle of one job during replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Not finished when the journal ended — re-enqueue on resume.
    Pending,
    /// A `job_done` line covers it.
    Done,
}

/// Terminal state of one sweep after replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepOutcome {
    /// Jobs still outstanding (or assembly not journaled).
    InFlight,
    /// `sweep_done` was journaled: the artifact is in the cache.
    Done,
    /// `sweep_failed` was journaled, with the reason.
    Failed(String),
}

/// One sweep reconstructed from the journal.
#[derive(Debug, Clone)]
pub struct SweepRecord {
    /// The submitted spec (as journaled; execution details included).
    pub spec: ExperimentSpec,
    /// Total cells in the sweep grid.
    pub n_cells: usize,
    /// The job split, in job-index order.
    pub jobs: Vec<JobRange>,
    /// Per-job state.
    pub job_state: Vec<JobState>,
    /// Cumulative `job_failed` lines per job (retry bookkeeping).
    pub failures: Vec<u32>,
    /// Terminal state.
    pub outcome: SweepOutcome,
}

/// Everything the journal says about the world.
#[derive(Debug, Default)]
pub struct QueueState {
    /// Sweeps by content-addressed id, in id order.
    pub sweeps: BTreeMap<String, SweepRecord>,
    /// Whether the final journaled event is a clean `shutdown`.
    pub clean_shutdown: bool,
    /// Whether a torn (unparseable) final line was dropped during replay.
    pub torn_tail: bool,
}

impl QueueState {
    /// Sweeps with unfinished jobs — the resume work list, in id order.
    pub fn unfinished(&self) -> Vec<&str> {
        self.sweeps
            .iter()
            .filter(|(_, r)| r.outcome == SweepOutcome::InFlight)
            .map(|(id, _)| id.as_str())
            .collect()
    }
}

/// The append side of the journal.  One line per event, flushed before
/// the caller proceeds; callers serialize appends through the mutex so
/// concurrent workers never interleave partial lines.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

/// Journal file name under the serve state directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

impl Journal {
    /// Open (append mode, creating if needed) the journal at `path`.
    pub fn open(path: &Path) -> Result<Journal, String> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create journal dir {}: {e}", dir.display()))?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Append one event line and flush it to the OS.
    pub fn append(&self, event: &Json) -> Result<(), String> {
        let mut line = event.render();
        line.push('\n');
        let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
        f.write_all(line.as_bytes())
            .and_then(|()| f.flush())
            .map_err(|e| format!("cannot append to journal {}: {e}", self.path.display()))
    }

    /// The `submit` event: a sweep enters the queue.
    pub fn submit(
        &self,
        sweep: &str,
        spec: &ExperimentSpec,
        n_cells: usize,
        jobs: &[JobRange],
    ) -> Result<(), String> {
        self.append(&Json::obj([
            ("event", "submit".into()),
            ("sweep", sweep.into()),
            ("spec", spec.to_json_value()),
            ("n_cells", n_cells.into()),
            (
                "jobs",
                Json::Arr(
                    jobs.iter()
                        .map(|j| Json::Arr(vec![j.start.into(), j.end.into()]))
                        .collect(),
                ),
            ),
        ]))
    }

    /// The `job_done` event: the job's results are safely in the cache.
    pub fn job_done(&self, sweep: &str, job: usize) -> Result<(), String> {
        self.append(&Json::obj([
            ("event", "job_done".into()),
            ("sweep", sweep.into()),
            ("job", job.into()),
        ]))
    }

    /// The `job_failed` event: one attempt failed (the job may retry).
    pub fn job_failed(&self, sweep: &str, job: usize, error: &str) -> Result<(), String> {
        self.append(&Json::obj([
            ("event", "job_failed".into()),
            ("sweep", sweep.into()),
            ("job", job.into()),
            ("error", error.into()),
        ]))
    }

    /// The `sweep_done` event: the merged artifact is in the cache.
    pub fn sweep_done(&self, sweep: &str) -> Result<(), String> {
        self.append(&Json::obj([
            ("event", "sweep_done".into()),
            ("sweep", sweep.into()),
        ]))
    }

    /// The `sweep_failed` event: retries exhausted.
    pub fn sweep_failed(&self, sweep: &str, error: &str) -> Result<(), String> {
        self.append(&Json::obj([
            ("event", "sweep_failed".into()),
            ("sweep", sweep.into()),
            ("error", error.into()),
        ]))
    }

    /// The `shutdown` event: the daemon drained and exited on purpose.
    pub fn shutdown(&self) -> Result<(), String> {
        self.append(&Json::obj([("event", "shutdown".into())]))
    }
}

fn apply_event(state: &mut QueueState, v: &Json, line_no: usize) -> Result<(), String> {
    let tag = v
        .get("event")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("journal line {line_no} has no string event field"))?;
    // Every event except submit/shutdown references an already-submitted
    // sweep; a dangling reference means the journal lost its head.
    let sweep_of = |state: &mut QueueState| -> Result<String, String> {
        let id = v
            .get("sweep")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("journal line {line_no} has no string sweep field"))?;
        if !state.sweeps.contains_key(id) {
            return Err(format!(
                "journal line {line_no} references sweep {id} before its submit line"
            ));
        }
        Ok(id.to_string())
    };
    let job_of = |rec: &SweepRecord| -> Result<usize, String> {
        let job = v
            .get("job")
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("journal line {line_no} has no integer job field"))?;
        if job >= rec.jobs.len() {
            return Err(format!(
                "journal line {line_no} names job {job}, but the sweep has {} job(s)",
                rec.jobs.len()
            ));
        }
        Ok(job)
    };
    state.clean_shutdown = false;
    match tag {
        "submit" => {
            let id = v
                .get("sweep")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("journal line {line_no} has no string sweep field"))?;
            let spec = ExperimentSpec::from_json_value(
                v.get("spec")
                    .ok_or_else(|| format!("journal line {line_no} has no spec field"))?,
            )
            .map_err(|e| format!("journal line {line_no}: {e}"))?;
            let n_cells = v
                .get("n_cells")
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("journal line {line_no} has no integer n_cells"))?;
            let jobs = v
                .get("jobs")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("journal line {line_no} has no jobs array"))?
                .iter()
                .map(|j| {
                    let pair = j.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                        format!("journal line {line_no}: each job must be a [start, end] pair")
                    })?;
                    let (start, end) = (
                        pair[0].as_usize().ok_or_else(|| {
                            format!("journal line {line_no}: job start is not an integer")
                        })?,
                        pair[1].as_usize().ok_or_else(|| {
                            format!("journal line {line_no}: job end is not an integer")
                        })?,
                    );
                    if start >= end || end > n_cells {
                        return Err(format!(
                            "journal line {line_no}: job range {start}..{end} is invalid \
                             for {n_cells} cells"
                        ));
                    }
                    Ok(JobRange { start, end })
                })
                .collect::<Result<Vec<_>, String>>()?;
            // Re-submitting a sweep that already completed (daemon restarted,
            // client resubmitted) is legal; the later submit resets nothing
            // if the sweep already has a record in a terminal state.
            let n_jobs = jobs.len();
            state
                .sweeps
                .entry(id.to_string())
                .or_insert_with(|| SweepRecord {
                    spec,
                    n_cells,
                    jobs,
                    job_state: vec![JobState::Pending; n_jobs],
                    failures: vec![0; n_jobs],
                    outcome: SweepOutcome::InFlight,
                });
        }
        "job_done" => {
            let id = sweep_of(state)?;
            let rec = state.sweeps.get_mut(&id).unwrap_or_else(|| {
                unreachable!("sweep {id} existence checked on journal line {line_no}")
            });
            let job = job_of(rec)?;
            rec.job_state[job] = JobState::Done;
        }
        "job_failed" => {
            let id = sweep_of(state)?;
            let rec = state.sweeps.get_mut(&id).unwrap_or_else(|| {
                unreachable!("sweep {id} existence checked on journal line {line_no}")
            });
            let job = job_of(rec)?;
            rec.failures[job] = rec.failures[job].saturating_add(1);
        }
        "sweep_done" => {
            let id = sweep_of(state)?;
            let rec = state.sweeps.get_mut(&id).unwrap_or_else(|| {
                unreachable!("sweep {id} existence checked on journal line {line_no}")
            });
            rec.outcome = SweepOutcome::Done;
        }
        "sweep_failed" => {
            let id = sweep_of(state)?;
            let error = v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unrecorded failure")
                .to_string();
            let rec = state.sweeps.get_mut(&id).unwrap_or_else(|| {
                unreachable!("sweep {id} existence checked on journal line {line_no}")
            });
            rec.outcome = SweepOutcome::Failed(error);
        }
        "shutdown" => {
            state.clean_shutdown = true;
        }
        other => {
            return Err(format!(
                "journal line {line_no} has unknown event {other:?}"
            ));
        }
    }
    Ok(())
}

/// Replay a journal file into a [`QueueState`].  A missing file is an
/// empty state (first boot).  A malformed final line is dropped and
/// flagged ([`QueueState::torn_tail`]); a malformed line anywhere else is
/// a loud error naming the line number.
pub fn replay(path: &Path) -> Result<QueueState, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(QueueState::default()),
        Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
    };
    let mut state = QueueState::default();
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let line_no = i + 1;
        let last = i + 1 == lines.len();
        let parsed = Json::parse(line).map_err(|e| e.to_string());
        let applied = parsed.and_then(|v| apply_event(&mut state, &v, line_no));
        if let Err(e) = applied {
            if last {
                // A kill -9 can tear the final append mid-line; dropping
                // it only forgets the most recent transition, which replay
                // semantics already tolerate (the job re-runs from cache).
                state.torn_tail = true;
                state.clean_shutdown = false;
                break;
            }
            return Err(format!(
                "journal {} line {line_no} is corrupt mid-file: {e}",
                path.display()
            ));
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            presets: vec![prestage_sim::ConfigPreset::Base],
            l1_sizes: vec![1 << 10, 4 << 10],
            bench: Some(vec!["gzip".into()]),
            warmup_insts: 1_000,
            measure_insts: 4_000,
            ..ExperimentSpec::default()
        }
    }

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let d = std::env::temp_dir().join(format!(
                "prestage-queue-test-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&d);
            std::fs::create_dir_all(&d).unwrap();
            TempDir(d)
        }
        fn journal(&self) -> std::path::PathBuf {
            self.0.join(JOURNAL_FILE)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn missing_journal_is_empty_state() {
        let tmp = TempDir::new("empty");
        let state = replay(&tmp.journal()).unwrap();
        assert!(state.sweeps.is_empty());
        assert!(!state.clean_shutdown);
        assert!(!state.torn_tail);
    }

    #[test]
    fn roundtrip_rebuilds_queue() {
        let tmp = TempDir::new("roundtrip");
        let j = Journal::open(&tmp.journal()).unwrap();
        let jobs = [JobRange { start: 0, end: 1 }, JobRange { start: 1, end: 2 }];
        j.submit("s1", &tiny_spec(), 2, &jobs).unwrap();
        j.job_failed("s1", 1, "worker lost").unwrap();
        j.job_done("s1", 0).unwrap();

        let state = replay(&tmp.journal()).unwrap();
        let rec = &state.sweeps["s1"];
        assert_eq!(rec.jobs.to_vec(), jobs.to_vec());
        assert_eq!(rec.job_state, vec![JobState::Done, JobState::Pending]);
        assert_eq!(rec.failures, vec![0, 1]);
        assert_eq!(rec.outcome, SweepOutcome::InFlight);
        assert_eq!(state.unfinished(), vec!["s1"]);
        assert!(!state.clean_shutdown);

        j.job_done("s1", 1).unwrap();
        j.sweep_done("s1").unwrap();
        j.shutdown().unwrap();
        let state = replay(&tmp.journal()).unwrap();
        assert_eq!(state.sweeps["s1"].outcome, SweepOutcome::Done);
        assert!(state.unfinished().is_empty());
        assert!(state.clean_shutdown);
        assert!(!state.torn_tail);
    }

    #[test]
    fn torn_final_line_is_tolerated_mid_file_corruption_is_not() {
        let tmp = TempDir::new("torn");
        let j = Journal::open(&tmp.journal()).unwrap();
        j.submit("s1", &tiny_spec(), 2, &[JobRange { start: 0, end: 2 }])
            .unwrap();
        // A torn tail: half an append.
        std::fs::OpenOptions::new()
            .append(true)
            .open(tmp.journal())
            .unwrap()
            .write_all(b"{\"event\": \"job_do")
            .unwrap();
        let state = replay(&tmp.journal()).unwrap();
        assert!(state.torn_tail);
        assert_eq!(state.sweeps["s1"].job_state, vec![JobState::Pending]);

        // The same garbage mid-file is refused with the line number.
        std::fs::OpenOptions::new()
            .append(true)
            .open(tmp.journal())
            .unwrap()
            .write_all(b"ne\"}\n{\"event\": \"shutdown\"}\n")
            .unwrap();
        // journal is now: submit / {"event": "job_done"} (no sweep) / shutdown
        let err = replay(&tmp.journal()).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn dangling_references_are_refused() {
        let tmp = TempDir::new("dangling");
        let j = Journal::open(&tmp.journal()).unwrap();
        j.job_done("ghost", 0).unwrap();
        j.shutdown().unwrap();
        let err = replay(&tmp.journal()).unwrap_err();
        assert!(err.contains("before its submit line"), "{err}");
    }
}
