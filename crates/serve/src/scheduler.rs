//! The sweep scheduler: jobs, workers, retries and the two cache layers.
//!
//! A submitted [`ExperimentSpec`] is validated, identified by the content
//! hash of its portable canonical JSON ([`sweep_id`]), split into
//! contiguous cell-range jobs, journaled, and enqueued.  Worker threads
//! pop jobs and evaluate them — in-process on the sim's observed runner,
//! or by dispatching a child `prestage shard` process — writing every
//! cell result into the content-addressed store *before* the job is
//! journaled done, so a crash between the two only re-runs work that is
//! already a cache hit.  When a sweep's last job lands, the scheduler
//! reassembles all cells from the cache through the same spec-checked
//! merge path the CLI uses and caches the canonical grid artifact, which
//! is byte-identical to `prestage run --out` of the same spec.
//!
//! Cells are cached by *identity* (preset, tech, L1, benchmark name, run
//! lengths, seeds, predictor, prefetcher) rather than by grid position,
//! so overlapping sweeps share entries: a superset sweep re-runs only the
//! cells no earlier sweep has computed.
//!
//! Stragglers are handled by deadline steal: a job running past the
//! configured deadline is re-enqueued while the original keeps running;
//! whichever attempt finishes first wins, and the loser's (bit-identical)
//! results are discarded.  Failed jobs retry up to a bounded attempt
//! count, then fail the sweep loudly.

use crate::cache::{content_hash, Store};
use crate::protocol::{Response, SweepStatus};
use crate::queue::{replay, JobRange, JobState, Journal, SweepOutcome, JOURNAL_FILE};
use prestage_json::Json;
use prestage_sim::{
    grid_output, run_spec_cells_observed, stats_from_json, stats_to_json, CellGrid,
    CellResult, ExperimentSpec, ShardFile, SweepCell,
};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How a worker evaluates the uncached cells of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// On the daemon's own threads via the sim's observed runner.
    InProcess,
    /// In a child `prestage shard` process (same binary, own address
    /// space — a crashing cell takes down one job, not the daemon).
    Child,
}

/// Daemon configuration, fully resolved.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// State directory: journal, cache, address file, child temp files.
    pub state_dir: PathBuf,
    /// Listen address (`host:port`; port 0 = OS-assigned).
    pub listen: String,
    /// Worker threads popping jobs.
    pub workers: usize,
    /// Cells per job when splitting a sweep.
    pub job_cells: usize,
    /// Straggler deadline: a job running longer is speculatively
    /// re-enqueued on another worker (first finish wins).
    pub deadline: Duration,
    /// Attempts per job before the sweep fails.
    pub max_attempts: u32,
    /// How workers evaluate uncached cells.
    pub dispatch: Dispatch,
    /// Sim pool width per job (jobs are the parallelism unit, so the
    /// default keeps each job narrow and lets the worker pool spread).
    pub threads_per_job: usize,
}

impl ServeConfig {
    /// Defaults for a state directory: loopback listener with an
    /// OS-assigned port, 2 workers, 4-cell jobs, in-process dispatch.
    pub fn new(state_dir: PathBuf) -> ServeConfig {
        ServeConfig {
            state_dir,
            listen: "127.0.0.1:0".to_string(),
            workers: 2,
            job_cells: 4,
            deadline: Duration::from_secs(300),
            max_attempts: 3,
            dispatch: Dispatch::InProcess,
            threads_per_job: 1,
        }
    }
}

/// The content-addressed identity of a sweep: hash of the portable
/// canonical spec JSON.  Identical resubmissions — and submissions that
/// only differ in `threads`/`trace` — collapse to the same id.
pub fn sweep_id(spec: &ExperimentSpec) -> String {
    content_hash(spec.portable().to_json_value().render().as_bytes())
}

/// Cache key of one sweep's finished artifact.
fn sweep_key(id: &str) -> Json {
    Json::obj([("kind", "sweep".into()), ("id", id.into())])
}

/// Cache key of one cell's result: the cell's full identity, benchmark by
/// *name*, so any sweep whose grid contains this cell shares the entry.
fn cell_key(spec: &ExperimentSpec, names: &[String], cell: &SweepCell) -> Json {
    Json::obj([
        ("kind", "cell".into()),
        ("preset", cell.preset.id().into()),
        ("tech", cell.tech.id().into()),
        ("l1", cell.l1.into()),
        ("bench", names[cell.bench_idx].as_str().into()),
        ("warmup_insts", spec.warmup_insts.into()),
        ("measure_insts", spec.measure_insts.into()),
        ("workload_seed", spec.workload_seed.into()),
        ("exec_seed", cell.exec_seed.into()),
        ("predictor", spec.predictor.id().into()),
        (
            "prefetcher",
            match spec.prefetcher {
                None => Json::Null,
                Some(k) => k.id().into(),
            },
        ),
    ])
}

/// Split `n_cells` into contiguous jobs of at most `job_cells` cells.
pub fn split_jobs(n_cells: usize, job_cells: usize) -> Vec<JobRange> {
    let step = job_cells.max(1);
    let mut out = Vec::new();
    let mut start = 0;
    while start < n_cells {
        let end = (start.saturating_add(step)).min(n_cells);
        out.push(JobRange { start, end });
        start = end;
    }
    out
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Active,
    Done,
    Failed(String),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JState {
    Pending,
    Running(Instant),
    Done,
}

struct Entry {
    /// The spec workers execute (submitted spec, pool width forced to
    /// `threads_per_job`; keeps any `trace` dir so replays ship).
    exec_spec: ExperimentSpec,
    names: Vec<String>,
    n_cells: usize,
    jobs: Vec<JobRange>,
    job_state: Vec<JState>,
    attempts: Vec<u32>,
    cached_cells: usize,
    cells_done: Arc<AtomicUsize>,
    outcome: Outcome,
}

struct Inner {
    sweeps: BTreeMap<String, Entry>,
    queue: VecDeque<(String, usize)>,
}

/// The shared scheduler: submission API on one side, worker loop on the
/// other, everything journaled and cached in between.
pub struct Scheduler {
    cfg: ServeConfig,
    store: Store,
    journal: Journal,
    inner: Mutex<Inner>,
    work: Condvar,
    draining: AtomicBool,
}

/// Never-set cancel flag for the in-process runner: graceful drain lets
/// running jobs finish (that is what "drain" means), and a hard kill
/// does not consult flags.
static RUN_TO_END: AtomicBool = AtomicBool::new(false);

impl Scheduler {
    /// Open the state directory (journal + cache), replay the journal,
    /// and re-enqueue every job that was not journaled done — the resume
    /// path after any exit, clean or not.
    pub fn new(cfg: ServeConfig) -> Result<Arc<Scheduler>, String> {
        std::fs::create_dir_all(&cfg.state_dir).map_err(|e| {
            format!("cannot create state dir {}: {e}", cfg.state_dir.display())
        })?;
        let store = Store::open(&cfg.state_dir.join("cache"))?;
        let journal_path = cfg.state_dir.join(JOURNAL_FILE);
        let past = replay(&journal_path)?;
        if past.torn_tail {
            eprintln!(
                "prestage serve: journal {} had a torn final line (unclean \
                 shutdown mid-append); dropped it and resuming",
                journal_path.display()
            );
        }
        let journal = Journal::open(&journal_path)?;
        let mut inner = Inner {
            sweeps: BTreeMap::new(),
            queue: VecDeque::new(),
        };
        for (id, rec) in &past.sweeps {
            let names: Vec<String> = match rec.spec.bench_names() {
                Ok(n) => n.iter().map(|s| s.to_string()).collect(),
                Err(e) => {
                    // The spec validated when it was journaled; failing to
                    // resolve now means the bench set changed under us.
                    eprintln!("prestage serve: sweep {id} no longer resolves: {e}");
                    continue;
                }
            };
            let done_cells: usize = rec
                .jobs
                .iter()
                .zip(&rec.job_state)
                .filter(|(_, s)| **s == JobState::Done)
                .map(|(j, _)| j.len())
                .sum();
            let outcome = match &rec.outcome {
                SweepOutcome::Done => Outcome::Done,
                SweepOutcome::Failed(e) => Outcome::Failed(e.clone()),
                SweepOutcome::InFlight => Outcome::Active,
            };
            let entry = Entry {
                exec_spec: rec.spec.clone(),
                names,
                n_cells: rec.n_cells,
                jobs: rec.jobs.clone(),
                job_state: rec
                    .job_state
                    .iter()
                    .map(|s| match s {
                        JobState::Done => JState::Done,
                        JobState::Pending => JState::Pending,
                    })
                    .collect(),
                attempts: rec.failures.clone(),
                cached_cells: 0,
                cells_done: Arc::new(AtomicUsize::new(if outcome == Outcome::Done {
                    rec.n_cells
                } else {
                    done_cells
                })),
                outcome,
            };
            if entry.outcome == Outcome::Active {
                for (job, s) in entry.job_state.iter().enumerate() {
                    if *s == JState::Pending {
                        inner.queue.push_back((id.clone(), job));
                    }
                }
            }
            inner.sweeps.insert(id.clone(), entry);
        }
        if !inner.queue.is_empty() {
            eprintln!(
                "prestage serve: resuming {} journaled job(s) across {} sweep(s)",
                inner.queue.len(),
                past.unfinished().len()
            );
        }
        Ok(Arc::new(Scheduler {
            cfg,
            store,
            journal,
            inner: Mutex::new(inner),
            work: Condvar::new(),
            draining: AtomicBool::new(false),
        }))
    }

    /// The resolved configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The content-addressed store (tests probe it directly).
    pub fn store(&self) -> &Store {
        &self.store
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Ask workers to stop pulling new jobs (in-flight jobs finish).
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.work.notify_all();
    }

    /// Whether drain has been requested (by signal or protocol).
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Number of jobs currently marked running (the drain wait watches
    /// this reach zero — queued jobs stay journaled for the next start).
    pub fn running_jobs(&self) -> usize {
        let inner = self.lock();
        inner
            .sweeps
            .values()
            .flat_map(|e| &e.job_state)
            .filter(|s| matches!(s, JState::Running(_)))
            .count()
    }

    /// Append the clean-shutdown marker (the last thing the daemon does).
    pub fn journal_shutdown(&self) -> Result<(), String> {
        self.journal.shutdown()
    }

    /// Submit a sweep.  Idempotent: a sweep already cached answers
    /// `complete: true` with zero jobs; one already queued or running
    /// reports current progress instead of double-enqueueing.
    pub fn submit(&self, spec: &ExperimentSpec) -> Result<Response, String> {
        if self.draining() {
            return Err("daemon is shutting down; submit refused".to_string());
        }
        let grid = CellGrid::from_spec(spec)?; // validates the spec
        let names: Vec<String> = spec
            .bench_names()?
            .iter()
            .map(|s| s.to_string())
            .collect();
        let id = sweep_id(spec);
        let n_cells = grid.n_cells();
        if self.store.get(&sweep_key(&id))?.is_some() {
            // Pure cache hit: the artifact exists from an earlier run
            // (this process or any before it).  Record it for status.
            let mut inner = self.lock();
            inner.sweeps.entry(id.clone()).or_insert_with(|| Entry {
                exec_spec: spec.clone(),
                names,
                n_cells,
                jobs: Vec::new(),
                job_state: Vec::new(),
                attempts: Vec::new(),
                cached_cells: n_cells,
                cells_done: Arc::new(AtomicUsize::new(n_cells)),
                outcome: Outcome::Done,
            });
            return Ok(Response::Submitted {
                sweep: id,
                cells: n_cells,
                jobs: 0,
                cached_cells: n_cells,
                complete: true,
            });
        }
        let mut inner = self.lock();
        if let Some(entry) = inner.sweeps.get(&id) {
            return Ok(Response::Submitted {
                sweep: id,
                cells: n_cells,
                jobs: entry.jobs.len(),
                cached_cells: entry.cached_cells,
                complete: entry.outcome == Outcome::Done,
            });
        }
        let cells = grid.cells();
        let mut cached_cells = 0;
        for c in &cells {
            if self.store.get(&cell_key(spec, &names, c))?.is_some() {
                cached_cells += 1;
            }
        }
        let jobs = split_jobs(n_cells, self.cfg.job_cells);
        let exec_spec = ExperimentSpec {
            threads: Some(self.cfg.threads_per_job),
            ..spec.clone()
        };
        self.journal.submit(&id, &exec_spec, n_cells, &jobs)?;
        let n_jobs = jobs.len();
        for job in 0..n_jobs {
            inner.queue.push_back((id.clone(), job));
        }
        inner.sweeps.insert(
            id.clone(),
            Entry {
                exec_spec,
                names,
                n_cells,
                jobs,
                job_state: vec![JState::Pending; n_jobs],
                attempts: vec![0; n_jobs],
                cached_cells,
                cells_done: Arc::new(AtomicUsize::new(0)),
                outcome: Outcome::Active,
            },
        );
        drop(inner);
        self.work.notify_all();
        Ok(Response::Submitted {
            sweep: id,
            cells: n_cells,
            jobs: n_jobs,
            cached_cells,
            complete: false,
        })
    }

    /// Progress counters, optionally filtered to one sweep id.
    pub fn status(&self, filter: Option<&str>) -> Response {
        let inner = self.lock();
        let sweeps = inner
            .sweeps
            .iter()
            .filter(|(id, _)| filter.is_none_or(|f| f == id.as_str()))
            .map(|(id, e)| SweepStatus {
                sweep: id.clone(),
                state: match &e.outcome {
                    Outcome::Done => "done".to_string(),
                    Outcome::Failed(why) => format!("failed: {why}"),
                    Outcome::Active => {
                        if e.job_state.iter().any(|s| matches!(s, JState::Running(_))) {
                            "running".to_string()
                        } else {
                            "queued".to_string()
                        }
                    }
                },
                cells_total: e.n_cells,
                cells_done: e.cells_done.load(Ordering::Relaxed).min(e.n_cells),
                cached_cells: e.cached_cells,
                jobs_total: e.jobs.len(),
                jobs_done: e.job_state.iter().filter(|s| **s == JState::Done).count(),
            })
            .collect();
        Response::Status { sweeps }
    }

    /// Fetch a completed sweep's artifact from the cache.
    pub fn fetch(&self, id: &str) -> Response {
        match self.store.get(&sweep_key(id)) {
            Err(e) => Response::Error { error: e },
            Ok(Some(v)) => match v.get("artifact").and_then(Json::as_str) {
                Some(text) => Response::Artifact {
                    sweep: id.to_string(),
                    artifact: text.to_string(),
                },
                None => Response::Error {
                    error: format!("cache entry for sweep {id} has no artifact field"),
                },
            },
            Ok(None) => {
                let inner = self.lock();
                let error = match inner.sweeps.get(id) {
                    Some(e) => match &e.outcome {
                        Outcome::Failed(why) => format!("sweep {id} failed: {why}"),
                        _ => format!(
                            "sweep {id} is not complete yet ({} of {} cells)",
                            e.cells_done.load(Ordering::Relaxed).min(e.n_cells),
                            e.n_cells
                        ),
                    },
                    None => format!("unknown sweep {id}"),
                };
                Response::Error { error }
            }
        }
    }

    /// Deadline sweep, called periodically by the accept loop: jobs
    /// running past the deadline are speculatively re-enqueued.
    pub fn tick(&self) {
        let mut stolen = false;
        {
            let mut inner = self.lock();
            let mut steals: Vec<(String, usize)> = Vec::new();
            for (id, e) in inner.sweeps.iter_mut() {
                if e.outcome != Outcome::Active {
                    continue;
                }
                for (job, s) in e.job_state.iter_mut().enumerate() {
                    if let JState::Running(since) = s {
                        if since.elapsed() > self.cfg.deadline {
                            // Reset the clock so one straggler is stolen
                            // once per deadline, not once per tick.
                            *s = JState::Running(Instant::now());
                            steals.push((id.clone(), job));
                        }
                    }
                }
            }
            for (id, job) in steals {
                eprintln!(
                    "prestage serve: job {job} of sweep {id} passed the \
                     {:.0}s deadline; re-enqueueing a backup attempt",
                    self.cfg.deadline.as_secs_f64()
                );
                inner.queue.push_back((id, job));
                stolen = true;
            }
        }
        if stolen {
            self.work.notify_all();
        }
    }

    /// The worker loop: pop jobs until drain.  Run one of these per
    /// configured worker, each on its own thread.
    pub fn run_worker(&self) {
        loop {
            let mut inner = self.lock();
            let task = loop {
                if self.draining() {
                    return;
                }
                let mut popped = None;
                while let Some((id, job)) = inner.queue.pop_front() {
                    let Some(e) = inner.sweeps.get_mut(&id) else {
                        continue;
                    };
                    if e.outcome != Outcome::Active || e.job_state[job] == JState::Done {
                        // A stolen duplicate whose original already won,
                        // or a job of a sweep that failed meanwhile.
                        continue;
                    }
                    e.job_state[job] = JState::Running(Instant::now());
                    popped = Some((
                        id,
                        job,
                        e.exec_spec.clone(),
                        e.names.clone(),
                        e.jobs[job],
                        Arc::clone(&e.cells_done),
                    ));
                    break;
                }
                if let Some(t) = popped {
                    break t;
                }
                let (guard, _) = self
                    .work
                    .wait_timeout(inner, Duration::from_millis(200))
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            };
            drop(inner);
            let (id, job, spec, names, range, cells_done) = task;
            let result = self.run_job(&id, job, &spec, &names, range, &cells_done);
            self.complete_job(&id, job, result);
        }
    }

    /// Evaluate one job: serve cached cells, run the rest (in-process or
    /// in a child process), and persist every fresh result to the cell
    /// cache.  The cache writes happen *before* the caller journals
    /// `job_done` — the crash-safety ordering the resume path relies on.
    fn run_job(
        &self,
        sweep: &str,
        job: usize,
        spec: &ExperimentSpec,
        names: &[String],
        range: JobRange,
        cells_done: &AtomicUsize,
    ) -> Result<(), String> {
        let grid = CellGrid::from_spec(spec)?;
        let cells = grid.cells();
        if range.end > cells.len() {
            return Err(format!(
                "job cell range {}..{} exceeds the sweep's {} cells",
                range.start,
                range.end,
                cells.len()
            ));
        }
        let job_cells = &cells[range.start..range.end];
        let mut uncached: Vec<SweepCell> = Vec::new();
        for c in job_cells {
            if self.store.get(&cell_key(spec, names, c))?.is_some() {
                cells_done.fetch_add(1, Ordering::Relaxed);
            } else {
                uncached.push(*c);
            }
        }
        if uncached.is_empty() {
            return Ok(());
        }
        let results: Vec<CellResult> = match self.cfg.dispatch {
            Dispatch::InProcess => {
                let observer = |_r: &CellResult| {
                    cells_done.fetch_add(1, Ordering::Relaxed);
                };
                let got = run_spec_cells_observed(spec, &uncached, &observer, &RUN_TO_END)?;
                if got.len() != uncached.len() {
                    return Err(format!(
                        "runner returned {} of {} cells for job {job}",
                        got.len(),
                        uncached.len()
                    ));
                }
                got
            }
            Dispatch::Child => {
                // `prestage shard` takes contiguous ranges, so the child
                // runs the whole job range; cached cells re-run there (a
                // bounded waste) and the fresh copies — bit-identical by
                // determinism — simply overwrite the same cache entries.
                let got = self.run_child_shard(sweep, job, spec, range)?;
                cells_done.fetch_add(uncached.len(), Ordering::Relaxed);
                got
            }
        };
        for r in &results {
            self.store
                .put(&cell_key(spec, names, &r.cell), &stats_to_json(&r.stats))?;
        }
        Ok(())
    }

    /// Dispatch one job as a child `prestage shard` process of the same
    /// binary, shipping the spec (trace dir included) through a temp
    /// file and reading the shard file back.
    fn run_child_shard(
        &self,
        sweep: &str,
        job: usize,
        spec: &ExperimentSpec,
        range: JobRange,
    ) -> Result<Vec<CellResult>, String> {
        let exe = std::env::current_exe()
            .map_err(|e| format!("cannot locate the prestage binary for child dispatch: {e}"))?;
        let tmp = self.cfg.state_dir.join("tmp");
        std::fs::create_dir_all(&tmp)
            .map_err(|e| format!("cannot create child temp dir {}: {e}", tmp.display()))?;
        let spec_path = tmp.join(format!("{sweep}-job{job}-spec.json"));
        let out_path = tmp.join(format!("{sweep}-job{job}-shard.json"));
        std::fs::write(&spec_path, spec.to_json())
            .map_err(|e| format!("cannot write {}: {e}", spec_path.display()))?;
        let status = std::process::Command::new(&exe)
            .arg("shard")
            .arg("--spec")
            .arg(&spec_path)
            .arg("--cells")
            .arg(format!("{}..{}", range.start, range.end))
            .arg("--out")
            .arg(&out_path)
            .status()
            .map_err(|e| format!("cannot spawn child shard process: {e}"))?;
        if !status.success() {
            return Err(format!(
                "child shard process for cells {}..{} exited with {status}",
                range.start, range.end
            ));
        }
        let text = std::fs::read_to_string(&out_path)
            .map_err(|e| format!("cannot read child shard output {}: {e}", out_path.display()))?;
        let shard = ShardFile::from_json(&text)
            .map_err(|e| format!("child shard output {}: {e}", out_path.display()))?;
        if shard.start != range.start || shard.end != range.end {
            return Err(format!(
                "child shard covers cells {}..{}, job wanted {}..{}",
                shard.start, shard.end, range.start, range.end
            ));
        }
        let _ = std::fs::remove_file(&spec_path);
        let _ = std::fs::remove_file(&out_path);
        Ok(shard.results)
    }

    /// Apply one job's outcome: journal, retry bookkeeping, and — when
    /// the sweep's last job lands — assembly of the cached artifact.
    fn complete_job(&self, id: &str, job: usize, result: Result<(), String>) {
        let mut inner = self.lock();
        let Some(e) = inner.sweeps.get_mut(id) else {
            return;
        };
        match result {
            Ok(()) => {
                if e.job_state[job] == JState::Done {
                    return; // A stolen duplicate's original already won.
                }
                if let Err(err) = self.journal.job_done(id, job) {
                    // A journal that stops taking appends is a disk-level
                    // problem; surface it as the sweep's failure.
                    e.outcome = Outcome::Failed(err.clone());
                    eprintln!("prestage serve: {err}");
                    return;
                }
                e.job_state[job] = JState::Done;
                if e.job_state.iter().all(|s| *s == JState::Done)
                    && e.outcome == Outcome::Active
                {
                    let assembled = self.assemble(e);
                    match assembled {
                        Ok(()) => {
                            e.outcome = Outcome::Done;
                            let _ = self.journal.sweep_done(id);
                            eprintln!("prestage serve: sweep {id} complete");
                        }
                        Err(err) => {
                            e.outcome = Outcome::Failed(err.clone());
                            let _ = self.journal.sweep_failed(id, &err);
                            eprintln!("prestage serve: sweep {id} failed to assemble: {err}");
                        }
                    }
                }
            }
            Err(err) => {
                let _ = self.journal.job_failed(id, job, &err);
                e.attempts[job] = e.attempts[job].saturating_add(1);
                if e.attempts[job] < self.cfg.max_attempts {
                    eprintln!(
                        "prestage serve: job {job} of sweep {id} failed (attempt \
                         {} of {}): {err}; re-enqueueing",
                        e.attempts[job], self.cfg.max_attempts
                    );
                    e.job_state[job] = JState::Pending;
                    inner.queue.push_back((id.to_string(), job));
                    drop(inner);
                    self.work.notify_all();
                    return;
                }
                eprintln!(
                    "prestage serve: job {job} of sweep {id} failed {} time(s); \
                     failing the sweep: {err}",
                    self.cfg.max_attempts
                );
                e.outcome = Outcome::Failed(err.clone());
                let _ = self.journal.sweep_failed(id, &err);
            }
        }
    }

    /// Read every cell of a finished sweep back from the cache, merge
    /// through the spec-checked path, render the canonical artifact, and
    /// cache it under the sweep key.
    fn assemble(&self, e: &Entry) -> Result<(), String> {
        let spec = &e.exec_spec;
        let grid = CellGrid::from_spec(spec)?;
        let cells = grid.cells();
        let mut results: Vec<CellResult> = Vec::with_capacity(cells.len());
        for c in &cells {
            let v = self
                .store
                .get(&cell_key(spec, &e.names, c))?
                .ok_or_else(|| {
                    format!(
                        "cell (preset {}, l1 {}, bench {}) missing from the cache \
                         at assembly — a job was journaled done without its data",
                        c.preset.id(),
                        c.l1,
                        e.names[c.bench_idx]
                    )
                })?;
            results.push(CellResult {
                cell: *c,
                stats: stats_from_json(&v)?,
                // Wall-clock is per-worker diagnostic data; assembly reads
                // from the cache, where it has no meaning.
                wall: Duration::ZERO,
            });
        }
        let names: Vec<&str> = e.names.iter().map(String::as_str).collect();
        let rows = grid.merge_named(results, &names);
        let artifact = grid_output(spec, &rows);
        let id = sweep_id(spec);
        self.store.put(
            &sweep_key(&id),
            &Json::obj([
                ("spec", spec.portable().to_json_value()),
                ("artifact", artifact.into()),
            ]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_split_covers_exactly() {
        for (n, per, want) in [
            (8, 4, vec![(0, 4), (4, 8)]),
            (7, 3, vec![(0, 3), (3, 6), (6, 7)]),
            (1, 10, vec![(0, 1)]),
            (0, 4, vec![]),
            (3, 0, vec![(0, 1), (1, 2), (2, 3)]), // 0 clamps to 1
        ] {
            let got: Vec<(usize, usize)> = split_jobs(n, per)
                .iter()
                .map(|j| (j.start, j.end))
                .collect();
            assert_eq!(got, want, "split_jobs({n}, {per})");
        }
    }

    #[test]
    fn sweep_id_ignores_host_local_fields() {
        let spec = ExperimentSpec {
            presets: vec![prestage_sim::ConfigPreset::Base],
            l1_sizes: vec![1 << 10],
            bench: Some(vec!["gzip".into()]),
            warmup_insts: 1_000,
            measure_insts: 4_000,
            ..ExperimentSpec::default()
        };
        let with_threads = ExperimentSpec {
            threads: Some(7),
            ..spec.clone()
        };
        assert_eq!(sweep_id(&spec), sweep_id(&with_threads));
        let other = ExperimentSpec {
            exec_seed: spec.exec_seed.wrapping_add(1),
            ..spec.clone()
        };
        assert_ne!(sweep_id(&spec), sweep_id(&other));
    }

    #[test]
    fn cell_key_is_positional_only_through_names() {
        let spec = ExperimentSpec {
            presets: vec![prestage_sim::ConfigPreset::Base],
            l1_sizes: vec![1 << 10],
            bench: Some(vec!["gzip".into(), "mcf".into()]),
            warmup_insts: 1_000,
            measure_insts: 4_000,
            ..ExperimentSpec::default()
        };
        let grid = CellGrid::from_spec(&spec).unwrap();
        let names: Vec<String> = spec
            .bench_names()
            .unwrap()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cells = grid.cells();
        // A spec listing only mcf addresses the same cell result by name,
        // even though the bench *index* differs.
        let sub = ExperimentSpec {
            bench: Some(vec!["mcf".into()]),
            ..spec.clone()
        };
        let sub_names: Vec<String> = vec!["mcf".to_string()];
        let sub_cells = CellGrid::from_spec(&sub).unwrap().cells();
        let key_full = cell_key(&spec, &names, &cells[1]); // bench_idx 1 = mcf
        let key_sub = cell_key(&sub, &sub_names, &sub_cells[0]); // bench_idx 0 = mcf
        assert_eq!(key_full.render(), key_sub.render());
    }
}
