//! The daemon: TCP accept loop, per-connection protocol handling,
//! signal-driven graceful drain, and the offline `--check` audit.
//!
//! `serve` binds the configured address (port 0 = OS-assigned), writes
//! the resolved address to `<state>/addr` so clients can find it without
//! configuration, spawns the worker pool, and then accepts framed
//! connections until SIGINT/SIGTERM or a protocol `shutdown` request.
//! Drain means: stop accepting, let in-flight jobs finish (their results
//! are cached and journaled), leave queued jobs journaled for the next
//! start, append the clean-shutdown marker, remove the address file.

use crate::protocol::{read_frame, write_frame, Request, Response};
use crate::queue::{replay, SweepOutcome, JOURNAL_FILE};
use crate::scheduler::{Scheduler, ServeConfig};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// File inside the state directory holding the daemon's resolved listen
/// address (written on bind, removed on clean exit).
pub const ADDR_FILE: &str = "addr";

/// Set by the SIGINT/SIGTERM handler; polled by the accept loop.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    type Handler = extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }
    extern "C" fn on_signal(_sig: i32) {
        // The only async-signal-safe thing worth doing: set the flag.
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        let _ = signal(SIGINT, on_signal);
        let _ = signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Run the daemon to completion (returns after a graceful drain).
pub fn serve(cfg: ServeConfig) -> Result<(), String> {
    let sched = Scheduler::new(cfg)?;
    let cfg = sched.config();
    let listener = TcpListener::bind(&cfg.listen)
        .map_err(|e| format!("cannot bind {}: {e}", cfg.listen))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve the bound listen address: {e}"))?;
    let addr_path = cfg.state_dir.join(ADDR_FILE);
    std::fs::write(&addr_path, format!("{addr}\n"))
        .map_err(|e| format!("cannot write address file {}: {e}", addr_path.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set the listener non-blocking: {e}"))?;
    install_signal_handlers();
    eprintln!(
        "prestage serve: listening on {addr} (state {}, {} worker(s), {} dispatch)",
        cfg.state_dir.display(),
        cfg.workers,
        match cfg.dispatch {
            crate::scheduler::Dispatch::InProcess => "in-process",
            crate::scheduler::Dispatch::Child => "child-process",
        }
    );
    let workers: Vec<std::thread::JoinHandle<()>> = (0..cfg.workers.max(1))
        .map(|_| {
            let s = Arc::clone(&sched);
            std::thread::spawn(move || s.run_worker())
        })
        .collect();
    loop {
        if SIGNAL_SHUTDOWN.load(Ordering::SeqCst) {
            eprintln!("prestage serve: caught shutdown signal");
            break;
        }
        if sched.draining() {
            break; // a connection asked for shutdown
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let s = Arc::clone(&sched);
                std::thread::spawn(move || handle_conn(stream, &s));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                sched.tick();
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => {
                eprintln!("prestage serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    eprintln!(
        "prestage serve: draining {} in-flight job(s); queued jobs stay journaled",
        sched.running_jobs()
    );
    sched.begin_drain();
    for w in workers {
        let _ = w.join();
    }
    sched.journal_shutdown()?;
    let _ = std::fs::remove_file(&addr_path);
    eprintln!("prestage serve: drained and exited cleanly");
    Ok(())
}

/// One framed connection: requests until EOF (or a shutdown request).
fn handle_conn(mut stream: TcpStream, sched: &Scheduler) {
    let _ = stream.set_nodelay(true);
    loop {
        let v = match read_frame(&mut stream) {
            Ok(Some(v)) => v,
            Ok(None) => return, // clean EOF between frames
            Err(e) => {
                let _ = write_frame(&mut stream, &Response::Error { error: e }.to_json());
                return;
            }
        };
        let (resp, close) = match Request::from_json(&v) {
            Err(e) => (Response::Error { error: e }, false),
            Ok(Request::Ping) => (Response::Pong, false),
            Ok(Request::Submit { spec }) => match sched.submit(&spec) {
                Ok(r) => (r, false),
                Err(e) => (Response::Error { error: e }, false),
            },
            Ok(Request::Status { sweep }) => (sched.status(sweep.as_deref()), false),
            Ok(Request::Fetch { sweep }) => (sched.fetch(&sweep), false),
            Ok(Request::Shutdown) => {
                sched.begin_drain();
                (Response::ShuttingDown, true)
            }
        };
        if write_frame(&mut stream, &resp.to_json()).is_err() || close {
            return;
        }
    }
}

/// Offline state audit behind `prestage serve --check`: replay the
/// journal and demand a clean, fully-drained history.  Returns a human
/// summary on success and a named error on any violation — CI's "the
/// daemon exited with its journal in a clean state" gate.
pub fn check(state_dir: &Path) -> Result<String, String> {
    let path = state_dir.join(JOURNAL_FILE);
    let state = replay(&path)?;
    if state.torn_tail {
        return Err(format!(
            "journal {} ends in a torn line (unclean shutdown mid-append)",
            path.display()
        ));
    }
    let unfinished = state.unfinished();
    if !unfinished.is_empty() {
        return Err(format!(
            "journal {} has {} unfinished sweep(s): {}",
            path.display(),
            unfinished.len(),
            unfinished.join(", ")
        ));
    }
    if !state.sweeps.is_empty() && !state.clean_shutdown {
        return Err(format!(
            "journal {} does not end with a clean-shutdown marker",
            path.display()
        ));
    }
    let done = state
        .sweeps
        .values()
        .filter(|r| r.outcome == SweepOutcome::Done)
        .count();
    let failed = state.sweeps.len() - done;
    Ok(format!(
        "journal {}: {} sweep(s) ({done} done, {failed} failed), clean shutdown",
        path.display(),
        state.sweeps.len()
    ))
}
