//! Artifact anchoring: the single answer to "where do results land on
//! disk?", shared by the figure binaries (via `prestage-bench`'s
//! re-export), the `prestage` CLI, and the `prestage serve` daemon — so a
//! sweep submitted to the daemon from any cwd lands its artifacts exactly
//! where a `prestage run` from the workspace root would.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Directory where sweep artifacts (CSVs, notes, perf JSON, the serve
/// state) land: `PRESTAGE_RESULTS_DIR` if set, else
/// `<workspace root>/results` — derived once, independent of the
/// invocation cwd.
///
/// The workspace root is the compile-time manifest root when it still
/// exists (the normal case — and immune to a shared `CARGO_TARGET_DIR`
/// parked inside some *other* workspace); if the checkout moved since the
/// build, it is recovered by walking up from the running binary to the
/// nearest `[workspace]` manifest.
pub fn results_dir() -> &'static Path {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        if let Some(d) = std::env::var_os("PRESTAGE_RESULTS_DIR") {
            return PathBuf::from(d);
        }
        // crates/sim → crates → workspace root, fixed at compile time.
        let baked = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."));
        if baked.is_dir() {
            return baked.join("results");
        }
        let near_exe = std::env::current_exe().ok().and_then(|exe| {
            exe.ancestors()
                .find(|d| {
                    std::fs::read_to_string(d.join("Cargo.toml"))
                        .is_ok_and(|m| m.contains("[workspace]"))
                })
                .map(Path::to_path_buf)
        });
        near_exe.unwrap_or(baked).join("results")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_cwd_independent() {
        // Either the env override or the workspace-root default — never a
        // bare relative "results" that depends on the invocation cwd.
        let dir = results_dir();
        assert!(
            dir.is_absolute() || std::env::var_os("PRESTAGE_RESULTS_DIR").is_some(),
            "results dir {dir:?} would depend on the cwd"
        );
    }
}
