//! The out-of-order back-end: a SimpleScalar-flavoured Register Update Unit.
//!
//! Table 2: 4-wide issue/commit, 64-instruction RUU, 32 KB 2-way L1 D-cache
//! with two ports and one-cycle hits, unified L2 behind the shared bus
//! (D-cache requests have top priority), 200-cycle memory.
//!
//! The model is a scoreboarded window: instructions dispatch in order into
//! the RUU, issue out of order when their source registers are ready (up to
//! `width` per cycle, oldest first), execute with per-class latencies
//! (loads access the D-cache; misses go through the shared L2 system), and
//! commit in order.  Stores retire into the D-cache at issue (an idealised
//! store buffer); dirty evictions generate writeback traffic on the L2 bus.
//! Wrong-path instructions never enter the RUU (they only perturb the
//! front-end and memory system), a simplification documented in DESIGN.md.

use prestage_cache::{Completion, L2System, ReqClass, ReqId, SetAssocCache};
use prestage_isa::{Addr, OpClass, Reg, StaticInst, NUM_REGS};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Back-end configuration (Table 2 defaults via [`BackendConfig::default`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendConfig {
    /// Issue and commit width.
    pub width: u32,
    /// RUU entries.
    pub ruu_size: usize,
    /// D-cache capacity in bytes.
    pub dcache_capacity: usize,
    pub dcache_assoc: usize,
    pub dcache_line: usize,
    /// D-cache ports (loads + stores per cycle).
    pub dcache_ports: u32,
    /// D-cache hit latency in cycles.
    pub dcache_latency: u32,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            width: 4,
            ruu_size: 64,
            dcache_capacity: 32 << 10,
            dcache_assoc: 2,
            dcache_line: 64,
            dcache_ports: 2,
            dcache_latency: 1,
        }
    }
}

/// Back-end statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendStats {
    pub committed: u64,
    pub loads: u64,
    pub stores: u64,
    pub dcache_hits: u64,
    pub dcache_misses: u64,
    pub branches: u64,
    /// Cycles in which nothing committed.
    pub commit_stall_cycles: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EState {
    Waiting,
    WaitMem(ReqId),
    Done(u64),
}

#[derive(Debug, Clone, Copy)]
struct RuuEntry {
    seq: u64,
    op: OpClass,
    dst: Option<Reg>,
    mem_addr: Option<Addr>,
    state: EState,
    /// Per-source producer captured at dispatch: either a concrete ready
    /// time, or `DEP | seq` of the in-flight producer (wakeup patches it
    /// to a time when that producer finishes).  Capturing at dispatch
    /// avoids WAR hazards against younger writers.  Packing the tag into
    /// the time keeps the entry inside one cache line and makes the
    /// readiness test two plain compares (a tagged value can never be
    /// `<= now`).
    src_time: [u64; 2],
    /// Resolving this instruction triggers a front-end redirect.
    mispredict: bool,
}

/// Result of one back-end cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackTick {
    pub committed_now: u32,
    /// A mispredicted branch resolved this cycle (its dynamic sequence
    /// number); the engine must redirect the front-end.
    pub resolved_mispredict: Option<u64>,
}

/// The RUU back-end.
#[derive(Debug)]
pub struct BackEnd {
    cfg: BackendConfig,
    ruu: VecDeque<RuuEntry>,
    /// Cycle at which each architectural register's value is available.
    /// `PENDING` while the youngest producer has not yet computed it.
    reg_ready: [u64; NUM_REGS],
    /// Sequence number of the youngest dispatched producer per register.
    last_writer: [u64; NUM_REGS],
    dcache: SetAssocCache,
    stats: BackendStats,
    next_seq: u64,
    /// Dispatched-but-unresolved mispredicted branches; the per-cycle
    /// resolve scan is skipped while this is zero (the common case).
    pending_mispredicts: u32,
    /// Scratch for the issue loop's deferred wakeups `(from, producer,
    /// ready_at)`; persistent so the per-cycle tick never allocates.
    wake_buf: Vec<(usize, u64, u64)>,
    /// Bitmap of RUU entries in `Waiting` state — bit `k` covers the entry
    /// at deque index `k` (entry seqs are contiguous: dispatch appends,
    /// commit pops the front and shifts the map).  The issue scan and the
    /// wakeup broadcast walk set bits only: entries that issued or went to
    /// memory are never re-examined, and only `Waiting` entries can carry
    /// unresolved source tags.  Capacity is the map's width; construction
    /// rejects larger windows by name.
    waiting: u128,
}

/// Sentinel ready-time for values still being produced.
const PENDING: u64 = u64::MAX >> 1;

/// Tag bit marking a `src_time` slot as "waiting on producer seq" rather
/// than a concrete ready time.  Real cycle numbers and sequence numbers
/// both stay far below it.
const DEP: u64 = 1 << 63;

impl BackEnd {
    pub fn new(cfg: BackendConfig) -> Self {
        assert!(
            cfg.ruu_size <= 128,
            "BackendConfig.ruu_size must be <= 128 (the issue scan's \
             waiting-entry bitmap is 128 bits wide), got {}",
            cfg.ruu_size
        );
        BackEnd {
            ruu: VecDeque::with_capacity(cfg.ruu_size),
            reg_ready: [0; NUM_REGS],
            last_writer: [u64::MAX; NUM_REGS],
            dcache: SetAssocCache::new(cfg.dcache_capacity, cfg.dcache_line, cfg.dcache_assoc),
            stats: BackendStats::default(),
            next_seq: 0,
            pending_mispredicts: 0,
            waiting: 0,
            wake_buf: Vec::with_capacity(cfg.width as usize),
            cfg,
        }
    }

    pub fn stats(&self) -> &BackendStats {
        &self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = BackendStats::default();
        self.dcache.reset_stats();
    }

    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    /// Free RUU slots.
    pub fn free_slots(&self) -> usize {
        self.cfg.ruu_size - self.ruu.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ruu.is_empty()
    }

    /// Dispatch one instruction into the RUU.  The caller must check
    /// [`BackEnd::free_slots`] first.  Returns its sequence number.
    pub fn dispatch(
        &mut self,
        inst: &StaticInst,
        mem_addr: Option<Addr>,
        mispredict: bool,
    ) -> u64 {
        debug_assert!(self.ruu.len() < self.cfg.ruu_size);
        let seq = self.next_seq;
        self.next_seq += 1;
        // Capture source readiness as of dispatch (register rename):
        // either a concrete time, or the still-executing producer's seq.
        let mut src_time = [0u64; 2];
        for (k, src) in [inst.src1, inst.src2].into_iter().enumerate() {
            if let Some(r) = src.filter(|r| !r.is_zero()) {
                let t = self.reg_ready[r.index()];
                src_time[k] = if t == PENDING {
                    DEP | self.last_writer[r.index()]
                } else {
                    t
                };
            }
        }
        if let Some(d) = inst.dep_dest() {
            // The value is unavailable until this instruction executes.
            self.last_writer[d.index()] = seq;
            self.reg_ready[d.index()] = PENDING;
        }
        if mispredict {
            self.pending_mispredicts += 1;
        }
        self.waiting |= 1u128 << self.ruu.len();
        self.ruu.push_back(RuuEntry {
            seq,
            op: inst.op,
            dst: inst.dep_dest(),
            mem_addr,
            state: EState::Waiting,
            src_time,
            mispredict,
        });
        seq
    }

    /// Broadcast a finished producer to every waiting consumer.  Consumers
    /// always sit *behind* their producer (dependences are captured at
    /// in-order dispatch), so the walk starts at `from`; only `Waiting`
    /// entries can carry unresolved tags, so it visits set bits of
    /// `waiting` rather than every younger entry.
    fn wakeup(ruu: &mut VecDeque<RuuEntry>, waiting: u128, from: usize, producer: u64, at: u64) {
        let tag = DEP | producer;
        let mut bits = if from < 128 { (waiting >> from) << from } else { 0 };
        while bits != 0 {
            let idx = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let e = &mut ruu[idx];
            for k in 0..2 {
                if e.src_time[k] == tag {
                    e.src_time[k] = at;
                }
            }
        }
    }

    /// A D-cache miss returned from the L2 system.
    pub fn on_completion(&mut self, c: &Completion) {
        let last_writer = self.last_writer;
        // Several loads can wait on one line request (MSHR merge).  Wakeup
        // interleaves safely with the scan: it only patches src_dep /
        // src_time, which the WaitMem match never reads.
        for i in 0..self.ruu.len() {
            let e = &mut self.ruu[i];
            if e.state != EState::WaitMem(c.id) {
                continue;
            }
            let at = c.ready_at + 1;
            e.state = EState::Done(at);
            let (seq, dst) = (e.seq, e.dst);
            if let Some(d) = dst {
                if last_writer[d.index()] == seq {
                    self.reg_ready[d.index()] = at;
                }
                Self::wakeup(&mut self.ruu, self.waiting, i + 1, seq, at);
            }
        }
    }

    fn ready(e: &RuuEntry, now: u64) -> bool {
        e.src_time[0] <= now && e.src_time[1] <= now
    }

    /// One cycle: issue, then commit.
    pub fn tick(&mut self, now: u64, l2: &mut L2System) -> BackTick {
        // ---- Issue: oldest-first, up to width, respecting D-cache ports.
        //
        // Wakeups are deferred to after the scan: every issue completes at
        // now+1 or later (all execution latencies are >= 1), so a consumer
        // woken by an instruction issued this cycle could never itself
        // issue this cycle — deferral is bit-exact, and it lets the scan
        // hold one iterator instead of re-indexing the deque per entry.
        let mut issued = 0u32;
        let mut dports = self.cfg.dcache_ports;
        let width = self.cfg.width;
        let dcache_latency = self.cfg.dcache_latency as u64;
        let mut wake = std::mem::take(&mut self.wake_buf);
        wake.clear();
        // Walk only the Waiting entries (set bits), oldest first — the
        // same visit order as a full scan that skipped non-Waiting states.
        let mut bits = self.waiting;
        while issued < width && bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let e = &mut self.ruu[i];
            if !Self::ready(e, now) {
                continue;
            }
            let done_at = match e.op {
                OpClass::Load => {
                    if dports == 0 {
                        continue;
                    }
                    dports -= 1;
                    self.stats.loads += 1;
                    let addr = e.mem_addr.unwrap_or(0);
                    if self.dcache.lookup(addr) {
                        self.stats.dcache_hits += 1;
                        now + 1 + dcache_latency
                    } else {
                        self.stats.dcache_misses += 1;
                        let req = match l2.find_pending(addr) {
                            Some(r) => r,
                            None => l2.submit(addr, ReqClass::DCache, now + 1),
                        };
                        // Fill (write-allocate) now; dirty victims write
                        // back over the bus.
                        if let Some((victim, dirty)) = self.dcache.fill(addr) {
                            if dirty {
                                l2.submit_writeback(victim, now + 1);
                            }
                        }
                        e.state = EState::WaitMem(req);
                        self.waiting &= !(1u128 << i);
                        issued += 1;
                        // Destination stays PENDING until completion.
                        continue;
                    }
                }
                OpClass::Store => {
                    if dports == 0 {
                        continue;
                    }
                    dports -= 1;
                    self.stats.stores += 1;
                    let addr = e.mem_addr.unwrap_or(0);
                    if !self.dcache.lookup(addr) {
                        self.stats.dcache_misses += 1;
                        // Write-allocate: traffic only, the store itself
                        // retires through the store buffer.
                        if l2.find_pending(addr).is_none() {
                            l2.submit(addr, ReqClass::DCache, now + 1);
                        }
                        if let Some((victim, dirty)) = self.dcache.fill(addr) {
                            if dirty {
                                l2.submit_writeback(victim, now + 1);
                            }
                        }
                    } else {
                        self.stats.dcache_hits += 1;
                    }
                    self.dcache.set_dirty(addr);
                    now + 1
                }
                op => {
                    if op.is_cti() {
                        self.stats.branches += 1;
                    }
                    now + op.exec_latency() as u64
                }
            };
            e.state = EState::Done(done_at);
            self.waiting &= !(1u128 << i);
            if let Some(d) = e.dst {
                if self.last_writer[d.index()] == e.seq {
                    self.reg_ready[d.index()] = done_at;
                }
                wake.push((i + 1, e.seq, done_at));
            }
            issued += 1;
        }
        for &(from, seq, at) in &wake {
            Self::wakeup(&mut self.ruu, self.waiting, from, seq, at);
        }
        self.wake_buf = wake;

        // ---- Resolve mispredicted branches the moment they finish.
        let mut resolved = None;
        if self.pending_mispredicts > 0 {
            for e in &self.ruu {
                if e.mispredict {
                    if let EState::Done(t) = e.state {
                        if t <= now + 1 {
                            resolved = Some(e.seq);
                        }
                    }
                    break; // only the oldest unresolved mispredict matters
                }
            }
            if resolved.is_some() {
                // Clear the flag so the redirect fires exactly once.
                for e in &mut self.ruu {
                    if Some(e.seq) == resolved {
                        e.mispredict = false;
                        self.pending_mispredicts -= 1;
                        break;
                    }
                }
            }
        }

        // ---- Commit: in order, up to width.
        let mut committed_now = 0u32;
        while committed_now < self.cfg.width {
            match self.ruu.front() {
                Some(e) => match e.state {
                    EState::Done(t) if t <= now => {
                        self.ruu.pop_front();
                        committed_now += 1;
                        self.stats.committed += 1;
                    }
                    _ => break,
                },
                None => break,
            }
        }
        // Committed entries were Done, never Waiting: shifting the bitmap
        // down just re-anchors it at the new front.
        debug_assert_eq!(self.waiting & ((1u128 << committed_now) - 1), 0);
        self.waiting >>= committed_now;
        if committed_now == 0 {
            self.stats.commit_stall_cycles += 1;
        }

        BackTick {
            committed_now,
            resolved_mispredict: resolved,
        }
    }

    /// Warm the D-cache directory (pre-measurement warm-up).
    pub fn warm_dcache(&mut self, addr: Addr) {
        self.dcache.fill(addr);
    }

    pub fn dcache_stats(&self) -> &prestage_cache::CacheStats {
        self.dcache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestage_cache::L2Config;
    use prestage_cacti::TechNode;
    use prestage_isa::StaticInst;

    fn l2() -> L2System {
        L2System::new(L2Config::for_node(TechNode::T045))
    }

    fn alu(pc: Addr, dst: u8, src: u8) -> StaticInst {
        StaticInst::plain(
            pc,
            OpClass::IntAlu,
            Some(Reg::int(dst)),
            Some(Reg::int(src)),
            None,
        )
    }

    /// Run until the backend drains, returning cycles taken.
    fn drain(be: &mut BackEnd, l2sys: &mut L2System, from: u64, limit: u64) -> u64 {
        for now in from..from + limit {
            for c in l2sys.tick(now) {
                be.on_completion(&c);
            }
            be.tick(now, l2sys);
            if be.is_empty() {
                return now - from;
            }
        }
        panic!("backend did not drain in {limit} cycles");
    }

    #[test]
    fn independent_alus_commit_at_full_width() {
        let mut be = BackEnd::new(BackendConfig::default());
        let mut l2s = l2();
        for i in 0..8u8 {
            be.dispatch(&alu(0x1000 + i as u64 * 4, i + 1, 30), None, false);
        }
        let cycles = drain(&mut be, &mut l2s, 0, 50);
        // 8 independent single-cycle ops, width 4: ~3-4 cycles.
        assert!(cycles <= 5, "took {cycles} cycles");
        assert_eq!(be.committed(), 8);
    }

    #[test]
    fn dependence_chain_serialises() {
        let mut be = BackEnd::new(BackendConfig::default());
        let mut l2s = l2();
        // r1 <- r30; r2 <- r1; r3 <- r2 ... strict chain of 8.
        for i in 0..8u8 {
            let src = if i == 0 { 30 } else { i };
            be.dispatch(&alu(0x1000 + i as u64 * 4, i + 1, src), None, false);
        }
        let cycles = drain(&mut be, &mut l2s, 0, 50);
        assert!(cycles >= 8, "chain too fast: {cycles}");
    }

    #[test]
    fn load_miss_waits_for_memory() {
        let mut be = BackEnd::new(BackendConfig::default());
        let mut l2s = l2();
        let ld = StaticInst::plain(
            0x1000,
            OpClass::Load,
            Some(Reg::int(1)),
            Some(Reg::int(30)),
            None,
        );
        be.dispatch(&ld, Some(0x4000_0000), false);
        // Dependent consumer.
        be.dispatch(&alu(0x1004, 2, 1), None, false);
        let cycles = drain(&mut be, &mut l2s, 0, 400);
        // L2 miss -> 24 + 200 cycles minimum.
        assert!(cycles > 220, "load miss too fast: {cycles}");
        assert_eq!(be.stats().dcache_misses, 1);

        // Second load to the same line: now a hit, fast.
        be.dispatch(&ld, Some(0x4000_0008), false);
        let cycles2 = drain(&mut be, &mut l2s, 400, 50);
        assert!(cycles2 < 10, "hit too slow: {cycles2}");
        assert_eq!(be.stats().dcache_hits, 1);
    }

    #[test]
    fn dcache_ports_limit_memory_ops() {
        let mut be = BackEnd::new(BackendConfig::default());
        let mut l2s = l2();
        // 6 independent load hits; 2 ports -> at least 3 issue cycles.
        for i in 0..6u64 {
            be.warm_dcache(0x5000 + i * 8);
            let ld = StaticInst::plain(
                0x1000 + i * 4,
                OpClass::Load,
                Some(Reg::int(i as u8 + 1)),
                Some(Reg::int(30)),
                None,
            );
            be.dispatch(&ld, Some(0x5000 + i * 8), false);
        }
        let cycles = drain(&mut be, &mut l2s, 0, 50);
        assert!(cycles >= 4, "ports not enforced: {cycles}");
    }

    #[test]
    fn mispredict_resolution_reported_once() {
        let mut be = BackEnd::new(BackendConfig::default());
        let mut l2s = l2();
        let br = StaticInst::cti(0x1000, OpClass::CondBranch, Some(0x2000));
        let seq = be.dispatch(&br, None, true);
        let mut seen = 0;
        for now in 0..10 {
            for c in l2s.tick(now) {
                be.on_completion(&c);
            }
            let t = be.tick(now, &mut l2s);
            if t.resolved_mispredict == Some(seq) {
                seen += 1;
            }
        }
        assert_eq!(seen, 1, "redirect must fire exactly once");
    }

    #[test]
    fn stores_mark_lines_dirty_and_write_back() {
        let cfg = BackendConfig {
            dcache_capacity: 128,
            dcache_assoc: 1,
            ..BackendConfig::default()
        };
        let mut be = BackEnd::new(cfg);
        let mut l2s = l2();
        let st = StaticInst::plain(
            0x1000,
            OpClass::Store,
            None,
            Some(Reg::int(1)),
            Some(Reg::int(2)),
        );
        be.dispatch(&st, Some(0x6000_0000), false);
        drain(&mut be, &mut l2s, 0, 50);
        // Conflicting store evicts the dirty line -> writeback traffic.
        be.dispatch(&st, Some(0x6000_0080), false);
        drain(&mut be, &mut l2s, 50, 50);
        for now in 100..120 {
            l2s.tick(now);
        }
        assert!(l2s.stats().writebacks >= 1);
    }

    #[test]
    fn ruu_capacity_enforced() {
        let mut be = BackEnd::new(BackendConfig::default());
        assert_eq!(be.free_slots(), 64);
        let mut l2s = l2();
        // Fill with a dependence chain so nothing commits quickly.
        be.dispatch(&alu(0x1000, 1, 30), None, false);
        for i in 1..64u64 {
            let s = (i % 29) as u8 + 1;
            be.dispatch(&alu(0x1000 + i * 4, (i % 29) as u8 + 2, s), None, false);
        }
        assert_eq!(be.free_slots(), 0);
        be.tick(0, &mut l2s);
        be.tick(1, &mut l2s);
        assert!(be.free_slots() > 0);
    }
}
