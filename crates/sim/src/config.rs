//! Simulation configuration and the paper's configuration presets.

use crate::backend::BackendConfig;
use prestage_cacti::TechNode;
use prestage_core::{FrontendConfig, ITlbConfig, InsertionPolicy, PrefetcherKind};
use serde::{Deserialize, Serialize};

/// Every named configuration in the paper's evaluation (Figures 1-8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConfigPreset {
    /// L1 only, non-pipelined multi-cycle access.
    Base,
    /// `base + L0`: adds the single-cycle filter cache.
    BaseL0,
    /// `base pipelined`: L1 pipelined to one access per cycle.
    BasePipelined,
    /// Figure 1's `ideal`: every L1 size answers in one cycle.
    Ideal,
    /// FDP with the node's single-cycle prefetch buffer.
    Fdp,
    /// FDP + L0.
    FdpL0,
    /// FDP + L0 + 16-entry pipelined prefetch buffer.
    FdpL0Pb16,
    /// CLGP with the node's single-cycle prestage buffer.
    Clgp,
    /// CLGP + L0.
    ClgpL0,
    /// CLGP + L0 + 16-entry pipelined prestage buffer.
    ClgpL0Pb16,
}

impl ConfigPreset {
    /// All presets, figure-legend order.
    pub fn all() -> [ConfigPreset; 10] {
        use ConfigPreset::*;
        [
            Base,
            BaseL0,
            BasePipelined,
            Ideal,
            Fdp,
            FdpL0,
            FdpL0Pb16,
            Clgp,
            ClgpL0,
            ClgpL0Pb16,
        ]
    }

    /// Stable machine-readable identifier: the form `ExperimentSpec` JSON
    /// files and the `prestage` CLI use.  Lowercase, no spaces.
    pub fn id(self) -> &'static str {
        match self {
            ConfigPreset::Base => "base",
            ConfigPreset::BaseL0 => "base+l0",
            ConfigPreset::BasePipelined => "pipelined",
            ConfigPreset::Ideal => "ideal",
            ConfigPreset::Fdp => "fdp",
            ConfigPreset::FdpL0 => "fdp+l0",
            ConfigPreset::FdpL0Pb16 => "fdp+l0+pb16",
            ConfigPreset::Clgp => "clgp",
            ConfigPreset::ClgpL0 => "clgp+l0",
            ConfigPreset::ClgpL0Pb16 => "clgp+l0+pb16",
        }
    }

    /// Parse an [`id`](Self::id) (case-insensitive; the figure-legend
    /// [`label`](Self::label) forms are accepted too).
    pub fn from_id(s: &str) -> Option<ConfigPreset> {
        let s = s.trim().to_lowercase();
        ConfigPreset::all().into_iter().find(|p| {
            p.id() == s
                || p.label().to_lowercase() == s
                // Historical CLI alias.
                || (s == "base-pipelined" && *p == ConfigPreset::BasePipelined)
        })
    }

    /// Label used in figure legends and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            ConfigPreset::Base => "base",
            ConfigPreset::BaseL0 => "base+L0",
            ConfigPreset::BasePipelined => "base pipelined",
            ConfigPreset::Ideal => "ideal",
            ConfigPreset::Fdp => "FDP",
            ConfigPreset::FdpL0 => "FDP+L0",
            ConfigPreset::FdpL0Pb16 => "FDP+L0+PB:16",
            ConfigPreset::Clgp => "CLGP",
            ConfigPreset::ClgpL0 => "CLGP+L0",
            ConfigPreset::ClgpL0Pb16 => "CLGP+L0+PB:16",
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    pub frontend: FrontendConfig,
    pub backend: BackendConfig,
    /// Pipeline stages between fetch delivery and RUU dispatch
    /// (decode + rename + dispatch of the 15-stage pipeline).
    pub decode_stages: u32,
    /// Decode-buffer entries (fetch-to-dispatch elasticity).
    pub decode_buffer: u32,
    /// Instructions to warm caches/predictor before measuring.
    pub warmup_insts: u64,
    /// Instructions measured after warm-up.
    pub measure_insts: u64,
}

impl SimConfig {
    /// Build the paper configuration `preset` at `tech` with the given L1
    /// capacity.
    ///
    /// Pre-buffer and L0 sizes follow §5.1: the single-cycle buffer size at
    /// each node (8 entries / 512 B at 0.09 µm, 4 entries / 256 B at
    /// 0.045 µm), and the `PB:16` variants use a 16-entry pre-buffer
    /// pipelined into its CACTI latency (2 stages at 0.09 µm, 3 at
    /// 0.045 µm).
    pub fn preset(preset: ConfigPreset, tech: TechNode, l1_capacity: usize) -> SimConfig {
        let mut fe = FrontendConfig::base(tech, l1_capacity);
        let one_cycle_lines = FrontendConfig::one_cycle_buffer_lines(tech);
        let l0_bytes = one_cycle_lines * 64;
        match preset {
            ConfigPreset::Base => {}
            ConfigPreset::BaseL0 => {
                fe.l0_capacity = Some(l0_bytes);
            }
            ConfigPreset::BasePipelined => {
                fe.l1_pipelined = true;
            }
            ConfigPreset::Ideal => {
                fe.ideal_l1 = true;
            }
            ConfigPreset::Fdp | ConfigPreset::Clgp => {
                fe.prefetcher = if preset == ConfigPreset::Fdp {
                    PrefetcherKind::Fdp
                } else {
                    PrefetcherKind::Clgp
                };
                fe.pb_entries = one_cycle_lines;
            }
            ConfigPreset::FdpL0 | ConfigPreset::ClgpL0 => {
                fe.prefetcher = if preset == ConfigPreset::FdpL0 {
                    PrefetcherKind::Fdp
                } else {
                    PrefetcherKind::Clgp
                };
                fe.pb_entries = one_cycle_lines;
                fe.l0_capacity = Some(l0_bytes);
            }
            ConfigPreset::FdpL0Pb16 | ConfigPreset::ClgpL0Pb16 => {
                fe.prefetcher = if preset == ConfigPreset::FdpL0Pb16 {
                    PrefetcherKind::Fdp
                } else {
                    PrefetcherKind::Clgp
                };
                fe.pb_entries = 16;
                fe.pb_pipelined = true;
                fe.l0_capacity = Some(l0_bytes);
            }
        }
        SimConfig {
            frontend: fe,
            backend: BackendConfig::default(),
            decode_stages: 4,
            decode_buffer: 16,
            warmup_insts: 200_000,
            measure_insts: 1_000_000,
        }
    }

    /// Scale the run length (used by tests and quick sweeps).
    pub fn with_insts(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup_insts = warmup;
        self.measure_insts = measure;
        self
    }

    /// Override the front-end prefetch mechanism (the `ExperimentSpec`
    /// `prefetcher` field): the preset keeps its storage shape, only the
    /// engine driving the pre-buffer changes.  Presets without a
    /// pre-buffer (base/ideal) get the node's single-cycle buffer so the
    /// mechanism has somewhere to land lines.
    pub fn with_prefetcher(mut self, kind: PrefetcherKind) -> Self {
        self.frontend.prefetcher = kind;
        if kind != PrefetcherKind::None && self.frontend.pb_entries == 0 {
            self.frontend.pb_entries =
                FrontendConfig::one_cycle_buffer_lines(self.frontend.tech);
        }
        self
    }

    /// Model an instruction TLB (the `ExperimentSpec` `itlb` field):
    /// `None` keeps translation free, the pre-TLB behavior bit for bit.
    pub fn with_itlb(mut self, itlb: Option<ITlbConfig>) -> Self {
        self.frontend.itlb = itlb;
        self
    }

    /// Force one prefetch-fill insertion policy across mechanisms (the
    /// `ExperimentSpec` `insertion` field); `None` keeps each mechanism's
    /// own choice.
    pub fn with_insertion(mut self, insertion: Option<InsertionPolicy>) -> Self {
        self.frontend.insertion = insertion;
        self
    }

    /// Check every sizing invariant the simulator's storage structures
    /// assume (power-of-two, mask-indexed tables), naming the offending
    /// field.  Spec consumers call this before construction so a bad size
    /// is an error, not a panic deep inside a cache array.
    pub fn validate(&self) -> Result<(), String> {
        self.frontend.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_follow_section_5_1_sizing() {
        let c = SimConfig::preset(ConfigPreset::Clgp, TechNode::T045, 4 << 10);
        assert_eq!(c.frontend.pb_entries, 4); // 256B at 0.045um
        assert_eq!(c.frontend.l0_capacity, None);

        let c = SimConfig::preset(ConfigPreset::ClgpL0, TechNode::T090, 4 << 10);
        assert_eq!(c.frontend.pb_entries, 8); // 512B at 0.09um
        assert_eq!(c.frontend.l0_capacity, Some(512));

        let c = SimConfig::preset(ConfigPreset::FdpL0Pb16, TechNode::T045, 4 << 10);
        assert_eq!(c.frontend.pb_entries, 16);
        assert!(c.frontend.pb_pipelined);
        assert_eq!(c.frontend.pb_latency(), 3);
        assert_eq!(c.frontend.l0_capacity, Some(256));
    }

    #[test]
    fn base_variants_differ_only_in_the_intended_knob() {
        let b = SimConfig::preset(ConfigPreset::Base, TechNode::T045, 8 << 10);
        let p = SimConfig::preset(ConfigPreset::BasePipelined, TechNode::T045, 8 << 10);
        assert!(!b.frontend.l1_pipelined && p.frontend.l1_pipelined);
        let i = SimConfig::preset(ConfigPreset::Ideal, TechNode::T045, 8 << 10);
        assert!(i.frontend.ideal_l1);
        assert_eq!(i.frontend.l1_latency(), 1);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            ConfigPreset::all().iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), ConfigPreset::all().len());
    }
}
