//! The full-system cycle engine.
//!
//! Ties together the stream predictor, the decoupled front-end (queue +
//! prefetcher + fetch unit), the decode pipe and the RUU back-end, with the
//! paper's §4 methodology: the *correct* dynamic path comes from the trace
//! generator; the predictor runs ahead of fetch, and where its prediction
//! diverges from the trace the front-end keeps fetching down the predicted
//! (wrong) path through the basic-block dictionary — consuming fetch
//! bandwidth, cache ports and bus slots — until the mispredicted branch
//! resolves in the back-end, at which point the front-end is flushed, the
//! predictor's speculative state (path history + RAS) is restored from its
//! checkpoint, and fetch resumes on the correct path.
//!
//! Wrong-path instructions are fetched and prefetched but never dispatched
//! into the RUU (see DESIGN.md for this simplification).

use crate::backend::BackEnd;
use crate::config::SimConfig;
use crate::stats::SimStats;
use prestage_bpred::{
    FetchBlockPredictor, GsharePredictor, StreamDesc, StreamPredictor, StreamPrediction,
};
use prestage_cache::{Completion, L2Config, L2System, ReqClass, TlbCheckpoint};
use prestage_core::{
    ClgpPrefetcher, Delivery, FdpPrefetcher, FrontEnd, InstrPrefetcher, ManaPrefetcher,
    NextLinePrefetcher, NoPrefetcher, PrefetchCheckpoint, PrefetcherKind, ProgMapPrefetcher,
};
use prestage_isa::{Addr, INST_BYTES};
use prestage_workload::{DynInst, InstSource, TraceGenerator, Workload};
use std::collections::VecDeque;

#[derive(Debug)]
struct BlockInfo {
    /// Block start PC (the predicted fetch block's first instruction).
    start: Addr,
    /// Correct-path instructions of this block (empty for wrong-path
    /// blocks; a prefix for the diverging block).
    insts: Vec<DynInst>,
    /// Index of the mispredicted instruction, if this block diverges.
    mispredict_idx: Option<u32>,
}

/// In-flight fetch blocks, keyed by their (strictly increasing) sequence
/// number.  Successive seqs map to successive ring slots, so lookup and
/// removal are O(1) index arithmetic instead of the `BTreeMap` walk the
/// first implementation paid on every delivery.
#[derive(Debug, Default)]
struct BlockRing {
    /// Sequence number of `slots[0]`.
    base: u64,
    slots: VecDeque<Option<BlockInfo>>,
    live: usize,
}

impl BlockRing {
    /// Insert under `seq`, which must be >= every previously inserted seq
    /// (block seqs are handed out monotonically).
    fn insert(&mut self, seq: u64, info: BlockInfo) {
        if self.slots.is_empty() {
            self.base = seq;
        }
        let Some(idx) = seq.checked_sub(self.base) else {
            unreachable!("block seq {seq} inserted below ring base {}", self.base)
        };
        // prestage: allow(unwrap-in-lib, idx counts live blocks — a window that would overflow usize cannot be allocated)
        let idx = usize::try_from(idx).expect("live block window fits in memory");
        debug_assert!(idx >= self.slots.len(), "block seqs must arrive in order");
        while self.slots.len() < idx {
            self.slots.push_back(None);
        }
        self.slots.push_back(Some(info));
        self.live += 1;
    }

    fn get(&self, seq: u64) -> Option<&BlockInfo> {
        let idx = usize::try_from(seq.checked_sub(self.base)?).ok()?;
        self.slots.get(idx)?.as_ref()
    }

    fn remove(&mut self, seq: u64) -> Option<BlockInfo> {
        let idx = usize::try_from(seq.checked_sub(self.base)?).ok()?;
        let info = self.slots.get_mut(idx)?.take()?;
        self.live -= 1;
        // Advance the base past drained slots so the ring stays short.
        while let Some(None) = self.slots.front() {
            self.slots.pop_front();
            self.base += 1;
        }
        Some(info)
    }

    fn len(&self) -> usize {
        self.live
    }

    /// Drop every block, recycling instruction buffers into `pool`.
    fn clear_into(&mut self, pool: &mut Vec<Vec<DynInst>>) {
        for info in self.slots.drain(..).flatten() {
            recycle(pool, info.insts);
        }
        self.live = 0;
    }
}

/// Cap on pooled instruction buffers: enough for every live block plus the
/// pending-truth queue in any sane configuration.
const VEC_POOL_CAP: usize = 64;

fn recycle(pool: &mut Vec<Vec<DynInst>>, mut v: Vec<DynInst>) {
    if v.capacity() > 0 && pool.len() < VEC_POOL_CAP {
        v.clear();
        pool.push(v);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathState {
    /// Predictions are being checked against the trace.
    OnPath,
    /// Fetching the predicted (wrong) path from `next_start`.
    WrongPath { next_start: Addr },
}

#[derive(Debug)]
struct RedirectInfo {
    /// RUU sequence number of the mispredicted instruction, known once it
    /// dispatches.
    ruu_seq: Option<u64>,
    checkpoint: PredictorCheckpoint,
    /// Prefetch-mechanism speculative state at the divergence point,
    /// reinstated after the redirect flush (wrong-path fetches must not
    /// corrupt a mechanism's training cursors / stream expectations).
    pf_checkpoint: PrefetchCheckpoint,
    /// i-TLB contents at the divergence point (empty when no TLB is
    /// configured): wrong-path translations are unwound on redirect so a
    /// checkpointed replay matches the live run bit for bit.
    tlb_checkpoint: TlbCheckpoint,
}

/// Which fetch-block predictor drives the front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictorKind {
    /// The paper's cascaded 1K+6K stream predictor (Table 2).
    #[default]
    Stream,
    /// A 16K-entry gshare over the basic-block dictionary: the ablation
    /// baseline quantifying how prefetching quality tracks predictor
    /// quality (related work §2.1).
    Gshare,
}

impl PredictorKind {
    /// Stable identifier used by `ExperimentSpec` JSON and the CLI.
    pub fn id(self) -> &'static str {
        match self {
            PredictorKind::Stream => "stream",
            PredictorKind::Gshare => "gshare",
        }
    }

    /// Parse an [`id`](Self::id) (case-insensitive).
    pub fn from_id(s: &str) -> Option<PredictorKind> {
        match s.trim().to_lowercase().as_str() {
            "stream" => Some(PredictorKind::Stream),
            "gshare" => Some(PredictorKind::Gshare),
            _ => None,
        }
    }
}

/// Unified predictor wrapper so one engine serves both (the trait has an
/// associated Checkpoint type, which a trait object cannot carry).
#[derive(Debug)]
enum AnyPredictor {
    Stream(StreamPredictor),
    Gshare(GsharePredictor),
}

#[derive(Debug, Clone)]
enum PredictorCheckpoint {
    Stream(<StreamPredictor as FetchBlockPredictor>::Checkpoint),
    Gshare(<GsharePredictor as FetchBlockPredictor>::Checkpoint),
}

/// Training context captured before a prediction.
enum PredictorToken {
    Stream(prestage_bpred::predictor::TrainToken),
    Gshare,
}

impl AnyPredictor {
    fn new(kind: PredictorKind) -> Self {
        match kind {
            PredictorKind::Stream => AnyPredictor::Stream(StreamPredictor::paper_default()),
            PredictorKind::Gshare => AnyPredictor::Gshare(GsharePredictor::default_16k()),
        }
    }

    fn token(&self, start: prestage_isa::Addr) -> PredictorToken {
        match self {
            AnyPredictor::Stream(p) => PredictorToken::Stream(p.token(start)),
            AnyPredictor::Gshare(_) => PredictorToken::Gshare,
        }
    }

    fn predict(&mut self, start: prestage_isa::Addr, prog: &prestage_isa::Program) -> StreamPrediction {
        match self {
            AnyPredictor::Stream(p) => p.predict(start, prog),
            AnyPredictor::Gshare(p) => p.predict(start, prog),
        }
    }

    /// Predict reusing the table indices captured in `tok` (taken at the
    /// same start address with the same speculative history) — identical
    /// result to [`predict`](Self::predict), minus recomputing them.
    fn predict_with_token(
        &mut self,
        tok: &PredictorToken,
        start: prestage_isa::Addr,
        prog: &prestage_isa::Program,
    ) -> StreamPrediction {
        match (self, tok) {
            (AnyPredictor::Stream(p), PredictorToken::Stream(t)) => {
                p.predict_with_token(t, start, prog)
            }
            (AnyPredictor::Gshare(p), _) => p.predict(start, prog),
            _ => unreachable!("token/predictor mismatch"),
        }
    }

    fn train(&mut self, tok: &PredictorToken, actual: &StreamDesc, was_correct: bool) {
        match (self, tok) {
            (AnyPredictor::Stream(p), PredictorToken::Stream(t)) => {
                p.train_with_token(t, actual, was_correct)
            }
            (AnyPredictor::Gshare(p), _) => p.train(actual),
            _ => unreachable!("token/predictor mismatch"),
        }
    }

    fn checkpoint(&self) -> PredictorCheckpoint {
        match self {
            AnyPredictor::Stream(p) => PredictorCheckpoint::Stream(p.checkpoint()),
            AnyPredictor::Gshare(p) => PredictorCheckpoint::Gshare(p.checkpoint()),
        }
    }

    fn restore(&mut self, cp: &PredictorCheckpoint) {
        match (self, cp) {
            (AnyPredictor::Stream(p), PredictorCheckpoint::Stream(c)) => p.restore(c),
            (AnyPredictor::Gshare(p), PredictorCheckpoint::Gshare(c)) => p.restore(c),
            _ => unreachable!("checkpoint/predictor mismatch"),
        }
    }

    fn stats(&self) -> prestage_bpred::PredStats {
        match self {
            AnyPredictor::Stream(p) => *p.stats(),
            AnyPredictor::Gshare(_) => prestage_bpred::PredStats::default(),
        }
    }

    fn reset_stats(&mut self) {
        if let AnyPredictor::Stream(p) = self {
            p.reset_stats();
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct DecodeEntry {
    ready: u64,
    inst: DynInst,
    mispredict: bool,
}

/// The full-system simulator for one (workload, configuration) pair.
///
/// The committed path arrives through an [`InstSource`]: the live
/// [`TraceGenerator`] by default, or a disk replay via
/// [`Engine::with_source`] — the engine cannot tell the difference, which
/// is what makes replayed sweeps bit-exact.
///
/// `Engine` is a thin enum over the internal `EngineImpl`, monomorphized per prefetch
/// mechanism: the one `match` at construction picks the variant, and from
/// then on every per-cycle prefetcher hook (tick / observe-fetch /
/// migration policy) is a statically dispatched — and inlinable — call
/// instead of a virtual one.
pub struct Engine<'w>(EngineInner<'w>);

enum EngineInner<'w> {
    None(EngineImpl<'w, NoPrefetcher>),
    NextLine(EngineImpl<'w, NextLinePrefetcher>),
    Fdp(EngineImpl<'w, FdpPrefetcher>),
    Clgp(EngineImpl<'w, ClgpPrefetcher>),
    Mana(EngineImpl<'w, ManaPrefetcher>),
    ProgMap(EngineImpl<'w, ProgMapPrefetcher>),
}

/// Dispatch once on the mechanism variant, then run `$body` with `$e`
/// bound to the concrete `EngineImpl`.
macro_rules! for_each_engine {
    ($inner:expr, $e:ident => $body:expr) => {
        match $inner {
            EngineInner::None($e) => $body,
            EngineInner::NextLine($e) => $body,
            EngineInner::Fdp($e) => $body,
            EngineInner::Clgp($e) => $body,
            EngineInner::Mana($e) => $body,
            EngineInner::ProgMap($e) => $body,
        }
    };
}

impl<'w> Engine<'w> {
    pub fn new(cfg: SimConfig, w: &'w Workload, exec_seed: u64) -> Self {
        Self::with_predictor(cfg, w, exec_seed, PredictorKind::Stream)
    }

    /// Build an engine with an explicit fetch-block predictor (ablation).
    pub fn with_predictor(
        cfg: SimConfig,
        w: &'w Workload,
        exec_seed: u64,
        predictor: PredictorKind,
    ) -> Self {
        Self::with_source(cfg, w, Box::new(TraceGenerator::new(w, exec_seed)), predictor)
    }

    /// Build an engine over an arbitrary committed-path source — the replay
    /// entry point.  `w` must be the workload the source's instructions
    /// were generated from (the engine still walks its basic-block
    /// dictionary for wrong-path fetch and dispatch).
    pub fn with_source(
        cfg: SimConfig,
        w: &'w Workload,
        src: Box<dyn InstSource + 'w>,
        predictor: PredictorKind,
    ) -> Self {
        Engine(match cfg.frontend.prefetcher {
            PrefetcherKind::None => {
                EngineInner::None(EngineImpl::with_source(cfg, w, src, predictor))
            }
            PrefetcherKind::NextLine => {
                EngineInner::NextLine(EngineImpl::with_source(cfg, w, src, predictor))
            }
            PrefetcherKind::Fdp => {
                EngineInner::Fdp(EngineImpl::with_source(cfg, w, src, predictor))
            }
            PrefetcherKind::Clgp => {
                EngineInner::Clgp(EngineImpl::with_source(cfg, w, src, predictor))
            }
            PrefetcherKind::Mana => {
                EngineInner::Mana(EngineImpl::with_source(cfg, w, src, predictor))
            }
            PrefetcherKind::ProgMap => {
                EngineInner::ProgMap(EngineImpl::with_source(cfg, w, src, predictor))
            }
        })
    }

    /// Run warm-up + measurement; returns the measured-window statistics.
    pub fn run(self) -> SimStats {
        for_each_engine!(self.0, e => e.run())
    }

    /// Committed instructions so far (including warm-up until reset).
    pub fn committed(&self) -> u64 {
        for_each_engine!(&self.0, e => e.committed())
    }
}

/// The concrete cycle engine, generic over its prefetch mechanism.
struct EngineImpl<'w, P: InstrPrefetcher> {
    cfg: SimConfig,
    w: &'w Workload,
    src: Box<dyn InstSource + 'w>,
    pred: AnyPredictor,
    fe: FrontEnd<P>,
    be: BackEnd,
    l2: L2System,
    clock: u64,

    next_seq: u64,
    /// Truth streams waiting to be predicted (partial streams after a
    /// mid-stream divergence resume here).
    pending_truth: VecDeque<(StreamDesc, Vec<DynInst>)>,
    blocks: BlockRing,
    path: PathState,
    redirect: Option<RedirectInfo>,
    decode: VecDeque<DecodeEntry>,

    redirects: u64,
    deliveries: Vec<Delivery>,
    completions: Vec<Completion>,
    /// Recycled instruction buffers: every truth stream and block split
    /// draws from here, so steady-state prediction never allocates.
    vec_pool: Vec<Vec<DynInst>>,
}

impl<'w, P: InstrPrefetcher> EngineImpl<'w, P> {
    fn with_source(
        cfg: SimConfig,
        w: &'w Workload,
        src: Box<dyn InstSource + 'w>,
        predictor: PredictorKind,
    ) -> Self {
        EngineImpl {
            src,
            pred: AnyPredictor::new(predictor),
            fe: FrontEnd::new(cfg.frontend),
            be: BackEnd::new(cfg.backend),
            l2: L2System::new(L2Config::for_node(cfg.frontend.tech)),
            clock: 0,
            next_seq: 0,
            pending_truth: VecDeque::new(),
            blocks: BlockRing::default(),
            path: PathState::OnPath,
            redirect: None,
            decode: VecDeque::new(),
            redirects: 0,
            deliveries: Vec::with_capacity(8),
            completions: Vec::with_capacity(8),
            vec_pool: Vec::new(),
            cfg,
            w,
        }
    }

    fn pooled(&mut self) -> Vec<DynInst> {
        self.vec_pool.pop().unwrap_or_default()
    }

    /// Run warm-up + measurement; returns the measured-window statistics.
    fn run(mut self) -> SimStats {
        self.run_until_committed(self.cfg.warmup_insts);
        // Reset counters; keep all warm state.
        self.fe.reset_stats();
        self.l2.reset_stats();
        self.be.reset_stats();
        self.pred.reset_stats();
        self.redirects = 0;
        let cycles_start = self.clock;

        let target = self.cfg.measure_insts;
        self.run_until_committed(target);
        // End-of-cell invariant: the hot-path tables must have drained to
        // their steady-state bounds, not leaked (a route or block that
        // never completes would grow them without limit).
        debug_assert!(
            self.fe.routes_len() <= self.l2.outstanding(),
            "routes leaked past the outstanding L2 requests: {} routes, {} outstanding",
            self.fe.routes_len(),
            self.l2.outstanding()
        );
        debug_assert!(
            self.blocks.len() <= self.cfg.frontend.queue_blocks + self.cfg.frontend.max_inflight + 1,
            "live fetch blocks leaked: {}",
            self.blocks.len()
        );

        SimStats {
            seed: self.w.seed,
            cycles: self.clock - cycles_start,
            committed: self.be.committed(),
            front: *self.fe.stats(),
            bus: *self.l2.stats(),
            pred: self.pred.stats(),
            backend: *self.be.stats(),
            redirects: self.redirects,
        }
    }

    fn run_until_committed(&mut self, target: u64) {
        let start = self.be.committed();
        // Generous safety valve: nothing legitimate runs below 0.01 IPC.
        let deadline = self.clock + target * 120 + 1_000_000;
        while self.be.committed() - start < target {
            self.cycle();
            assert!(
                self.clock < deadline,
                "simulation wedged: {} committed of {target} after {} cycles",
                self.be.committed() - start,
                self.clock
            );
        }
    }

    /// Advance the whole machine by one cycle.
    fn cycle(&mut self) {
        let now = self.clock;

        // 1. Memory-system completions route to their requesters.
        let mut completions = std::mem::take(&mut self.completions);
        self.l2.tick_into(now, &mut completions);
        for c in &completions {
            match c.class {
                ReqClass::DCache => self.be.on_completion(c),
                _ => self.fe.on_completion(c),
            }
        }
        self.completions = completions;

        // 2. Back-end: issue, resolve branches, commit.
        let bt = self.be.tick(now, &mut self.l2);
        if let Some(seq) = bt.resolved_mispredict {
            self.do_redirect(seq);
        }

        // 3. Front-end fetch (bounded by decode-buffer space).
        let free = self
            .cfg
            .decode_buffer
            .saturating_sub(u32::try_from(self.decode.len()).unwrap_or(u32::MAX));
        self.deliveries.clear();
        let mut deliveries = std::mem::take(&mut self.deliveries);
        self.fe.tick(now, &mut self.l2, free, &mut deliveries);
        for d in &deliveries {
            self.route_delivery(d);
        }
        self.deliveries = deliveries;

        // 4. Dispatch decoded instructions into the RUU.
        let mut width = self.cfg.backend.width;
        while width > 0 && self.be.free_slots() > 0 {
            let Some(&e) = self.decode.front() else { break };
            if e.ready > now {
                break;
            }
            self.decode.pop_front();
            let st = self.w.program.block(e.inst.block).insts[e.inst.idx as usize];
            let ruu_seq = self.be.dispatch(&st, e.inst.mem_addr, e.mispredict);
            if e.mispredict {
                if let Some(r) = &mut self.redirect {
                    r.ruu_seq = Some(ruu_seq);
                }
            }
            width -= 1;
        }

        // 5. Prediction: one fetch block per cycle into the queue.
        if self.fe.has_queue_space() {
            self.predict_one_block();
        }

        #[cfg(debug_assertions)]
        self.assert_hot_state_bounded();

        self.clock += 1;
    }

    /// Per-cycle invariants over the flat hot-path tables: every live
    /// block is queued, in flight through the fetch unit, or the one
    /// predicted this cycle; every route maps to an outstanding L2
    /// request.  Both checks are O(1) — counters against counters.
    #[cfg(debug_assertions)]
    fn assert_hot_state_bounded(&self) {
        let block_bound =
            self.cfg.frontend.queue_blocks + self.cfg.frontend.max_inflight + 1;
        debug_assert!(
            self.blocks.len() <= block_bound,
            "cycle {}: {} live fetch blocks exceed the structural bound {block_bound}",
            self.clock,
            self.blocks.len()
        );
        debug_assert!(
            self.fe.routes_len() <= self.l2.outstanding(),
            "cycle {}: {} routes for {} outstanding L2 requests",
            self.clock,
            self.fe.routes_len(),
            self.l2.outstanding()
        );
    }

    /// Match a front-end delivery against its block's correct-path
    /// instructions; wrong-path deliveries evaporate here.
    fn route_delivery(&mut self, d: &Delivery) {
        let ready = d.cycle + self.cfg.decode_stages as u64;
        let Some(info) = self.blocks.get(d.block_seq) else {
            return;
        };
        // `as u32` here could alias a far-out-of-range delivery back into
        // the block (the PR 5 truncation class); an offset that does not
        // fit is by definition outside the block, so it evaporates.
        let Ok(base) = u32::try_from((d.first_pc - info.start) / INST_BYTES) else {
            return;
        };
        for k in 0..d.count {
            let idx = base + k;
            if let Some(di) = info.insts.get(idx as usize) {
                self.decode.push_back(DecodeEntry {
                    ready,
                    inst: *di,
                    mispredict: info.mispredict_idx == Some(idx),
                });
            }
        }
        if d.completes_block {
            if let Some(info) = self.blocks.remove(d.block_seq) {
                recycle(&mut self.vec_pool, info.insts);
            }
        }
    }

    /// A mispredicted branch resolved in the back-end: flush and restart
    /// the front-end on the correct path.
    fn do_redirect(&mut self, ruu_seq: u64) {
        let Some(r) = self.redirect.take() else {
            return;
        };
        debug_assert_eq!(r.ruu_seq, Some(ruu_seq));
        self.fe.flush();
        self.fe.prefetcher_restore(&r.pf_checkpoint);
        self.fe.tlb_restore(&r.tlb_checkpoint);
        self.decode.clear();
        self.blocks.clear_into(&mut self.vec_pool);
        self.pred.restore(&r.checkpoint);
        self.path = PathState::OnPath;
        self.redirects += 1;
        // Redirect-flush invariant: no speculative per-cycle state survives
        // the flush (routes do, deliberately — demand completions still in
        // flight warm the caches exactly as wrong-path fills would).
        debug_assert!(
            self.blocks.len() == 0 && self.decode.is_empty(),
            "redirect flush left speculative state behind"
        );
    }

    /// Generate one fetch block from the predictor and hand it to the
    /// front-end, comparing against the trace when on the correct path.
    fn predict_one_block(&mut self) {
        let seq = self.next_seq;
        match self.path {
            PathState::WrongPath { next_start } => {
                // Keep running down the predicted path through the
                // dictionary: fetches/prefetches happen, nothing retires.
                let p = self.pred.predict(next_start, &self.w.program);
                let len = p.stream.len.max(1);
                if self.fe.push_block(seq, p.stream.start, len) {
                    self.next_seq += 1;
                    self.blocks.insert(
                        seq,
                        BlockInfo {
                            start: p.stream.start,
                            insts: Vec::new(),
                            mispredict_idx: None,
                        },
                    );
                    self.path = PathState::WrongPath {
                        next_start: p.stream.next.max(4),
                    };
                }
            }
            PathState::OnPath => {
                // Pull the next truth stream (a partial stream first, after
                // a mid-stream split/divergence).
                let (actual, mut insts) = match self.pending_truth.pop_front() {
                    Some(x) => x,
                    None => {
                        let mut buf = self.pooled();
                        let s = self.src.next_stream(&mut buf);
                        (s, buf)
                    }
                };
                let checkpoint = self.pred.checkpoint();
                let token = self.pred.token(actual.start);
                let p = self.pred.predict_with_token(&token, actual.start, &self.w.program);
                let ps = p.stream;
                debug_assert_eq!(ps.start, actual.start);

                if ps.same_flow(&actual) {
                    self.pred.train(&token, &actual, true);
                    if self.fe.push_block(seq, actual.start, actual.len) {
                        self.next_seq += 1;
                        self.blocks.insert(
                            seq,
                            BlockInfo {
                                start: actual.start,
                                insts,
                                mispredict_idx: None,
                            },
                        );
                    } else {
                        // Queue full: retry the same stream next cycle.
                        self.pending_truth.push_front((actual, insts));
                        self.pred.restore(&checkpoint);
                    }
                    return;
                }

                let plen = ps.len;
                let alen = actual.len;
                // Benign split: the predictor cut the stream short but
                // continues sequentially — two blocks instead of one, no
                // actual misprediction.
                if plen < alen && ps.next == actual.start + plen as u64 * INST_BYTES {
                    self.pred.train(&token, &actual, false);
                    if self.fe.push_block(seq, actual.start, plen) {
                        self.next_seq += 1;
                        let mut tail_insts = self.pooled();
                        let tail = split_stream(&actual, &mut insts, plen, &mut tail_insts);
                        self.blocks.insert(
                            seq,
                            BlockInfo {
                                start: actual.start,
                                insts,
                                mispredict_idx: None,
                            },
                        );
                        self.pending_truth.push_front((tail, tail_insts));
                    } else {
                        self.pending_truth.push_front((actual, insts));
                        self.pred.restore(&checkpoint);
                    }
                    return;
                }

                // Real divergence.
                self.pred.train(&token, &actual, false);
                if !self.fe.push_block(seq, actual.start, plen.max(1)) {
                    self.pending_truth.push_front((actual, insts));
                    self.pred.restore(&checkpoint);
                    return;
                }
                self.next_seq += 1;
                let mispredict_idx = if plen < alen {
                    // Predictor broke out of the stream early: everything
                    // it fetched is still correct path; the instruction at
                    // the break point is the mispredicted branch, and the
                    // correct path resumes mid-stream.
                    let mut tail_insts = self.pooled();
                    let tail = split_stream(&actual, &mut insts, plen, &mut tail_insts);
                    self.pending_truth.push_front((tail, tail_insts));
                    plen - 1
                } else {
                    // Predictor sailed past the actual taken end (or got
                    // the target wrong): the actual stream's instructions
                    // are correct, its final CTI is the mispredicted one,
                    // and anything beyond is wrong path.
                    alen - 1
                };
                self.blocks.insert(
                    seq,
                    BlockInfo {
                        start: actual.start,
                        insts,
                        mispredict_idx: Some(mispredict_idx),
                    },
                );
                self.redirect = Some(RedirectInfo {
                    ruu_seq: None,
                    checkpoint,
                    pf_checkpoint: self.fe.prefetcher_checkpoint(),
                    tlb_checkpoint: self.fe.tlb_checkpoint(),
                });
                self.path = PathState::WrongPath {
                    next_start: ps.next.max(4),
                };
            }
        }
    }

    /// Committed instructions so far (including warm-up until reset).
    fn committed(&self) -> u64 {
        self.be.committed()
    }
}

/// Split a truth stream at instruction index `at`: `insts` is truncated to
/// the head in place, the tail instructions are copied into `tail_insts`
/// (cleared first), and the tail descriptor is returned.
fn split_stream(
    s: &StreamDesc,
    insts: &mut Vec<DynInst>,
    at: u32,
    tail_insts: &mut Vec<DynInst>,
) -> StreamDesc {
    debug_assert!(at >= 1 && at < s.len);
    tail_insts.clear();
    tail_insts.extend_from_slice(&insts[at as usize..]);
    insts.truncate(at as usize);
    StreamDesc {
        start: s.start + at as u64 * INST_BYTES,
        len: s.len - at,
        next: s.next,
        end: s.end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConfigPreset, SimConfig};
    use prestage_cacti::TechNode;
    use prestage_workload::{build, specint2000};

    fn tiny(name: &str) -> Workload {
        let mut p = specint2000()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap();
        p.i_footprint_kb = p.i_footprint_kb.min(16);
        p.n_funcs = p.n_funcs.min(24);
        build(&p, 42)
    }

    fn quick(preset: ConfigPreset, tech: TechNode, l1_kb: usize, w: &Workload) -> SimStats {
        let cfg = SimConfig::preset(preset, tech, l1_kb << 10).with_insts(20_000, 60_000);
        Engine::new(cfg, w, 7).run()
    }

    #[test]
    fn engine_completes_and_reports_sane_ipc() {
        let w = tiny("gzip");
        let s = quick(ConfigPreset::Base, TechNode::T045, 8, &w);
        assert_eq!(s.committed, 60_000 + (s.committed - 60_000)); // committed >= target
        assert!(s.ipc() > 0.05 && s.ipc() < 4.0, "ipc {}", s.ipc());
        assert!(s.redirects > 0, "no mispredictions at all?");
        assert!(s.front.total_fetch_insts() >= s.committed);
    }

    #[test]
    fn ideal_beats_base_beats_nothing() {
        let w = tiny("vortex");
        let base = quick(ConfigPreset::Base, TechNode::T045, 4, &w);
        let ideal = quick(ConfigPreset::Ideal, TechNode::T045, 4, &w);
        assert!(
            ideal.ipc() > base.ipc(),
            "ideal {} <= base {}",
            ideal.ipc(),
            base.ipc()
        );
    }

    #[test]
    fn clgp_fetches_mostly_from_prestage_buffer() {
        let w = tiny("vortex");
        let s = quick(ConfigPreset::Clgp, TechNode::T045, 8, &w);
        let share = s.front.fetch_share(s.front.fetch_pb);
        assert!(
            share > 0.5,
            "CLGP prestage share only {:.1}%",
            share * 100.0
        );
    }

    #[test]
    fn deterministic_runs() {
        let w = tiny("twolf");
        let a = quick(ConfigPreset::Clgp, TechNode::T045, 8, &w);
        let b = quick(ConfigPreset::Clgp, TechNode::T045, 8, &w);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.redirects, b.redirects);
    }
}


#[cfg(test)]
mod accounting_tests {
    use super::*;
    use crate::config::{ConfigPreset, SimConfig};
    use prestage_cacti::TechNode;
    use prestage_workload::{build, specint2000};

    fn tiny(name: &str) -> Workload {
        let mut p = specint2000().into_iter().find(|p| p.name == name).unwrap();
        p.i_footprint_kb = p.i_footprint_kb.min(16);
        p.n_funcs = p.n_funcs.min(24);
        build(&p, 42)
    }

    #[test]
    fn fetches_cover_commits_and_redirects_match_training() {
        let w = tiny("crafty");
        let cfg = SimConfig::preset(ConfigPreset::ClgpL0, TechNode::T045, 4 << 10)
            .with_insts(20_000, 60_000);
        let s = Engine::new(cfg, &w, 7).run();
        // Every committed instruction was fetched (plus wrong-path extras).
        assert!(s.front.total_fetch_insts() >= s.committed);
        // Every redirect corresponds to a trained-incorrect stream; counts
        // are reset together at the warm-up boundary so they must be close
        // (trained-incorrect also counts benign splits, so it dominates).
        let wrong = s.pred.trained - s.pred.train_correct;
        assert!(
            s.redirects <= wrong,
            "redirects {} exceed mispredicted streams {}",
            s.redirects,
            wrong
        );
        assert!(s.redirects > 0);
    }

    #[test]
    fn gshare_engine_runs_and_underperforms_stream_predictor() {
        let w = tiny("vortex");
        let cfg = SimConfig::preset(ConfigPreset::ClgpL0, TechNode::T045, 4 << 10)
            .with_insts(20_000, 60_000);
        let stream = Engine::with_predictor(cfg, &w, 7, PredictorKind::Stream)
            .run()
            .ipc();
        let gshare = Engine::with_predictor(cfg, &w, 7, PredictorKind::Gshare)
            .run()
            .ipc();
        assert!(gshare > 0.05, "gshare engine wedged: {gshare}");
        assert!(
            stream > gshare,
            "stream predictor should win: {stream} vs {gshare}"
        );
    }

    #[test]
    fn mana_and_progmap_engines_run_and_prefetch() {
        // The new mechanisms behind `PrefetcherKind` drive a full engine
        // to completion, actually issue prefetches, and serve fetches
        // from the pre-buffer they fill.
        let w = tiny("vortex");
        for kind in [
            prestage_core::PrefetcherKind::Mana,
            prestage_core::PrefetcherKind::ProgMap,
        ] {
            let cfg = SimConfig::preset(ConfigPreset::Base, TechNode::T045, 4 << 10)
                .with_insts(20_000, 60_000)
                .with_prefetcher(kind);
            let s = Engine::new(cfg, &w, 7).run();
            assert!(s.ipc() > 0.05, "{kind:?} wedged: ipc {}", s.ipc());
            assert!(s.front.prefetches_issued > 0, "{kind:?} issued nothing");
            assert!(
                s.front.fetch_pb.lines > 0,
                "{kind:?} never served a fetch from the pre-buffer"
            );
            // Determinism: same config, same seed, same counters.
            let cfg2 = SimConfig::preset(ConfigPreset::Base, TechNode::T045, 4 << 10)
                .with_insts(20_000, 60_000)
                .with_prefetcher(kind);
            let t = Engine::new(cfg2, &w, 7).run();
            assert_eq!(s, t, "{kind:?} is not deterministic");
        }
    }

    #[test]
    fn warmup_reset_isolates_measurement_window() {
        // A longer warm-up must not inflate measured cycles/instructions.
        let w = tiny("gzip");
        let short = SimConfig::preset(ConfigPreset::Base, TechNode::T090, 4 << 10)
            .with_insts(5_000, 30_000);
        let long = short.with_insts(30_000, 30_000);
        let a = Engine::new(short, &w, 7).run();
        let b = Engine::new(long, &w, 7).run();
        assert!(a.committed >= 30_000 && b.committed >= 30_000);
        // Warmed caches: the long warm-up run must not be slower by much.
        assert!(b.ipc() > 0.8 * a.ipc());
    }

    #[test]
    fn bus_priority_visible_in_grant_mix() {
        // mcf's D-side must dominate bus grants (DCache > IFetch priority
        // plus sheer volume).
        let w = tiny("mcf");
        let cfg = SimConfig::preset(ConfigPreset::Clgp, TechNode::T045, 4 << 10)
            .with_insts(10_000, 40_000);
        let s = Engine::new(cfg, &w, 7).run();
        assert!(
            s.bus.grants_dcache > s.bus.grants_ifetch,
            "expected D-side to dominate: {:?}",
            s.bus
        );
    }
}
