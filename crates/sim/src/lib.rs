//! # prestage-sim
//!
//! The full-system, trace-driven timing simulator of the fetch-prestaging
//! reproduction: Table 2's processor (4-wide fetch/issue/commit, 64-entry
//! RUU, 15-stage pipeline, 32 KB L1-D, unified 1 MB L2, 200-cycle memory)
//! around the [`prestage_core`] front-end, with wrong-path execution through
//! the basic-block dictionary and speculative branch-predictor state with
//! checkpoint/repair — the methodology of §4 of the paper.
//!
//! * [`backend`] — the RUU-based out-of-order back-end (scoreboarded issue,
//!   D-cache with two ports, in-order commit).
//! * [`engine`] — the cycle loop tying predictor → queue → prefetcher →
//!   fetch → decode → RUU together, including divergence detection and
//!   misprediction redirects.
//! * [`config`] — [`SimConfig`] plus presets for **every configuration in
//!   the paper's evaluation**: `base`, `base+L0`, `base pipelined`, `ideal`,
//!   `FDP(+L0)(+PB16)`, `CLGP(+L0)(+PB16)` at both technology nodes.
//! * [`stats`] — run statistics and aggregation (harmonic means, source
//!   distributions for Figures 7/8).
//! * [`runner`] — the flat cell-addressed sweep executor: one
//!   work-stealing pool over (preset × L1-size × benchmark) cells.
//! * [`spec`] — [`ExperimentSpec`], the serializable value that fully
//!   describes an experiment, with JSON round-trip, the `PRESTAGE_*`
//!   env override layer, and the shard-file format of the `prestage` CLI.
//! * [`artifacts`] — [`results_dir`], the one cwd-independent answer to
//!   where sweep artifacts land on disk.

pub mod artifacts;
pub mod backend;
pub mod config;
pub mod engine;
pub mod runner;
pub mod spec;
pub mod stats;

pub use artifacts::results_dir;
pub use backend::{BackEnd, BackendConfig, BackendStats};
pub use config::{ConfigPreset, SimConfig};
pub use engine::{Engine, PredictorKind};
pub use prestage_core::{ITlbConfig, InsertionPolicy, PrefetcherKind};
pub use runner::{
    default_threads, live_source, pool_map, pool_map_cancellable, pool_threads, run_cells,
    run_cells_full, run_cells_sourced, run_cells_sourced_observed, run_cells_with_threads,
    run_config_over, run_grid, run_one, CellGrid, CellResult, GridResult, SweepCell,
};
pub use spec::{
    cell_from_json, cell_to_json, grid_output, run_spec, run_spec_cells,
    run_spec_cells_observed, stats_from_json, stats_to_json, try_run_spec, try_run_spec_over,
    ExperimentSpec, ShardFile, TraceSource, L1_SIZES, TRACE_RECORD_SLACK,
};
pub use stats::{harmonic_mean, SimStats};
