//! Parallel sweep execution: one flat work-stealing pool over sweep cells.
//!
//! The paper's figures are (preset × L1-size × benchmark) IPC sweeps.  The
//! first runner parallelised only the innermost axis: each (preset, size)
//! cell spawned and tore down its own thread pool, so every core idled at
//! every cell boundary.  This module instead flattens the whole grid into
//! [`SweepCell`]s — flat deterministic cell identifiers — and evaluates an
//! arbitrary slice of them on one long-lived work-stealing pool
//! ([`run_cells`], built on [`pool_map`]'s atomic work cursor; the offline
//! build has no rayon).  [`CellGrid`] maps cells to flat grid positions and
//! [`CellGrid::merge`] reassembles ordered [`GridResult`]s per
//! (preset, size) row from the unordered cell results.
//!
//! Every cell is an independent deterministic simulation, so results are
//! bit-exact regardless of thread count or cell order — and the flat
//! addressing doubles as the unit of distribution for the multi-process
//! sharding the ROADMAP plans: a shard is just a sub-slice of
//! [`CellGrid::cells`], and `merge` accepts any union of shard outputs.

use crate::config::{ConfigPreset, SimConfig};
use crate::engine::{Engine, PredictorKind};
use crate::stats::{harmonic_mean, SimStats};
use prestage_cacti::TechNode;
use prestage_workload::{build, BenchmarkProfile, InstSource, TraceGenerator, Workload};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// Result of one grid row: per-benchmark stats plus the harmonic-mean IPC.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// Per-benchmark (name, stats) in input order.
    pub per_bench: Vec<(String, SimStats)>,
}

impl GridResult {
    /// Harmonic mean of per-benchmark IPC (the paper's aggregate).
    pub fn hmean_ipc(&self) -> f64 {
        let v: Vec<f64> = self.per_bench.iter().map(|(_, s)| s.ipc()).collect();
        harmonic_mean(&v)
    }

    /// IPC for a given benchmark name.
    pub fn ipc_of(&self, name: &str) -> Option<f64> {
        self.per_bench
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.ipc())
    }

    /// Benchmarks whose IPC is zero (a hung or broken configuration).
    /// [`harmonic_mean`] propagates these as an aggregate of 0.0 instead of
    /// masking them; this names the culprits for the sweep output.
    pub fn zero_ipc_benches(&self) -> Vec<&str> {
        self.per_bench
            .iter()
            .filter(|(_, s)| s.ipc() <= 0.0)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// Flat identifier of one simulation in a sweep grid: which paper
/// configuration, at which node, with which L1 capacity, over which
/// benchmark, executed with which engine seed.
///
/// A cell is the atom of sweep execution *and* of distribution: it is
/// `Copy`, hashable, and independent of every other cell, so any subset can
/// run on any worker (thread today, process or host later) and the results
/// merge by grid position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepCell {
    pub preset: ConfigPreset,
    pub tech: TechNode,
    pub l1: usize,
    /// Index into the sweep's workload list.
    pub bench_idx: usize,
    /// Engine execution seed (wrong-path / bus arbitration jitter).
    pub exec_seed: u64,
}

impl SweepCell {
    /// The paper-preset configuration this cell denotes.  Callers that need
    /// non-default run lengths or ablation knobs pass their own `configure`
    /// closure to [`run_cells`] instead.
    pub fn config(&self) -> SimConfig {
        SimConfig::preset(self.preset, self.tech, self.l1)
    }
}

/// One evaluated cell: the identifier, its stats, and how long it took on
/// its worker (useful for load-balance diagnostics; never part of
/// determinism comparisons).
#[derive(Debug, Clone)]
pub struct CellResult {
    pub cell: SweepCell,
    pub stats: SimStats,
    pub wall: Duration,
}

/// A rectangular (preset × L1-size × benchmark) sweep grid at one node:
/// the bijection between [`SweepCell`]s and flat grid positions.
///
/// Flat order is row-major: preset, then size, then benchmark — so one
/// (preset, size) row occupies `n_bench` consecutive positions.
#[derive(Debug, Clone)]
pub struct CellGrid {
    presets: Vec<ConfigPreset>,
    tech: TechNode,
    sizes: Vec<usize>,
    n_bench: usize,
    exec_seed: u64,
}

impl CellGrid {
    /// Build a grid over duplicate-free preset and size axes.
    ///
    /// # Panics
    /// If either axis contains duplicates (the cell ↔ position mapping
    /// would no longer be a bijection).
    pub fn new(
        presets: Vec<ConfigPreset>,
        tech: TechNode,
        sizes: Vec<usize>,
        n_bench: usize,
        exec_seed: u64,
    ) -> CellGrid {
        for (i, p) in presets.iter().enumerate() {
            assert!(
                !presets[..i].contains(p),
                "duplicate preset {p:?} in sweep axis"
            );
        }
        for (i, s) in sizes.iter().enumerate() {
            assert!(!sizes[..i].contains(s), "duplicate L1 size {s} in sweep axis");
        }
        CellGrid {
            presets,
            tech,
            sizes,
            n_bench,
            exec_seed,
        }
    }

    pub fn presets(&self) -> &[ConfigPreset] {
        &self.presets
    }

    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Total number of cells in the grid.
    pub fn n_cells(&self) -> usize {
        self.presets.len() * self.sizes.len() * self.n_bench
    }

    pub fn is_empty(&self) -> bool {
        self.n_cells() == 0
    }

    /// The cell at flat position `flat` (row-major).
    ///
    /// # Panics
    /// If `flat >= self.n_cells()`.
    pub fn cell_at(&self, flat: usize) -> SweepCell {
        assert!(flat < self.n_cells(), "cell index {flat} out of grid");
        let bench_idx = flat % self.n_bench;
        let size_idx = (flat / self.n_bench) % self.sizes.len();
        let preset_idx = flat / (self.n_bench * self.sizes.len());
        SweepCell {
            preset: self.presets[preset_idx],
            tech: self.tech,
            l1: self.sizes[size_idx],
            bench_idx,
            exec_seed: self.exec_seed,
        }
    }

    /// The flat position of `cell`, or `None` when the cell does not belong
    /// to this grid (different node, seed, or off-axis coordinates).
    pub fn index_of(&self, cell: &SweepCell) -> Option<usize> {
        if cell.tech != self.tech || cell.exec_seed != self.exec_seed {
            return None;
        }
        if cell.bench_idx >= self.n_bench {
            return None;
        }
        let preset_idx = self.presets.iter().position(|p| *p == cell.preset)?;
        let size_idx = self.sizes.iter().position(|s| *s == cell.l1)?;
        Some((preset_idx * self.sizes.len() + size_idx) * self.n_bench + cell.bench_idx)
    }

    /// Every cell of the grid in flat order — the full work list, or the
    /// thing to slice when sharding across processes.
    pub fn cells(&self) -> Vec<SweepCell> {
        (0..self.n_cells()).map(|i| self.cell_at(i)).collect()
    }

    /// Reassemble unordered cell results into ordered [`GridResult`]s,
    /// indexed `[preset][size]` with per-benchmark entries in workload
    /// order.
    ///
    /// # Panics
    /// If a result does not belong to this grid, a position is duplicated,
    /// or any position is missing — a sharded run that lost a cell should
    /// fail loudly, not ship a partial figure.
    pub fn merge(&self, results: Vec<CellResult>, workloads: &[Workload]) -> Vec<Vec<GridResult>> {
        let names: Vec<&str> = workloads.iter().map(|w| w.profile.name).collect();
        self.merge_named(results, &names)
    }

    /// [`CellGrid::merge`] by benchmark *name* — what a cross-process
    /// collector uses: merging serialized shard results needs the grid
    /// shape and the benchmark labels, not the (expensive, already-paid)
    /// workload builds behind them.
    pub fn merge_named(&self, results: Vec<CellResult>, names: &[&str]) -> Vec<Vec<GridResult>> {
        assert_eq!(
            names.len(),
            self.n_bench,
            "grid built for {} benchmarks, merge given {}",
            self.n_bench,
            names.len()
        );
        let mut slots: Vec<Option<SimStats>> = vec![None; self.n_cells()];
        for r in results {
            let flat = self
                .index_of(&r.cell)
                .unwrap_or_else(|| panic!("cell {:?} does not belong to this grid", r.cell));
            assert!(
                slots[flat].replace(r.stats).is_none(),
                "duplicate result for cell {:?}",
                r.cell
            );
        }
        let flat = slots.into_iter().enumerate().map(|(i, s)| {
            s.unwrap_or_else(|| panic!("missing result for cell {:?}", self.cell_at(i)))
        });
        let mut rows =
            reassemble_rows(flat, self.presets.len() * self.sizes.len(), names).into_iter();
        self.presets
            .iter()
            .map(|_| self.sizes.iter().map(|_| rows.next().expect("sized")).collect())
            .collect()
    }
}

/// Chunk a flat, row-major stream of per-cell stats back into
/// [`GridResult`] rows with per-benchmark entries in workload order — the
/// one reassembly loop shared by [`CellGrid::merge_named`] and
/// [`run_grid`].
fn reassemble_rows(
    flat: impl Iterator<Item = SimStats>,
    n_rows: usize,
    names: &[&str],
) -> Vec<GridResult> {
    let mut flat = flat.fuse();
    (0..n_rows)
        .map(|_| GridResult {
            per_bench: names
                .iter()
                .map(|n| (n.to_string(), flat.next().expect("sized")))
                .collect(),
        })
        .collect()
}

/// The machine's available parallelism (4 when undetectable) — the pool
/// width used when an [`ExperimentSpec`](crate::ExperimentSpec) leaves
/// `threads` unset.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Worker-thread count for the pool: the `PRESTAGE_THREADS` override if
/// set (parsed — loudly — by the [`crate::spec`] env layer), else
/// [`default_threads`].
pub fn pool_threads() -> usize {
    crate::spec::threads_override().unwrap_or_else(default_threads)
}

/// The in-tree work-stealing executor: evaluate `f(0..n)` on `threads`
/// workers pulling indices from one shared atomic cursor, returning results
/// in index order.
///
/// This is the single pool every sweep entry point shares ([`run_cells`],
/// [`run_grid`], [`run_config_over`]): one `thread::scope` spans the whole
/// task list, so cores stay busy across cell boundaries instead of
/// resynchronising per (preset, size) cell.  With `threads <= 1` the tasks
/// run serially on the caller's thread — the reference order the
/// determinism tests compare against.
pub fn pool_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                tx.send((i, f(i))).expect("collector alive");
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in rx {
        out[i] = Some(v);
    }
    out.into_iter()
        .map(|x| x.expect("every task completed"))
        .collect()
}

/// [`pool_map`] with cooperative cancellation: workers keep pulling
/// indices from the shared cursor until it runs dry *or* `cancel` is
/// observed set, whichever comes first.  Indices that ran come back as
/// `Some` — bit-identical to what a full [`pool_map`] would have produced,
/// because each task is independent — and indices never started are
/// `None`.  With `threads <= 1` the tasks run serially on the caller's
/// thread, checking `cancel` between indices.
pub fn pool_map_cancellable<T, F>(
    n: usize,
    threads: usize,
    cancel: &AtomicBool,
    f: F,
) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, slot) in out.iter_mut().enumerate() {
            if cancel.load(Ordering::Relaxed) {
                break;
            }
            *slot = Some(f(i));
        }
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                if cancel.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                tx.send((i, f(i))).expect("collector alive");
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in rx {
        out[i] = Some(v);
    }
    out
}

/// Evaluate an arbitrary slice of cells — a whole grid, one row, or one
/// shard of a distributed sweep — across `threads` workers.  `configure`
/// maps each cell to its full [`SimConfig`] (run lengths, ablation knobs);
/// use [`SweepCell::config`] when the paper preset defaults suffice.
///
/// Results come back in input-cell order; they are bit-exact for any
/// `threads`, because every cell simulation is independent and
/// deterministic.
pub fn run_cells_with_threads<F>(
    cells: &[SweepCell],
    workloads: &[Workload],
    configure: F,
    threads: usize,
) -> Vec<CellResult>
where
    F: Fn(&SweepCell) -> SimConfig + Sync,
{
    run_cells_full(cells, workloads, configure, threads, PredictorKind::Stream)
}

/// The fully-parameterised cell executor: like [`run_cells_with_threads`]
/// but with an explicit fetch-block predictor — the knob
/// [`ExperimentSpec`](crate::ExperimentSpec) exposes for the
/// predictor-quality comparisons of §2.1.  Streams come from the live
/// generator; [`run_cells_sourced`] is the same executor with the source
/// pluggable (trace replay).
pub fn run_cells_full<F>(
    cells: &[SweepCell],
    workloads: &[Workload],
    configure: F,
    threads: usize,
    predictor: PredictorKind,
) -> Vec<CellResult>
where
    F: Fn(&SweepCell) -> SimConfig + Sync,
{
    run_cells_sourced(cells, workloads, configure, threads, predictor, live_source)
}

/// The default committed-path source: a fresh live [`TraceGenerator`] per
/// cell, seeded by the cell's exec seed.
pub fn live_source<'w>(cell: &SweepCell, w: &'w Workload) -> Box<dyn InstSource + 'w> {
    Box::new(TraceGenerator::new(w, cell.exec_seed))
}

/// The most general cell executor: every cell's engine pulls its committed
/// path from `source(cell, workload)` — the live generator
/// ([`live_source`]) or a per-cell disk replay (`ExperimentSpec`s with a
/// `trace` source route here).  Each worker opens its own source, so
/// replaying cells share a trace *file*, not a materialised `Vec`: memory
/// stays constant in trace length no matter how many cells replay it.
pub fn run_cells_sourced<'w, F, S>(
    cells: &[SweepCell],
    workloads: &'w [Workload],
    configure: F,
    threads: usize,
    predictor: PredictorKind,
    source: S,
) -> Vec<CellResult>
where
    F: Fn(&SweepCell) -> SimConfig + Sync,
    S: Fn(&SweepCell, &'w Workload) -> Box<dyn InstSource + 'w> + Sync,
{
    static RUN_TO_END: AtomicBool = AtomicBool::new(false);
    run_cells_sourced_observed(
        cells,
        workloads,
        configure,
        threads,
        predictor,
        source,
        &|_| {},
        &RUN_TO_END,
    )
}

/// [`run_cells_sourced`] with per-cell progress and cooperative
/// cancellation — the executor behind the `prestage serve` job workers.
/// `observer` is invoked (on whichever worker thread finished the cell)
/// once per completed cell, in completion order; when `cancel` is set,
/// workers stop pulling new cells and the completed subset comes back in
/// input-cell order.  Completed results are bit-identical to a full
/// [`run_cells_sourced`] run of the same cells.
#[allow(clippy::too_many_arguments)]
pub fn run_cells_sourced_observed<'w, F, S>(
    cells: &[SweepCell],
    workloads: &'w [Workload],
    configure: F,
    threads: usize,
    predictor: PredictorKind,
    source: S,
    observer: &(dyn Fn(&CellResult) + Sync),
    cancel: &AtomicBool,
) -> Vec<CellResult>
where
    F: Fn(&SweepCell) -> SimConfig + Sync,
    S: Fn(&SweepCell, &'w Workload) -> Box<dyn InstSource + 'w> + Sync,
{
    for c in cells {
        assert!(
            c.bench_idx < workloads.len(),
            "cell {c:?} indexes outside the {} given workloads",
            workloads.len()
        );
    }
    pool_map_cancellable(cells.len(), threads, cancel, |i| {
        let cell = cells[i];
        let w = &workloads[cell.bench_idx];
        let t0 = std::time::Instant::now();
        let stats =
            Engine::with_source(configure(&cell), w, source(&cell, w), predictor).run();
        let r = CellResult {
            cell,
            stats,
            wall: t0.elapsed(),
        };
        observer(&r);
        r
    })
    .into_iter()
    .flatten()
    .collect()
}

/// [`run_cells_with_threads`] on the default pool width ([`pool_threads`]).
pub fn run_cells<F>(cells: &[SweepCell], workloads: &[Workload], configure: F) -> Vec<CellResult>
where
    F: Fn(&SweepCell) -> SimConfig + Sync,
{
    run_cells_with_threads(cells, workloads, configure, pool_threads())
}

/// Build a workload and run one configuration over it.
pub fn run_one(cfg: SimConfig, profile: &BenchmarkProfile, seed: u64) -> SimStats {
    let w = build(profile, seed);
    Engine::new(cfg, &w, seed).run()
}

/// Run a whole grid of arbitrary configs: the (config × workload) cross
/// product flattened onto one [`pool_map`] pool.  Returns one
/// [`GridResult`] per config, input order.
///
/// Unlike [`run_cells`] this takes opaque `SimConfig`s (ablation variants
/// have no preset identity), but it shares the same executor, so multi-row
/// callers still keep every core busy across row boundaries.
pub fn run_grid(configs: &[SimConfig], workloads: &[Workload], exec_seed: u64) -> Vec<GridResult> {
    let n = configs.len() * workloads.len();
    let flat = pool_map(n, pool_threads(), |i| {
        let (ci, wi) = (i / workloads.len(), i % workloads.len());
        Engine::new(configs[ci], &workloads[wi], exec_seed).run()
    });
    let names: Vec<&str> = workloads.iter().map(|w| w.profile.name).collect();
    reassemble_rows(flat.into_iter(), configs.len(), &names)
}

/// Run one config over pre-built workloads in parallel; order preserved.
pub fn run_config_over(cfg: SimConfig, workloads: &[Workload], exec_seed: u64) -> GridResult {
    run_grid(&[cfg], workloads, exec_seed)
        .pop()
        .expect("one config in, one result out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConfigPreset, SimConfig};
    use prestage_cacti::TechNode;

    fn tiny_workloads(n: usize) -> Vec<Workload> {
        prestage_workload::specint_mini(n, 5)
    }

    fn test_grid(n_bench: usize) -> CellGrid {
        CellGrid::new(
            vec![ConfigPreset::Base, ConfigPreset::ClgpL0],
            TechNode::T090,
            vec![2 << 10, 4 << 10],
            n_bench,
            3,
        )
    }

    #[test]
    fn parallel_grid_matches_serial() {
        let workloads = tiny_workloads(3);
        let cfg = SimConfig::preset(ConfigPreset::Base, TechNode::T090, 4 << 10)
            .with_insts(5_000, 20_000);
        let par = run_config_over(cfg, &workloads, 3);
        // Serial reference.
        let serial: Vec<f64> = workloads
            .iter()
            .map(|w| Engine::new(cfg, w, 3).run().ipc())
            .collect();
        for ((_, s), ser) in par.per_bench.iter().zip(serial) {
            assert!((s.ipc() - ser).abs() < 1e-12);
        }
        assert!(par.hmean_ipc() > 0.0);
        assert!(par.ipc_of(workloads[0].profile.name).is_some());
        assert!(par.ipc_of("nonesuch").is_none());
    }

    #[test]
    fn run_grid_spans_configs_and_workloads() {
        let workloads = tiny_workloads(2);
        let configs: Vec<SimConfig> = [ConfigPreset::Base, ConfigPreset::BaseL0]
            .iter()
            .map(|&p| SimConfig::preset(p, TechNode::T090, 2 << 10).with_insts(2_000, 8_000))
            .collect();
        let grid = run_grid(&configs, &workloads, 7);
        assert_eq!(grid.len(), 2);
        for (cfg, row) in configs.iter().zip(&grid) {
            assert_eq!(row.per_bench.len(), 2);
            for ((name, s), w) in row.per_bench.iter().zip(&workloads) {
                assert_eq!(name, w.profile.name);
                let serial = Engine::new(*cfg, w, 7).run();
                assert_eq!(s.cycles, serial.cycles);
                assert_eq!(s.committed, serial.committed);
            }
        }
    }

    #[test]
    fn cell_position_roundtrip() {
        let grid = test_grid(3);
        assert_eq!(grid.n_cells(), 2 * 2 * 3);
        for flat in 0..grid.n_cells() {
            let cell = grid.cell_at(flat);
            assert_eq!(grid.index_of(&cell), Some(flat), "{cell:?}");
        }
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.n_cells());
        // Foreign cells resolve to no position.
        let mut foreign = cells[0];
        foreign.tech = TechNode::T045;
        assert_eq!(grid.index_of(&foreign), None);
        let mut foreign = cells[0];
        foreign.exec_seed += 1;
        assert_eq!(grid.index_of(&foreign), None);
        let mut foreign = cells[0];
        foreign.bench_idx = 3;
        assert_eq!(grid.index_of(&foreign), None);
        let mut foreign = cells[0];
        foreign.l1 = 3 << 10;
        assert_eq!(grid.index_of(&foreign), None);
        let mut foreign = cells[0];
        foreign.preset = ConfigPreset::Ideal;
        assert_eq!(grid.index_of(&foreign), None);
    }

    #[test]
    #[should_panic(expected = "duplicate L1 size")]
    fn duplicate_axis_rejected() {
        CellGrid::new(
            vec![ConfigPreset::Base],
            TechNode::T090,
            vec![1024, 1024],
            1,
            0,
        );
    }

    #[test]
    fn merge_reassembles_shuffled_cells() {
        let workloads = tiny_workloads(2);
        let grid = test_grid(2);
        let mut results = run_cells_with_threads(
            &grid.cells(),
            &workloads,
            |c| c.config().with_insts(2_000, 8_000),
            2,
        );
        // Any reordering of the unordered cell results must merge the same.
        results.reverse();
        results.swap(0, 3);
        let merged = grid.merge(results, &workloads);
        assert_eq!(merged.len(), 2);
        for (pi, row) in merged.iter().enumerate() {
            assert_eq!(row.len(), 2);
            for (si, r) in row.iter().enumerate() {
                let cell = grid.cell_at((pi * 2 + si) * 2);
                let serial = Engine::new(
                    cell.config().with_insts(2_000, 8_000),
                    &workloads[0],
                    cell.exec_seed,
                )
                .run();
                assert_eq!(r.per_bench[0].1.cycles, serial.cycles);
                assert_eq!(r.per_bench[0].0, workloads[0].profile.name);
            }
        }
    }

    #[test]
    #[should_panic(expected = "missing result")]
    fn merge_rejects_lost_cells() {
        let workloads = tiny_workloads(1);
        let grid = CellGrid::new(
            vec![ConfigPreset::Base],
            TechNode::T090,
            vec![1 << 10],
            1,
            3,
        );
        grid.merge(Vec::new(), &workloads);
    }

    #[test]
    fn pool_map_orders_results_for_any_width() {
        let square: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(pool_map(37, threads, |i| i * i), square);
        }
        assert!(pool_map(0, 4, |i| i).is_empty());
    }
}
