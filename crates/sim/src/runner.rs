//! Parallel sweep execution: benchmarks × configurations grids.
//!
//! The paper's figures are IPC sweeps over (preset, L1 size, node) for all
//! twelve SPECint2000 benchmarks, harmonically aggregated.  [`run_grid`]
//! executes such a grid with `std::thread::scope` — every cell is an
//! independent deterministic simulation, so the grid parallelises
//! embarrassingly.

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::stats::{harmonic_mean, SimStats};
use prestage_workload::{build, BenchmarkProfile, Workload};

/// Result of one grid cell: per-benchmark stats plus the harmonic-mean IPC.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// Per-benchmark (name, stats) in input order.
    pub per_bench: Vec<(String, SimStats)>,
}

impl GridResult {
    /// Harmonic mean of per-benchmark IPC (the paper's aggregate).
    pub fn hmean_ipc(&self) -> f64 {
        let v: Vec<f64> = self.per_bench.iter().map(|(_, s)| s.ipc()).collect();
        harmonic_mean(&v)
    }

    /// IPC for a given benchmark name.
    pub fn ipc_of(&self, name: &str) -> Option<f64> {
        self.per_bench
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.ipc())
    }
}

/// Build a workload and run one configuration over it.
pub fn run_one(cfg: SimConfig, profile: &BenchmarkProfile, seed: u64) -> SimStats {
    let w = build(profile, seed);
    Engine::new(cfg, &w, seed).run()
}

/// Run `cfg` over pre-built workloads in parallel; order preserved.
pub fn run_config_over(cfg: SimConfig, workloads: &[Workload], exec_seed: u64) -> GridResult {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(workloads.len())
        .max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, SimStats)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= workloads.len() {
                    break;
                }
                let stats = Engine::new(cfg, &workloads[i], exec_seed).run();
                tx.send((i, stats)).expect("collector alive");
            });
        }
    });
    drop(tx);
    let mut per_bench: Vec<Option<(String, SimStats)>> = vec![None; workloads.len()];
    for (i, stats) in rx {
        per_bench[i] = Some((workloads[i].profile.name.to_string(), stats));
    }
    GridResult {
        per_bench: per_bench
            .into_iter()
            .map(|x| x.expect("cell filled"))
            .collect(),
    }
}

/// Run a whole grid: for each config, all workloads. Returns one
/// [`GridResult`] per config, input order.
pub fn run_grid(configs: &[SimConfig], workloads: &[Workload], exec_seed: u64) -> Vec<GridResult> {
    configs
        .iter()
        .map(|c| run_config_over(*c, workloads, exec_seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConfigPreset, SimConfig};
    use prestage_cacti::TechNode;
    use prestage_workload::specint2000;

    #[test]
    fn parallel_grid_matches_serial() {
        let mut profiles = specint2000();
        profiles.truncate(3);
        let workloads: Vec<_> = profiles
            .iter_mut()
            .map(|p| {
                p.i_footprint_kb = p.i_footprint_kb.min(8);
                p.n_funcs = p.n_funcs.min(12);
                build(p, 5)
            })
            .collect();
        let cfg = SimConfig::preset(ConfigPreset::Base, TechNode::T090, 4 << 10)
            .with_insts(5_000, 20_000);
        let par = run_config_over(cfg, &workloads, 3);
        // Serial reference.
        let serial: Vec<f64> = workloads
            .iter()
            .map(|w| Engine::new(cfg, w, 3).run().ipc())
            .collect();
        for ((_, s), ser) in par.per_bench.iter().zip(serial) {
            assert!((s.ipc() - ser).abs() < 1e-12);
        }
        assert!(par.hmean_ipc() > 0.0);
        assert!(par.ipc_of(workloads[0].profile.name).is_some());
        assert!(par.ipc_of("nonesuch").is_none());
    }
}
