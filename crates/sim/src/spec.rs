//! The experiment API: one serializable value that fully describes an
//! experiment.
//!
//! The paper's evaluation is a fixed matrix of named configurations
//! (§5.1's presets × tech nodes × L1 sizes × SPECint2000 benchmarks).
//! [`ExperimentSpec`] is that matrix as a plain value: every knob a run
//! needs — axes, run lengths, seeds, pool width, predictor — in one struct
//! that round-trips through JSON and therefore crosses process (and host)
//! boundaries unchanged.  Everything above it is derived:
//!
//! * [`CellGrid::from_spec`] turns a spec into the flat cell grid the
//!   work-stealing pool executes;
//! * [`run_spec`] runs the whole grid in-process and returns ordered
//!   `[preset][size]` rows;
//! * [`run_spec_cells`] runs an arbitrary cell slice — the unit the
//!   `prestage shard` CLI distributes across processes — and
//!   [`ShardFile`] is its serialized output, reassembled bit-exactly by
//!   `prestage merge` via [`CellGrid::merge_named`];
//! * [`grid_output`] renders merged rows deterministically, so a merged
//!   multi-process run and a single-process run of the same spec produce
//!   byte-identical artifacts.
//!
//! The `PRESTAGE_*` environment variables survive only as an *override
//! layer*: [`ExperimentSpec::env_overrides`] folds them onto an existing
//! spec, and this module is the single place in the workspace where they
//! are parsed (malformed values abort with the variable name, per the
//! loud-parsing policy).

use crate::config::{ConfigPreset, SimConfig};
use crate::engine::PredictorKind;
use crate::runner::{
    default_threads, run_cells_full, CellGrid, CellResult, GridResult, SweepCell,
};
use crate::stats::SimStats;
use prestage_cacti::TechNode;
use prestage_json::Json;
use prestage_workload::{build, specint2000, BenchmarkProfile, Workload};
use std::time::Duration;

/// The paper's L1 I-cache sweep axis: 256 B … 64 KB.
pub const L1_SIZES: [usize; 9] = [
    256,
    512,
    1 << 10,
    2 << 10,
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
];

/// Schema version of every JSON artifact this module writes.
pub const SPEC_SCHEMA: u64 = 1;

/// A complete, serializable description of one experiment.
///
/// This is the *only* way experiments are configured: figure binaries
/// declare one, the CLI loads one from JSON, and the environment can only
/// override fields through [`ExperimentSpec::env_overrides`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Configuration presets (grid rows), figure-legend order.
    pub presets: Vec<ConfigPreset>,
    /// Technology node the whole grid runs at.
    pub tech: TechNode,
    /// L1 I-cache capacities in bytes (grid columns).
    pub l1_sizes: Vec<usize>,
    /// Benchmark filter: `None` = the full SPECint2000 set, `Some` = an
    /// explicit ordered subset (unknown names are a loud error).
    pub bench: Option<Vec<String>>,
    /// Warm-up instructions per run.
    pub warmup_insts: u64,
    /// Measured instructions per run.
    pub measure_insts: u64,
    /// Workload *generation* seed.
    pub workload_seed: u64,
    /// Engine *execution* seed (wrong-path / arbitration jitter),
    /// deliberately independent of [`workload_seed`](Self::workload_seed).
    pub exec_seed: u64,
    /// Worker threads for the sweep pool; `None` = available parallelism.
    /// The one field that may legitimately differ between hosts — it never
    /// affects results (cells are bit-exact for any pool width).
    pub threads: Option<usize>,
    /// Fetch-block predictor driving the decoupled front-end.
    pub predictor: PredictorKind,
}

impl Default for ExperimentSpec {
    /// The paper's full evaluation matrix at the far-future node: every
    /// preset × every L1 size × all twelve benchmarks, §5.1 run lengths.
    fn default() -> ExperimentSpec {
        ExperimentSpec {
            presets: ConfigPreset::all().to_vec(),
            tech: TechNode::T045,
            l1_sizes: L1_SIZES.to_vec(),
            bench: None,
            warmup_insts: 200_000,
            measure_insts: 1_000_000,
            workload_seed: 42,
            exec_seed: 42,
            threads: None,
            predictor: PredictorKind::Stream,
        }
    }
}

// ---------------------------------------------------------------------------
// The environment override layer — the single place `PRESTAGE_*` variables
// are read.
// ---------------------------------------------------------------------------

/// Parse an env-var value, failing loudly on malformed input: a typo'd
/// `PRESTAGE_MEASURE=1e6` must abort, not silently run the default length.
/// Empty/whitespace values count as unset.
fn parse_env_u64(name: &str, value: Option<&str>, default: u64) -> u64 {
    match value.map(str::trim) {
        None | Some("") => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            panic!(
                "{name} must be an unsigned integer, got {v:?} \
                 (write e.g. {name}=1000000; scientific notation is not supported)"
            )
        }),
    }
}

fn std_env(name: &str) -> Option<String> {
    std::env::var_os(name).map(|v| v.to_string_lossy().into_owned())
}

/// The `PRESTAGE_THREADS` override, if set (empty counts as unset).
/// Panics on malformed values rather than silently running serial.  Also
/// consulted by [`crate::runner::pool_threads`] for the non-spec entry
/// points, so the variable has exactly one parser.
pub(crate) fn threads_override() -> Option<usize> {
    parse_threads(std_env("PRESTAGE_THREADS").as_deref())
}

fn parse_threads(value: Option<&str>) -> Option<usize> {
    match value.map(str::trim) {
        None | Some("") => None,
        Some(t) => match t.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => panic!("PRESTAGE_THREADS must be a positive integer, got {t:?}"),
        },
    }
}

impl ExperimentSpec {
    /// The default matrix with every `PRESTAGE_*` override applied — the
    /// spec a figure binary runs when the environment says nothing.
    pub fn from_env() -> ExperimentSpec {
        ExperimentSpec::default().env_overrides()
    }

    /// Fold the `PRESTAGE_*` environment variables over this spec:
    /// `PRESTAGE_WARMUP`, `PRESTAGE_MEASURE`, `PRESTAGE_SEED`,
    /// `PRESTAGE_EXEC_SEED`, `PRESTAGE_BENCH` (comma-separated filter) and
    /// `PRESTAGE_THREADS`.  Unset (or empty) variables leave the spec
    /// field untouched; malformed values abort with the variable name.
    ///
    /// The experiment axes (presets, tech, sizes, predictor) have no env
    /// form on purpose: changing *what* is measured is a spec edit, not a
    /// shell prefix.
    pub fn env_overrides(self) -> ExperimentSpec {
        self.env_overrides_with(std_env)
    }

    /// [`env_overrides`](Self::env_overrides) with an injectable lookup
    /// (tests override without mutating process-global state).
    fn env_overrides_with(mut self, get: impl Fn(&str) -> Option<String>) -> ExperimentSpec {
        let u64_of = |name: &str, current: u64| {
            parse_env_u64(name, get(name).as_deref(), current)
        };
        self.warmup_insts = u64_of("PRESTAGE_WARMUP", self.warmup_insts);
        self.measure_insts = u64_of("PRESTAGE_MEASURE", self.measure_insts);
        self.workload_seed = u64_of("PRESTAGE_SEED", self.workload_seed);
        self.exec_seed = u64_of("PRESTAGE_EXEC_SEED", self.exec_seed);
        if let Some(v) = get("PRESTAGE_BENCH") {
            if !v.trim().is_empty() {
                self.bench = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
        }
        if let Some(t) = parse_threads(get("PRESTAGE_THREADS").as_deref()) {
            self.threads = Some(t);
        }
        self
    }

    // -----------------------------------------------------------------------
    // Derived views.
    // -----------------------------------------------------------------------

    /// Check every invariant the runner assumes.  All spec consumers call
    /// this before running; the error strings are user-facing.
    pub fn validate(&self) -> Result<(), String> {
        if self.presets.is_empty() {
            return Err("spec has no presets".into());
        }
        for (i, p) in self.presets.iter().enumerate() {
            if self.presets[..i].contains(p) {
                return Err(format!("duplicate preset {:?} in spec", p.id()));
            }
        }
        if self.l1_sizes.is_empty() {
            return Err("spec has no L1 sizes".into());
        }
        for (i, s) in self.l1_sizes.iter().enumerate() {
            if self.l1_sizes[..i].contains(s) {
                return Err(format!("duplicate L1 size {s} in spec"));
            }
            if *s < 64 {
                return Err(format!("L1 size {s} is smaller than one 64B line"));
            }
        }
        if self.measure_insts == 0 {
            return Err("measure_insts must be at least 1".into());
        }
        if self.threads == Some(0) {
            return Err("threads must be at least 1 (or null for auto)".into());
        }
        self.bench_profiles().map(|_| ())
    }

    /// Resolve the benchmark filter to profiles, in *filter order* (or the
    /// canonical SPECint2000 order when no filter is set).
    ///
    /// An unknown or duplicate name fails with the full list of valid
    /// names — a typo must not silently shrink the workload set.
    pub fn bench_profiles(&self) -> Result<Vec<BenchmarkProfile>, String> {
        let all = specint2000();
        let Some(filter) = &self.bench else {
            return Ok(all);
        };
        if filter.is_empty() {
            return Err("bench filter is empty — it matches no benchmarks \
                        (use null for the full set)"
                .into());
        }
        let mut out = Vec::with_capacity(filter.len());
        for name in filter {
            if out.iter().any(|p: &BenchmarkProfile| p.name == name) {
                return Err(format!("benchmark {name:?} listed twice in the filter"));
            }
            match all.iter().find(|p| p.name == name) {
                Some(p) => out.push(p.clone()),
                None => {
                    let valid: Vec<&str> = all.iter().map(|p| p.name).collect();
                    return Err(format!(
                        "unknown benchmark {name:?}; valid names: {}",
                        valid.join(", ")
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Resolved benchmark names (the grid's innermost axis labels).
    pub fn bench_names(&self) -> Result<Vec<&'static str>, String> {
        Ok(self.bench_profiles()?.iter().map(|p| p.name).collect())
    }

    /// Build the workload set (the expensive step: static program
    /// synthesis per benchmark, seeded by
    /// [`workload_seed`](Self::workload_seed)).
    pub fn build_workloads(&self) -> Result<Vec<Workload>, String> {
        Ok(self
            .bench_profiles()?
            .iter()
            .map(|p| build(p, self.workload_seed))
            .collect())
    }

    /// The full simulator configuration for one (preset, L1 size) grid
    /// point of this spec.
    pub fn sim_config(&self, preset: ConfigPreset, l1: usize) -> SimConfig {
        SimConfig::preset(preset, self.tech, l1).with_insts(self.warmup_insts, self.measure_insts)
    }

    /// Resolved pool width.
    pub fn resolved_threads(&self) -> usize {
        self.threads.unwrap_or_else(default_threads)
    }

    // -----------------------------------------------------------------------
    // JSON round-trip.
    // -----------------------------------------------------------------------

    pub fn to_json_value(&self) -> Json {
        // Exhaustive destructuring: adding a spec field without extending
        // the codec must not compile.
        let ExperimentSpec {
            presets,
            tech,
            l1_sizes,
            bench,
            warmup_insts,
            measure_insts,
            workload_seed,
            exec_seed,
            threads,
            predictor,
        } = self;
        Json::obj([
            ("schema", SPEC_SCHEMA.into()),
            (
                "presets",
                Json::Arr(presets.iter().map(|p| p.id().into()).collect()),
            ),
            ("tech", tech.id().into()),
            (
                "l1_sizes",
                Json::Arr(l1_sizes.iter().map(|&s| s.into()).collect()),
            ),
            (
                "bench",
                match bench {
                    None => Json::Null,
                    Some(names) => {
                        Json::Arr(names.iter().map(|n| n.as_str().into()).collect())
                    }
                },
            ),
            ("warmup_insts", (*warmup_insts).into()),
            ("measure_insts", (*measure_insts).into()),
            ("workload_seed", (*workload_seed).into()),
            ("exec_seed", (*exec_seed).into()),
            ("threads", (*threads).into()),
            ("predictor", predictor.id().into()),
        ])
    }

    /// Serialize as pretty JSON (the on-disk spec-file format).
    pub fn to_json(&self) -> String {
        self.to_json_value().pretty()
    }

    /// Parse a spec from a JSON value.  Strict: every field must be
    /// present, unknown keys are rejected (a misspelled `"warmupinsts"`
    /// must not silently fall back to the default run length).
    pub fn from_json_value(v: &Json) -> Result<ExperimentSpec, String> {
        let keys = v
            .keys()
            .ok_or_else(|| "spec must be a JSON object".to_string())?;
        const KNOWN: [&str; 11] = [
            "schema",
            "presets",
            "tech",
            "l1_sizes",
            "bench",
            "warmup_insts",
            "measure_insts",
            "workload_seed",
            "exec_seed",
            "threads",
            "predictor",
        ];
        for k in &keys {
            if !KNOWN.contains(k) {
                return Err(format!(
                    "unknown spec field {k:?} (valid fields: {})",
                    KNOWN.join(", ")
                ));
            }
        }
        for k in KNOWN {
            if !keys.contains(&k) {
                return Err(format!("spec is missing field {k:?}"));
            }
        }
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("schema must be an integer")?;
        if schema != SPEC_SCHEMA {
            return Err(format!(
                "spec schema {schema} not supported (this build reads schema {SPEC_SCHEMA})"
            ));
        }
        let presets = v
            .get("presets")
            .and_then(Json::as_arr)
            .ok_or("presets must be an array")?
            .iter()
            .map(|p| {
                let id = p.as_str().ok_or("presets entries must be strings")?;
                ConfigPreset::from_id(id).ok_or_else(|| {
                    let valid: Vec<&str> =
                        ConfigPreset::all().iter().map(|p| p.id()).collect();
                    format!("unknown preset {id:?}; valid ids: {}", valid.join(", "))
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let tech_id = v
            .get("tech")
            .and_then(Json::as_str)
            .ok_or("tech must be a string")?;
        let tech = TechNode::from_id(tech_id).ok_or_else(|| {
            let valid: Vec<&str> = TechNode::all().iter().map(|n| n.id()).collect();
            format!("unknown tech node {tech_id:?}; valid ids: {}", valid.join(", "))
        })?;
        let l1_sizes = v
            .get("l1_sizes")
            .and_then(Json::as_arr)
            .ok_or("l1_sizes must be an array")?
            .iter()
            .map(|s| {
                s.as_usize()
                    .ok_or_else(|| format!("bad l1_sizes entry {s:?} (bytes expected)"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let bench = match v.get("bench") {
            Some(Json::Null) => None,
            Some(Json::Arr(names)) => Some(
                names
                    .iter()
                    .map(|n| {
                        n.as_str()
                            .map(str::to_string)
                            .ok_or("bench entries must be strings".to_string())
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            ),
            _ => return Err("bench must be null or an array of names".into()),
        };
        let u64_field = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{name} must be an unsigned integer"))
        };
        let threads = match v.get("threads") {
            Some(Json::Null) => None,
            Some(t) => Some(
                t.as_usize()
                    .ok_or("threads must be null or a positive integer")?,
            ),
            None => None,
        };
        let pred_id = v
            .get("predictor")
            .and_then(Json::as_str)
            .ok_or("predictor must be a string")?;
        let predictor = PredictorKind::from_id(pred_id)
            .ok_or_else(|| format!("unknown predictor {pred_id:?} (stream or gshare)"))?;
        Ok(ExperimentSpec {
            presets,
            tech,
            l1_sizes,
            bench,
            warmup_insts: u64_field("warmup_insts")?,
            measure_insts: u64_field("measure_insts")?,
            workload_seed: u64_field("workload_seed")?,
            exec_seed: u64_field("exec_seed")?,
            threads,
            predictor,
        })
    }

    /// Parse a spec from JSON text.
    pub fn from_json(text: &str) -> Result<ExperimentSpec, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        ExperimentSpec::from_json_value(&v)
    }
}

impl CellGrid {
    /// The flat cell grid this spec describes — the work list a single
    /// process runs whole and `prestage shard` slices.
    pub fn from_spec(spec: &ExperimentSpec) -> Result<CellGrid, String> {
        spec.validate()?;
        Ok(CellGrid::new(
            spec.presets.clone(),
            spec.tech,
            spec.l1_sizes.clone(),
            spec.bench_names()?.len(),
            spec.exec_seed,
        ))
    }
}

// ---------------------------------------------------------------------------
// Running a spec.
// ---------------------------------------------------------------------------

/// Evaluate an arbitrary slice of a spec's cells (a whole grid or one
/// shard) on the work-stealing pool, honouring the spec's run lengths,
/// seeds, pool width and predictor.
pub fn run_spec_cells(
    spec: &ExperimentSpec,
    cells: &[SweepCell],
) -> Result<Vec<CellResult>, String> {
    spec.validate()?;
    let workloads = spec.build_workloads()?;
    Ok(run_cells_full(
        cells,
        &workloads,
        |c| spec.sim_config(c.preset, c.l1),
        spec.resolved_threads(),
        spec.predictor,
    ))
}

/// Run the whole experiment in-process: ordered `[preset][size]` rows with
/// per-benchmark entries in spec bench order.  Errors on an invalid spec.
pub fn try_run_spec(spec: &ExperimentSpec) -> Result<Vec<Vec<GridResult>>, String> {
    try_run_spec_over(spec, &spec.build_workloads()?)
}

/// [`try_run_spec`] over pre-built workloads — for callers running several
/// derived specs over one bench set (the headline binary runs five), where
/// rebuilding the synthetic programs per call would dominate.  The
/// workloads must match the spec's resolved bench set exactly.
pub fn try_run_spec_over(
    spec: &ExperimentSpec,
    workloads: &[Workload],
) -> Result<Vec<Vec<GridResult>>, String> {
    let grid = CellGrid::from_spec(spec)?;
    let names = spec.bench_names()?;
    if workloads.len() != names.len()
        || workloads.iter().zip(&names).any(|(w, n)| w.profile.name != *n)
    {
        return Err(format!(
            "given workloads [{}] do not match the spec's bench set [{}]",
            workloads
                .iter()
                .map(|w| w.profile.name)
                .collect::<Vec<_>>()
                .join(", "),
            names.join(", ")
        ));
    }
    let results = run_cells_full(
        &grid.cells(),
        workloads,
        |c| spec.sim_config(c.preset, c.l1),
        spec.resolved_threads(),
        spec.predictor,
    );
    Ok(grid.merge_named(results, &names))
}

/// [`try_run_spec`], panicking (loudly, with the spec error) on an invalid
/// spec — the figure-binary entry point, where an invalid spec is a bug or
/// a typo'd `PRESTAGE_BENCH` and must abort the reproduction.
pub fn run_spec(spec: &ExperimentSpec) -> Vec<Vec<GridResult>> {
    try_run_spec(spec).unwrap_or_else(|e| panic!("invalid experiment spec: {e}"))
}

// ---------------------------------------------------------------------------
// Cell/stats/shard serialization.
// ---------------------------------------------------------------------------

fn stats_to_json(s: &SimStats) -> Json {
    // Exhaustive destructuring everywhere in this codec: a new counter
    // field that is not serialized would silently break the bit-exact
    // shard/merge guarantee, so it must not compile instead.
    let SimStats {
        seed,
        cycles,
        committed,
        front,
        bus,
        pred,
        backend,
        redirects,
    } = *s;
    let prestage_core::FrontStats {
        fetch_pb,
        fetch_l0,
        fetch_l1,
        fetch_l2,
        fetch_mem,
        prefetch_from_pb,
        prefetch_from_l1,
        prefetch_from_l2,
        prefetch_from_mem,
        prefetches_issued,
        filtered,
        pb_alloc_stalls,
        blocks_pushed,
        blocks_rejected,
        flushes,
        consumer_bumps,
    } = front;
    let source = |c: prestage_core::SourceCount| {
        Json::Arr(vec![c.lines.into(), c.insts.into()])
    };
    let prestage_cache::BusStats {
        grants_dcache,
        grants_ifetch,
        grants_prefetch,
        writebacks,
        l2_hits,
        l2_misses,
        wait_cycles,
    } = bus;
    let prestage_bpred::PredStats {
        predictions,
        l1_supplied,
        l2_supplied,
        fallback_supplied,
        trained,
        train_correct,
    } = pred;
    let crate::backend::BackendStats {
        committed: be_committed,
        loads,
        stores,
        dcache_hits,
        dcache_misses,
        branches,
        commit_stall_cycles,
    } = backend;
    Json::obj([
        ("seed", seed.into()),
        ("cycles", cycles.into()),
        ("committed", committed.into()),
        ("redirects", redirects.into()),
        (
            "front",
            Json::obj([
                ("fetch_pb", source(fetch_pb)),
                ("fetch_l0", source(fetch_l0)),
                ("fetch_l1", source(fetch_l1)),
                ("fetch_l2", source(fetch_l2)),
                ("fetch_mem", source(fetch_mem)),
                ("prefetch_from_pb", prefetch_from_pb.into()),
                ("prefetch_from_l1", prefetch_from_l1.into()),
                ("prefetch_from_l2", prefetch_from_l2.into()),
                ("prefetch_from_mem", prefetch_from_mem.into()),
                ("prefetches_issued", prefetches_issued.into()),
                ("filtered", filtered.into()),
                ("pb_alloc_stalls", pb_alloc_stalls.into()),
                ("blocks_pushed", blocks_pushed.into()),
                ("blocks_rejected", blocks_rejected.into()),
                ("flushes", flushes.into()),
                ("consumer_bumps", consumer_bumps.into()),
            ]),
        ),
        (
            "bus",
            Json::obj([
                ("grants_dcache", grants_dcache.into()),
                ("grants_ifetch", grants_ifetch.into()),
                ("grants_prefetch", grants_prefetch.into()),
                ("writebacks", writebacks.into()),
                ("l2_hits", l2_hits.into()),
                ("l2_misses", l2_misses.into()),
                ("wait_cycles", wait_cycles.into()),
            ]),
        ),
        (
            "pred",
            Json::obj([
                ("predictions", predictions.into()),
                ("l1_supplied", l1_supplied.into()),
                ("l2_supplied", l2_supplied.into()),
                ("fallback_supplied", fallback_supplied.into()),
                ("trained", trained.into()),
                ("train_correct", train_correct.into()),
            ]),
        ),
        (
            "backend",
            Json::obj([
                ("committed", be_committed.into()),
                ("loads", loads.into()),
                ("stores", stores.into()),
                ("dcache_hits", dcache_hits.into()),
                ("dcache_misses", dcache_misses.into()),
                ("branches", branches.into()),
                ("commit_stall_cycles", commit_stall_cycles.into()),
            ]),
        ),
    ])
}

fn u64_of(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer stats field {key:?}"))
}

fn source_of(v: &Json, key: &str) -> Result<prestage_core::SourceCount, String> {
    let arr = v
        .get(key)
        .and_then(Json::as_arr)
        .filter(|a| a.len() == 2)
        .ok_or_else(|| format!("stats field {key:?} must be a [lines, insts] pair"))?;
    Ok(prestage_core::SourceCount {
        lines: arr[0]
            .as_u64()
            .ok_or_else(|| format!("bad lines count in {key:?}"))?,
        insts: arr[1]
            .as_u64()
            .ok_or_else(|| format!("bad insts count in {key:?}"))?,
    })
}

fn stats_from_json(v: &Json) -> Result<SimStats, String> {
    let sub = |key: &str| {
        v.get(key)
            .filter(|s| matches!(s, Json::Obj(_)))
            .ok_or_else(|| format!("missing stats block {key:?}"))
    };
    let front = sub("front")?;
    let bus = sub("bus")?;
    let pred = sub("pred")?;
    let backend = sub("backend")?;
    Ok(SimStats {
        seed: u64_of(v, "seed")?,
        cycles: u64_of(v, "cycles")?,
        committed: u64_of(v, "committed")?,
        redirects: u64_of(v, "redirects")?,
        front: prestage_core::FrontStats {
            fetch_pb: source_of(front, "fetch_pb")?,
            fetch_l0: source_of(front, "fetch_l0")?,
            fetch_l1: source_of(front, "fetch_l1")?,
            fetch_l2: source_of(front, "fetch_l2")?,
            fetch_mem: source_of(front, "fetch_mem")?,
            prefetch_from_pb: u64_of(front, "prefetch_from_pb")?,
            prefetch_from_l1: u64_of(front, "prefetch_from_l1")?,
            prefetch_from_l2: u64_of(front, "prefetch_from_l2")?,
            prefetch_from_mem: u64_of(front, "prefetch_from_mem")?,
            prefetches_issued: u64_of(front, "prefetches_issued")?,
            filtered: u64_of(front, "filtered")?,
            pb_alloc_stalls: u64_of(front, "pb_alloc_stalls")?,
            blocks_pushed: u64_of(front, "blocks_pushed")?,
            blocks_rejected: u64_of(front, "blocks_rejected")?,
            flushes: u64_of(front, "flushes")?,
            consumer_bumps: u64_of(front, "consumer_bumps")?,
        },
        bus: prestage_cache::BusStats {
            grants_dcache: u64_of(bus, "grants_dcache")?,
            grants_ifetch: u64_of(bus, "grants_ifetch")?,
            grants_prefetch: u64_of(bus, "grants_prefetch")?,
            writebacks: u64_of(bus, "writebacks")?,
            l2_hits: u64_of(bus, "l2_hits")?,
            l2_misses: u64_of(bus, "l2_misses")?,
            wait_cycles: u64_of(bus, "wait_cycles")?,
        },
        pred: prestage_bpred::PredStats {
            predictions: u64_of(pred, "predictions")?,
            l1_supplied: u64_of(pred, "l1_supplied")?,
            l2_supplied: u64_of(pred, "l2_supplied")?,
            fallback_supplied: u64_of(pred, "fallback_supplied")?,
            trained: u64_of(pred, "trained")?,
            train_correct: u64_of(pred, "train_correct")?,
        },
        backend: crate::backend::BackendStats {
            committed: u64_of(backend, "committed")?,
            loads: u64_of(backend, "loads")?,
            stores: u64_of(backend, "stores")?,
            dcache_hits: u64_of(backend, "dcache_hits")?,
            dcache_misses: u64_of(backend, "dcache_misses")?,
            branches: u64_of(backend, "branches")?,
            commit_stall_cycles: u64_of(backend, "commit_stall_cycles")?,
        },
    })
}

fn cell_to_json(c: &SweepCell) -> Json {
    let SweepCell {
        preset,
        tech,
        l1,
        bench_idx,
        exec_seed,
    } = *c;
    Json::obj([
        ("preset", preset.id().into()),
        ("tech", tech.id().into()),
        ("l1", l1.into()),
        ("bench_idx", bench_idx.into()),
        ("exec_seed", exec_seed.into()),
    ])
}

fn cell_from_json(v: &Json) -> Result<SweepCell, String> {
    let preset_id = v
        .get("preset")
        .and_then(Json::as_str)
        .ok_or("cell preset must be a string")?;
    let tech_id = v
        .get("tech")
        .and_then(Json::as_str)
        .ok_or("cell tech must be a string")?;
    Ok(SweepCell {
        preset: ConfigPreset::from_id(preset_id)
            .ok_or_else(|| format!("unknown preset {preset_id:?} in cell"))?,
        tech: TechNode::from_id(tech_id)
            .ok_or_else(|| format!("unknown tech {tech_id:?} in cell"))?,
        l1: v
            .get("l1")
            .and_then(Json::as_usize)
            .ok_or("cell l1 must be an integer")?,
        bench_idx: v
            .get("bench_idx")
            .and_then(Json::as_usize)
            .ok_or("cell bench_idx must be an integer")?,
        exec_seed: u64_of(v, "exec_seed")?,
    })
}

/// One process's share of a sharded sweep: the spec, the half-open cell
/// range `[start, end)` it evaluated, and the per-cell results.  Written
/// by `prestage shard`, consumed by `prestage merge`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFile {
    pub spec: ExperimentSpec,
    pub start: usize,
    pub end: usize,
    pub results: Vec<CellResult>,
}

// CellResult carries a wall-clock Duration, which has no meaningful
// equality across runs; compare shard files by cell identity and stats.
impl PartialEq for CellResult {
    fn eq(&self, other: &CellResult) -> bool {
        self.cell == other.cell && self.stats == other.stats
    }
}

impl ShardFile {
    pub fn to_json(&self) -> String {
        Json::obj([
            ("schema", SPEC_SCHEMA.into()),
            ("spec", self.spec.to_json_value()),
            (
                "cells",
                Json::obj([("start", self.start.into()), ("end", self.end.into())]),
            ),
            (
                "results",
                Json::Arr(
                    self.results
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("cell", cell_to_json(&r.cell)),
                                // Wall-clock is diagnostic only; merge
                                // output never includes it.
                                ("wall_s", r.wall.as_secs_f64().into()),
                                ("stats", stats_to_json(&r.stats)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .pretty()
    }

    pub fn from_json(text: &str) -> Result<ShardFile, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("shard file has no schema")?;
        if schema != SPEC_SCHEMA {
            return Err(format!("shard schema {schema} not supported"));
        }
        let spec = ExperimentSpec::from_json_value(
            v.get("spec").ok_or("shard file has no spec")?,
        )?;
        let cells = v.get("cells").ok_or("shard file has no cells range")?;
        let start = cells
            .get("start")
            .and_then(Json::as_usize)
            .ok_or("bad cells.start")?;
        let end = cells
            .get("end")
            .and_then(Json::as_usize)
            .ok_or("bad cells.end")?;
        let results = v
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("shard file has no results array")?
            .iter()
            .map(|r| {
                Ok(CellResult {
                    cell: cell_from_json(r.get("cell").ok_or("result has no cell")?)?,
                    stats: stats_from_json(r.get("stats").ok_or("result has no stats")?)?,
                    wall: Duration::from_secs_f64(
                        r.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0),
                    ),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        if results.len() != end.saturating_sub(start) {
            return Err(format!(
                "shard claims cells {start}..{end} but carries {} results",
                results.len()
            ));
        }
        Ok(ShardFile { spec, start, end, results })
    }
}

/// Render merged `[preset][size]` rows as the canonical grid artifact:
/// deterministic bytes, full per-cell stats, no timing.  A merged
/// multi-process run and a single-process [`run_spec`] of the same spec
/// produce identical output — the property the shard/merge CI job diffs.
///
/// The embedded spec has `threads` cleared: the pool width is host-local
/// and never affects results, so two runs that only disagreed on it must
/// still produce identical bytes.
pub fn grid_output(spec: &ExperimentSpec, rows: &[Vec<GridResult>]) -> String {
    let spec = &ExperimentSpec {
        threads: None,
        ..spec.clone()
    };
    let mut out_rows = Vec::new();
    for (preset, row) in spec.presets.iter().zip(rows) {
        for (&l1, r) in spec.l1_sizes.iter().zip(row) {
            out_rows.push(Json::obj([
                ("preset", preset.id().into()),
                ("l1", l1.into()),
                ("hmean_ipc", r.hmean_ipc().into()),
                (
                    "per_bench",
                    Json::Arr(
                        r.per_bench
                            .iter()
                            .map(|(name, s)| {
                                Json::obj([
                                    ("bench", name.as_str().into()),
                                    ("ipc", s.ipc().into()),
                                    ("stats", stats_to_json(s)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]));
        }
    }
    Json::obj([
        ("schema", SPEC_SCHEMA.into()),
        ("spec", spec.to_json_value()),
        ("rows", Json::Arr(out_rows)),
    ])
    .pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            presets: vec![ConfigPreset::Base, ConfigPreset::ClgpL0],
            tech: TechNode::T090,
            l1_sizes: vec![1 << 10, 4 << 10],
            bench: Some(vec!["gzip".into()]),
            warmup_insts: 1_000,
            measure_insts: 4_000,
            workload_seed: 7,
            exec_seed: 3,
            threads: Some(2),
            predictor: PredictorKind::Stream,
        }
    }

    #[test]
    fn default_spec_is_the_paper_matrix_and_validates() {
        let spec = ExperimentSpec::default();
        assert_eq!(spec.presets.len(), 10);
        assert_eq!(spec.l1_sizes, L1_SIZES.to_vec());
        assert_eq!(spec.bench_names().unwrap().len(), 12);
        spec.validate().unwrap();
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        for spec in [ExperimentSpec::default(), tiny_spec()] {
            let text = spec.to_json();
            let back = ExperimentSpec::from_json(&text).unwrap();
            assert_eq!(back, spec);
            // Canonical: serializing again is byte-identical.
            assert_eq!(back.to_json(), text);
        }
    }

    #[test]
    fn unknown_bench_fails_loudly_with_the_valid_names() {
        let mut spec = tiny_spec();
        spec.bench = Some(vec!["gzpi".into()]);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("unknown benchmark \"gzpi\""), "{err}");
        assert!(err.contains("gzip") && err.contains("twolf"), "{err}");
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        let mut s = tiny_spec();
        s.presets.push(ConfigPreset::Base);
        assert!(s.validate().unwrap_err().contains("duplicate preset"));
        let mut s = tiny_spec();
        s.l1_sizes = vec![];
        assert!(s.validate().unwrap_err().contains("no L1 sizes"));
        let mut s = tiny_spec();
        s.bench = Some(vec![]);
        assert!(s.validate().unwrap_err().contains("matches no benchmarks"));
        let mut s = tiny_spec();
        s.bench = Some(vec!["gzip".into(), "gzip".into()]);
        assert!(s.validate().unwrap_err().contains("listed twice"));
        let mut s = tiny_spec();
        s.threads = Some(0);
        assert!(s.validate().unwrap_err().contains("threads"));
        let mut s = tiny_spec();
        s.measure_insts = 0;
        assert!(s.validate().unwrap_err().contains("measure_insts"));
    }

    #[test]
    fn from_json_rejects_typos_and_wrong_schemas() {
        let good = tiny_spec().to_json();
        let e = ExperimentSpec::from_json(&good.replace("warmup_insts", "warmupinsts"))
            .unwrap_err();
        assert!(e.contains("unknown spec field"), "{e}");
        let e = ExperimentSpec::from_json(&good.replace("\"schema\": 1", "\"schema\": 99"))
            .unwrap_err();
        assert!(e.contains("schema 99"), "{e}");
        let e = ExperimentSpec::from_json(&good.replace("\"clgp+l0\"", "\"clgp+l9\""))
            .unwrap_err();
        assert!(e.contains("unknown preset"), "{e}");
        assert!(ExperimentSpec::from_json("[]").is_err());
    }

    #[test]
    fn env_layer_overrides_only_what_is_set() {
        let env: HashMap<&str, &str> = [
            ("PRESTAGE_MEASURE", "9000"),
            ("PRESTAGE_BENCH", "gcc, mcf"),
            ("PRESTAGE_THREADS", "3"),
        ]
        .into_iter()
        .collect();
        let spec = tiny_spec()
            .env_overrides_with(|k| env.get(k).map(|v| v.to_string()));
        assert_eq!(spec.measure_insts, 9_000);
        assert_eq!(spec.bench, Some(vec!["gcc".to_string(), "mcf".to_string()]));
        assert_eq!(spec.threads, Some(3));
        // Untouched fields keep the base spec's values.
        assert_eq!(spec.warmup_insts, 1_000);
        assert_eq!(spec.workload_seed, 7);
        // Empty values count as unset.
        let spec = tiny_spec().env_overrides_with(|k| {
            (k == "PRESTAGE_BENCH" || k == "PRESTAGE_THREADS").then(|| "  ".to_string())
        });
        assert_eq!(spec.bench, Some(vec!["gzip".to_string()]));
        assert_eq!(spec.threads, Some(2));
    }

    #[test]
    #[should_panic(expected = "PRESTAGE_MEASURE must be an unsigned integer")]
    fn env_layer_rejects_scientific_notation() {
        tiny_spec().env_overrides_with(|k| {
            (k == "PRESTAGE_MEASURE").then(|| "1e6".to_string())
        });
    }

    #[test]
    #[should_panic(expected = "PRESTAGE_THREADS must be a positive integer")]
    fn env_layer_rejects_zero_threads() {
        tiny_spec().env_overrides_with(|k| {
            (k == "PRESTAGE_THREADS").then(|| "0".to_string())
        });
    }

    #[test]
    fn env_u64_parse_accepts_good_values_and_defaults() {
        assert_eq!(parse_env_u64("X", None, 7), 7);
        assert_eq!(parse_env_u64("X", Some(""), 7), 7);
        assert_eq!(parse_env_u64("X", Some("  "), 7), 7);
        assert_eq!(parse_env_u64("X", Some("123"), 7), 123);
        assert_eq!(parse_env_u64("X", Some(" 42 "), 7), 42);
    }

    #[test]
    fn grid_from_spec_matches_axes() {
        let spec = tiny_spec();
        let grid = CellGrid::from_spec(&spec).unwrap();
        assert_eq!(grid.n_cells(), 4);
        let c = grid.cell_at(0);
        assert_eq!(c.preset, ConfigPreset::Base);
        assert_eq!(c.tech, TechNode::T090);
        assert_eq!(c.exec_seed, 3);
    }

    #[test]
    fn stats_codec_roundtrips_every_field_exactly() {
        // Fill each counter with a distinct value (including one above
        // 2^53) so a swapped or dropped field cannot cancel out.
        let mut n = (1u64 << 53) + 1;
        let mut next = || {
            n += 1;
            n
        };
        let s = SimStats {
            seed: next(),
            cycles: next(),
            committed: next(),
            redirects: next(),
            front: prestage_core::FrontStats {
                fetch_pb: prestage_core::SourceCount { lines: next(), insts: next() },
                fetch_l0: prestage_core::SourceCount { lines: next(), insts: next() },
                fetch_l1: prestage_core::SourceCount { lines: next(), insts: next() },
                fetch_l2: prestage_core::SourceCount { lines: next(), insts: next() },
                fetch_mem: prestage_core::SourceCount { lines: next(), insts: next() },
                prefetch_from_pb: next(),
                prefetch_from_l1: next(),
                prefetch_from_l2: next(),
                prefetch_from_mem: next(),
                prefetches_issued: next(),
                filtered: next(),
                pb_alloc_stalls: next(),
                blocks_pushed: next(),
                blocks_rejected: next(),
                flushes: next(),
                consumer_bumps: next(),
            },
            bus: prestage_cache::BusStats {
                grants_dcache: next(),
                grants_ifetch: next(),
                grants_prefetch: next(),
                writebacks: next(),
                l2_hits: next(),
                l2_misses: next(),
                wait_cycles: next(),
            },
            pred: prestage_bpred::PredStats {
                predictions: next(),
                l1_supplied: next(),
                l2_supplied: next(),
                fallback_supplied: next(),
                trained: next(),
                train_correct: next(),
            },
            backend: crate::backend::BackendStats {
                committed: next(),
                loads: next(),
                stores: next(),
                dcache_hits: next(),
                dcache_misses: next(),
                branches: next(),
                commit_stall_cycles: next(),
            },
        };
        let v = stats_to_json(&s);
        let back = stats_from_json(&Json::parse(&v.pretty()).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn shard_file_roundtrips_and_checks_its_count() {
        let spec = tiny_spec();
        let grid = CellGrid::from_spec(&spec).unwrap();
        let results = run_spec_cells(&spec, &grid.cells()[1..3]).unwrap();
        let shard = ShardFile { spec, start: 1, end: 3, results };
        let text = shard.to_json();
        let back = ShardFile::from_json(&text).unwrap();
        assert_eq!(back, shard);
        // A shard that lost a result line must not parse.
        let broken = text.replacen("\"end\": 3", "\"end\": 4", 1);
        assert!(ShardFile::from_json(&broken).unwrap_err().contains("carries"));
    }

    #[test]
    fn run_spec_matches_the_raw_runner_bit_exactly() {
        let spec = tiny_spec();
        let rows = try_run_spec(&spec).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2);
        let w = spec.build_workloads().unwrap();
        for (pi, &preset) in spec.presets.iter().enumerate() {
            for (si, &l1) in spec.l1_sizes.iter().enumerate() {
                let direct = crate::Engine::new(
                    spec.sim_config(preset, l1),
                    &w[0],
                    spec.exec_seed,
                )
                .run();
                assert_eq!(rows[pi][si].per_bench[0].1, direct);
                assert_eq!(rows[pi][si].per_bench[0].0, "gzip");
            }
        }
    }

    #[test]
    fn grid_output_is_deterministic_and_thread_blind() {
        let spec = tiny_spec();
        let rows = try_run_spec(&spec).unwrap();
        let a = grid_output(&spec, &rows);
        let b = grid_output(&spec, &try_run_spec(&spec).unwrap());
        assert_eq!(a, b);
        assert!(Json::parse(&a).is_ok());
        // The pool width is host-local: a run that only differed in
        // `threads` must still produce identical artifact bytes.
        let wider = ExperimentSpec { threads: Some(7), ..spec.clone() };
        assert_eq!(grid_output(&wider, &try_run_spec(&wider).unwrap()), a);
    }
}
