//! The experiment API: one serializable value that fully describes an
//! experiment.
//!
//! The paper's evaluation is a fixed matrix of named configurations
//! (§5.1's presets × tech nodes × L1 sizes × SPECint2000 benchmarks).
//! [`ExperimentSpec`] is that matrix as a plain value: every knob a run
//! needs — axes, run lengths, seeds, pool width, predictor — in one struct
//! that round-trips through JSON and therefore crosses process (and host)
//! boundaries unchanged.  Everything above it is derived:
//!
//! * [`CellGrid::from_spec`] turns a spec into the flat cell grid the
//!   work-stealing pool executes;
//! * [`run_spec`] runs the whole grid in-process and returns ordered
//!   `[preset][size]` rows;
//! * [`run_spec_cells`] runs an arbitrary cell slice — the unit the
//!   `prestage shard` CLI distributes across processes — and
//!   [`ShardFile`] is its serialized output, reassembled bit-exactly by
//!   `prestage merge` via [`CellGrid::merge_named`];
//! * [`grid_output`] renders merged rows deterministically, so a merged
//!   multi-process run and a single-process run of the same spec produce
//!   byte-identical artifacts.
//!
//! The `PRESTAGE_*` environment variables survive only as an *override
//! layer*: [`ExperimentSpec::env_overrides`] folds them onto an existing
//! spec, and this module is the single place in the workspace where they
//! are parsed (malformed values abort with the variable name, per the
//! loud-parsing policy).

use crate::config::{ConfigPreset, SimConfig};
use crate::engine::PredictorKind;
use prestage_core::{ITlbConfig, InsertionPolicy, PrefetcherKind};
use crate::runner::{
    default_threads, live_source, run_cells_sourced_observed, CellGrid, CellResult,
    GridResult, SweepCell,
};
use crate::stats::SimStats;
use prestage_cacti::TechNode;
use prestage_json::Json;
use prestage_workload::{
    build, replay_file_trusted, replay_shared, specint2000, BenchmarkProfile, DynInst,
    Workload,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// The paper's L1 I-cache sweep axis: 256 B … 64 KB.
pub const L1_SIZES: [usize; 9] = [
    256,
    512,
    1 << 10,
    2 << 10,
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
];

/// Schema version of every JSON artifact this module writes.  Schema 2
/// added the `trace` field; schema 3 added the `prefetcher` mechanism
/// override; schema 4 added the memory-system model fields `itlb` and
/// `insertion`.  Spec files of earlier schemas still parse, with the
/// fields they predate defaulting (`trace` → live generation,
/// `prefetcher` → each preset's own mechanism, `itlb` → free translation,
/// `insertion` → each mechanism's own policy).
pub const SPEC_SCHEMA: u64 = 4;

/// Run-ahead slack `prestage trace record` captures beyond
/// `warmup + measure`: the decoupled front-end pulls streams ahead of
/// commit (fetch queue + decode buffer + RUU, at most a few thousand
/// instructions), so recordings carry a generous margin.  A replay that
/// still runs dry panics rather than returning results from a partial
/// trace.
pub const TRACE_RECORD_SLACK: u64 = 16_384;

/// Budget for holding *decoded* traces in memory during a replayed sweep.
/// Traces are verified once per process either way; within the budget the
/// verification pass also materialises the records, so every cell of a
/// benchmark replays one shared in-memory decode (no per-cell I/O, decode
/// or hashing).  Beyond it, cells fall back to streaming the file at
/// constant memory — bit-exact either way, just slower per cell.
pub const TRACE_INMEM_BUDGET_BYTES: u64 = 512 << 20;

/// One benchmark's vetted replay source.
#[derive(Debug, Clone)]
enum ReplaySource {
    /// Decoded during verification; cells replay the shared `Arc`.
    InMemory(Arc<Vec<DynInst>>, PathBuf),
    /// Over the in-memory budget: cells stream the file (trusted — the
    /// verification pass already proved these exact bytes clean).
    Streamed(PathBuf),
}


/// Where a spec's pre-recorded traces live: a directory holding one v2
/// trace per benchmark, named by [`TraceSource::file_name`].  Execution
/// detail, not experiment identity — [`grid_output`] clears it (like
/// `threads`), so a replayed run's artifacts are byte-identical to the
/// live-generation run it mirrors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSource {
    /// Directory of recorded traces (relative paths resolve against the
    /// process's working directory, like every other CLI path).
    pub dir: String,
}

impl TraceSource {
    /// Canonical file name for one recorded `(profile, seeds)` trace.
    pub fn file_name(profile: &str, workload_seed: u64, exec_seed: u64) -> String {
        format!("{profile}-w{workload_seed}-x{exec_seed}.pstr")
    }

    /// Full path of the trace for `(profile, seeds)` under this source.
    pub fn trace_path(&self, profile: &str, workload_seed: u64, exec_seed: u64) -> PathBuf {
        Path::new(&self.dir).join(Self::file_name(profile, workload_seed, exec_seed))
    }
}

/// A complete, serializable description of one experiment.
///
/// This is the *only* way experiments are configured: figure binaries
/// declare one, the CLI loads one from JSON, and the environment can only
/// override fields through [`ExperimentSpec::env_overrides`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Configuration presets (grid rows), figure-legend order.
    pub presets: Vec<ConfigPreset>,
    /// Technology node the whole grid runs at.
    pub tech: TechNode,
    /// L1 I-cache capacities in bytes (grid columns).
    pub l1_sizes: Vec<usize>,
    /// Benchmark filter: `None` = the full SPECint2000 set, `Some` = an
    /// explicit ordered subset (unknown names are a loud error).
    pub bench: Option<Vec<String>>,
    /// Warm-up instructions per run.
    pub warmup_insts: u64,
    /// Measured instructions per run.
    pub measure_insts: u64,
    /// Workload *generation* seed.
    pub workload_seed: u64,
    /// Engine *execution* seed (wrong-path / arbitration jitter),
    /// deliberately independent of [`workload_seed`](Self::workload_seed).
    pub exec_seed: u64,
    /// Worker threads for the sweep pool; `None` = available parallelism.
    /// The one field that may legitimately differ between hosts — it never
    /// affects results (cells are bit-exact for any pool width).
    pub threads: Option<usize>,
    /// Fetch-block predictor driving the decoupled front-end.
    pub predictor: PredictorKind,
    /// Committed-path source: `None` generates every cell's trace live;
    /// `Some` replays pre-recorded traces from disk (one per benchmark,
    /// shared by all cells that need it — record once, replay everywhere).
    pub trace: Option<TraceSource>,
    /// Prefetch-mechanism override: `None` leaves each preset its own
    /// engine (FDP presets run FDP, CLGP presets run CLGP); `Some(kind)`
    /// swaps the mechanism under every preset — the spec-field delivery
    /// path for the MANA / program-map comparisons (`"mana"`,
    /// `"progmap"`, or any other [`PrefetcherKind`] id).  Experiment
    /// identity: it changes results, so shards produced under different
    /// prefetcher ids refuse to merge.
    pub prefetcher: Option<PrefetcherKind>,
    /// Instruction-TLB model: `None` keeps translation free (the paper's
    /// implicit assumption, and bit-identical to pre-TLB artifacts);
    /// `Some` threads every fetched or prefetched address through an
    /// i-TLB whose misses charge a page-walk latency.  Experiment
    /// identity: shards produced under different TLB models refuse to
    /// merge, by name.
    pub itlb: Option<ITlbConfig>,
    /// Prefetch-fill insertion override (`"mru"`, `"lru"`, `"bypass"`):
    /// `None` leaves each mechanism its own policy.  Experiment identity.
    pub insertion: Option<InsertionPolicy>,
}

impl Default for ExperimentSpec {
    /// The paper's full evaluation matrix at the far-future node: every
    /// preset × every L1 size × all twelve benchmarks, §5.1 run lengths.
    fn default() -> ExperimentSpec {
        ExperimentSpec {
            presets: ConfigPreset::all().to_vec(),
            tech: TechNode::T045,
            l1_sizes: L1_SIZES.to_vec(),
            bench: None,
            warmup_insts: 200_000,
            measure_insts: 1_000_000,
            workload_seed: 42,
            exec_seed: 42,
            threads: None,
            predictor: PredictorKind::Stream,
            trace: None,
            prefetcher: None,
            itlb: None,
            insertion: None,
        }
    }
}

// ---------------------------------------------------------------------------
// The environment override layer — the single place `PRESTAGE_*` variables
// are read.
// ---------------------------------------------------------------------------

/// Parse an env-var value, failing loudly on malformed input: a typo'd
/// `PRESTAGE_MEASURE=1e6` must abort, not silently run the default length.
/// Empty/whitespace values count as unset.
fn parse_env_u64(name: &str, value: Option<&str>, default: u64) -> u64 {
    match value.map(str::trim) {
        None | Some("") => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            panic!(
                "{name} must be an unsigned integer, got {v:?} \
                 (write e.g. {name}=1000000; scientific notation is not supported)"
            )
        }),
    }
}

fn std_env(name: &str) -> Option<String> {
    std::env::var_os(name).map(|v| v.to_string_lossy().into_owned())
}

/// The `PRESTAGE_THREADS` override, if set (empty counts as unset).
/// Panics on malformed values rather than silently running serial.  Also
/// consulted by [`crate::runner::pool_threads`] for the non-spec entry
/// points, so the variable has exactly one parser.
pub(crate) fn threads_override() -> Option<usize> {
    parse_threads(std_env("PRESTAGE_THREADS").as_deref())
}

fn parse_threads(value: Option<&str>) -> Option<usize> {
    match value.map(str::trim) {
        None | Some("") => None,
        Some(t) => match t.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => panic!("PRESTAGE_THREADS must be a positive integer, got {t:?}"),
        },
    }
}

impl ExperimentSpec {
    /// The default matrix with every `PRESTAGE_*` override applied — the
    /// spec a figure binary runs when the environment says nothing.
    pub fn from_env() -> ExperimentSpec {
        ExperimentSpec::default().env_overrides()
    }

    /// Fold the `PRESTAGE_*` environment variables over this spec:
    /// `PRESTAGE_WARMUP`, `PRESTAGE_MEASURE`, `PRESTAGE_SEED`,
    /// `PRESTAGE_EXEC_SEED`, `PRESTAGE_BENCH` (comma-separated filter) and
    /// `PRESTAGE_THREADS`.  Unset (or empty) variables leave the spec
    /// field untouched; malformed values abort with the variable name.
    ///
    /// The experiment axes (presets, tech, sizes, predictor) have no env
    /// form on purpose: changing *what* is measured is a spec edit, not a
    /// shell prefix.
    pub fn env_overrides(self) -> ExperimentSpec {
        self.env_overrides_with(std_env)
    }

    /// [`env_overrides`](Self::env_overrides) with an injectable lookup
    /// (tests override without mutating process-global state).
    fn env_overrides_with(mut self, get: impl Fn(&str) -> Option<String>) -> ExperimentSpec {
        let u64_of = |name: &str, current: u64| {
            parse_env_u64(name, get(name).as_deref(), current)
        };
        self.warmup_insts = u64_of("PRESTAGE_WARMUP", self.warmup_insts);
        self.measure_insts = u64_of("PRESTAGE_MEASURE", self.measure_insts);
        self.workload_seed = u64_of("PRESTAGE_SEED", self.workload_seed);
        self.exec_seed = u64_of("PRESTAGE_EXEC_SEED", self.exec_seed);
        if let Some(v) = get("PRESTAGE_BENCH") {
            if !v.trim().is_empty() {
                self.bench = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
        }
        if let Some(t) = parse_threads(get("PRESTAGE_THREADS").as_deref()) {
            self.threads = Some(t);
        }
        self
    }

    // -----------------------------------------------------------------------
    // Derived views.
    // -----------------------------------------------------------------------

    /// Check every invariant the runner assumes.  All spec consumers call
    /// this before running; the error strings are user-facing.
    pub fn validate(&self) -> Result<(), String> {
        if self.presets.is_empty() {
            return Err("spec has no presets".into());
        }
        for (i, p) in self.presets.iter().enumerate() {
            if self.presets[..i].contains(p) {
                return Err(format!("duplicate preset {:?} in spec", p.id()));
            }
        }
        if self.l1_sizes.is_empty() {
            return Err("spec has no L1 sizes".into());
        }
        for (i, s) in self.l1_sizes.iter().enumerate() {
            if self.l1_sizes[..i].contains(s) {
                return Err(format!("duplicate L1 size {s} in spec"));
            }
            if *s < 64 {
                return Err(format!("L1 size {s} is smaller than one 64B line"));
            }
            if !s.is_power_of_two() {
                return Err(format!(
                    "l1_sizes entry {s} is not a power of two — cache sets \
                     are mask-indexed and a non-power-of-two capacity would \
                     silently alias addresses"
                ));
            }
        }
        // Every (preset, size) cell's derived configuration must satisfy
        // the storage-sizing invariants (mask-indexed prefetcher tables
        // included) *before* anything is constructed.
        for &p in &self.presets {
            for &l1 in &self.l1_sizes {
                self.sim_config(p, l1)
                    .validate()
                    .map_err(|e| format!("preset {:?} at L1 {l1}: {e}", p.id()))?;
            }
        }
        if self.measure_insts == 0 {
            return Err("measure_insts must be at least 1".into());
        }
        // Found by the fuzz harness: the replay-length check sums the two
        // run lengths, so a spec whose sum wraps u64 would panic (debug) or
        // silently under-demand trace instructions (release).
        if self.warmup_insts.checked_add(self.measure_insts).is_none() {
            return Err(format!(
                "warmup_insts {} + measure_insts {} overflows u64 — no run is that long",
                self.warmup_insts, self.measure_insts
            ));
        }
        if self.threads == Some(0) {
            return Err("threads must be at least 1 (or null for auto)".into());
        }
        if let Some(t) = &self.trace {
            if t.dir.trim().is_empty() {
                return Err("trace dir is empty (use null for live generation)".into());
            }
        }
        self.bench_profiles().map(|_| ())
    }

    /// Instructions `prestage trace record` captures per benchmark for
    /// this spec: the run length plus [`TRACE_RECORD_SLACK`] of front-end
    /// run-ahead.
    pub fn trace_record_insts(&self) -> u64 {
        self.warmup_insts
            .saturating_add(self.measure_insts)
            .saturating_add(TRACE_RECORD_SLACK)
    }

    /// The per-benchmark trace files this spec replays (spec bench order),
    /// or `None` for live generation.  Pure path arithmetic, no I/O.
    pub fn trace_paths(&self) -> Result<Option<Vec<PathBuf>>, String> {
        let Some(src) = &self.trace else {
            return Ok(None);
        };
        Ok(Some(
            self.bench_names()?
                .iter()
                .map(|n| src.trace_path(n, self.workload_seed, self.exec_seed))
                .collect(),
        ))
    }

    /// Open `path` and check its header against this spec: v2 identity
    /// (profile, both seeds) and at least `warmup + measure` instructions.
    /// Errors name the file and the mismatching field — replaying the
    /// wrong trace must be impossible, not merely unlikely.
    fn vet_trace(
        &self,
        path: &Path,
        name: &str,
    ) -> Result<prestage_workload::TraceReader<std::io::BufReader<std::fs::File>>, String> {
        let reader = prestage_workload::open_trace(path).map_err(|e| {
            format!("{e} — record it first: `prestage trace record <spec> --out <dir>`")
        })?;
        let h = reader.header();
        let Some(meta) = &h.meta else {
            return Err(format!(
                "trace {} is v1 and carries no identity; spec replay needs a v2 \
                 trace — re-record it",
                path.display()
            ));
        };
        if meta.profile != name {
            return Err(format!(
                "trace {} was recorded from benchmark {:?}, spec expects {name:?}",
                path.display(),
                meta.profile
            ));
        }
        if meta.workload_seed != self.workload_seed {
            return Err(format!(
                "trace {} was recorded with workload seed {}, spec uses {}",
                path.display(),
                meta.workload_seed,
                self.workload_seed
            ));
        }
        if meta.exec_seed != self.exec_seed {
            return Err(format!(
                "trace {} was recorded with exec seed {}, spec uses {}",
                path.display(),
                meta.exec_seed,
                self.exec_seed
            ));
        }
        // Saturating: validate() rejects overflowing run lengths, but this
        // path is also reachable via `resolve_traces` on an unvalidated
        // spec and must not panic on hostile input.
        let needed = self.warmup_insts.saturating_add(self.measure_insts);
        if h.count < needed {
            return Err(format!(
                "trace {} holds {} instructions but the spec runs {needed} \
                 (warmup {} + measure {}) — re-record with the current run lengths",
                path.display(),
                h.count,
                self.warmup_insts,
                self.measure_insts
            ));
        }
        Ok(reader)
    }

    /// Resolve and *vet* the replay traces for every benchmark: identity
    /// and length against this spec, then one streaming pass over each
    /// file (every chunk CRC, every record) at constant memory.
    pub fn resolve_traces(&self) -> Result<Option<Vec<PathBuf>>, String> {
        let Some(paths) = self.trace_paths()? else {
            return Ok(None);
        };
        for (path, name) in paths.iter().zip(self.bench_names()?) {
            let mut reader = self.vet_trace(path, name)?;
            if let Some(e) = reader.by_ref().find_map(|r| r.err()) {
                return Err(format!("trace {} is corrupt: {e}", path.display()));
            }
        }
        Ok(Some(paths))
    }

    /// The vet-and-load pass behind the spec runners: verify and load only
    /// the benchmarks `cells` actually references (a shard of a 12-bench
    /// spec must not pay for — or spend in-memory budget on — the other
    /// eleven traces), returning one slot per spec benchmark (`None` for
    /// the unreferenced ones).
    ///
    /// Verification happens here, *once per process*; the sweep cells then
    /// replay a shared in-memory decode (within
    /// [`TRACE_INMEM_BUDGET_BYTES`]) or a trusted re-stream of the proven
    /// bytes, never re-verifying per cell.
    fn replay_sources(
        &self,
        cells: &[SweepCell],
    ) -> Result<Option<Vec<Option<ReplaySource>>>, String> {
        let Some(paths) = self.trace_paths()? else {
            return Ok(None);
        };
        let mut used = vec![false; paths.len()];
        for c in cells {
            if let Some(u) = used.get_mut(c.bench_idx) {
                *u = true;
            }
        }
        let mut budget = TRACE_INMEM_BUDGET_BYTES;
        let mut sources = Vec::with_capacity(paths.len());
        for ((path, name), used) in paths.into_iter().zip(self.bench_names()?).zip(used) {
            if !used {
                sources.push(None);
                continue;
            }
            let mut reader = self.vet_trace(&path, name)?;
            // One full pass: CRCs, record structure, count — and, within
            // the memory budget, the decode every cell will share.
            let declared = reader.header().count;
            let decoded_bytes = declared.saturating_mul(std::mem::size_of::<DynInst>() as u64);
            let corrupt =
                |e: std::io::Error| format!("trace {} is corrupt: {e}", path.display());
            if decoded_bytes <= budget {
                // The declared count routes between in-memory and
                // streaming, but is never trusted for allocation (a CRC is
                // not a MAC): capacity is clamped and the vector grows
                // only as records actually decode.
                let mut records = Vec::with_capacity(declared.min(1 << 16) as usize);
                for r in reader.by_ref() {
                    records.push(r.map_err(corrupt)?);
                }
                budget -= decoded_bytes;
                sources.push(Some(ReplaySource::InMemory(Arc::new(records), path)));
            } else {
                if let Some(e) = reader.by_ref().find_map(|r| r.err()) {
                    return Err(corrupt(e));
                }
                sources.push(Some(ReplaySource::Streamed(path)));
            }
        }
        Ok(Some(sources))
    }

    /// Resolve the benchmark filter to profiles, in *filter order* (or the
    /// canonical SPECint2000 order when no filter is set).
    ///
    /// An unknown or duplicate name fails with the full list of valid
    /// names — a typo must not silently shrink the workload set.
    pub fn bench_profiles(&self) -> Result<Vec<BenchmarkProfile>, String> {
        let all = specint2000();
        let Some(filter) = &self.bench else {
            return Ok(all);
        };
        if filter.is_empty() {
            return Err("bench filter is empty — it matches no benchmarks \
                        (use null for the full set)"
                .into());
        }
        let mut out = Vec::with_capacity(filter.len());
        for name in filter {
            if out.iter().any(|p: &BenchmarkProfile| p.name == name) {
                return Err(format!("benchmark {name:?} listed twice in the filter"));
            }
            match all.iter().find(|p| p.name == name) {
                Some(p) => out.push(p.clone()),
                None => {
                    let valid: Vec<&str> = all.iter().map(|p| p.name).collect();
                    return Err(format!(
                        "unknown benchmark {name:?}; valid names: {}",
                        valid.join(", ")
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Resolved benchmark names (the grid's innermost axis labels).
    pub fn bench_names(&self) -> Result<Vec<&'static str>, String> {
        Ok(self.bench_profiles()?.iter().map(|p| p.name).collect())
    }

    /// Build the workload set (the expensive step: static program
    /// synthesis per benchmark, seeded by
    /// [`workload_seed`](Self::workload_seed)).
    pub fn build_workloads(&self) -> Result<Vec<Workload>, String> {
        Ok(self
            .bench_profiles()?
            .iter()
            .map(|p| build(p, self.workload_seed))
            .collect())
    }

    /// The full simulator configuration for one (preset, L1 size) grid
    /// point of this spec: the preset's shape, the spec's run lengths,
    /// and — when the spec carries a `prefetcher` override — the swapped
    /// prefetch mechanism.
    pub fn sim_config(&self, preset: ConfigPreset, l1: usize) -> SimConfig {
        let cfg = SimConfig::preset(preset, self.tech, l1)
            .with_insts(self.warmup_insts, self.measure_insts)
            .with_itlb(self.itlb)
            .with_insertion(self.insertion);
        match self.prefetcher {
            Some(kind) => cfg.with_prefetcher(kind),
            None => cfg,
        }
    }

    /// Resolved pool width.
    pub fn resolved_threads(&self) -> usize {
        self.threads.unwrap_or_else(default_threads)
    }

    /// This spec with the host-local execution fields cleared: `threads`
    /// (pool width) and `trace` (committed-path source) never change
    /// results, so the portable form is the spec's *result identity* —
    /// [`grid_output`] embeds it, `prestage merge` compares shard specs
    /// through it, and the serve cache keys sweeps by its canonical JSON.
    pub fn portable(&self) -> ExperimentSpec {
        ExperimentSpec {
            threads: None,
            trace: None,
            ..self.clone()
        }
    }

    // -----------------------------------------------------------------------
    // JSON round-trip.
    // -----------------------------------------------------------------------

    pub fn to_json_value(&self) -> Json {
        // Exhaustive destructuring: adding a spec field without extending
        // the codec must not compile.
        let ExperimentSpec {
            presets,
            tech,
            l1_sizes,
            bench,
            warmup_insts,
            measure_insts,
            workload_seed,
            exec_seed,
            threads,
            predictor,
            trace,
            prefetcher,
            itlb,
            insertion,
        } = self;
        Json::obj([
            ("schema", SPEC_SCHEMA.into()),
            (
                "presets",
                Json::Arr(presets.iter().map(|p| p.id().into()).collect()),
            ),
            ("tech", tech.id().into()),
            (
                "l1_sizes",
                Json::Arr(l1_sizes.iter().map(|&s| s.into()).collect()),
            ),
            (
                "bench",
                match bench {
                    None => Json::Null,
                    Some(names) => {
                        Json::Arr(names.iter().map(|n| n.as_str().into()).collect())
                    }
                },
            ),
            ("warmup_insts", (*warmup_insts).into()),
            ("measure_insts", (*measure_insts).into()),
            ("workload_seed", (*workload_seed).into()),
            ("exec_seed", (*exec_seed).into()),
            ("threads", (*threads).into()),
            ("predictor", predictor.id().into()),
            (
                "trace",
                match trace {
                    None => Json::Null,
                    Some(t) => Json::obj([("dir", t.dir.as_str().into())]),
                },
            ),
            (
                "prefetcher",
                match prefetcher {
                    None => Json::Null,
                    Some(k) => k.id().into(),
                },
            ),
            (
                "itlb",
                match itlb {
                    None => Json::Null,
                    Some(t) => Json::obj([
                        ("entries", t.entries.into()),
                        ("assoc", t.assoc.into()),
                        ("page_bytes", t.page_bytes.into()),
                        ("miss_cycles", t.miss_cycles.into()),
                    ]),
                },
            ),
            (
                "insertion",
                match insertion {
                    None => Json::Null,
                    Some(p) => p.id().into(),
                },
            ),
        ])
    }

    /// Serialize as pretty JSON (the on-disk spec-file format).
    pub fn to_json(&self) -> String {
        self.to_json_value().pretty()
    }

    /// Parse a spec from a JSON value.  Strict: every field must be
    /// present, unknown keys are rejected (a misspelled `"warmupinsts"`
    /// must not silently fall back to the default run length).
    pub fn from_json_value(v: &Json) -> Result<ExperimentSpec, String> {
        let keys = v
            .keys()
            .ok_or_else(|| "spec must be a JSON object".to_string())?;
        const KNOWN: [&str; 15] = [
            "schema",
            "presets",
            "tech",
            "l1_sizes",
            "bench",
            "warmup_insts",
            "measure_insts",
            "workload_seed",
            "exec_seed",
            "threads",
            "predictor",
            "trace",
            "prefetcher",
            "itlb",
            "insertion",
        ];
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("schema must be an integer")?;
        if schema == 0 || schema > SPEC_SCHEMA {
            return Err(format!(
                "spec schema {schema} not supported (this build reads schemas 1..={SPEC_SCHEMA})"
            ));
        }
        // `trace` arrived with schema 2, `prefetcher` with schema 3, and
        // `itlb`/`insertion` with schema 4; a file of an earlier schema
        // both may and must omit the later fields (strictness per schema:
        // no field is ever silently ignored, none is silently defaulted
        // within its own schema).
        let known: &[&str] = match schema {
            1 => &KNOWN[..11],
            2 => &KNOWN[..12],
            3 => &KNOWN[..13],
            _ => &KNOWN,
        };
        for k in &keys {
            if !known.contains(k) {
                return Err(format!(
                    "unknown spec field {k:?} (valid fields for schema {schema}: {})",
                    known.join(", ")
                ));
            }
        }
        for k in known {
            if !keys.contains(k) {
                return Err(format!("spec is missing field {k:?}"));
            }
        }
        let presets = v
            .get("presets")
            .and_then(Json::as_arr)
            .ok_or("presets must be an array")?
            .iter()
            .map(|p| {
                let id = p.as_str().ok_or("presets entries must be strings")?;
                ConfigPreset::from_id(id).ok_or_else(|| {
                    let valid: Vec<&str> =
                        ConfigPreset::all().iter().map(|p| p.id()).collect();
                    format!("unknown preset {id:?}; valid ids: {}", valid.join(", "))
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let tech_id = v
            .get("tech")
            .and_then(Json::as_str)
            .ok_or("tech must be a string")?;
        let tech = TechNode::from_id(tech_id).ok_or_else(|| {
            let valid: Vec<&str> = TechNode::all().iter().map(|n| n.id()).collect();
            format!("unknown tech node {tech_id:?}; valid ids: {}", valid.join(", "))
        })?;
        let l1_sizes = v
            .get("l1_sizes")
            .and_then(Json::as_arr)
            .ok_or("l1_sizes must be an array")?
            .iter()
            .map(|s| {
                s.as_usize()
                    .ok_or_else(|| format!("bad l1_sizes entry {s:?} (bytes expected)"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let bench = match v.get("bench") {
            Some(Json::Null) => None,
            Some(Json::Arr(names)) => Some(
                names
                    .iter()
                    .map(|n| {
                        n.as_str()
                            .map(str::to_string)
                            .ok_or("bench entries must be strings".to_string())
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            ),
            _ => return Err("bench must be null or an array of names".into()),
        };
        let u64_field = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{name} must be an unsigned integer"))
        };
        let threads = match v.get("threads") {
            Some(Json::Null) => None,
            Some(t) => Some(
                t.as_usize()
                    .ok_or("threads must be null or a positive integer")?,
            ),
            None => None,
        };
        let pred_id = v
            .get("predictor")
            .and_then(Json::as_str)
            .ok_or("predictor must be a string")?;
        let predictor = PredictorKind::from_id(pred_id)
            .ok_or_else(|| format!("unknown predictor {pred_id:?} (stream or gshare)"))?;
        let trace = match v.get("trace") {
            None | Some(Json::Null) => None,
            Some(t) => {
                let tkeys = t
                    .keys()
                    .ok_or("trace must be null or an object {\"dir\": ...}")?;
                for k in &tkeys {
                    if *k != "dir" {
                        return Err(format!("unknown trace field {k:?} (only \"dir\")"));
                    }
                }
                let dir = t
                    .get("dir")
                    .and_then(Json::as_str)
                    .ok_or("trace.dir must be a string")?;
                Some(TraceSource {
                    dir: dir.to_string(),
                })
            }
        };
        // An unknown mechanism id must abort listing the valid set — a
        // typo'd `"prefetcher": "mnaa"` silently falling back to the
        // preset default would measure the wrong mechanism.
        let prefetcher = match v.get("prefetcher") {
            None | Some(Json::Null) => None,
            Some(p) => {
                let id = p
                    .as_str()
                    .ok_or("prefetcher must be null or a mechanism id string")?;
                Some(PrefetcherKind::from_id(id).ok_or_else(|| {
                    let valid: Vec<&str> =
                        PrefetcherKind::all().iter().map(|k| k.id()).collect();
                    format!(
                        "unknown prefetcher {id:?}; valid ids: {}",
                        valid.join(", ")
                    )
                })?)
            }
        };
        // Strict object parse for the i-TLB model: all four sizing fields
        // present, nothing else — a misspelled `"pagebytes"` must not
        // silently model 4 KiB pages.
        let itlb = match v.get("itlb") {
            None | Some(Json::Null) => None,
            Some(t) => {
                const TLB_FIELDS: [&str; 4] = ["entries", "assoc", "page_bytes", "miss_cycles"];
                let tkeys = t.keys().ok_or(
                    "itlb must be null or an object \
                     {\"entries\", \"assoc\", \"page_bytes\", \"miss_cycles\"}",
                )?;
                for k in &tkeys {
                    if !TLB_FIELDS.contains(k) {
                        return Err(format!(
                            "unknown itlb field {k:?} (valid fields: {})",
                            TLB_FIELDS.join(", ")
                        ));
                    }
                }
                for k in TLB_FIELDS {
                    if !tkeys.contains(&k) {
                        return Err(format!("itlb is missing field {k:?}"));
                    }
                }
                let tlb_usize = |name: &str| {
                    t.get(name)
                        .and_then(|f| f.as_usize())
                        .ok_or_else(|| format!("itlb.{name} must be an unsigned integer"))
                };
                let tlb_u64 = |name: &str| {
                    t.get(name)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("itlb.{name} must be an unsigned integer"))
                };
                Some(ITlbConfig {
                    entries: tlb_usize("entries")?,
                    assoc: tlb_usize("assoc")?,
                    page_bytes: tlb_u64("page_bytes")?,
                    miss_cycles: tlb_u64("miss_cycles")?,
                })
            }
        };
        let insertion = match v.get("insertion") {
            None | Some(Json::Null) => None,
            Some(p) => {
                let id = p
                    .as_str()
                    .ok_or("insertion must be null or a policy id string")?;
                Some(InsertionPolicy::from_id(id).map_err(|e| format!("spec field insertion: {e}"))?)
            }
        };
        Ok(ExperimentSpec {
            presets,
            tech,
            l1_sizes,
            bench,
            warmup_insts: u64_field("warmup_insts")?,
            measure_insts: u64_field("measure_insts")?,
            workload_seed: u64_field("workload_seed")?,
            exec_seed: u64_field("exec_seed")?,
            threads,
            predictor,
            trace,
            prefetcher,
            itlb,
            insertion,
        })
    }

    /// Parse a spec from JSON text.
    pub fn from_json(text: &str) -> Result<ExperimentSpec, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        ExperimentSpec::from_json_value(&v)
    }
}

impl CellGrid {
    /// The flat cell grid this spec describes — the work list a single
    /// process runs whole and `prestage shard` slices.
    pub fn from_spec(spec: &ExperimentSpec) -> Result<CellGrid, String> {
        spec.validate()?;
        Ok(CellGrid::new(
            spec.presets.clone(),
            spec.tech,
            spec.l1_sizes.clone(),
            spec.bench_names()?.len(),
            spec.exec_seed,
        ))
    }
}

// ---------------------------------------------------------------------------
// Running a spec.
// ---------------------------------------------------------------------------

/// Evaluate spec cells over pre-built workloads, routing each cell's
/// committed path to the spec's source: live generation, or (when
/// `traces` is `Some`) a per-cell streaming replay of the benchmark's
/// recorded trace.  All cells of one benchmark share one trace *file* —
/// each worker streams it independently at constant memory.
fn run_spec_cells_over(
    spec: &ExperimentSpec,
    cells: &[SweepCell],
    workloads: &[Workload],
    traces: Option<&[Option<ReplaySource>]>,
) -> Result<Vec<CellResult>, String> {
    static RUN_TO_END: AtomicBool = AtomicBool::new(false);
    run_spec_cells_observed_over(spec, cells, workloads, traces, &|_| {}, &RUN_TO_END)
}

/// [`run_spec_cells_over`] with per-cell progress and cooperative
/// cancellation (see
/// [`run_cells_sourced_observed`](crate::runner::run_cells_sourced_observed)).
fn run_spec_cells_observed_over(
    spec: &ExperimentSpec,
    cells: &[SweepCell],
    workloads: &[Workload],
    traces: Option<&[Option<ReplaySource>]>,
    observer: &(dyn Fn(&CellResult) + Sync),
    cancel: &AtomicBool,
) -> Result<Vec<CellResult>, String> {
    let configure = |c: &SweepCell| spec.sim_config(c.preset, c.l1);
    match traces {
        None => Ok(run_cells_sourced_observed(
            cells,
            workloads,
            configure,
            spec.resolved_threads(),
            spec.predictor,
            live_source,
            observer,
            cancel,
        )),
        Some(sources) => {
            // Named rejection *before* the pool starts: every cell must
            // have a loaded replay source, so the worker closure below
            // cannot hit a missing slot mid-sweep.
            for c in cells {
                if !matches!(sources.get(c.bench_idx), Some(Some(_))) {
                    return Err(format!(
                        "cell (preset {:?}, bench index {}) has no loaded replay \
                         source — the spec's traces do not cover every bench the \
                         cells reference",
                        c.preset, c.bench_idx
                    ));
                }
            }
            let spec_seed = spec.exec_seed;
            Ok(run_cells_sourced_observed(
                cells,
                workloads,
                configure,
                spec.resolved_threads(),
                spec.predictor,
                move |c, _w| {
                    // The recorded traces embody one execution seed; a
                    // foreign-seed cell would silently replay the wrong
                    // dynamic path (live_source honours c.exec_seed).
                    assert_eq!(
                        c.exec_seed, spec_seed,
                        "cell {c:?} wants exec seed {}, but the spec's traces were \
                         recorded at {spec_seed} — replay cannot serve foreign-seed cells",
                        c.exec_seed
                    );
                    let Some(Some(source)) = sources.get(c.bench_idx) else {
                        unreachable!(
                            "bench index {} was pre-checked against the replay \
                             sources before the pool started",
                            c.bench_idx
                        )
                    };
                    match source {
                        ReplaySource::InMemory(records, path) => Box::new(replay_shared(
                            records.clone(),
                            path.display().to_string(),
                        )),
                        // Trusted: replay_sources streamed these exact
                        // bytes clean before the pool started.
                        ReplaySource::Streamed(path) => Box::new(
                            replay_file_trusted(path).unwrap_or_else(|e| {
                                panic!("cannot replay {}: {e}", path.display())
                            }),
                        ),
                    }
                },
                observer,
                cancel,
            ))
        }
    }
}

/// Evaluate an arbitrary slice of a spec's cells (a whole grid or one
/// shard) on the work-stealing pool, honouring the spec's run lengths,
/// seeds, pool width, predictor and trace source.
pub fn run_spec_cells(
    spec: &ExperimentSpec,
    cells: &[SweepCell],
) -> Result<Vec<CellResult>, String> {
    spec.validate()?;
    let workloads = spec.build_workloads()?;
    let traces = spec.replay_sources(cells)?;
    run_spec_cells_over(spec, cells, &workloads, traces.as_deref())
}

/// [`run_spec_cells`] with per-cell progress and cooperative cancellation
/// — what a long-lived orchestrator (the `prestage serve` daemon) needs to
/// stream job counters and drain workers on shutdown.  `observer` runs on
/// the worker threads, once per completed cell; setting `cancel` makes
/// workers stop pulling new cells, and only the completed subset (in
/// input-cell order) is returned.  Completed results are bit-identical to
/// an uncancelled [`run_spec_cells`] of the same slice.
pub fn run_spec_cells_observed(
    spec: &ExperimentSpec,
    cells: &[SweepCell],
    observer: &(dyn Fn(&CellResult) + Sync),
    cancel: &AtomicBool,
) -> Result<Vec<CellResult>, String> {
    spec.validate()?;
    let workloads = spec.build_workloads()?;
    let traces = spec.replay_sources(cells)?;
    run_spec_cells_observed_over(spec, cells, &workloads, traces.as_deref(), observer, cancel)
}

/// Run the whole experiment in-process: ordered `[preset][size]` rows with
/// per-benchmark entries in spec bench order.  Errors on an invalid spec.
pub fn try_run_spec(spec: &ExperimentSpec) -> Result<Vec<Vec<GridResult>>, String> {
    try_run_spec_over(spec, &spec.build_workloads()?)
}

/// [`try_run_spec`] over pre-built workloads — for callers running several
/// derived specs over one bench set (the headline binary runs five), where
/// rebuilding the synthetic programs per call would dominate.  The
/// workloads must match the spec's resolved bench set exactly.
pub fn try_run_spec_over(
    spec: &ExperimentSpec,
    workloads: &[Workload],
) -> Result<Vec<Vec<GridResult>>, String> {
    let grid = CellGrid::from_spec(spec)?;
    let names = spec.bench_names()?;
    if workloads.len() != names.len()
        || workloads.iter().zip(&names).any(|(w, n)| w.profile.name != *n)
    {
        return Err(format!(
            "given workloads [{}] do not match the spec's bench set [{}]",
            workloads
                .iter()
                .map(|w| w.profile.name)
                .collect::<Vec<_>>()
                .join(", "),
            names.join(", ")
        ));
    }
    let cells = grid.cells();
    let traces = spec.replay_sources(&cells)?;
    let results = run_spec_cells_over(spec, &cells, workloads, traces.as_deref())?;
    Ok(grid.merge_named(results, &names))
}

/// [`try_run_spec`], panicking (loudly, with the spec error) on an invalid
/// spec — the figure-binary entry point, where an invalid spec is a bug or
/// a typo'd `PRESTAGE_BENCH` and must abort the reproduction.
pub fn run_spec(spec: &ExperimentSpec) -> Vec<Vec<GridResult>> {
    try_run_spec(spec).unwrap_or_else(|e| panic!("invalid experiment spec: {e}"))
}

// ---------------------------------------------------------------------------
// Cell/stats/shard serialization.
// ---------------------------------------------------------------------------

/// Serialize one cell's statistics as the canonical JSON object — the
/// shard-file / grid-artifact / serve-cache representation.
pub fn stats_to_json(s: &SimStats) -> Json {
    // Exhaustive destructuring everywhere in this codec: a new counter
    // field that is not serialized would silently break the bit-exact
    // shard/merge guarantee, so it must not compile instead.
    let SimStats {
        seed,
        cycles,
        committed,
        front,
        bus,
        pred,
        backend,
        redirects,
    } = *s;
    let prestage_core::FrontStats {
        fetch_pb,
        fetch_l0,
        fetch_l1,
        fetch_l2,
        fetch_mem,
        prefetch_from_pb,
        prefetch_from_l1,
        prefetch_from_l2,
        prefetch_from_mem,
        prefetches_issued,
        filtered,
        pb_alloc_stalls,
        blocks_pushed,
        blocks_rejected,
        flushes,
        consumer_bumps,
    } = front;
    let source = |c: prestage_core::SourceCount| {
        Json::Arr(vec![c.lines.into(), c.insts.into()])
    };
    let prestage_cache::BusStats {
        grants_dcache,
        grants_ifetch,
        grants_prefetch,
        writebacks,
        l2_hits,
        l2_misses,
        wait_cycles,
    } = bus;
    let prestage_bpred::PredStats {
        predictions,
        l1_supplied,
        l2_supplied,
        fallback_supplied,
        trained,
        train_correct,
    } = pred;
    let crate::backend::BackendStats {
        committed: be_committed,
        loads,
        stores,
        dcache_hits,
        dcache_misses,
        branches,
        commit_stall_cycles,
    } = backend;
    Json::obj([
        ("seed", seed.into()),
        ("cycles", cycles.into()),
        ("committed", committed.into()),
        ("redirects", redirects.into()),
        (
            "front",
            Json::obj([
                ("fetch_pb", source(fetch_pb)),
                ("fetch_l0", source(fetch_l0)),
                ("fetch_l1", source(fetch_l1)),
                ("fetch_l2", source(fetch_l2)),
                ("fetch_mem", source(fetch_mem)),
                ("prefetch_from_pb", prefetch_from_pb.into()),
                ("prefetch_from_l1", prefetch_from_l1.into()),
                ("prefetch_from_l2", prefetch_from_l2.into()),
                ("prefetch_from_mem", prefetch_from_mem.into()),
                ("prefetches_issued", prefetches_issued.into()),
                ("filtered", filtered.into()),
                ("pb_alloc_stalls", pb_alloc_stalls.into()),
                ("blocks_pushed", blocks_pushed.into()),
                ("blocks_rejected", blocks_rejected.into()),
                ("flushes", flushes.into()),
                ("consumer_bumps", consumer_bumps.into()),
            ]),
        ),
        (
            "bus",
            Json::obj([
                ("grants_dcache", grants_dcache.into()),
                ("grants_ifetch", grants_ifetch.into()),
                ("grants_prefetch", grants_prefetch.into()),
                ("writebacks", writebacks.into()),
                ("l2_hits", l2_hits.into()),
                ("l2_misses", l2_misses.into()),
                ("wait_cycles", wait_cycles.into()),
            ]),
        ),
        (
            "pred",
            Json::obj([
                ("predictions", predictions.into()),
                ("l1_supplied", l1_supplied.into()),
                ("l2_supplied", l2_supplied.into()),
                ("fallback_supplied", fallback_supplied.into()),
                ("trained", trained.into()),
                ("train_correct", train_correct.into()),
            ]),
        ),
        (
            "backend",
            Json::obj([
                ("committed", be_committed.into()),
                ("loads", loads.into()),
                ("stores", stores.into()),
                ("dcache_hits", dcache_hits.into()),
                ("dcache_misses", dcache_misses.into()),
                ("branches", branches.into()),
                ("commit_stall_cycles", commit_stall_cycles.into()),
            ]),
        ),
    ])
}

fn u64_of(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer stats field {key:?}"))
}

fn source_of(v: &Json, key: &str) -> Result<prestage_core::SourceCount, String> {
    let arr = v
        .get(key)
        .and_then(Json::as_arr)
        .filter(|a| a.len() == 2)
        .ok_or_else(|| format!("stats field {key:?} must be a [lines, insts] pair"))?;
    Ok(prestage_core::SourceCount {
        lines: arr[0]
            .as_u64()
            .ok_or_else(|| format!("bad lines count in {key:?}"))?,
        insts: arr[1]
            .as_u64()
            .ok_or_else(|| format!("bad insts count in {key:?}"))?,
    })
}

/// Parse [`stats_to_json`]'s representation back; every missing or
/// malformed counter is named.
pub fn stats_from_json(v: &Json) -> Result<SimStats, String> {
    let sub = |key: &str| {
        v.get(key)
            .filter(|s| matches!(s, Json::Obj(_)))
            .ok_or_else(|| format!("missing stats block {key:?}"))
    };
    let front = sub("front")?;
    let bus = sub("bus")?;
    let pred = sub("pred")?;
    let backend = sub("backend")?;
    Ok(SimStats {
        seed: u64_of(v, "seed")?,
        cycles: u64_of(v, "cycles")?,
        committed: u64_of(v, "committed")?,
        redirects: u64_of(v, "redirects")?,
        front: prestage_core::FrontStats {
            fetch_pb: source_of(front, "fetch_pb")?,
            fetch_l0: source_of(front, "fetch_l0")?,
            fetch_l1: source_of(front, "fetch_l1")?,
            fetch_l2: source_of(front, "fetch_l2")?,
            fetch_mem: source_of(front, "fetch_mem")?,
            prefetch_from_pb: u64_of(front, "prefetch_from_pb")?,
            prefetch_from_l1: u64_of(front, "prefetch_from_l1")?,
            prefetch_from_l2: u64_of(front, "prefetch_from_l2")?,
            prefetch_from_mem: u64_of(front, "prefetch_from_mem")?,
            prefetches_issued: u64_of(front, "prefetches_issued")?,
            filtered: u64_of(front, "filtered")?,
            pb_alloc_stalls: u64_of(front, "pb_alloc_stalls")?,
            blocks_pushed: u64_of(front, "blocks_pushed")?,
            blocks_rejected: u64_of(front, "blocks_rejected")?,
            flushes: u64_of(front, "flushes")?,
            consumer_bumps: u64_of(front, "consumer_bumps")?,
        },
        bus: prestage_cache::BusStats {
            grants_dcache: u64_of(bus, "grants_dcache")?,
            grants_ifetch: u64_of(bus, "grants_ifetch")?,
            grants_prefetch: u64_of(bus, "grants_prefetch")?,
            writebacks: u64_of(bus, "writebacks")?,
            l2_hits: u64_of(bus, "l2_hits")?,
            l2_misses: u64_of(bus, "l2_misses")?,
            wait_cycles: u64_of(bus, "wait_cycles")?,
        },
        pred: prestage_bpred::PredStats {
            predictions: u64_of(pred, "predictions")?,
            l1_supplied: u64_of(pred, "l1_supplied")?,
            l2_supplied: u64_of(pred, "l2_supplied")?,
            fallback_supplied: u64_of(pred, "fallback_supplied")?,
            trained: u64_of(pred, "trained")?,
            train_correct: u64_of(pred, "train_correct")?,
        },
        backend: crate::backend::BackendStats {
            committed: u64_of(backend, "committed")?,
            loads: u64_of(backend, "loads")?,
            stores: u64_of(backend, "stores")?,
            dcache_hits: u64_of(backend, "dcache_hits")?,
            dcache_misses: u64_of(backend, "dcache_misses")?,
            branches: u64_of(backend, "branches")?,
            commit_stall_cycles: u64_of(backend, "commit_stall_cycles")?,
        },
    })
}

/// Serialize a cell identifier as the canonical JSON object used by
/// shard files and the serve cache.
pub fn cell_to_json(c: &SweepCell) -> Json {
    let SweepCell {
        preset,
        tech,
        l1,
        bench_idx,
        exec_seed,
    } = *c;
    Json::obj([
        ("preset", preset.id().into()),
        ("tech", tech.id().into()),
        ("l1", l1.into()),
        ("bench_idx", bench_idx.into()),
        ("exec_seed", exec_seed.into()),
    ])
}

/// Parse [`cell_to_json`]'s representation back; every missing or
/// malformed field is named.
pub fn cell_from_json(v: &Json) -> Result<SweepCell, String> {
    let preset_id = v
        .get("preset")
        .and_then(Json::as_str)
        .ok_or("cell preset must be a string")?;
    let tech_id = v
        .get("tech")
        .and_then(Json::as_str)
        .ok_or("cell tech must be a string")?;
    Ok(SweepCell {
        preset: ConfigPreset::from_id(preset_id)
            .ok_or_else(|| format!("unknown preset {preset_id:?} in cell"))?,
        tech: TechNode::from_id(tech_id)
            .ok_or_else(|| format!("unknown tech {tech_id:?} in cell"))?,
        l1: v
            .get("l1")
            .and_then(Json::as_usize)
            .ok_or("cell l1 must be an integer")?,
        bench_idx: v
            .get("bench_idx")
            .and_then(Json::as_usize)
            .ok_or("cell bench_idx must be an integer")?,
        exec_seed: u64_of(v, "exec_seed")?,
    })
}

/// One process's share of a sharded sweep: the spec, the half-open cell
/// range `[start, end)` it evaluated, and the per-cell results.  Written
/// by `prestage shard`, consumed by `prestage merge`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFile {
    pub spec: ExperimentSpec,
    pub start: usize,
    pub end: usize,
    pub results: Vec<CellResult>,
}

// CellResult carries a wall-clock Duration, which has no meaningful
// equality across runs; compare shard files by cell identity and stats.
impl PartialEq for CellResult {
    fn eq(&self, other: &CellResult) -> bool {
        self.cell == other.cell && self.stats == other.stats
    }
}

impl ShardFile {
    pub fn to_json(&self) -> String {
        Json::obj([
            ("schema", SPEC_SCHEMA.into()),
            ("spec", self.spec.to_json_value()),
            (
                "cells",
                Json::obj([("start", self.start.into()), ("end", self.end.into())]),
            ),
            (
                "results",
                Json::Arr(
                    self.results
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("cell", cell_to_json(&r.cell)),
                                // Wall-clock is diagnostic only; merge
                                // output never includes it.
                                ("wall_s", r.wall.as_secs_f64().into()),
                                ("stats", stats_to_json(&r.stats)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .pretty()
    }

    pub fn from_json(text: &str) -> Result<ShardFile, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("shard file has no schema")?;
        if schema != SPEC_SCHEMA {
            return Err(format!("shard schema {schema} not supported"));
        }
        let spec = ExperimentSpec::from_json_value(
            v.get("spec").ok_or("shard file has no spec")?,
        )?;
        let cells = v.get("cells").ok_or("shard file has no cells range")?;
        let start = cells
            .get("start")
            .and_then(Json::as_usize)
            .ok_or("bad cells.start")?;
        let end = cells
            .get("end")
            .and_then(Json::as_usize)
            .ok_or("bad cells.end")?;
        let results = v
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("shard file has no results array")?
            .iter()
            .map(|r| {
                let secs = r.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0);
                // Found by the fuzz harness: Duration::from_secs_f64
                // panics on negative or over-range input, so a hostile
                // wall_s crashed the merge instead of being refused.
                if secs.is_nan() || secs < 0.0 || secs >= u64::MAX as f64 {
                    return Err(format!(
                        "result wall_s {secs} is not a representable duration"
                    ));
                }
                Ok(CellResult {
                    cell: cell_from_json(r.get("cell").ok_or("result has no cell")?)?,
                    stats: stats_from_json(r.get("stats").ok_or("result has no stats")?)?,
                    wall: Duration::from_secs_f64(secs),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        // Found by the fuzz harness: with a saturating count an *inverted*
        // range (start > end) plus an empty results array parsed clean.
        if start > end {
            return Err(format!(
                "shard cell range is inverted: cells.start {start} > cells.end {end}"
            ));
        }
        if results.len() != end - start {
            return Err(format!(
                "shard claims cells {start}..{end} but carries {} results",
                results.len()
            ));
        }
        Ok(ShardFile { spec, start, end, results })
    }
}

/// Render merged `[preset][size]` rows as the canonical grid artifact:
/// deterministic bytes, full per-cell stats, no timing.  A merged
/// multi-process run and a single-process [`run_spec`] of the same spec
/// produce identical output — the property the shard/merge CI job diffs.
///
/// The embedded spec has `threads` and `trace` cleared: pool width is
/// host-local and the committed-path source (live vs replay) is bit-exact
/// by construction, so runs that only disagreed on either must still
/// produce identical bytes — the property the replay CI job diffs.
pub fn grid_output(spec: &ExperimentSpec, rows: &[Vec<GridResult>]) -> String {
    let spec = &spec.portable();
    let mut out_rows = Vec::new();
    for (preset, row) in spec.presets.iter().zip(rows) {
        for (&l1, r) in spec.l1_sizes.iter().zip(row) {
            out_rows.push(Json::obj([
                ("preset", preset.id().into()),
                ("l1", l1.into()),
                ("hmean_ipc", r.hmean_ipc().into()),
                (
                    "per_bench",
                    Json::Arr(
                        r.per_bench
                            .iter()
                            .map(|(name, s)| {
                                Json::obj([
                                    ("bench", name.as_str().into()),
                                    ("ipc", s.ipc().into()),
                                    ("stats", stats_to_json(s)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]));
        }
    }
    Json::obj([
        ("schema", SPEC_SCHEMA.into()),
        ("spec", spec.to_json_value()),
        ("rows", Json::Arr(out_rows)),
    ])
    .pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            presets: vec![ConfigPreset::Base, ConfigPreset::ClgpL0],
            tech: TechNode::T090,
            l1_sizes: vec![1 << 10, 4 << 10],
            bench: Some(vec!["gzip".into()]),
            warmup_insts: 1_000,
            measure_insts: 4_000,
            workload_seed: 7,
            exec_seed: 3,
            threads: Some(2),
            predictor: PredictorKind::Stream,
            trace: None,
            prefetcher: None,
            itlb: None,
            insertion: None,
        }
    }

    #[test]
    fn default_spec_is_the_paper_matrix_and_validates() {
        let spec = ExperimentSpec::default();
        assert_eq!(spec.presets.len(), 10);
        assert_eq!(spec.l1_sizes, L1_SIZES.to_vec());
        assert_eq!(spec.bench_names().unwrap().len(), 12);
        spec.validate().unwrap();
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let replaying = ExperimentSpec {
            trace: Some(TraceSource {
                dir: "traces/smoke".into(),
            }),
            ..tiny_spec()
        };
        let mana = ExperimentSpec {
            prefetcher: Some(PrefetcherKind::Mana),
            ..tiny_spec()
        };
        let progmap = ExperimentSpec {
            prefetcher: Some(PrefetcherKind::ProgMap),
            ..tiny_spec()
        };
        for spec in [ExperimentSpec::default(), tiny_spec(), replaying, mana, progmap] {
            let text = spec.to_json();
            let back = ExperimentSpec::from_json(&text).unwrap();
            assert_eq!(back, spec);
            // Canonical: serializing again is byte-identical.
            assert_eq!(back.to_json(), text);
        }
    }

    #[test]
    fn unknown_bench_fails_loudly_with_the_valid_names() {
        let mut spec = tiny_spec();
        spec.bench = Some(vec!["gzpi".into()]);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("unknown benchmark \"gzpi\""), "{err}");
        assert!(err.contains("gzip") && err.contains("twolf"), "{err}");
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        let mut s = tiny_spec();
        s.presets.push(ConfigPreset::Base);
        assert!(s.validate().unwrap_err().contains("duplicate preset"));
        let mut s = tiny_spec();
        s.l1_sizes = vec![];
        assert!(s.validate().unwrap_err().contains("no L1 sizes"));
        let mut s = tiny_spec();
        s.bench = Some(vec![]);
        assert!(s.validate().unwrap_err().contains("matches no benchmarks"));
        let mut s = tiny_spec();
        s.bench = Some(vec!["gzip".into(), "gzip".into()]);
        assert!(s.validate().unwrap_err().contains("listed twice"));
        let mut s = tiny_spec();
        s.threads = Some(0);
        assert!(s.validate().unwrap_err().contains("threads"));
        let mut s = tiny_spec();
        s.measure_insts = 0;
        assert!(s.validate().unwrap_err().contains("measure_insts"));
    }

    #[test]
    fn from_json_rejects_typos_and_wrong_schemas() {
        let good = tiny_spec().to_json();
        let e = ExperimentSpec::from_json(&good.replace("warmup_insts", "warmupinsts"))
            .unwrap_err();
        assert!(e.contains("unknown spec field"), "{e}");
        let e = ExperimentSpec::from_json(&good.replace("\"schema\": 4", "\"schema\": 99"))
            .unwrap_err();
        assert!(e.contains("schema 99"), "{e}");
        let e = ExperimentSpec::from_json(&good.replace("\"clgp+l0\"", "\"clgp+l9\""))
            .unwrap_err();
        assert!(e.contains("unknown preset"), "{e}");
        assert!(ExperimentSpec::from_json("[]").is_err());
        // Malformed trace blocks are loud.
        let e = ExperimentSpec::from_json(
            &good.replace("\"trace\": null", "\"trace\": {\"dri\": \"x\"}"),
        )
        .unwrap_err();
        assert!(e.contains("unknown trace field"), "{e}");
        let e = ExperimentSpec::from_json(&good.replace("\"trace\": null", "\"trace\": 7"))
            .unwrap_err();
        assert!(e.contains("trace must be null or an object"), "{e}");
    }

    #[test]
    fn unknown_prefetcher_id_aborts_listing_the_valid_set() {
        let good = tiny_spec().to_json();
        let e = ExperimentSpec::from_json(
            &good.replace("\"prefetcher\": null", "\"prefetcher\": \"mnaa\""),
        )
        .unwrap_err();
        assert!(e.contains("unknown prefetcher \"mnaa\""), "{e}");
        for id in ["none", "nextline", "fdp", "clgp", "mana", "progmap"] {
            assert!(e.contains(id), "error must list {id:?}: {e}");
        }
        // Non-string values are loud too.
        let e = ExperimentSpec::from_json(
            &good.replace("\"prefetcher\": null", "\"prefetcher\": 7"),
        )
        .unwrap_err();
        assert!(e.contains("prefetcher must be null"), "{e}");
    }

    /// Cut `,\n  "<field>": null` out of a serialized spec (for building
    /// earlier-schema fixtures).
    fn cut_field(text: &str, field: &str) -> String {
        let mut out = text.to_string();
        let needle = format!(",\n  \"{field}\": null");
        let cut = out.find(&needle).unwrap();
        out.replace_range(cut..cut + needle.len(), "");
        out
    }

    #[test]
    fn schema_1_and_2_specs_still_parse_with_their_defaults() {
        // A pre-trace spec file (schema 1, no trace/prefetcher) keeps
        // working, and a schema-2 file (trace, no prefetcher) too...
        let v4 = tiny_spec().to_json();
        let cut_memory_model =
            |text: &str| cut_field(&cut_field(text, "itlb"), "insertion");
        let v1 = cut_field(
            &cut_field(
                &cut_memory_model(&v4.replace("\"schema\": 4", "\"schema\": 1")),
                "trace",
            ),
            "prefetcher",
        );
        let spec = ExperimentSpec::from_json(&v1).unwrap();
        assert_eq!(spec, tiny_spec());
        let v2 = cut_field(
            &cut_memory_model(&v4.replace("\"schema\": 4", "\"schema\": 2")),
            "prefetcher",
        );
        let spec = ExperimentSpec::from_json(&v2).unwrap();
        assert_eq!(spec, tiny_spec());
        // ...and a schema-3 file (prefetcher, no itlb/insertion) too.
        let v3 = cut_memory_model(&v4.replace("\"schema\": 4", "\"schema\": 3"));
        let spec = ExperimentSpec::from_json(&v3).unwrap();
        assert_eq!(spec, tiny_spec());
        // ...but an earlier-schema file *claiming* a later field carries a
        // field from the future, rejected rather than half-understood.
        let e = ExperimentSpec::from_json(&cut_field(
            &cut_memory_model(&v4.replace("\"schema\": 4", "\"schema\": 1")),
            "prefetcher",
        ))
        .unwrap_err();
        assert!(e.contains("unknown spec field \"trace\""), "{e}");
        let e = ExperimentSpec::from_json(&cut_memory_model(
            &v4.replace("\"schema\": 4", "\"schema\": 2"),
        ))
        .unwrap_err();
        assert!(e.contains("unknown spec field \"prefetcher\""), "{e}");
        let e = ExperimentSpec::from_json(&v4.replace("\"schema\": 4", "\"schema\": 3"))
            .unwrap_err();
        assert!(e.contains("unknown spec field \"itlb\""), "{e}");
    }

    #[test]
    fn itlb_and_insertion_fields_round_trip_and_reject_typos() {
        let spec = ExperimentSpec {
            itlb: Some(ITlbConfig {
                entries: 16,
                assoc: 2,
                page_bytes: 4096,
                miss_cycles: 20,
            }),
            insertion: Some(InsertionPolicy::Lru),
            ..tiny_spec()
        };
        spec.validate().unwrap();
        let back = ExperimentSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        let text = spec.to_json();
        // Misspelled / missing i-TLB sizing fields are loud.
        let e = ExperimentSpec::from_json(&text.replace("page_bytes", "pagebytes"))
            .unwrap_err();
        assert!(e.contains("unknown itlb field \"pagebytes\""), "{e}");
        let e = ExperimentSpec::from_json(&text.replace("\"miss_cycles\": 20", "\"miss_cycles\": \"x\""))
            .unwrap_err();
        assert!(e.contains("itlb.miss_cycles"), "{e}");
        let e = ExperimentSpec::from_json(
            &text.replace("\"insertion\": \"lru\"", "\"insertion\": \"plru\""),
        )
        .unwrap_err();
        assert!(e.contains("unknown insertion policy `plru`"), "{e}");
        // A non-power-of-two set count is a validation error, by name.
        let bad = ExperimentSpec {
            itlb: Some(ITlbConfig {
                entries: 48,
                assoc: 4,
                page_bytes: 4096,
                miss_cycles: 20,
            }),
            ..tiny_spec()
        };
        assert!(bad.validate().unwrap_err().contains("itlb entries"));
    }

    #[test]
    fn non_pow2_l1_sizes_are_rejected_by_name() {
        // Regression: a 1536-byte L1 used to validate, then panic inside
        // the cache array (whose sets are mask-indexed) when the first
        // cell ran; now the spec itself refuses, naming the field.
        let mut s = tiny_spec();
        s.l1_sizes = vec![1536];
        let e = s.validate().unwrap_err();
        assert!(e.contains("l1_sizes entry 1536"), "{e}");
        assert!(e.contains("power of two"), "{e}");
    }

    #[test]
    fn prefetcher_override_reshapes_the_sim_config() {
        for (id, kind) in [("mana", PrefetcherKind::Mana), ("progmap", PrefetcherKind::ProgMap)]
        {
            let spec = ExperimentSpec {
                prefetcher: Some(kind),
                ..tiny_spec()
            };
            spec.validate().unwrap_or_else(|e| panic!("{id}: {e}"));
            // Presets with a pre-buffer swap mechanisms in place...
            let cfg = spec.sim_config(ConfigPreset::ClgpL0, 4 << 10);
            assert_eq!(cfg.frontend.prefetcher, kind);
            assert!(cfg.frontend.pb_entries > 0);
            // ...and bufferless presets gain the node's one-cycle buffer.
            let cfg = spec.sim_config(ConfigPreset::Base, 4 << 10);
            assert_eq!(cfg.frontend.prefetcher, kind);
            assert_eq!(
                cfg.frontend.pb_entries,
                prestage_core::FrontendConfig::one_cycle_buffer_lines(spec.tech)
            );
        }
        // No override: the preset keeps its own mechanism.
        let cfg = tiny_spec().sim_config(ConfigPreset::ClgpL0, 4 << 10);
        assert_eq!(cfg.frontend.prefetcher, PrefetcherKind::Clgp);
    }

    #[test]
    fn replay_specs_vet_their_traces_before_running() {
        // Missing directory/file: the error points at the record command.
        let spec = ExperimentSpec {
            trace: Some(TraceSource {
                dir: "/nonexistent/trace/dir".into(),
            }),
            ..tiny_spec()
        };
        let e = run_spec_cells(&spec, &CellGrid::from_spec(&spec).unwrap().cells())
            .unwrap_err();
        assert!(e.contains("prestage trace record"), "{e}");

        // A trace recorded under different seeds is refused by name.
        let dir = std::env::temp_dir().join(format!("prestage_vet_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = ExperimentSpec {
            trace: Some(TraceSource {
                dir: dir.to_string_lossy().into_owned(),
            }),
            ..tiny_spec()
        };
        let w = spec.build_workloads().unwrap().remove(0);
        let path = spec.trace_paths().unwrap().unwrap().remove(0);
        let f = std::fs::File::create(&path).unwrap();
        // Recorded with the wrong exec seed (spec uses 3).
        prestage_workload::record_trace(
            std::io::BufWriter::new(f),
            &w,
            99,
            spec.trace_record_insts(),
            1024,
        )
        .unwrap();
        let e = spec.resolve_traces().unwrap_err();
        assert!(e.contains("exec seed 99"), "{e}");
        // Too-short traces are refused with both lengths.
        let f = std::fs::File::create(&path).unwrap();
        prestage_workload::record_trace(std::io::BufWriter::new(f), &w, 3, 100, 1024).unwrap();
        let e = spec.resolve_traces().unwrap_err();
        assert!(e.contains("holds 100 instructions"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_shards_only_vet_the_benchmarks_they_run() {
        // A two-bench replay spec with only the first bench's trace
        // recorded: cells touching just that bench must run; the full
        // grid (and the vet-everything entry point) must refuse.
        let dir = std::env::temp_dir().join(format!("prestage_scope_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = ExperimentSpec {
            bench: Some(vec!["gzip".into(), "mcf".into()]),
            trace: Some(TraceSource {
                dir: dir.to_string_lossy().into_owned(),
            }),
            ..tiny_spec()
        };
        let w = spec.build_workloads().unwrap().remove(0);
        let path = spec.trace_paths().unwrap().unwrap().remove(0);
        let f = std::fs::File::create(&path).unwrap();
        prestage_workload::record_trace(
            std::io::BufWriter::new(f),
            &w,
            spec.exec_seed,
            spec.trace_record_insts(),
            2048,
        )
        .unwrap();
        let grid = CellGrid::from_spec(&spec).unwrap();
        let gzip_cells: Vec<SweepCell> = grid
            .cells()
            .into_iter()
            .filter(|c| c.bench_idx == 0)
            .collect();
        let results = run_spec_cells(&spec, &gzip_cells).unwrap();
        assert_eq!(results.len(), gzip_cells.len());
        let e = run_spec_cells(&spec, &grid.cells()).unwrap_err();
        assert!(e.contains("mcf"), "{e}");
        assert!(spec.resolve_traces().unwrap_err().contains("mcf"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "replay cannot serve foreign-seed cells")]
    fn replay_refuses_cells_with_a_foreign_exec_seed() {
        let dir = std::env::temp_dir().join(format!("prestage_fseed_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = ExperimentSpec {
            trace: Some(TraceSource {
                dir: dir.to_string_lossy().into_owned(),
            }),
            ..tiny_spec()
        };
        let w = spec.build_workloads().unwrap().remove(0);
        let path = spec.trace_paths().unwrap().unwrap().remove(0);
        let f = std::fs::File::create(&path).unwrap();
        prestage_workload::record_trace(
            std::io::BufWriter::new(f),
            &w,
            spec.exec_seed,
            spec.trace_record_insts(),
            2048,
        )
        .unwrap();
        // A cell demanding a different execution seed than the recording:
        // live generation would honour it, so replay must refuse instead
        // of silently serving the spec-seed trace.
        let mut cell = CellGrid::from_spec(&spec).unwrap().cell_at(0);
        cell.exec_seed = spec.exec_seed + 1;
        let _ = run_spec_cells(&spec, &[cell]);
    }

    #[test]
    fn replay_run_is_bit_exact_and_byte_identical_to_live() {
        let dir = std::env::temp_dir().join(format!("prestage_replay_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let live = tiny_spec();
        let replay = ExperimentSpec {
            trace: Some(TraceSource {
                dir: dir.to_string_lossy().into_owned(),
            }),
            ..live.clone()
        };
        for (w, path) in live
            .build_workloads()
            .unwrap()
            .iter()
            .zip(replay.trace_paths().unwrap().unwrap())
        {
            let f = std::fs::File::create(&path).unwrap();
            prestage_workload::record_trace(
                std::io::BufWriter::new(f),
                w,
                live.exec_seed,
                live.trace_record_insts(),
                1024,
            )
            .unwrap();
        }
        let live_rows = try_run_spec(&live).unwrap();
        let replay_rows = try_run_spec(&replay).unwrap();
        // Every counter of every cell identical, and the rendered grid
        // artifact byte-identical (grid_output clears the trace source).
        for (lr, rr) in live_rows.iter().flatten().zip(replay_rows.iter().flatten()) {
            assert_eq!(lr.per_bench, rr.per_bench);
        }
        assert_eq!(
            grid_output(&live, &live_rows),
            grid_output(&replay, &replay_rows)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn env_layer_overrides_only_what_is_set() {
        let env: HashMap<&str, &str> = [
            ("PRESTAGE_MEASURE", "9000"),
            ("PRESTAGE_BENCH", "gcc, mcf"),
            ("PRESTAGE_THREADS", "3"),
        ]
        .into_iter()
        .collect();
        let spec = tiny_spec()
            .env_overrides_with(|k| env.get(k).map(|v| v.to_string()));
        assert_eq!(spec.measure_insts, 9_000);
        assert_eq!(spec.bench, Some(vec!["gcc".to_string(), "mcf".to_string()]));
        assert_eq!(spec.threads, Some(3));
        // Untouched fields keep the base spec's values.
        assert_eq!(spec.warmup_insts, 1_000);
        assert_eq!(spec.workload_seed, 7);
        // Empty values count as unset.
        let spec = tiny_spec().env_overrides_with(|k| {
            (k == "PRESTAGE_BENCH" || k == "PRESTAGE_THREADS").then(|| "  ".to_string())
        });
        assert_eq!(spec.bench, Some(vec!["gzip".to_string()]));
        assert_eq!(spec.threads, Some(2));
    }

    #[test]
    #[should_panic(expected = "PRESTAGE_MEASURE must be an unsigned integer")]
    fn env_layer_rejects_scientific_notation() {
        tiny_spec().env_overrides_with(|k| {
            (k == "PRESTAGE_MEASURE").then(|| "1e6".to_string())
        });
    }

    #[test]
    #[should_panic(expected = "PRESTAGE_THREADS must be a positive integer")]
    fn env_layer_rejects_zero_threads() {
        tiny_spec().env_overrides_with(|k| {
            (k == "PRESTAGE_THREADS").then(|| "0".to_string())
        });
    }

    #[test]
    fn env_u64_parse_accepts_good_values_and_defaults() {
        assert_eq!(parse_env_u64("X", None, 7), 7);
        assert_eq!(parse_env_u64("X", Some(""), 7), 7);
        assert_eq!(parse_env_u64("X", Some("  "), 7), 7);
        assert_eq!(parse_env_u64("X", Some("123"), 7), 123);
        assert_eq!(parse_env_u64("X", Some(" 42 "), 7), 42);
    }

    #[test]
    fn grid_from_spec_matches_axes() {
        let spec = tiny_spec();
        let grid = CellGrid::from_spec(&spec).unwrap();
        assert_eq!(grid.n_cells(), 4);
        let c = grid.cell_at(0);
        assert_eq!(c.preset, ConfigPreset::Base);
        assert_eq!(c.tech, TechNode::T090);
        assert_eq!(c.exec_seed, 3);
    }

    #[test]
    fn stats_codec_roundtrips_every_field_exactly() {
        // Fill each counter with a distinct value (including one above
        // 2^53) so a swapped or dropped field cannot cancel out.
        let mut n = (1u64 << 53) + 1;
        let mut next = || {
            n += 1;
            n
        };
        let s = SimStats {
            seed: next(),
            cycles: next(),
            committed: next(),
            redirects: next(),
            front: prestage_core::FrontStats {
                fetch_pb: prestage_core::SourceCount { lines: next(), insts: next() },
                fetch_l0: prestage_core::SourceCount { lines: next(), insts: next() },
                fetch_l1: prestage_core::SourceCount { lines: next(), insts: next() },
                fetch_l2: prestage_core::SourceCount { lines: next(), insts: next() },
                fetch_mem: prestage_core::SourceCount { lines: next(), insts: next() },
                prefetch_from_pb: next(),
                prefetch_from_l1: next(),
                prefetch_from_l2: next(),
                prefetch_from_mem: next(),
                prefetches_issued: next(),
                filtered: next(),
                pb_alloc_stalls: next(),
                blocks_pushed: next(),
                blocks_rejected: next(),
                flushes: next(),
                consumer_bumps: next(),
            },
            bus: prestage_cache::BusStats {
                grants_dcache: next(),
                grants_ifetch: next(),
                grants_prefetch: next(),
                writebacks: next(),
                l2_hits: next(),
                l2_misses: next(),
                wait_cycles: next(),
            },
            pred: prestage_bpred::PredStats {
                predictions: next(),
                l1_supplied: next(),
                l2_supplied: next(),
                fallback_supplied: next(),
                trained: next(),
                train_correct: next(),
            },
            backend: crate::backend::BackendStats {
                committed: next(),
                loads: next(),
                stores: next(),
                dcache_hits: next(),
                dcache_misses: next(),
                branches: next(),
                commit_stall_cycles: next(),
            },
        };
        let v = stats_to_json(&s);
        let back = stats_from_json(&Json::parse(&v.pretty()).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn shard_file_roundtrips_and_checks_its_count() {
        let spec = tiny_spec();
        let grid = CellGrid::from_spec(&spec).unwrap();
        let results = run_spec_cells(&spec, &grid.cells()[1..3]).unwrap();
        let shard = ShardFile { spec, start: 1, end: 3, results };
        let text = shard.to_json();
        let back = ShardFile::from_json(&text).unwrap();
        assert_eq!(back, shard);
        // A shard that lost a result line must not parse.
        let broken = text.replacen("\"end\": 3", "\"end\": 4", 1);
        assert!(ShardFile::from_json(&broken).unwrap_err().contains("carries"));
    }

    #[test]
    fn fuzz_regression_inverted_shard_range_is_rejected_by_name() {
        // Fuzzer crasher (checked in as fuzz/regressions/shard/
        // inverted-range.json): start 5 > end 2 with an empty results
        // array sneaked past the saturating count check and parsed clean.
        let text = format!(
            "{{\n  \"schema\": {SPEC_SCHEMA},\n  \"spec\": {},\n  \
             \"cells\": {{\"start\": 5, \"end\": 2}},\n  \"results\": []\n}}",
            tiny_spec().to_json_value().render()
        );
        let e = ShardFile::from_json(&text).unwrap_err();
        assert!(e.contains("inverted"), "{e}");
        assert!(e.contains("cells.start 5") && e.contains("cells.end 2"), "{e}");
    }

    #[test]
    fn fuzz_regression_overflowing_run_length_is_rejected_by_name() {
        // Fuzzer crasher (checked in as fuzz/regressions/spec/
        // warmup-measure-overflow.json): warmup + measure wrapping u64
        // validated clean, then panicked (debug) inside the replay length
        // check.
        let mut s = tiny_spec();
        s.warmup_insts = u64::MAX;
        s.measure_insts = 2;
        let e = s.validate().unwrap_err();
        assert!(e.contains("warmup_insts") && e.contains("measure_insts"), "{e}");
        assert!(e.contains("overflows"), "{e}");
        // And the trace vet itself stays total even without validate().
        assert!(s.trace_record_insts() == u64::MAX);
    }

    #[test]
    fn fuzz_regression_hostile_wall_s_is_rejected_by_name() {
        // Fuzzer crasher (checked in as fuzz/regressions/shard/
        // negative-wall.json): Duration::from_secs_f64 panics on negative
        // or over-range seconds, so "wall_s": -1.5 (or 1e300) crashed the
        // shard loader instead of being refused.
        let spec = tiny_spec().to_json_value().render();
        for bad in ["-1.5", "1e300"] {
            let text = format!(
                "{{\n  \"schema\": {SPEC_SCHEMA},\n  \"spec\": {spec},\n  \
                 \"cells\": {{\"start\": 0, \"end\": 1}},\n  \"results\": \
                 [{{\"cell\": null, \"stats\": null, \"wall_s\": {bad}}}]\n}}"
            );
            let e = ShardFile::from_json(&text).unwrap_err();
            assert!(e.contains("wall_s"), "wall_s {bad}: {e}");
        }
    }

    #[test]
    fn run_spec_matches_the_raw_runner_bit_exactly() {
        let spec = tiny_spec();
        let rows = try_run_spec(&spec).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2);
        let w = spec.build_workloads().unwrap();
        for (pi, &preset) in spec.presets.iter().enumerate() {
            for (si, &l1) in spec.l1_sizes.iter().enumerate() {
                let direct = crate::Engine::new(
                    spec.sim_config(preset, l1),
                    &w[0],
                    spec.exec_seed,
                )
                .run();
                assert_eq!(rows[pi][si].per_bench[0].1, direct);
                assert_eq!(rows[pi][si].per_bench[0].0, "gzip");
            }
        }
    }

    #[test]
    fn grid_output_is_deterministic_and_thread_blind() {
        let spec = tiny_spec();
        let rows = try_run_spec(&spec).unwrap();
        let a = grid_output(&spec, &rows);
        let b = grid_output(&spec, &try_run_spec(&spec).unwrap());
        assert_eq!(a, b);
        assert!(Json::parse(&a).is_ok());
        // The pool width is host-local: a run that only differed in
        // `threads` must still produce identical artifact bytes.
        let wider = ExperimentSpec { threads: Some(7), ..spec.clone() };
        assert_eq!(grid_output(&wider, &try_run_spec(&wider).unwrap()), a);
    }
}
