//! Run statistics and aggregation helpers.

use prestage_bpred::PredStats;
use prestage_cache::BusStats;
use prestage_core::FrontStats;
use serde::{Deserialize, Serialize};

use crate::backend::BackendStats;

/// Everything measured in one simulation run (post-warm-up window).
///
/// All fields (including the nested stat blocks) are integer counters, so
/// equality is exact and the JSON codec in [`crate::spec`] round-trips a
/// run bit-for-bit — the property the `prestage shard`/`merge` pipeline
/// relies on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Benchmark-identifying seed the run used.
    pub seed: u64,
    /// Measured cycles.
    pub cycles: u64,
    /// Committed instructions in the measured window.
    pub committed: u64,
    pub front: FrontStats,
    pub bus: BusStats,
    pub pred: PredStats,
    pub backend: BackendStats,
    /// Branch mispredictions that reached resolution (front-end redirects).
    pub redirects: u64,
}

impl SimStats {
    /// Instructions per cycle over the measured window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Mispredictions per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            1000.0 * self.redirects as f64 / self.committed as f64
        }
    }
}

/// Harmonic mean — the paper aggregates per-benchmark IPC with HMEAN
/// (Figure 6's rightmost bars).
///
/// A non-positive value (a hung config reporting IPC = 0) makes the whole
/// mean 0.0: the harmonic mean of a set containing zero *is* zero, and
/// clamping the reciprocal instead would mask a dead benchmark inside a
/// plausible-looking aggregate.  [`crate::GridResult::zero_ipc_benches`]
/// names the culprits.
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    let denom: f64 = values.iter().map(|v| 1.0 / v).sum();
    values.len() as f64 / denom
}

/// Arithmetic speedup of `new` over `old`, in percent.
pub fn speedup_pct(new: f64, old: f64) -> f64 {
    (new / old - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_mpki() {
        let s = SimStats {
            cycles: 1000,
            committed: 800,
            redirects: 8,
            ..Default::default()
        };
        assert!((s.ipc() - 0.8).abs() < 1e-12);
        assert!((s.mpki() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_zero_ipc() {
        assert_eq!(SimStats::default().ipc(), 0.0);
        assert_eq!(SimStats::default().mpki(), 0.0);
    }

    #[test]
    fn hmean_matches_hand_computation() {
        let h = harmonic_mean(&[1.0, 2.0]);
        assert!((h - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), 0.0);
        // HMEAN is dominated by the slowest benchmark.
        let h2 = harmonic_mean(&[0.1, 2.0, 2.0]);
        assert!(h2 < 0.3);
    }

    #[test]
    fn hmean_propagates_a_hung_config_as_zero() {
        // A zeroed benchmark must not hide inside a plausible aggregate.
        assert_eq!(harmonic_mean(&[0.0, 2.0, 2.0]), 0.0);
        assert_eq!(harmonic_mean(&[-1.0, 2.0]), 0.0);
        assert_eq!(harmonic_mean(&[0.0]), 0.0);
    }

    #[test]
    fn speedup_sign() {
        assert!((speedup_pct(1.25, 1.0) - 25.0).abs() < 1e-9);
        assert!(speedup_pct(0.9, 1.0) < 0.0);
    }
}
