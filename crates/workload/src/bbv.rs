//! Basic-block-vector profiling and SimPoint-style slice selection.
//!
//! The paper simulates "the most representative 300 million instruction
//! slices following the idea presented in \[18\]" (Sherwood, Perelman,
//! Calder — *Basic block distribution analysis*, PACT'01).  This module
//! reproduces that pipeline at our scale: execution is profiled into
//! per-interval basic-block vectors, the vectors are random-projected to a
//! small dimension, clustered with k-means, and the medoid interval of the
//! largest cluster is the representative slice.

use crate::codegen::Workload;
use crate::exec::TraceGenerator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Projected dimensionality (SimPoint uses 15; we keep a little more).
pub const PROJECTED_DIMS: usize = 24;

/// One profiling interval's (projected, normalised) basic-block vector.
pub type Bbv = [f32; PROJECTED_DIMS];

/// Profile `n_intervals` intervals of `interval_insts` instructions each.
pub fn collect_bbvs(
    w: &Workload,
    exec_seed: u64,
    interval_insts: u64,
    n_intervals: usize,
) -> Vec<Bbv> {
    // Deterministic random projection: each block id hashes to a dimension
    // and a sign.
    let project = |block: u32| -> (usize, f32) {
        let h = (block as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let dim = (h >> 8) as usize % PROJECTED_DIMS;
        let sign = if h & 1 == 0 { 1.0 } else { -1.0 };
        (dim, sign)
    };

    let mut gen = TraceGenerator::new(w, exec_seed);
    let mut out = Vec::with_capacity(n_intervals);
    let mut buf = Vec::new();
    for _ in 0..n_intervals {
        let mut v = [0f32; PROJECTED_DIMS];
        let mut count = 0u64;
        while count < interval_insts {
            let s = gen.next_stream(&mut buf);
            count += s.len as u64;
            for di in &buf {
                let (dim, sign) = project(di.block.0);
                v[dim] += sign;
            }
        }
        // L2-normalise so intervals of slightly different lengths compare.
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
        v.iter_mut().for_each(|x| *x /= norm);
        out.push(v);
    }
    out
}

fn dist2(a: &Bbv, b: &Bbv) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-means over BBVs; returns per-point cluster assignments.
pub fn kmeans(points: &[Bbv], k: usize, iters: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 1 && !points.is_empty());
    let k = k.min(points.len());
    let mut rng = SmallRng::seed_from_u64(seed);
    // Forgy init: k distinct random points.
    let mut centroid_idx: Vec<usize> = (0..points.len()).collect();
    for i in (1..centroid_idx.len()).rev() {
        centroid_idx.swap(i, rng.gen_range(0..=i));
    }
    let mut centroids: Vec<Bbv> = centroid_idx[..k].iter().map(|&i| points[i]).collect();
    let mut assign = vec![0usize; points.len()];
    for _ in 0..iters {
        // Assignment step.
        let mut changed = false;
        for (pi, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist2(p, &centroids[a])
                        .partial_cmp(&dist2(p, &centroids[b]))
                        .unwrap()
                })
                .unwrap();
            if assign[pi] != best {
                assign[pi] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![[0f32; PROJECTED_DIMS]; k];
        let mut counts = vec![0usize; k];
        for (pi, p) in points.iter().enumerate() {
            let c = assign[pi];
            counts[c] += 1;
            for d in 0..PROJECTED_DIMS {
                sums[c][d] += p[d];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..PROJECTED_DIMS {
                    centroids[c][d] = sums[c][d] / counts[c] as f32;
                }
            }
        }
        if !changed {
            break;
        }
    }
    assign
}

/// Pick the representative interval: the medoid of the most populous
/// cluster (the interval closest to that cluster's centroid).
pub fn pick_simpoint(points: &[Bbv], assign: &[usize]) -> usize {
    assert_eq!(points.len(), assign.len());
    let k = assign.iter().copied().max().unwrap_or(0) + 1;
    let mut counts = vec![0usize; k];
    for &a in assign {
        counts[a] += 1;
    }
    let big = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap();
    // Centroid of the big cluster.
    let mut centroid = [0f32; PROJECTED_DIMS];
    for (p, &a) in points.iter().zip(assign) {
        if a == big {
            for d in 0..PROJECTED_DIMS {
                centroid[d] += p[d];
            }
        }
    }
    let n = counts[big] as f32;
    centroid.iter_mut().for_each(|x| *x /= n);
    points
        .iter()
        .enumerate()
        .filter(|&(i, _)| assign[i] == big)
        .min_by(|&(_, a), &(_, b)| {
            dist2(a, &centroid)
                .partial_cmp(&dist2(b, &centroid))
                .unwrap()
        })
        .map(|(i, _)| i)
        .unwrap()
}

/// Full pipeline: profile, cluster, select.  Returns the chosen interval
/// index (its instructions start at `index * interval_insts`).
pub fn select_slice(
    w: &Workload,
    exec_seed: u64,
    interval_insts: u64,
    n_intervals: usize,
    k: usize,
) -> usize {
    let bbvs = collect_bbvs(w, exec_seed, interval_insts, n_intervals);
    let assign = kmeans(&bbvs, k, 50, 0x51D_0A11);
    pick_simpoint(&bbvs, &assign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::build;
    use crate::profile::by_name;

    fn small_workload() -> Workload {
        let mut p = by_name("gzip").unwrap();
        p.i_footprint_kb = 2;
        p.n_funcs = 6;
        build(&p, 11)
    }

    #[test]
    fn bbvs_are_normalised() {
        let w = small_workload();
        let v = collect_bbvs(&w, 1, 5_000, 8);
        assert_eq!(v.len(), 8);
        for bbv in &v {
            let n: f32 = bbv.iter().map(|x| x * x).sum();
            assert!((n - 1.0).abs() < 1e-3, "norm {n}");
        }
    }

    #[test]
    fn kmeans_separates_obvious_clusters() {
        // Two synthetic blobs.
        let mut pts: Vec<Bbv> = Vec::new();
        for i in 0..10 {
            let mut a = [0f32; PROJECTED_DIMS];
            a[0] = 1.0 + (i as f32) * 1e-3;
            pts.push(a);
            let mut b = [0f32; PROJECTED_DIMS];
            b[1] = -1.0 - (i as f32) * 1e-3;
            pts.push(b);
        }
        let assign = kmeans(&pts, 2, 20, 42);
        // All even indices together, all odd together.
        let a0 = assign[0];
        let b0 = assign[1];
        assert_ne!(a0, b0);
        for i in 0..10 {
            assert_eq!(assign[2 * i], a0);
            assert_eq!(assign[2 * i + 1], b0);
        }
    }

    #[test]
    fn simpoint_picks_from_largest_cluster() {
        let mut pts: Vec<Bbv> = Vec::new();
        // 8 points near e0, 2 points near e1.
        for i in 0..8 {
            let mut a = [0f32; PROJECTED_DIMS];
            a[0] = 1.0 + i as f32 * 0.01;
            pts.push(a);
        }
        for _ in 0..2 {
            let mut b = [0f32; PROJECTED_DIMS];
            b[1] = 1.0;
            pts.push(b);
        }
        let assign = kmeans(&pts, 2, 20, 7);
        let rep = pick_simpoint(&pts, &assign);
        assert!(rep < 8, "representative {rep} not from the large cluster");
    }

    #[test]
    fn pipeline_is_deterministic() {
        let w = small_workload();
        let a = select_slice(&w, 3, 5_000, 10, 3);
        let b = select_slice(&w, 3, 5_000, 10, 3);
        assert_eq!(a, b);
        assert!(a < 10);
    }
}
