//! Static program synthesis: builds an Alpha-like [`Program`] (the
//! basic-block dictionary) plus per-site behavioural models from a
//! [`BenchmarkProfile`].
//!
//! The generated program is a **layered call DAG**: functions are split into
//! levels, a function may only call functions one level deeper (bounding
//! call depth = RAS pressure), and callee popularity within a level is
//! Zipf-distributed, so a hot subset of the code dominates execution while a
//! long cold tail provides the big static footprints of `gcc`-like
//! benchmarks.  Function bodies are composed of loops (self or two-block),
//! guarded call sites, if-diamonds and straight-line blocks, with
//! per-conditional-branch behaviour models ([`BranchModel`]) and per-memory-
//! instruction address models ([`MemModel`]) that the dynamic executor
//! ([`crate::exec`]) evaluates deterministically.

use crate::profile::BenchmarkProfile;
use prestage_isa::{
    Addr, BasicBlock, BlockId, OpClass, Program, ProgramBuilder, Reg, StaticInst, Terminator,
    INST_BYTES,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Base address of the code image.
pub const CODE_BASE: Addr = 0x0010_0000;
/// Base of the (always warm) stack data region.
pub const STACK_BASE: Addr = 0x7000_0000;
/// Base of the strided (array) data region.
pub const ARRAY_BASE: Addr = 0x2000_0000;
/// Base of the random-access (heap/pointer) data region.
pub const HEAP_BASE: Addr = 0x4000_0000;

/// Deterministic behavioural model of one static conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BranchModel {
    /// Taken with fixed probability (strongly biased = easy; mid-range =
    /// hard, data-dependent).
    Bias { p_taken: f64 },
    /// Loop back-edge with fixed trip count: taken `trip - 1` times, then
    /// not taken once.
    Loop { trip: u32 },
    /// Loop back-edge whose trip count is resampled uniformly in
    /// `[min, max]` at every loop entry.
    LoopVar { min: u32, max: u32 },
    /// Periodic direction pattern: bit `i % len` of `bits` (1 = taken).
    Pattern { bits: u32, len: u8 },
}

/// Deterministic address model of one static load/store.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemModel {
    /// Sequential walk: `base + (visit * stride) % span`.
    Stride { base: Addr, stride: u32, span: u32 },
    /// Uniform random address in `[base, base + mask]` (pointer chasing).
    Random { base: Addr, mask: u64 },
    /// Small always-warm region (stack frame traffic).
    Stack { base: Addr, mask: u64 },
}

/// Behavioural annotations for one basic block.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockControl {
    /// Model for the terminating conditional branch, if any.
    pub branch: Option<BranchModel>,
    /// `(instruction index within block, model)` for each load/store.
    pub mem: Vec<(u16, MemModel)>,
}

/// A generated workload: static program + behavioural models.
#[derive(Debug, Clone)]
pub struct Workload {
    pub profile: BenchmarkProfile,
    pub program: Arc<Program>,
    /// Indexed by [`BlockId`].
    pub control: Vec<BlockControl>,
    /// Seed the program was generated from.
    pub seed: u64,
}

impl Workload {
    /// Behavioural annotations for `block`.
    pub fn control_of(&self, id: BlockId) -> &BlockControl {
        &self.control[id.0 as usize]
    }
}

// ---------------------------------------------------------------------------
// Symbolic (pre-layout) representation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum STarget {
    /// Block index within the same function.
    Local(usize),
}

#[derive(Debug, Clone)]
enum STerm {
    Cond { taken: STarget, model: BranchModel },
    Jump { target: STarget },
    Call { callee: usize },
    Ret,
    Fall,
}

#[derive(Debug, Clone)]
struct SInst {
    op: OpClass,
    mem: Option<MemModel>,
}

#[derive(Debug, Clone)]
struct SBlock {
    insts: Vec<SInst>,
    term: STerm,
}

impl SBlock {
    /// Instructions this block contributes, terminator included.
    fn size(&self) -> u64 {
        let term = match self.term {
            STerm::Fall => 0,
            _ => 1,
        };
        self.insts.len() as u64 + term
    }
}

#[derive(Debug, Clone)]
struct SFunc {
    blocks: Vec<SBlock>,
}

impl SFunc {
    fn size(&self) -> u64 {
        self.blocks.iter().map(SBlock::size).sum()
    }
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

struct Gen<'p> {
    p: &'p BenchmarkProfile,
    rng: SmallRng,
    /// Function index ranges per level.
    levels: Vec<std::ops::Range<usize>>,
    /// Shared hot data regions: the program's few cache-resident
    /// structures that most memory sites touch.  Keeping the *aggregate*
    /// hot footprint small (not just each site's span) is what gives the
    /// workload realistic D-cache hit rates.
    hot_pool: Vec<(Addr, u32)>,
}

impl<'p> Gen<'p> {
    fn new(p: &'p BenchmarkProfile, seed: u64) -> Self {
        let n = p.n_funcs as usize;
        let l = (p.n_levels as usize).clamp(1, n);
        // Level 0 is the dispatcher alone; deeper levels grow geometrically
        // (each level roughly doubles), covering exactly the n-1 remaining
        // functions.
        let mut levels = Vec::with_capacity(l);
        levels.push(0..1);
        let mut start = 1usize;
        let mut remaining = n - 1;
        for k in 1..l {
            let levels_left = l - k;
            let share = if levels_left == 1 {
                remaining
            } else {
                // Geometric weights 2^1..2^(l-1) over the deeper levels.
                let denom: usize = (1..=levels_left).map(|i| 1usize << i).sum();
                (remaining * 2 / denom).max(1).min(remaining - (levels_left - 1))
            };
            levels.push(start..start + share);
            start += share;
            remaining -= share;
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0DE_C0DE);
        // ~6 regions of 2-4 KB: aggregate hot data ~16 KB, comfortably
        // D-cache resident alongside the 4 KB stack frame region.
        let hot_pool = (0..6)
            .map(|i| {
                let size = 2048u32 << (i % 2);
                let base = ARRAY_BASE + i as u64 * (1 << 20) + (rng.gen::<u64>() & 0xFF00);
                (base, size)
            })
            .collect();
        Gen {
            p,
            rng,
            levels,
            hot_pool,
        }
    }

    fn hot_region(&mut self) -> (Addr, u32) {
        self.hot_pool[self.rng.gen_range(0..self.hot_pool.len())]
    }

    fn level_of(&self, func: usize) -> usize {
        self.levels
            .iter()
            .position(|r| r.contains(&func))
            .unwrap_or(self.levels.len() - 1)
    }

    /// Zipf-sample a rank in `0..count` with exponent `alpha`.
    fn zipf_rank(&mut self, count: usize, alpha: f64) -> usize {
        let total: f64 = (0..count).map(|r| ((r + 1) as f64).powf(-alpha)).sum();
        let mut x = self.rng.gen::<f64>() * total;
        for r in 0..count {
            x -= ((r + 1) as f64).powf(-alpha);
            if x <= 0.0 {
                return r;
            }
        }
        count - 1
    }

    /// Sample a callee from the level below `level` for a call site in
    /// `caller`.
    ///
    /// Callee choice is mostly **local**: each caller owns a window of the
    /// next level proportional to its rank, so sibling subtrees are largely
    /// disjoint and one outer-loop iteration sweeps a wide, mostly unique
    /// instruction footprint (long I-reuse distances, as in real big-code
    /// benchmarks).  A minority of calls go to global Zipf-popular callees,
    /// modelling shared utility routines.
    fn sample_callee(&mut self, level: usize, caller: usize) -> Option<usize> {
        let cur = self.levels.get(level)?.clone();
        let next = self.levels.get(level + 1)?.clone();
        let count = next.len();
        if count == 0 {
            return None;
        }
        let alpha = self.p.zipf_alpha;
        if self.rng.gen::<f64>() < 0.25 {
            // Shared utility: global Zipf over the whole next level.
            return Some(next.start + self.zipf_rank(count, alpha));
        }
        // Local window around the caller's projected position.
        let caller_rank = caller.saturating_sub(cur.start);
        let ratio = (count as f64 / cur.len() as f64).max(1.0);
        let center = (caller_rank as f64 * ratio) as usize;
        let half = (ratio * 1.5).ceil() as usize + 1;
        let window = 2 * half + 1;
        let off = self.zipf_rank(window.min(count), alpha * 0.5);
        // Spiral outwards from the centre: 0, +1, -1, +2, -2, ...
        let signed = if off.is_multiple_of(2) {
            (off / 2) as i64
        } else {
            -(off.div_ceil(2) as i64)
        };
        let idx = (center as i64 + signed).rem_euclid(count as i64) as usize;
        Some(next.start + idx)
    }

    fn payload_inst(&mut self) -> SInst {
        let p = self.p;
        let x = self.rng.gen::<f64>();
        let (op, is_mem) = if x < p.load_frac {
            (OpClass::Load, true)
        } else if x < p.load_frac + p.store_frac {
            (OpClass::Store, true)
        } else if x < p.load_frac + p.store_frac + p.mul_frac {
            (OpClass::IntMul, false)
        } else if x < p.load_frac + p.store_frac + p.mul_frac + p.fp_frac {
            (
                if self.rng.gen::<f64>() < 0.4 {
                    OpClass::FpMul
                } else {
                    OpClass::FpAlu
                },
                false,
            )
        } else {
            (OpClass::IntAlu, false)
        };
        let mem = is_mem.then(|| self.mem_model());
        SInst { op, mem }
    }

    fn mem_model(&mut self) -> MemModel {
        let p = self.p;
        let d_bytes = (p.d_footprint_kb as u64) << 10;
        let x = self.rng.gen::<f64>();
        if x < p.d_stack_frac {
            MemModel::Stack {
                base: STACK_BASE,
                mask: 0xFFF, // 4 KB hot frame region
            }
        } else if x < p.d_stack_frac + p.d_random_frac {
            // Pointer-chasing site.  Most such sites in real code walk a
            // *hot* structure that caches well; a minority (controlled by
            // `d_cold_frac`) roam the full data footprint and are the
            // benchmark's true cache-killers (all of mcf, effectively).
            if self.rng.gen::<f64>() < p.d_cold_frac {
                MemModel::Random {
                    base: HEAP_BASE,
                    mask: d_bytes.next_power_of_two().max(64) - 1,
                }
            } else {
                let (base, size) = self.hot_region();
                MemModel::Random {
                    base,
                    mask: (size as u64).next_power_of_two() - 1,
                }
            }
        } else {
            // Strided site.  Most array code re-walks a small, blocked
            // working set (cache friendly); a minority of sites stream over
            // a large span and pay a miss per new line, controlled by the
            // same cold-site knob as pointer chasing.
            let (base, span) = if self.rng.gen::<f64>() < p.d_cold_frac {
                let span = ((d_bytes / 8).max(4096) as u32).min(1 << 26);
                let base = ARRAY_BASE + (8 + self.rng.gen::<u64>() % 56) * (1 << 20);
                (base, span)
            } else {
                self.hot_region()
            };
            let stride = [4u32, 8, 8, 16, 64][self.rng.gen_range(0..5usize)];
            MemModel::Stride { base, stride, span }
        }
    }

    fn payload(&mut self, n: u32) -> Vec<SInst> {
        (0..n).map(|_| self.payload_inst()).collect()
    }

    fn block_len(&mut self) -> u32 {
        let (lo, hi) = self.p.block_insts;
        self.rng.gen_range(lo..=hi)
    }

    /// A profile-sized payload vector (hoists the length sample to avoid
    /// nested mutable borrows).
    fn block_payload(&mut self) -> Vec<SInst> {
        let n = self.block_len();
        self.payload(n)
    }

    fn short_payload(&mut self, hi: u32) -> Vec<SInst> {
        let n = self.rng.gen_range(0..=hi).min(self.block_len());
        self.payload(n.max(1))
    }

    /// A non-loop conditional-branch model per the profile's mix.
    fn cond_model(&mut self) -> BranchModel {
        let p = self.p;
        // Renormalise pattern/hard over the non-loop fraction.
        let non_loop = (1.0 - p.loop_frac).max(1e-9);
        let pat = p.pattern_frac / non_loop;
        let hard = p.hard_frac / non_loop;
        let x = self.rng.gen::<f64>();
        if x < pat {
            let len = self.rng.gen_range(3..=8u8);
            let mut bits: u32 = self.rng.gen_range(1..(1u32 << len));
            if bits == (1 << len) - 1 {
                bits &= !1; // avoid the all-taken degenerate pattern
            }
            BranchModel::Pattern { bits, len }
        } else if x < pat + hard {
            let (lo, hi) = p.hard_p;
            BranchModel::Bias {
                p_taken: self.rng.gen_range(lo..=hi),
            }
        } else {
            // Strongly biased (easy).
            let p_taken = if self.rng.gen::<bool>() {
                self.rng.gen_range(0.0..0.02)
            } else {
                self.rng.gen_range(0.98..1.0)
            };
            BranchModel::Bias { p_taken }
        }
    }

    /// Model for a call-site guard that should *execute* the call with
    /// long-run frequency `p_exec`.
    ///
    /// Most guards are effectively fixed for the whole run — real big-code
    /// benchmarks traverse the same wide hot subtree every outer iteration
    /// while most static call sites stay cold for a given input — so the
    /// guard is "always execute" with probability `p_exec` and "cold"
    /// otherwise.  A minority rotate (periodic duty cycle) or flip noisily,
    /// providing the irreducible misprediction floor.
    fn guard_model(&mut self, p_exec: f64) -> BranchModel {
        let r = self.rng.gen::<f64>();
        if r < 0.10 {
            // Rotating site: executes ~p_exec of visits, periodically.
            let len = self.rng.gen_range(4..=8u8);
            let skip_bits =
                (((1.0 - p_exec) * len as f64).round() as u32).clamp(1, len as u32 - 1);
            let mut bits = 0u32;
            for k in 0..skip_bits {
                let pos = (k * len as u32) / skip_bits;
                bits |= 1 << pos.min(len as u32 - 1);
            }
            BranchModel::Pattern { bits, len }
        } else if r < 0.18 {
            // Noisy data-dependent guard.
            BranchModel::Bias {
                p_taken: 1.0 - p_exec,
            }
        } else if self.rng.gen::<f64>() < p_exec {
            // Hot site: always executed (skip almost never taken).
            BranchModel::Bias {
                p_taken: self.rng.gen_range(0.0..0.03),
            }
        } else {
            // Cold site: part of the static image, never on the hot path.
            BranchModel::Bias {
                p_taken: self.rng.gen_range(0.97..1.0),
            }
        }
    }

    fn loop_model(&mut self) -> BranchModel {
        let mean = self.p.trip_mean.max(2);
        let lo = (mean / 2).max(2);
        let hi = mean * 2;
        if self.rng.gen::<f64>() < self.p.trip_jitter_frac {
            BranchModel::LoopVar { min: lo, max: hi }
        } else {
            BranchModel::Loop {
                trip: self.rng.gen_range(lo..=hi),
            }
        }
    }

    /// Generate one function body.
    /// Generate the blocks of one structured region, starting at block
    /// index `base` within the function.  Regions are sequences of guarded
    /// call sites, (possibly nested) loops over sub-regions, if-diamonds and
    /// straight-line blocks; `STarget::Local` indices are absolute within
    /// the function, so nested regions compose without relocation.
    #[allow(clippy::too_many_arguments)]
    fn gen_region(
        &mut self,
        func: usize,
        level: usize,
        is_root: bool,
        base: usize,
        budget: u64,
        call_sites_left: &mut u32,
        depth: u32,
    ) -> Vec<SBlock> {
        let mut blocks: Vec<SBlock> = Vec::new();
        let mut used = 0u64;
        let min_construct = (self.p.block_insts.1 as u64 + 2) * 2;
        while used + min_construct < budget {
            let roll = self.rng.gen::<f64>();
            let want_call = *call_sites_left > 0
                && (is_root && roll < 0.50 || !is_root && roll < 0.30);
            if want_call {
                if let Some(callee) = self.sample_callee(level, func) {
                    *call_sites_left -= 1;
                    // Guard block: skip the call with probability p_skip.
                    let rank = callee - self.levels[level + 1].start;
                    // Most sites execute most visits (wide hot footprints);
                    // deep-ranked callees form the cold tail.
                    let p_exec = (0.85 / (1.0 + rank as f64 * 0.10)).clamp(0.20, 0.95);
                    let guard_len = self.rng.gen_range(1..=3);
                    let model = self.guard_model(p_exec);
                    let g = SBlock {
                        insts: self.payload(guard_len),
                        term: STerm::Cond {
                            taken: STarget::Local(base + blocks.len() + 2),
                            model,
                        },
                    };
                    let c = SBlock {
                        insts: self.short_payload(2),
                        term: STerm::Call { callee },
                    };
                    used += g.size() + c.size();
                    blocks.push(g);
                    blocks.push(c);
                    continue;
                }
            }
            let loop_p = (self.p.loop_frac * 0.9).min(0.5);
            let max_depth = if self.p.loop_frac >= 0.45 { 2 } else { 1 };
            if roll < loop_p && depth < max_depth {
                // Loop over a nested sub-region: each iteration traverses
                // calls/diamonds inside the body, so loops exercise real
                // code footprints instead of spinning on one block.
                let remaining = budget - used;
                let inner_budget =
                    ((remaining as f64) * self.rng.gen_range(0.3..0.6)) as u64;
                let head_idx = base + blocks.len();
                let mut inner = self.gen_region(
                    func,
                    level,
                    is_root,
                    head_idx,
                    inner_budget,
                    call_sites_left,
                    depth + 1,
                );
                if inner.is_empty() {
                    inner.push(SBlock {
                        insts: self.block_payload(),
                        term: STerm::Fall,
                    });
                }
                used += inner.iter().map(SBlock::size).sum::<u64>();
                blocks.extend(inner);
                // Back-edge block closing the loop.
                let back = SBlock {
                    insts: self.short_payload(3),
                    term: STerm::Cond {
                        taken: STarget::Local(head_idx),
                        model: self.loop_model(),
                    },
                };
                used += back.size();
                blocks.push(back);
            } else if roll < 0.80 {
                // Diamond: conditional skip of the next block.
                let a = SBlock {
                    insts: self.block_payload(),
                    term: STerm::Cond {
                        taken: STarget::Local(base + blocks.len() + 2),
                        model: self.cond_model(),
                    },
                };
                let b = SBlock {
                    insts: self.block_payload(),
                    term: STerm::Fall,
                };
                used += a.size() + b.size();
                blocks.push(a);
                blocks.push(b);
            } else {
                let s = SBlock {
                    insts: self.block_payload(),
                    term: STerm::Fall,
                };
                used += s.size();
                blocks.push(s);
            }
        }
        blocks
    }

    /// Generate one function body.
    fn gen_function(&mut self, func: usize, budget: u64) -> SFunc {
        let level = self.level_of(func);
        let is_root = func == 0;
        let mut call_sites_left = if level + 1 < self.levels.len() {
            let (lo, hi) = self.p.call_sites;
            // Scale sites with the body size so big functions fan out wide
            // (a fixed handful of sites would funnel execution into a tiny
            // hot subtree and shrink the dynamic footprint unrealistically).
            let base = self.rng.gen_range(lo..=hi);
            base.max((budget / 70) as u32)
        } else {
            0
        };
        // The dispatcher (f0) is call-dominated so control flow keeps
        // leaving it — it models the benchmark's outer driver loop.
        if is_root {
            call_sites_left = call_sites_left.max(6);
        }

        let mut blocks = self.gen_region(
            func,
            level,
            is_root,
            0,
            budget.saturating_sub(2),
            &mut call_sites_left,
            0,
        );

        // Padding so tiny budgets still produce a body.
        if blocks.is_empty() {
            blocks.push(SBlock {
                insts: self.block_payload(),
                term: STerm::Fall,
            });
        }
        // Final block: return (or the dispatcher's eternal loop).
        let fin = SBlock {
            insts: self.payload(1),
            term: if is_root {
                STerm::Jump {
                    target: STarget::Local(0),
                }
            } else {
                STerm::Ret
            },
        };
        blocks.push(fin);
        SFunc { blocks }
    }
}

// ---------------------------------------------------------------------------
// Materialisation
// ---------------------------------------------------------------------------

/// Round-robin register chooser producing realistic dependence chains.
struct RegAlloc {
    rng: SmallRng,
    /// Recently written integer destinations (youngest last).
    recent: Vec<Reg>,
}

impl RegAlloc {
    fn new(seed: u64) -> Self {
        RegAlloc {
            rng: SmallRng::seed_from_u64(seed ^ 0x5EED_5EED),
            recent: vec![Reg::int(1)],
        }
    }

    fn fresh_dst(&mut self, fp: bool) -> Reg {
        let r = if fp {
            Reg::fp(self.rng.gen_range(1..30))
        } else {
            Reg::int(self.rng.gen_range(1..30))
        };
        self.recent.push(r);
        if self.recent.len() > 8 {
            self.recent.remove(0);
        }
        r
    }

    fn src(&mut self) -> Reg {
        if self.rng.gen::<f64>() < 0.6 && !self.recent.is_empty() {
            // Depend on a recent producer: realistic but not serialising
            // dependence chains (wide-issue code has ILP ~2.5-4).
            let k = self.recent.len();
            let back = self.rng.gen_range(0..k.min(6));
            self.recent[k - 1 - back]
        } else {
            Reg::int(self.rng.gen_range(25..31) as u8)
        }
    }
}

/// Build the full workload for `profile` from `seed`.
pub fn build(profile: &BenchmarkProfile, seed: u64) -> Workload {
    let mut g = Gen::new(profile, seed);
    let n = profile.n_funcs as usize;
    let per_func = (profile.target_insts() / n as u64).max(24);

    // Symbolic pass.
    let mut funcs = Vec::with_capacity(n);
    for f in 0..n {
        // The dispatcher gets a slightly larger share; leaves vary ±40%.
        let jitter = 0.6 + g.rng.gen::<f64>() * 0.8;
        let budget = if f == 0 {
            (per_func as f64 * 1.5) as u64
        } else {
            (per_func as f64 * jitter) as u64
        }
        .max(16);
        funcs.push(g.gen_function(f, budget));
    }

    // Layout pass: function entries by prefix sum.
    let mut entries = Vec::with_capacity(n);
    let mut cursor = CODE_BASE;
    for f in &funcs {
        entries.push(cursor);
        cursor += f.size() * INST_BYTES;
    }

    // Emission pass.
    let mut ra = RegAlloc::new(seed);
    let mut pb = ProgramBuilder::new();
    // prestage: allow(nondeterministic-iteration, written by insert and drained by keyed remove(&b.start) in block order — never iterated, so the map order cannot reach the emitted program)
    let mut control_by_start: HashMap<Addr, BlockControl> = HashMap::new();
    for (fi, f) in funcs.iter().enumerate() {
        // Block start addresses within the function.
        let mut starts = Vec::with_capacity(f.blocks.len());
        let mut pc = entries[fi];
        for b in &f.blocks {
            starts.push(pc);
            pc += b.size() * INST_BYTES;
        }
        let resolve = |t: &STarget| -> Addr {
            match *t {
                STarget::Local(i) => {
                    if i < starts.len() {
                        starts[i]
                    } else {
                        // Clamped skip target: the function's final block.
                        *starts.last().unwrap()
                    }
                }
            }
        };

        for (bi, b) in f.blocks.iter().enumerate() {
            let start = starts[bi];
            let mut insts = Vec::with_capacity(b.insts.len() + 1);
            let mut ctrl = BlockControl::default();
            let mut pc = start;
            for (ii, si) in b.insts.iter().enumerate() {
                let inst = match si.op {
                    OpClass::Load => StaticInst::plain(
                        pc,
                        OpClass::Load,
                        Some(ra.fresh_dst(false)),
                        Some(ra.src()),
                        None,
                    ),
                    OpClass::Store => {
                        StaticInst::plain(pc, OpClass::Store, None, Some(ra.src()), Some(ra.src()))
                    }
                    OpClass::FpAlu | OpClass::FpMul => StaticInst::plain(
                        pc,
                        si.op,
                        Some(ra.fresh_dst(true)),
                        Some(ra.src()),
                        Some(ra.src()),
                    ),
                    op => StaticInst::plain(
                        pc,
                        op,
                        Some(ra.fresh_dst(false)),
                        Some(ra.src()),
                        Some(ra.src()),
                    ),
                };
                if let Some(m) = si.mem {
                    ctrl.mem.push((ii as u16, m));
                }
                insts.push(inst);
                pc += INST_BYTES;
            }
            let term = match &b.term {
                STerm::Cond { taken, model } => {
                    let taken_addr = resolve(taken);
                    insts.push(StaticInst::cti(pc, OpClass::CondBranch, Some(taken_addr)));
                    ctrl.branch = Some(*model);
                    Terminator::CondBranch {
                        taken: taken_addr,
                        not_taken: pc + INST_BYTES,
                    }
                }
                STerm::Jump { target } => {
                    let t = resolve(target);
                    insts.push(StaticInst::cti(pc, OpClass::Jump, Some(t)));
                    Terminator::Jump { target: t }
                }
                STerm::Call { callee } => {
                    let t = entries[*callee];
                    insts.push(StaticInst::cti(pc, OpClass::Call, Some(t)));
                    Terminator::Call {
                        target: t,
                        link: pc + INST_BYTES,
                    }
                }
                STerm::Ret => {
                    insts.push(StaticInst::cti(pc, OpClass::Return, None));
                    Terminator::Return
                }
                STerm::Fall => Terminator::FallThrough {
                    next: pc,
                },
            };
            control_by_start.insert(start, ctrl);
            pb.push(BasicBlock {
                id: BlockId(u32::MAX),
                start,
                insts,
                term,
            });
        }
    }
    pb.entry(entries[0]);
    let program = pb.finish().unwrap_or_else(|e| {
        panic!("generated program for '{}' invalid: {e}", profile.name)
    });

    // Align control to final BlockIds.
    let control = program
        .blocks()
        .iter()
        .map(|b| control_by_start.remove(&b.start).unwrap_or_default())
        .collect();

    Workload {
        profile: profile.clone(),
        program: Arc::new(program),
        control,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::specint2000;

    fn small_profile() -> BenchmarkProfile {
        let mut p = crate::profile::by_name("gzip").unwrap();
        p.i_footprint_kb = 2;
        p.n_funcs = 6;
        p
    }

    #[test]
    fn builds_valid_programs_for_all_benchmarks() {
        for p in specint2000() {
            let w = build(&p, 42);
            assert!(w.program.num_blocks() > 0, "{}", p.name);
            assert_eq!(w.control.len(), w.program.num_blocks(), "{}", p.name);
            // Footprint within 2x of the target in either direction.
            let target = p.target_insts() as f64;
            let actual = w.program.num_insts() as f64;
            assert!(
                actual > target * 0.4 && actual < target * 2.5,
                "{}: target {} actual {}",
                p.name,
                target,
                actual
            );
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = small_profile();
        let a = build(&p, 7);
        let b = build(&p, 7);
        assert_eq!(a.program.num_insts(), b.program.num_insts());
        assert_eq!(a.program.entry(), b.program.entry());
        for (x, y) in a.program.blocks().iter().zip(b.program.blocks()) {
            assert_eq!(x, y);
        }
        assert_eq!(a.control, b.control);
    }

    #[test]
    fn different_seeds_differ() {
        let p = small_profile();
        let a = build(&p, 1);
        let b = build(&p, 2);
        let same = a.program.num_insts() == b.program.num_insts()
            && a.program
                .blocks()
                .iter()
                .zip(b.program.blocks())
                .all(|(x, y)| x == y);
        assert!(!same, "different seeds produced identical programs");
    }

    #[test]
    fn every_cond_branch_has_a_model() {
        let w = build(&small_profile(), 3);
        for b in w.program.blocks() {
            if matches!(b.term, Terminator::CondBranch { .. }) {
                assert!(
                    w.control_of(b.id).branch.is_some(),
                    "block {:?} lacks a branch model",
                    b.id
                );
            }
        }
    }

    #[test]
    fn every_mem_inst_has_a_model() {
        let w = build(&small_profile(), 3);
        for b in w.program.blocks() {
            let ctrl = w.control_of(b.id);
            for (i, inst) in b.insts.iter().enumerate() {
                if inst.op.is_mem() {
                    assert!(
                        ctrl.mem.iter().any(|&(idx, _)| idx as usize == i),
                        "mem inst {:#x} lacks a model",
                        inst.pc
                    );
                }
            }
        }
    }

    #[test]
    fn entry_is_the_dispatcher_loop() {
        let w = build(&small_profile(), 3);
        assert_eq!(w.program.entry(), CODE_BASE);
        // The dispatcher ends with a jump back to its own entry.
        let f0_jump = w
            .program
            .blocks()
            .iter()
            .find(|b| matches!(b.term, Terminator::Jump { target } if target == CODE_BASE));
        assert!(f0_jump.is_some(), "no dispatcher back-jump found");
    }

    #[test]
    fn footprint_scales_with_profile() {
        let mut small = small_profile();
        small.i_footprint_kb = 2;
        let mut large = small.clone();
        large.i_footprint_kb = 64;
        large.n_funcs = 64;
        let ws = build(&small, 9);
        let wl = build(&large, 9);
        assert!(wl.program.num_insts() > 8 * ws.program.num_insts());
    }
}
