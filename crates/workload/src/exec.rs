//! Deterministic dynamic execution of a generated workload.
//!
//! [`TraceGenerator`] walks the static program, evaluating each conditional
//! branch's [`BranchModel`] and each memory
//! instruction's [`MemModel`] with a seeded RNG, and yields
//! the committed path as a sequence of **instruction streams** (the fetch
//! entities of the decoupled front-end): maximal sequential runs terminated
//! by a taken control transfer, capped at the front-end's maximum
//! fetch-block length.
//!
//! The same `(workload, seed)` pair always produces the identical dynamic
//! instruction sequence, so every simulator configuration in a sweep
//! consumes exactly the same trace — the property that makes the paper's
//! config-vs-config IPC comparisons meaningful.

use crate::codegen::{BranchModel, MemModel, Workload};
use prestage_bpred::{StreamDesc, StreamEnd, MAX_STREAM_INSTS};
use prestage_isa::{Addr, BasicBlock, BlockId, OpClass, Terminator, INST_BYTES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One dynamically executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynInst {
    pub pc: Addr,
    pub op: OpClass,
    /// Enclosing basic block (index into the program's dictionary).
    pub block: BlockId,
    /// Index of this instruction within its block.
    pub idx: u16,
    /// Outcome for conditional branches (`false` otherwise).
    pub taken: bool,
    /// Address of the next executed instruction.
    pub next_pc: Addr,
    /// Effective address for loads/stores.
    pub mem_addr: Option<Addr>,
}

/// Per-static-branch dynamic state.
#[derive(Debug, Clone, Copy, Default)]
struct BranchState {
    iter: u32,
    cur_trip: u32,
    pattern_pos: u8,
}

/// Deterministic executor producing the committed instruction stream.
#[derive(Debug)]
pub struct TraceGenerator<'w> {
    w: &'w Workload,
    rng: SmallRng,
    pc: Addr,
    call_stack: Vec<Addr>,
    branch_state: Vec<BranchState>,
    /// Index of the block the generator executed last: the next PC is
    /// almost always in the same block or its address-order successor, so
    /// block lookup is two `contains` probes instead of a binary search.
    cur_block: u32,
    /// Per-block offsets into [`Self::mem_counts`]: block `b`'s memory
    /// sites occupy `mem_slot_base[b] ..` in declaration order.
    mem_slot_base: Vec<u32>,
    /// Visit counters for strided memory sites, one flat slot per static
    /// `(block, mem-site)` — the per-transition `HashMap` this replaced
    /// hashed a synthetic key on every strided access.
    mem_counts: Vec<u32>,
    /// Maximum instructions per emitted stream.
    max_stream: u32,
    emitted: u64,
}

impl<'w> TraceGenerator<'w> {
    /// Start executing `w` from its entry point.  `seed` controls branch
    /// outcomes and memory addresses (independently of the codegen seed).
    pub fn new(w: &'w Workload, seed: u64) -> Self {
        let mut mem_slot_base = Vec::with_capacity(w.program.num_blocks());
        let mut total = 0u32;
        for bid in 0..w.program.num_blocks() {
            mem_slot_base.push(total);
            // prestage: allow(truncating-cast, mem sites per block are u16-indexed and block counts are u32 BlockIds)
            total += w.control_of(BlockId(bid as u32)).mem.len() as u32;
        }
        TraceGenerator {
            rng: SmallRng::seed_from_u64(seed ^ 0x7ACE_7ACE),
            pc: w.program.entry(),
            call_stack: Vec::with_capacity(32),
            branch_state: vec![BranchState::default(); w.program.num_blocks()],
            cur_block: 0,
            mem_slot_base,
            mem_counts: vec![0; total as usize],
            max_stream: MAX_STREAM_INSTS,
            w,
            emitted: 0,
        }
    }

    /// Total instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Current call depth (RAS pressure indicator).
    pub fn call_depth(&self) -> usize {
        self.call_stack.len()
    }

    /// `slot` is the flat counter index of the site (`mem_slot_base[block]
    /// + position in the block's mem list`); only `Stride` reads it.
    fn mem_addr(&mut self, slot: usize, model: &MemModel) -> Addr {
        match *model {
            MemModel::Stride { base, stride, span } => {
                let k = &mut self.mem_counts[slot];
                let addr = base + (*k as u64 * stride as u64) % span as u64;
                *k = k.wrapping_add(1);
                addr & !7
            }
            MemModel::Random { base, mask } => (base + (self.rng.gen::<u64>() & mask)) & !7,
            MemModel::Stack { base, mask } => (base + (self.rng.gen::<u64>() & mask)) & !7,
        }
    }

    /// The block containing `self.pc`: the cached block, its successor, or
    /// (cold path: a call, return, or cross-function jump) binary search.
    fn lookup_block(&mut self) -> &'w BasicBlock {
        let blocks = self.w.program.blocks();
        let cur = &blocks[self.cur_block as usize];
        if cur.contains(self.pc) {
            return cur;
        }
        if let Some(next) = blocks.get(self.cur_block as usize + 1) {
            if next.contains(self.pc) {
                self.cur_block += 1;
                return next;
            }
        }
        let b = self
            .w
            .program
            .block_at(self.pc)
            .unwrap_or_else(|| panic!("executed off the program image at {:#x}", self.pc));
        self.cur_block = b.id.0;
        b
    }

    fn eval_branch(&mut self, block: BlockId, model: &BranchModel) -> bool {
        let st = &mut self.branch_state[block.0 as usize];
        match *model {
            BranchModel::Bias { p_taken } => self.rng.gen::<f64>() < p_taken,
            BranchModel::Loop { trip } => {
                st.iter += 1;
                if st.iter < trip {
                    true
                } else {
                    st.iter = 0;
                    false
                }
            }
            BranchModel::LoopVar { min, max } => {
                if st.cur_trip == 0 {
                    st.cur_trip = self.rng.gen_range(min..=max);
                }
                st.iter += 1;
                if st.iter < st.cur_trip {
                    true
                } else {
                    st.iter = 0;
                    st.cur_trip = 0;
                    false
                }
            }
            BranchModel::Pattern { bits, len } => {
                let taken = (bits >> st.pattern_pos) & 1 == 1;
                st.pattern_pos = (st.pattern_pos + 1) % len;
                taken
            }
        }
    }

    /// Produce the next stream into `out` (cleared first); returns its
    /// descriptor.  Never returns an empty stream.
    pub fn next_stream(&mut self, out: &mut Vec<DynInst>) -> StreamDesc {
        out.clear();
        let start = self.pc;
        loop {
            let block = self.lookup_block();
            let bid = block.id;
            let first = ((self.pc - block.start) / INST_BYTES) as usize;
            // Payload instructions (everything before any terminator CTI).
            for ii in first..block.len() {
                if out.len() as u32 == self.max_stream {
                    // Sequential break: close the stream mid-block.
                    self.emitted += out.len() as u64;
                    return StreamDesc {
                        start,
                        len: out.len() as u32,
                        next: self.pc,
                        end: StreamEnd::SequentialBreak,
                    };
                }
                let inst = &block.insts[ii];
                let is_cti = inst.op.is_cti();
                if !is_cti {
                    let mem_addr = if inst.op.is_mem() {
                        let site = self
                            .w
                            .control_of(bid)
                            .mem
                            .iter()
                            .enumerate()
                            .find(|&(_, &(mi, _))| mi as usize == ii);
                        let (slot, model) = match site {
                            Some((pos, &(_, m))) => {
                                (self.mem_slot_base[bid.0 as usize] as usize + pos, m)
                            }
                            // A mem instruction with no declared site gets
                            // the default stack model, which never touches
                            // a counter, so any slot will do.
                            None => (
                                0,
                                MemModel::Stack {
                                    base: crate::codegen::STACK_BASE,
                                    mask: 0xFFF,
                                },
                            ),
                        };
                        Some(self.mem_addr(slot, &model))
                    } else {
                        None
                    };
                    out.push(DynInst {
                        pc: inst.pc,
                        op: inst.op,
                        block: bid,
                        idx: ii as u16,
                        taken: false,
                        next_pc: inst.pc + INST_BYTES,
                        mem_addr,
                    });
                    self.pc = inst.pc + INST_BYTES;
                    continue;
                }

                // Terminator CTI: decide the continuation.
                let (taken, next, end) = match block.term {
                    Terminator::CondBranch { taken, not_taken } => {
                        let model = self
                            .w
                            .control_of(bid)
                            .branch
                            .expect("cond branch without model");
                        let t = self.eval_branch(bid, &model);
                        if t {
                            (true, taken, Some(StreamEnd::Taken))
                        } else {
                            (false, not_taken, None)
                        }
                    }
                    Terminator::Jump { target } => (true, target, Some(StreamEnd::Taken)),
                    Terminator::Call { target, link } => {
                        self.call_stack.push(link);
                        (true, target, Some(StreamEnd::Call))
                    }
                    Terminator::Return => {
                        let ret = self
                            .call_stack
                            .pop()
                            .unwrap_or_else(|| self.w.program.entry());
                        (true, ret, Some(StreamEnd::Return))
                    }
                    Terminator::FallThrough { .. } => {
                        unreachable!("CTI inside a fall-through block")
                    }
                };
                out.push(DynInst {
                    pc: inst.pc,
                    op: inst.op,
                    block: bid,
                    idx: ii as u16,
                    taken,
                    next_pc: next,
                    mem_addr: None,
                });
                self.pc = next;
                if let Some(end) = end {
                    self.emitted += out.len() as u64;
                    return StreamDesc {
                        start,
                        len: out.len() as u32,
                        next,
                        end,
                    };
                }
                // Not-taken conditional: the stream continues in the
                // fall-through block.
            }
            // Fall-through block boundary: continue into the next block.
            if let Terminator::FallThrough { next } = block.term {
                self.pc = next;
            }
        }
    }

    /// Convenience: run forward, collecting `n` instructions (streams are
    /// kept whole, so slightly more may be returned).
    pub fn take_insts(&mut self, n: u64) -> Vec<DynInst> {
        let mut all = Vec::with_capacity(n as usize + 64);
        let mut buf = Vec::with_capacity(MAX_STREAM_INSTS as usize);
        while (all.len() as u64) < n {
            self.next_stream(&mut buf);
            all.extend_from_slice(&buf);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::build;
    use crate::profile::by_name;

    fn small_workload() -> Workload {
        let mut p = by_name("gzip").unwrap();
        p.i_footprint_kb = 2;
        p.n_funcs = 6;
        build(&p, 11)
    }

    #[test]
    fn streams_are_well_formed() {
        let w = small_workload();
        let mut t = TraceGenerator::new(&w, 1);
        let mut buf = Vec::new();
        for _ in 0..500 {
            let s = t.next_stream(&mut buf);
            assert_eq!(s.len as usize, buf.len());
            assert!(s.len >= 1 && s.len <= MAX_STREAM_INSTS);
            assert_eq!(s.start, buf[0].pc);
            // Sequential PCs inside the stream.
            for w2 in buf.windows(2) {
                assert_eq!(w2[0].pc + 4, w2[1].pc);
                assert_eq!(w2[0].next_pc, w2[1].pc);
            }
            assert_eq!(buf.last().unwrap().next_pc, s.next);
            // The next stream begins where this one pointed.
            let s2 = t.next_stream(&mut buf);
            assert_eq!(s2.start, s.next);
        }
    }

    #[test]
    fn cached_block_lookup_matches_binary_search() {
        let w = small_workload();
        let mut t = TraceGenerator::new(&w, 9);
        let insts = t.take_insts(30_000);
        for i in &insts {
            let b = w.program.block_at(i.pc).expect("on image");
            assert_eq!(b.id, i.block, "cached lookup misattributed {:#x}", i.pc);
        }
    }

    #[test]
    fn strided_sites_count_independently() {
        // Two strided sites must not share a counter: every Stride site's
        // address sequence is arithmetic modulo its span on its own clock,
        // exactly as the per-site HashMap counters behaved.
        let w = small_workload();
        let mut t = TraceGenerator::new(&w, 9);
        let insts = t.take_insts(120_000);
        let mut per_site: std::collections::BTreeMap<(u32, u16), Vec<Addr>> =
            std::collections::BTreeMap::new();
        for i in insts.iter().filter(|i| i.op.is_mem()) {
            per_site
                .entry((i.block.0, i.idx))
                .or_default()
                .push(i.mem_addr.unwrap());
        }
        let mut strided_checked = 0;
        for ((b, ii), addrs) in &per_site {
            let ctl = w.control_of(BlockId(*b));
            let Some(&(_, MemModel::Stride { base, stride, span })) =
                ctl.mem.iter().find(|&&(mi, _)| mi == *ii)
            else {
                continue;
            };
            for (k, &a) in addrs.iter().enumerate() {
                let want = (base + (k as u64 * stride as u64) % span as u64) & !7;
                assert_eq!(a, want, "site ({b},{ii}) visit {k}");
            }
            strided_checked += 1;
        }
        assert!(strided_checked > 1, "workload has no strided sites to check");
    }

    #[test]
    fn deterministic_across_runs() {
        let w = small_workload();
        let mut a = TraceGenerator::new(&w, 5);
        let mut b = TraceGenerator::new(&w, 5);
        let ia = a.take_insts(20_000);
        let ib = b.take_insts(20_000);
        assert_eq!(ia, ib);
    }

    #[test]
    fn different_exec_seeds_diverge() {
        let w = small_workload();
        let mut a = TraceGenerator::new(&w, 5);
        let mut b = TraceGenerator::new(&w, 6);
        let ia = a.take_insts(20_000);
        let ib = b.take_insts(20_000);
        assert_ne!(ia, ib);
    }

    #[test]
    fn memory_instructions_carry_addresses() {
        let w = small_workload();
        let mut t = TraceGenerator::new(&w, 3);
        let insts = t.take_insts(50_000);
        let mems: Vec<_> = insts.iter().filter(|i| i.op.is_mem()).collect();
        assert!(!mems.is_empty());
        assert!(mems.iter().all(|i| i.mem_addr.is_some()));
        assert!(insts
            .iter()
            .filter(|i| !i.op.is_mem())
            .all(|i| i.mem_addr.is_none()));
        // 8-byte aligned addresses.
        assert!(mems.iter().all(|i| i.mem_addr.unwrap() % 8 == 0));
    }

    #[test]
    fn executes_calls_and_returns_balanced() {
        let w = small_workload();
        let mut t = TraceGenerator::new(&w, 3);
        let insts = t.take_insts(100_000);
        let calls = insts.iter().filter(|i| i.op == OpClass::Call).count();
        let rets = insts.iter().filter(|i| i.op == OpClass::Return).count();
        assert!(calls > 0, "no calls executed");
        // Stack never leaks: returns track calls closely.
        assert!((calls as i64 - rets as i64).unsigned_abs() as usize <= t.call_depth() + 1);
        assert!(t.call_depth() <= w.profile.n_levels as usize);
    }

    #[test]
    fn branch_mix_has_takens_and_fallthroughs() {
        let w = small_workload();
        let mut t = TraceGenerator::new(&w, 3);
        let insts = t.take_insts(100_000);
        let conds: Vec<_> = insts
            .iter()
            .filter(|i| i.op == OpClass::CondBranch)
            .collect();
        assert!(!conds.is_empty());
        let taken = conds.iter().filter(|i| i.taken).count();
        let frac = taken as f64 / conds.len() as f64;
        assert!(
            frac > 0.2 && frac < 0.95,
            "degenerate taken fraction {frac}"
        );
    }

    #[test]
    fn loop_models_produce_multiple_iterations() {
        let w = small_workload();
        let mut t = TraceGenerator::new(&w, 3);
        let insts = t.take_insts(50_000);
        // Dynamic/static ratio must show real reuse (loops executing).
        let mut uniq = std::collections::HashSet::new();
        for i in &insts {
            uniq.insert(i.pc);
        }
        let reuse = insts.len() as f64 / uniq.len() as f64;
        assert!(reuse > 5.0, "no loop reuse: ratio {reuse}");
    }

    #[test]
    fn all_benchmarks_execute() {
        for p in crate::profile::specint2000() {
            let mut p = p;
            // Shrink for test speed but keep structure.
            p.i_footprint_kb = p.i_footprint_kb.min(32);
            p.n_funcs = p.n_funcs.min(48);
            let w = build(&p, 17);
            let mut t = TraceGenerator::new(&w, 17);
            let insts = t.take_insts(30_000);
            assert!(insts.len() >= 30_000, "{}", p.name);
        }
    }
}
