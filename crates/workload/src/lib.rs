//! # prestage-workload
//!
//! Synthetic SPECint2000-like workloads for the fetch-prestaging
//! reproduction.
//!
//! ## Why synthetic
//!
//! The paper simulates 300M-instruction representative slices of the twelve
//! SPECint2000 benchmarks compiled for Alpha AXP-21264.  Those traces are
//! proprietary and unavailable, so this crate *generates* a stand-in per
//! benchmark: a static program (a layered weighted call DAG of functions
//! made of loops, diamonds and straight-line blocks, with realistic
//! instruction mixes and register dependence chains) plus a deterministic
//! dynamic execution through it.
//!
//! The generator is parameterised by the first-order characteristics that
//! actually drive instruction-prefetch results:
//!
//! * **instruction footprint** (hot code size vs. I-cache size),
//! * **branch predictability** (the flush rate of the decoupled front-end),
//! * **basic-block / stream lengths** (fetch-block geometry),
//! * **data-side behaviour** (D-cache miss traffic competing for the L2
//!   bus).
//!
//! Per-benchmark parameter sets live in [`profile::specint2000`], with
//! values chosen to echo the published character of each benchmark (e.g.
//! `gcc`'s large code footprint, `mcf`'s tiny code but memory-bound data
//! side, `eon`'s highly predictable long blocks).
//!
//! ## Module map
//!
//! * [`profile`] — tunable benchmark profiles + the SPECint2000 set.
//! * [`codegen`] — static program synthesis ([`build`]).
//! * [`exec`] — [`TraceGenerator`]: deterministic dynamic execution
//!   yielding instruction streams.
//! * [`bbv`] — basic-block-vector profiling and a small k-means SimPoint
//!   (the paper's \[18\]) for representative-slice selection.
//! * [`trace_io`] — versioned binary trace save/load: the chunked,
//!   CRC-checked v2 format with streaming [`TraceWriter`]/[`TraceReader`]
//!   (v1 stays readable).
//! * [`replay`] — [`InstSource`], the engine's stream abstraction, served
//!   live by [`TraceGenerator`] or from disk by [`TraceReplayer`].

pub mod bbv;
pub mod codegen;
pub mod exec;
pub mod profile;
pub mod replay;
pub mod trace_io;

pub use codegen::{build, BranchModel, MemModel, Workload};
pub use exec::{DynInst, TraceGenerator};
pub use profile::{by_name, specint2000, BenchmarkProfile};
pub use replay::{
    replay_file, replay_file_trusted, replay_shared, FileReplayer, InstSource, SharedReplayer,
    TraceReplayer,
};
pub use trace_io::{
    open_trace, read_trace, record_trace, write_trace, TraceHeader, TraceMeta, TraceReader,
    TraceWriter, DEFAULT_CHUNK_INSTS,
};

/// Miniaturized SPECint2000 workloads — the first `n` profiles with code
/// footprints clamped small — for tests and examples that need whole sweep
/// grids to simulate in milliseconds.  One definition so every determinism
/// suite exercises the same fixture.
pub fn specint_mini(n: usize, seed: u64) -> Vec<Workload> {
    let mut profiles = specint2000();
    profiles.truncate(n);
    profiles
        .iter_mut()
        .map(|p| {
            p.i_footprint_kb = p.i_footprint_kb.min(8);
            p.n_funcs = p.n_funcs.min(12);
            build(p, seed)
        })
        .collect()
}
