//! Benchmark profiles: the tunable first-order characteristics of each
//! synthetic workload.

use serde::{Deserialize, Serialize};

/// Parameters controlling one synthetic benchmark.
///
/// Percentages are fractions of dynamic instructions except where noted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Display name ("gzip", "gcc", ...).
    pub name: &'static str,
    /// Target static instruction footprint in KB (4-byte instructions).
    pub i_footprint_kb: u32,
    /// Number of functions in the call DAG.
    pub n_funcs: u32,
    /// Call-DAG depth (levels); bounds RAS depth.
    pub n_levels: u32,
    /// Basic-block payload size range (non-CTI instructions per block).
    pub block_insts: (u32, u32),
    /// Fraction of payload instructions that are loads.
    pub load_frac: f64,
    /// Fraction of payload instructions that are stores.
    pub store_frac: f64,
    /// Fraction of payload instructions that are integer multiplies.
    pub mul_frac: f64,
    /// Fraction of payload instructions that are floating point.
    pub fp_frac: f64,
    /// Of conditional branches: fraction that are loop back-edges.
    pub loop_frac: f64,
    /// Of conditional branches: fraction following a periodic pattern.
    pub pattern_frac: f64,
    /// Of conditional branches: fraction that are data-dependent/hard
    /// (the remainder are strongly biased and easy).
    pub hard_frac: f64,
    /// Taken probability band for hard branches (min, max).
    pub hard_p: (f64, f64),
    /// Mean loop trip count.
    pub trip_mean: u32,
    /// Fraction of loops whose trip count varies between visits.
    pub trip_jitter_frac: f64,
    /// Data footprint in KB (regions addressed by loads/stores).
    pub d_footprint_kb: u32,
    /// Of memory references: fraction using random (pointer-chasing)
    /// addressing over the data footprint; the rest stride or hit the
    /// stack.
    pub d_random_frac: f64,
    /// Of memory references: fraction hitting the (always-warm) stack.
    pub d_stack_frac: f64,
    /// Of pointer-chasing sites: fraction roaming the full data footprint
    /// (the rest chase hot, cache-resident structures).
    pub d_cold_frac: f64,
    /// Call sites per function body (density of the call DAG).
    pub call_sites: (u32, u32),
    /// Zipf exponent for callee popularity (higher = hotter hot set).
    pub zipf_alpha: f64,
}

impl BenchmarkProfile {
    /// Target static instruction count.
    pub fn target_insts(&self) -> u64 {
        self.i_footprint_kb as u64 * 1024 / 4
    }
}

/// The twelve SPECint2000 benchmarks the paper simulates (Figure 6 order),
/// parameterised to echo their published first-order behaviour.
pub fn specint2000() -> Vec<BenchmarkProfile> {
    vec![
        // gzip: tiny hot loops, very predictable, modest data side.
        BenchmarkProfile {
            name: "gzip",
            i_footprint_kb: 4,
            n_funcs: 10,
            n_levels: 3,
            block_insts: (6, 14),
            load_frac: 0.21,
            store_frac: 0.08,
            mul_frac: 0.01,
            fp_frac: 0.0,
            loop_frac: 0.55,
            pattern_frac: 0.050,
            hard_frac: 0.015,
            hard_p: (0.30, 0.70),
            trip_mean: 24,
            trip_jitter_frac: 0.18,
            d_footprint_kb: 256,
            d_random_frac: 0.15,
            d_stack_frac: 0.40,
            d_cold_frac: 0.03,
            call_sites: (1, 2),
            zipf_alpha: 1.2,
        },
        // vpr: mid-size code, placement/routing with hard branches.
        BenchmarkProfile {
            name: "vpr",
            i_footprint_kb: 24,
            n_funcs: 40,
            n_levels: 4,
            block_insts: (5, 10),
            load_frac: 0.24,
            store_frac: 0.09,
            mul_frac: 0.02,
            fp_frac: 0.04,
            loop_frac: 0.40,
            pattern_frac: 0.060,
            hard_frac: 0.033,
            hard_p: (0.30, 0.70),
            trip_mean: 10,
            trip_jitter_frac: 0.30,
            d_footprint_kb: 2048,
            d_random_frac: 0.30,
            d_stack_frac: 0.35,
            d_cold_frac: 0.05,
            call_sites: (1, 3),
            zipf_alpha: 0.75,
        },
        // gcc: the big-code benchmark; short blocks, many functions.
        BenchmarkProfile {
            name: "gcc",
            i_footprint_kb: 256,
            n_funcs: 320,
            n_levels: 6,
            block_insts: (4, 9),
            load_frac: 0.23,
            store_frac: 0.11,
            mul_frac: 0.01,
            fp_frac: 0.0,
            loop_frac: 0.35,
            pattern_frac: 0.075,
            hard_frac: 0.025,
            hard_p: (0.30, 0.70),
            trip_mean: 6,
            trip_jitter_frac: 0.36,
            d_footprint_kb: 2048,
            d_random_frac: 0.25,
            d_stack_frac: 0.40,
            d_cold_frac: 0.05,
            call_sites: (1, 4),
            zipf_alpha: 0.6,
        },
        // mcf: tiny code, brutal data side (pointer chasing over a huge
        // working set): memory bound, lowest IPC.
        BenchmarkProfile {
            name: "mcf",
            i_footprint_kb: 6,
            n_funcs: 12,
            n_levels: 3,
            block_insts: (5, 10),
            load_frac: 0.31,
            store_frac: 0.08,
            mul_frac: 0.01,
            fp_frac: 0.0,
            loop_frac: 0.45,
            pattern_frac: 0.040,
            hard_frac: 0.022,
            hard_p: (0.35, 0.65),
            trip_mean: 16,
            trip_jitter_frac: 0.30,
            d_footprint_kb: 16 << 10,
            d_random_frac: 0.70,
            d_stack_frac: 0.10,
            d_cold_frac: 0.45,
            call_sites: (1, 2),
            zipf_alpha: 1.2,
        },
        // crafty: chess search; mid-large code, branchy and hard.
        BenchmarkProfile {
            name: "crafty",
            i_footprint_kb: 64,
            n_funcs: 90,
            n_levels: 5,
            block_insts: (5, 11),
            load_frac: 0.22,
            store_frac: 0.07,
            mul_frac: 0.02,
            fp_frac: 0.0,
            loop_frac: 0.35,
            pattern_frac: 0.050,
            hard_frac: 0.035,
            hard_p: (0.30, 0.70),
            trip_mean: 8,
            trip_jitter_frac: 0.36,
            d_footprint_kb: 1024,
            d_random_frac: 0.25,
            d_stack_frac: 0.40,
            d_cold_frac: 0.05,
            call_sites: (1, 3),
            zipf_alpha: 0.75,
        },
        // parser: dictionary lookups, mid code, hard branches.
        BenchmarkProfile {
            name: "parser",
            i_footprint_kb: 40,
            n_funcs: 70,
            n_levels: 5,
            block_insts: (4, 9),
            load_frac: 0.25,
            store_frac: 0.10,
            mul_frac: 0.01,
            fp_frac: 0.0,
            loop_frac: 0.38,
            pattern_frac: 0.050,
            hard_frac: 0.030,
            hard_p: (0.30, 0.70),
            trip_mean: 7,
            trip_jitter_frac: 0.36,
            d_footprint_kb: 1024,
            d_random_frac: 0.30,
            d_stack_frac: 0.35,
            d_cold_frac: 0.06,
            call_sites: (1, 3),
            zipf_alpha: 0.75,
        },
        // eon: C++ ray tracer; long predictable blocks, high ILP — the
        // benchmark where prefetching pays most (Figure 6's biggest CLGP
        // win).
        BenchmarkProfile {
            name: "eon",
            i_footprint_kb: 96,
            n_funcs: 120,
            n_levels: 5,
            block_insts: (8, 16),
            load_frac: 0.23,
            store_frac: 0.12,
            mul_frac: 0.02,
            fp_frac: 0.10,
            loop_frac: 0.50,
            pattern_frac: 0.040,
            hard_frac: 0.007,
            hard_p: (0.40, 0.60),
            trip_mean: 12,
            trip_jitter_frac: 0.12,
            d_footprint_kb: 512,
            d_random_frac: 0.10,
            d_stack_frac: 0.45,
            d_cold_frac: 0.02,
            call_sites: (2, 4),
            zipf_alpha: 0.6,
        },
        // perlbmk: interpreter; large code, dispatch patterns.
        BenchmarkProfile {
            name: "perlbmk",
            i_footprint_kb: 128,
            n_funcs: 180,
            n_levels: 6,
            block_insts: (5, 10),
            load_frac: 0.25,
            store_frac: 0.12,
            mul_frac: 0.01,
            fp_frac: 0.0,
            loop_frac: 0.32,
            pattern_frac: 0.070,
            hard_frac: 0.020,
            hard_p: (0.30, 0.70),
            trip_mean: 6,
            trip_jitter_frac: 0.30,
            d_footprint_kb: 2048,
            d_random_frac: 0.30,
            d_stack_frac: 0.40,
            d_cold_frac: 0.05,
            call_sites: (2, 4),
            zipf_alpha: 0.6,
        },
        // gap: group theory; mid-large code, fairly predictable.
        BenchmarkProfile {
            name: "gap",
            i_footprint_kb: 64,
            n_funcs: 100,
            n_levels: 5,
            block_insts: (5, 11),
            load_frac: 0.24,
            store_frac: 0.10,
            mul_frac: 0.03,
            fp_frac: 0.0,
            loop_frac: 0.45,
            pattern_frac: 0.050,
            hard_frac: 0.015,
            hard_p: (0.35, 0.65),
            trip_mean: 10,
            trip_jitter_frac: 0.24,
            d_footprint_kb: 2048,
            d_random_frac: 0.20,
            d_stack_frac: 0.40,
            d_cold_frac: 0.04,
            call_sites: (1, 3),
            zipf_alpha: 0.6,
        },
        // vortex: OO database; the classic big-I-footprint prefetch target.
        BenchmarkProfile {
            name: "vortex",
            i_footprint_kb: 160,
            n_funcs: 200,
            n_levels: 6,
            block_insts: (6, 12),
            load_frac: 0.26,
            store_frac: 0.14,
            mul_frac: 0.01,
            fp_frac: 0.0,
            loop_frac: 0.35,
            pattern_frac: 0.050,
            hard_frac: 0.013,
            hard_p: (0.35, 0.65),
            trip_mean: 7,
            trip_jitter_frac: 0.24,
            d_footprint_kb: 4096,
            d_random_frac: 0.25,
            d_stack_frac: 0.40,
            d_cold_frac: 0.04,
            call_sites: (2, 4),
            zipf_alpha: 0.6,
        },
        // bzip2: small hot loops like gzip, bigger data.
        BenchmarkProfile {
            name: "bzip2",
            i_footprint_kb: 8,
            n_funcs: 14,
            n_levels: 3,
            block_insts: (6, 13),
            load_frac: 0.24,
            store_frac: 0.09,
            mul_frac: 0.01,
            fp_frac: 0.0,
            loop_frac: 0.52,
            pattern_frac: 0.050,
            hard_frac: 0.020,
            hard_p: (0.30, 0.70),
            trip_mean: 18,
            trip_jitter_frac: 0.18,
            d_footprint_kb: 4096,
            d_random_frac: 0.30,
            d_stack_frac: 0.30,
            d_cold_frac: 0.1,
            call_sites: (1, 2),
            zipf_alpha: 1.2,
        },
        // twolf: place & route; mid code, hard branches.
        BenchmarkProfile {
            name: "twolf",
            i_footprint_kb: 32,
            n_funcs: 60,
            n_levels: 4,
            block_insts: (4, 9),
            load_frac: 0.23,
            store_frac: 0.09,
            mul_frac: 0.02,
            fp_frac: 0.02,
            loop_frac: 0.38,
            pattern_frac: 0.060,
            hard_frac: 0.033,
            hard_p: (0.30, 0.70),
            trip_mean: 8,
            trip_jitter_frac: 0.36,
            d_footprint_kb: 1024,
            d_random_frac: 0.35,
            d_stack_frac: 0.30,
            d_cold_frac: 0.08,
            call_sites: (1, 3),
            zipf_alpha: 0.75,
        },
    ]
}

/// Look up one profile by name.
pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
    specint2000().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_benchmarks_in_figure6_order() {
        let names: Vec<_> = specint2000().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk", "gap",
                "vortex", "bzip2", "twolf"
            ]
        );
    }

    #[test]
    fn fractions_are_sane() {
        for p in specint2000() {
            assert!(p.load_frac + p.store_frac + p.mul_frac + p.fp_frac < 0.8, "{}", p.name);
            assert!(
                p.loop_frac + p.pattern_frac + p.hard_frac <= 1.0,
                "{}",
                p.name
            );
            assert!(p.hard_p.0 <= p.hard_p.1 && p.hard_p.1 <= 1.0, "{}", p.name);
            assert!(p.d_random_frac + p.d_stack_frac <= 1.0, "{}", p.name);
            assert!(p.block_insts.0 >= 1 && p.block_insts.0 <= p.block_insts.1);
            assert!(p.n_levels >= 2 && p.n_funcs >= p.n_levels);
        }
    }

    #[test]
    fn footprints_span_the_interesting_range() {
        let profs = specint2000();
        let min = profs.iter().map(|p| p.i_footprint_kb).min().unwrap();
        let max = profs.iter().map(|p| p.i_footprint_kb).max().unwrap();
        // The sweep runs 256B..64KB: footprints must straddle it.
        assert!(min <= 8);
        assert!(max >= 128);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("gcc").unwrap().i_footprint_kb, 256);
        assert!(by_name("nonesuch").is_none());
    }
}
