//! Replaying recorded traces as instruction streams.
//!
//! The engine consumes the committed path as *streams* (see [`crate::exec`])
//! through one abstraction, [`InstSource`]: either the live
//! [`TraceGenerator`] (generate the dynamic path on the fly, paying branch
//! models, memory models and RNG per instruction in every sweep cell) or a
//! [`TraceReplayer`] over a recorded trace (pay generation once per
//! `(profile, seed)`, then stream the flat records back from disk at
//! constant memory).
//!
//! Replay is **bit-exact**: a trace stores the flat [`DynInst`] sequence,
//! and stream boundaries are a pure function of it — a stream ends at a
//! taken control transfer (call / return / jump / taken conditional) or
//! after [`MAX_STREAM_INSTS`] sequential instructions, exactly the rule
//! [`TraceGenerator::next_stream`] applies while generating.  The
//! conformance suite (`tests/trace_roundtrip.rs`) holds the two sides to
//! byte-identical `GridResult`s.

use crate::exec::{DynInst, TraceGenerator};
use crate::trace_io::{open_trace, TraceReader};
use prestage_bpred::{StreamDesc, StreamEnd, MAX_STREAM_INSTS};
use prestage_isa::OpClass;
use std::fs::File;
use std::io::{self, BufReader};
use std::path::Path;
use std::sync::Arc;

/// Where the engine's committed-path streams come from: the live generator
/// or a disk replay.  `next_stream` never returns an empty stream and may
/// not fail — a replay that runs dry mid-simulation panics loudly (the
/// recording was too short; results from a partial trace would be silently
/// wrong).
pub trait InstSource {
    /// Produce the next stream into `out` (cleared first); returns its
    /// descriptor.
    fn next_stream(&mut self, out: &mut Vec<DynInst>) -> StreamDesc;
}

impl InstSource for TraceGenerator<'_> {
    fn next_stream(&mut self, out: &mut Vec<DynInst>) -> StreamDesc {
        TraceGenerator::next_stream(self, out)
    }
}

/// Why `inst` ends the stream it sits in, if it does — the inverse of the
/// generator's termination rule.
fn stream_end_of(inst: &DynInst) -> Option<StreamEnd> {
    match inst.op {
        OpClass::Call => Some(StreamEnd::Call),
        OpClass::Return => Some(StreamEnd::Return),
        OpClass::Jump => Some(StreamEnd::Taken),
        OpClass::CondBranch if inst.taken => Some(StreamEnd::Taken),
        _ => None,
    }
}

/// Reassembles a flat record iterator (a [`TraceReader`], or anything else
/// yielding `io::Result<DynInst>`) into the streams the engine fetches.
#[derive(Debug)]
pub struct TraceReplayer<I> {
    records: I,
    /// Where the records come from, for error messages.
    context: String,
    replayed: u64,
}

/// A replayer streaming straight off a trace file.
pub type FileReplayer = TraceReplayer<TraceReader<BufReader<File>>>;

impl<I: Iterator<Item = io::Result<DynInst>>> TraceReplayer<I> {
    pub fn new(records: I, context: impl Into<String>) -> Self {
        TraceReplayer {
            records,
            context: context.into(),
            replayed: 0,
        }
    }

    /// Instructions replayed so far.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    fn next_inst(&mut self) -> DynInst {
        match self.records.next() {
            Some(Ok(i)) => {
                self.replayed += 1;
                i
            }
            Some(Err(e)) => panic!("replaying {}: {e}", self.context),
            None => panic!(
                "trace {} exhausted after {} instructions — the engine needed more \
                 run-ahead than was recorded; re-record a longer trace \
                 (`prestage trace record`)",
                self.context, self.replayed
            ),
        }
    }
}

impl<I: Iterator<Item = io::Result<DynInst>>> InstSource for TraceReplayer<I> {
    fn next_stream(&mut self, out: &mut Vec<DynInst>) -> StreamDesc {
        out.clear();
        loop {
            // Mirror of the generator: the cut is checked *before* each
            // instruction, so a stream reaching MAX_STREAM_INSTS without a
            // terminator closes as a sequential break.
            if out.len() as u32 == MAX_STREAM_INSTS {
                let last = out.last().expect("MAX_STREAM_INSTS >= 1");
                return StreamDesc {
                    start: out[0].pc,
                    len: out.len() as u32,
                    next: last.next_pc,
                    end: StreamEnd::SequentialBreak,
                };
            }
            let inst = self.next_inst();
            out.push(inst);
            if let Some(end) = stream_end_of(&inst) {
                return StreamDesc {
                    start: out[0].pc,
                    len: out.len() as u32,
                    next: inst.next_pc,
                    end,
                };
            }
        }
    }
}

/// Open `path` for streaming replay.  Each caller gets an independent
/// reader, so any number of sweep cells can replay the same file
/// concurrently at constant memory apiece (the OS page cache makes the
/// shared bytes cheap).
pub fn replay_file(path: &Path) -> io::Result<FileReplayer> {
    let reader = open_trace(path)?;
    Ok(TraceReplayer::new(reader, path.display().to_string()))
}

/// [`replay_file`] without per-chunk payload-CRC recomputation — for
/// callers that already verified the file end-to-end this process (the
/// spec runner vets every trace once before fanning out; see
/// [`TraceReader::trusted`]).
pub fn replay_file_trusted(path: &Path) -> io::Result<FileReplayer> {
    let f = std::fs::File::open(path).map_err(|e| {
        io::Error::new(e.kind(), format!("open trace {}: {e}", path.display()))
    })?;
    let reader = TraceReader::trusted(BufReader::new(f))?;
    Ok(TraceReplayer::new(reader, path.display().to_string()))
}

/// Replayer over an in-memory decoded trace shared across sweep cells:
/// the sweep runner decodes (and CRC-verifies) each trace once per
/// process, then every cell replays the shared `Arc`.  Streams come
/// straight off the slice — the terminator scan plus one bulk
/// `extend_from_slice` per stream, no per-record `Result` plumbing — so
/// the per-cell replay cost is a small fraction of live generation.
#[derive(Debug)]
pub struct SharedReplayer {
    records: Arc<Vec<DynInst>>,
    pos: usize,
    context: String,
}

impl SharedReplayer {
    pub fn new(records: Arc<Vec<DynInst>>, context: impl Into<String>) -> Self {
        SharedReplayer {
            records,
            pos: 0,
            context: context.into(),
        }
    }
}

impl InstSource for SharedReplayer {
    fn next_stream(&mut self, out: &mut Vec<DynInst>) -> StreamDesc {
        out.clear();
        let recs = &self.records[..];
        let start = self.pos;
        let max = MAX_STREAM_INSTS as usize;
        let mut i = start;
        let end;
        // Identical termination rule to the generator and TraceReplayer:
        // the length cut is checked before each instruction.
        loop {
            if i - start == max {
                end = StreamEnd::SequentialBreak;
                break;
            }
            let Some(inst) = recs.get(i) else {
                panic!(
                    "trace {} exhausted after {i} instructions — the engine needed \
                     more run-ahead than was recorded; re-record a longer trace \
                     (`prestage trace record`)",
                    self.context
                );
            };
            i += 1;
            if let Some(e) = stream_end_of(inst) {
                end = e;
                break;
            }
        }
        out.extend_from_slice(&recs[start..i]);
        self.pos = i;
        StreamDesc {
            start: recs[start].pc,
            len: (i - start) as u32,
            next: recs[i - 1].next_pc,
            end,
        }
    }
}

/// A replayer over an in-memory decoded trace (see [`SharedReplayer`]).
pub fn replay_shared(records: Arc<Vec<DynInst>>, context: impl Into<String>) -> SharedReplayer {
    SharedReplayer::new(records, context)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::build;
    use crate::profile::by_name;
    use crate::trace_io::record_trace;
    use std::io::Cursor;

    fn small_workload(name: &str, seed: u64) -> crate::codegen::Workload {
        let mut p = by_name(name).unwrap();
        p.i_footprint_kb = 2;
        p.n_funcs = 6;
        build(&p, seed)
    }

    #[test]
    fn replayed_streams_match_live_generation_exactly() {
        let w = small_workload("gzip", 11);
        let exec_seed = 5;
        let mut bytes = Cursor::new(Vec::new());
        record_trace(&mut bytes, &w, exec_seed, 20_000, 512).unwrap();
        let bytes = bytes.into_inner();

        let mut live = TraceGenerator::new(&w, exec_seed);
        let mut replay = TraceReplayer::new(
            crate::trace_io::TraceReader::new(&bytes[..]).unwrap(),
            "in-memory",
        );
        let (mut lb, mut rb) = (Vec::new(), Vec::new());
        let mut seen = 0u64;
        // Stop well before the recording's tail: the final stream may be
        // cut mid-way by the exact-count recording.
        while seen < 18_000 {
            let ls = InstSource::next_stream(&mut live, &mut lb);
            let rs = replay.next_stream(&mut rb);
            assert_eq!(ls, rs, "descriptors diverged after {seen} insts");
            assert_eq!(lb, rb, "instructions diverged after {seen} insts");
            seen += ls.len as u64;
        }
        assert_eq!(replay.replayed(), seen);
    }

    #[test]
    fn shared_replayer_matches_the_streaming_replayer_exactly() {
        let w = small_workload("twolf", 7);
        let mut bytes = Cursor::new(Vec::new());
        record_trace(&mut bytes, &w, 2, 15_000, 512).unwrap();
        let bytes = bytes.into_inner();
        let records: Vec<_> = crate::trace_io::TraceReader::new(&bytes[..])
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let mut shared = SharedReplayer::new(Arc::new(records), "mem");
        let mut streamed = TraceReplayer::new(
            crate::trace_io::TraceReader::new(&bytes[..]).unwrap(),
            "file",
        );
        let mut live = TraceGenerator::new(&w, 2);
        let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
        let mut seen = 0u64;
        while seen < 13_000 {
            let sa = shared.next_stream(&mut a);
            let sb = streamed.next_stream(&mut b);
            let sc = InstSource::next_stream(&mut live, &mut c);
            assert_eq!(sa, sb);
            assert_eq!(sa, sc);
            assert_eq!(a, b);
            assert_eq!(a, c);
            seen += sa.len as u64;
        }
    }

    #[test]
    #[should_panic(expected = "exhausted after")]
    fn exhausted_shared_replay_panics_with_context() {
        let mut shared = SharedReplayer::new(Arc::new(Vec::new()), "empty");
        shared.next_stream(&mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "exhausted after")]
    fn exhausted_replay_panics_with_context() {
        let w = small_workload("mcf", 3);
        let mut bytes = Cursor::new(Vec::new());
        record_trace(&mut bytes, &w, 3, 40, 64).unwrap();
        let bytes = bytes.into_inner();
        let mut replay = TraceReplayer::new(
            crate::trace_io::TraceReader::new(&bytes[..]).unwrap(),
            "tiny",
        );
        let mut buf = Vec::new();
        loop {
            replay.next_stream(&mut buf);
        }
    }
}
